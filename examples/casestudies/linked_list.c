// Singly linked list (Figure 7, class #1).  The list is refined by the
// mathematical list of its values; partial data structures during
// traversal are expressed with the magic-wand type, exactly as in
// Section 2.2 of the paper.

typedef struct
[[rc::refined_by("xs: {list Z}")]]
[[rc::ptr_type("list_t: {xs != []} @ optional<&own<...>, null>")]]
[[rc::exists("x: int", "tl: {list Z}")]]
[[rc::constraints("{xs = x :: tl}")]]
node {
  [[rc::field("x @ int<int64_t>")]] int64_t value;
  [[rc::field("tl @ list_t")]] struct node* next;
}* list_t;

// Push a value, using a caller-provided node buffer (the examples use the
// allocator of alloc.c for these, as in the paper's case studies).
[[rc::parameters("xs: {list Z}", "p: loc", "x: int")]]
[[rc::args("p @ &own<xs @ list_t>", "&own<uninit<16>>", "x @ int<int64_t>")]]
[[rc::ensures("own p : {x :: xs} @ list_t")]]
void push(list_t* l, void* buf, int64_t value) {
  list_t n = buf;
  n->value = value;
  n->next = *l;
  *l = n;
}

// Pop the head value; the node's memory is handed back to the caller.
[[rc::parameters("xs: {list Z}", "p: loc")]]
[[rc::args("p @ &own<xs @ list_t>")]]
[[rc::requires("{xs != []}")]]
[[rc::exists("q: loc")]]
[[rc::returns("{head(xs)} @ int<int64_t>")]]
[[rc::ensures("own p : {tail(xs)} @ list_t", "own q : uninit<16>")]]
int64_t pop(list_t* l) {
  list_t n = *l;
  int64_t v = n->value;
  *l = n->next;
  return v;
}

// Compute the length with the standard wand-based traversal invariant.
// The length bound precondition discharges the n+1 overflow check: a C
// list can never have more nodes than the address space holds anyway.
[[rc::parameters("xs: {list Z}", "p: loc")]]
[[rc::args("p @ &own<xs @ list_t>")]]
[[rc::requires("{len(xs) <= 65536}")]]
[[rc::returns("{len(xs)} @ int<size_t>")]]
[[rc::ensures("own p : xs @ list_t")]]
size_t length(list_t* l) {
  list_t* cur = l;
  size_t n = 0;
  [[rc::exists("cp: loc", "cs: {list Z}")]]
  [[rc::inv_vars("cur: cp @ &own<cs @ list_t>")]]
  [[rc::inv_vars("n: {len(xs) - len(cs)} @ int<size_t>")]]
  [[rc::inv_vars("l: p @ &own<wand<{own cp : cs @ list_t}, xs @ list_t>>")]]
  while (*cur != NULL) {
    n += 1;
    cur = &(*cur)->next;
  }
  return n;
}
