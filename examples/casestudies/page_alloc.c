// Page allocator (Figure 7, class #2: "padded").  Free pages form an
// intrusive list; each node is a full 4096-byte page whose first bytes
// are overlaid with the link header — expressed with rc::size, which
// generates the padded<...> type (§2.2 of the paper).

typedef struct
[[rc::refined_by("n: nat")]]
[[rc::ptr_type("pages_t: {n != 0} @ optional<&own<...>, null>")]]
[[rc::size("4096")]]
page {
  [[rc::field("{n - 1} @ pages_t")]] struct page* next;
}* pages_t;

[[rc::parameters("p: loc")]]
[[rc::args("p @ &own<uninit<8>>")]]
[[rc::ensures("own p : {0} @ pages_t")]]
void page_pool_init(pages_t* pool) {
  *pool = NULL;
}

// Hand one page to the caller (NULL when the pool is empty).
[[rc::parameters("n: nat", "p: loc")]]
[[rc::args("p @ &own<n @ pages_t>")]]
[[rc::returns("{n != 0} @ optional<&own<uninit<4096>>, null>")]]
[[rc::ensures("own p : {n != 0 ? n - 1 : 0} @ pages_t")]]
void* page_alloc(pages_t* pool) {
  if (*pool == NULL) return NULL;
  pages_t pg = *pool;
  *pool = pg->next;
  return pg;
}

// Return a page to the pool.
[[rc::parameters("n: nat", "p: loc")]]
[[rc::args("p @ &own<n @ pages_t>", "&own<uninit<4096>>")]]
[[rc::ensures("own p : {n + 1} @ pages_t")]]
void page_free(pages_t* pool, void* page) {
  pages_t pg = page;
  pg->next = *pool;
  *pool = pg;
}
