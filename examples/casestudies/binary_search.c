// Binary search over a sorted array, called through a first-class
// function pointer (Figure 7, class #1: "arrays, func. ptr.").
// The result is specified through the mathematical lower-bound function
// lb(xs, k); the facts the loop invariant needs about lb are manual
// lemmas (the paper's 19 lines of pure Coq reasoning for this example).

typedef int64_t (*cmp_fn)(int64_t, int64_t);

// A concrete comparator with a precise refinement type.
[[rc::parameters("x: int", "y: int")]]
[[rc::args("x @ int<int64_t>", "y @ int<int64_t>")]]
[[rc::returns("{x <= y} @ bool<int>")]]
int64_t cmp_le(int64_t x, int64_t y) {
  return x <= y;
}

// Returns lb(xs, key): the least index whose element is >= key (n if
// there is none).  The comparator is received as a function pointer.
[[rc::parameters("xs: {list Z}", "n: nat", "k: int", "p: loc")]]
[[rc::args("p @ &own<xs @ array<int64_t, n>>", "n @ int<size_t>",
           "k @ int<int64_t>", "fn<cmp_le>")]]
[[rc::requires("{sorted(xs)}", "{len(xs) = n}", "{n <= 65536}")]]
[[rc::returns("{lb(xs, k)} @ int<size_t>")]]
[[rc::ensures("own p : xs @ array<int64_t, n>")]]
[[rc::lemmas("lb_nonneg", "lb_le_len", "lb_lower", "lb_upper")]]
size_t binary_search(int64_t* a, size_t n, int64_t key, cmp_fn le) {
  size_t lo = 0;
  size_t hi = n;
  [[rc::exists("l: nat", "h: nat")]]
  [[rc::inv_vars("lo: l @ int<size_t>", "hi: h @ int<size_t>")]]
  [[rc::constraints("{l <= h}", "{h <= n}",
                    "{l <= lb(xs, k)}", "{lb(xs, k) <= h}")]]
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (le(key, a[mid])) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

// A client: search in a stack array... (kept minimal: the paper verified
// "a client of it"; ours calls binary_search through the pointer).
[[rc::parameters("xs: {list Z}", "n: nat", "k: int", "p: loc")]]
[[rc::args("p @ &own<xs @ array<int64_t, n>>", "n @ int<size_t>",
           "k @ int<int64_t>")]]
[[rc::requires("{sorted(xs)}", "{len(xs) = n}", "{n <= 65536}")]]
[[rc::returns("{lb(xs, k)} @ int<size_t>")]]
[[rc::ensures("own p : xs @ array<int64_t, n>")]]
size_t find_slot(int64_t* a, size_t n, int64_t key) {
  return binary_search(a, n, key, cmp_le);
}
