// Spinlock (Figure 7, class #6).  The lock word is an atomic boolean
// (Section 6 of the paper): when it is false (unlocked) the invariant
// owns the lock-protected resource — here the abstract ghost token
// tok(lockres, 0); acquiring via CAS transfers the token to the caller,
// releasing stores false and gives it back.  CAS-BOOL (Figure 6) does
// all the ownership reasoning; no manual Iris proofs appear here.

struct [[rc::refined_by()]] spinlock {
  [[rc::field("atomicbool<int; ; tok(lockres, 0)>")]] _Atomic int locked;
};

[[rc::parameters("l: loc")]]
[[rc::args("l @ &shr<spinlock>")]]
[[rc::ensures("tok(lockres, 0)")]]
void spin_lock(struct spinlock* l) {
  int expected = 0;
  [[rc::inv_vars("expected: {0} @ int<int>")]]
  while (!atomic_compare_exchange_strong(&l->locked, &expected, 1)) {
    expected = 0;
  }
}

[[rc::parameters("l: loc")]]
[[rc::args("l @ &shr<spinlock>")]]
[[rc::requires("tok(lockres, 0)")]]
void spin_unlock(struct spinlock* l) {
  atomic_store(&l->locked, 0);
}
