// One-time barrier (Figure 7, class #6).  The flag is an atomic boolean
// whose true-state holds a *persistent* witness ptok(ready, 0): once the
// signaller has published it, every waiter that observes true extracts a
// copy.  Persistence is what lets an atomic load move the resource out of
// the invariant (cf. Section 6's remark on the atomic Boolean type).

struct [[rc::refined_by()]] barrier {
  [[rc::field("atomicbool<int; ptok(ready, 0); >")]] _Atomic int flag;
};

// Publish: requires the (persistent) witness and stores true.
[[rc::parameters("b: loc")]]
[[rc::args("b @ &shr<barrier>")]]
[[rc::requires("ptok(ready, 0)")]]
void barrier_signal(struct barrier* b) {
  atomic_store(&b->flag, 1);
}

// Wait until the flag is observed true; afterwards the caller holds the
// witness published by the signaller.
[[rc::parameters("b: loc")]]
[[rc::args("b @ &shr<barrier>")]]
[[rc::ensures("ptok(ready, 0)")]]
void barrier_wait(struct barrier* b) {
  [[rc::inv_vars()]]
  while (!atomic_load(&b->flag)) {
  }
}
