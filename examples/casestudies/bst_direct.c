// Binary search tree, direct verification (Figure 7, class #3): the C
// code is verified directly against its specification as a functional
// (multi)set, without an intermediate layer.  Almost all side conditions
// go through the (multi)set solver, matching the paper's observation
// that the direct approach has much lower overhead than the layered one.

typedef struct
[[rc::refined_by("s: {gmultiset nat}")]]
[[rc::ptr_type("tree_t: {s != ∅} @ optional<&own<...>, null>")]]
[[rc::exists("k: nat", "l: {gmultiset nat}", "r: {gmultiset nat}")]]
[[rc::constraints("{s = {[k]} ⊎ l ⊎ r}",
                  "{∀ j, j ∈ l → j ≤ k}",
                  "{∀ j, j ∈ r → k ≤ j}")]]
tnode {
  [[rc::field("k @ int<size_t>")]] size_t key;
  [[rc::field("l @ tree_t")]] struct tnode* left;
  [[rc::field("r @ tree_t")]] struct tnode* right;
}* tree_t;

[[rc::parameters("p: loc")]]
[[rc::args("p @ &own<uninit<8>>")]]
[[rc::ensures("own p : {∅} @ tree_t")]]
[[rc::tactics("multiset_solver")]]
void tree_init(tree_t* t) {
  *t = NULL;
}

// Membership test, recursive over the tree structure.
[[rc::parameters("s: {gmultiset nat}", "x: nat", "p: loc")]]
[[rc::args("p @ &own<s @ tree_t>", "x @ int<size_t>")]]
[[rc::returns("{x ∈ s} @ bool<int>")]]
[[rc::ensures("own p : s @ tree_t")]]
[[rc::tactics("multiset_solver")]]
int tree_member(tree_t* t, size_t key) {
  if (*t == NULL) return 0;
  if (key == (*t)->key) return 1;
  if (key < (*t)->key) return tree_member(&(*t)->left, key);
  return tree_member(&(*t)->right, key);
}

// Insertion, recursive; a fresh 24-byte node buffer is supplied by the
// caller (the examples use the allocator of alloc.c, as in the paper).
[[rc::parameters("s: {gmultiset nat}", "x: nat", "p: loc")]]
[[rc::args("p @ &own<s @ tree_t>", "&own<uninit<24>>", "x @ int<size_t>")]]
[[rc::ensures("own p : {{[x]} ⊎ s} @ tree_t")]]
[[rc::tactics("multiset_solver")]]
void tree_insert(tree_t* t, void* buf, size_t key) {
  if (*t == NULL) {
    tree_t n = buf;
    n->key = key;
    n->left = NULL;
    n->right = NULL;
    *t = n;
    return;
  }
  if (key <= (*t)->key) {
    tree_insert(&(*t)->left, buf, key);
    return;
  }
  tree_insert(&(*t)->right, buf, key);
}
