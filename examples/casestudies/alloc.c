// Figure 1 of the paper: a simple memory allocator.  The RefinedC type
// mem_t captures the invariant that `len` is the length of the owned
// block pointed to by `buffer`.

struct [[rc::refined_by("a: nat")]] mem_t {
  [[rc::field("a @ int<size_t>")]] size_t len;
  [[rc::field("&own<uninit<a>>")]] unsigned char* buffer;
};

[[rc::parameters("a: nat", "n: nat", "p: loc")]]
[[rc::args("p @ &own<a @ mem_t>", "n @ int<size_t>")]]
[[rc::returns("{n <= a} @ optional<&own<uninit<n>>, null>")]]
[[rc::ensures("own p : {n <= a ? a - n : a} @ mem_t")]]
void* alloc(struct mem_t* d, size_t sz) {
  if (sz > d->len) return NULL;
  d->len -= sz;
  return d->buffer + d->len;
}
