// Binary search tree, layered verification (Figure 7, class #3).  The
// specification goes through an intermediate *functional layer*: the C
// functions are specified against the abstract operations fmember and
// finsert of a functional model, and separate manual lemmas (the layer
// refinement) relate the model to the final multiset specification.
// Compared with bst_direct.c this needs noticeably more manual pure
// reasoning — the paper's observation about the layered style (§7 #3).

typedef struct
[[rc::refined_by("s: {gmultiset nat}")]]
[[rc::ptr_type("ltree_t: {s != ∅} @ optional<&own<...>, null>")]]
[[rc::exists("k: nat", "l: {gmultiset nat}", "r: {gmultiset nat}")]]
[[rc::constraints("{s = {[k]} ⊎ l ⊎ r}",
                  "{∀ j, j ∈ l → j ≤ k}",
                  "{∀ j, j ∈ r → k ≤ j}")]]
ltnode {
  [[rc::field("k @ int<size_t>")]] size_t key;
  [[rc::field("l @ ltree_t")]] struct ltnode* left;
  [[rc::field("r @ ltree_t")]] struct ltnode* right;
}* ltree_t;

// Specified against the functional layer: the result is the model's
// fmember, and the layer lemma fmember_def carries it to the multiset.
[[rc::parameters("s: {gmultiset nat}", "x: nat", "p: loc")]]
[[rc::args("p @ &own<s @ ltree_t>", "x @ int<size_t>")]]
[[rc::returns("{fmember(s, x)} @ bool<int>")]]
[[rc::ensures("own p : s @ ltree_t")]]
[[rc::tactics("multiset_solver")]]
[[rc::lemmas("fmember_def", "layer_member_left", "layer_member_right")]]
int ltree_member(ltree_t* t, size_t key) {
  if (*t == NULL) return 0;
  if (key == (*t)->key) return 1;
  if (key < (*t)->key) return ltree_member(&(*t)->left, key);
  return ltree_member(&(*t)->right, key);
}

[[rc::parameters("s: {gmultiset nat}", "x: nat", "p: loc")]]
[[rc::args("p @ &own<s @ ltree_t>", "&own<uninit<24>>", "x @ int<size_t>")]]
[[rc::ensures("own p : {finsert(s, x)} @ ltree_t")]]
[[rc::tactics("multiset_solver")]]
[[rc::lemmas("finsert_def")]]
void ltree_insert(ltree_t* t, void* buf, size_t key) {
  if (*t == NULL) {
    ltree_t n = buf;
    n->key = key;
    n->left = NULL;
    n->right = NULL;
    *t = n;
    return;
  }
  if (key <= (*t)->key) {
    ltree_insert(&(*t)->left, buf, key);
    return;
  }
  ltree_insert(&(*t)->right, buf, key);
}
