// Memory pool modelled on Hafnium's mpool (Figure 7, class #5).  The pool
// hands out fixed-size 64-byte entries kept in an intrusive free list of
// full-entry nodes (rc::size/padded), protected by a spinlock whose
// atomic boolean owns the pool state while unlocked — combining the
// techniques of the earlier case studies, as the paper notes for its
// largest example.  (The paper also had to adapt the original code: its
// integer-pointer casts are unsupported by Caesium; same here.)

typedef struct
[[rc::refined_by("n: nat")]]
[[rc::ptr_type("entries_t: {n != 0} @ optional<&own<...>, null>")]]
[[rc::size("64")]]
entry {
  [[rc::field("{n - 1} @ entries_t")]] struct entry* next;
}* entries_t;

struct
[[rc::refined_by()]]
[[rc::exists("n: nat")]]
mpool_state {
  [[rc::field("n @ entries_t")]] struct entry* entries;
};

struct [[rc::refined_by()]] mpool_lock {
  [[rc::field("atomicbool<int; ; own MPOOL + 8 : mpool_state>")]] _Atomic int word;
};

struct mpool {
  struct mpool_lock lock;
  struct mpool_state state;
};

[[rc::global("mpool_lock")]]
struct mpool MPOOL;

// Allocate one 64-byte entry (NULL when the pool is exhausted).
[[rc::exists("b: bool")]]
[[rc::returns("b @ optional<&own<uninit<64>>, null>")]]
void* mpool_alloc(void) {
  int expected = 0;
  [[rc::inv_vars("expected: {0} @ int<int>")]]
  while (!atomic_compare_exchange_strong(&MPOOL.lock.word, &expected, 1)) {
    expected = 0;
  }
  void* res = NULL;
  if (MPOOL.state.entries != NULL) {
    entries_t e = MPOOL.state.entries;
    MPOOL.state.entries = e->next;
    res = e;
  }
  atomic_store(&MPOOL.lock.word, 0);
  return res;
}

// Return one 64-byte entry to the pool.
[[rc::args("&own<uninit<64>>")]]
void mpool_free(void* ptr) {
  entries_t e = ptr;
  int expected = 0;
  [[rc::inv_vars("expected: {0} @ int<int>")]]
  while (!atomic_compare_exchange_strong(&MPOOL.lock.word, &expected, 1)) {
    expected = 0;
  }
  e->next = MPOOL.state.entries;
  MPOOL.state.entries = e;
  atomic_store(&MPOOL.lock.word, 0);
}

// Seed the pool from a fresh 64-byte chunk (a simplified mpool_add_chunk:
// one entry per call, as the entry carving loop in Hafnium would do).
[[rc::args("&own<uninit<64>>")]]
void mpool_add_chunk(void* begin) {
  mpool_free(begin);
}
