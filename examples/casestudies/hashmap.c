// Hashmap with linear probing (Figure 7, class #4).  The map is two
// fixed-capacity arrays (keys and values; key 0 marks an empty slot).
// "Verifying linear probing is non-trivial since all keys share the same
// array" (§7): the specification goes through the functional probing
// model hm_probe/hm_slot, and the facts about it — where probing stops,
// that it stays in bounds, that an insertion preserves the table
// invariant — are manual lemmas, the analogue of the paper's 265 lines
// of pure Coq reasoning for this example.

struct
[[rc::refined_by("ks: {list Z}", "vs: {list Z}")]]
[[rc::constraints("{hm_ok(ks)}", "{len(ks) = 16}", "{len(vs) = 16}")]]
hmap {
  [[rc::field("ks @ array<size_t, 16>")]] size_t keys[16];
  [[rc::field("vs @ array<size_t, 16>")]] size_t vals[16];
};

// Find the slot for a key: probe linearly from its hash bucket.
[[rc::parameters("ks: {list Z}", "vs: {list Z}", "k: nat", "p: loc")]]
[[rc::args("p @ &own<(ks, vs) @ hmap>", "k @ int<size_t>")]]
[[rc::requires("{k != 0}")]]
[[rc::returns("{hm_slot(ks, k)} @ int<size_t>")]]
[[rc::ensures("own p : (ks, vs) @ hmap")]]
[[rc::lemmas("hm_slot_def", "hm_probe_step", "hm_probe_hit",
             "hm_probe_empty", "hm_slot_bounds_lo", "hm_slot_bounds_hi")]]
size_t hm_find(struct hmap* h, size_t key) {
  size_t i = key % 16;
  [[rc::exists("j: nat")]]
  [[rc::inv_vars("i: j @ int<size_t>")]]
  [[rc::constraints("{j < 16}", "{hm_slot(ks, k) = hm_probe(ks, k, j)}")]]
  while (h->keys[i] != key && h->keys[i] != 0) {
    i = (i + 1) % 16;
  }
  return i;
}

// Lookup: the value in the probed slot if the key is present, else 0.
[[rc::parameters("ks: {list Z}", "vs: {list Z}", "k: nat", "p: loc")]]
[[rc::args("p @ &own<(ks, vs) @ hmap>", "k @ int<size_t>")]]
[[rc::requires("{k != 0}")]]
[[rc::returns("{index(ks, hm_slot(ks, k)) = k ? index(vs, hm_slot(ks, k)) : 0} @ int<size_t>")]]
[[rc::ensures("own p : (ks, vs) @ hmap")]]
[[rc::lemmas("hm_slot_bounds_lo", "hm_slot_bounds_hi")]]
size_t hm_get(struct hmap* h, size_t key) {
  size_t i = hm_find(h, key);
  if (h->keys[i] == key) {
    return h->vals[i];
  }
  return 0;
}

// Insertion: write the key into its probe slot and store the value.
[[rc::parameters("ks: {list Z}", "vs: {list Z}", "k: nat", "v: nat",
                 "p: loc")]]
[[rc::args("p @ &own<(ks, vs) @ hmap>", "k @ int<size_t>",
           "v @ int<size_t>")]]
[[rc::requires("{k != 0}", "{hm_has_room(ks)}")]]
[[rc::ensures("own p : ({store(ks, hm_slot(ks, k), k)}, {store(vs, hm_slot(ks, k), v)}) @ hmap")]]
[[rc::lemmas("hm_store_key_ok", "hm_slot_bounds_lo", "hm_slot_bounds_hi")]]
void hm_put(struct hmap* h, size_t key, size_t val) {
  size_t i = hm_find(h, key);
  h->keys[i] = key;
  h->vals[i] = val;
}
