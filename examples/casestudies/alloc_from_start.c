// The variant of Figure 1 discussed in Section 6 of the paper (suggested
// by a PLDI reviewer): allocate from the beginning of the buffer instead
// of the end.  It verifies against the same specification with no changes
// to the typing rules: O-ADD-UNINIT covers both ways of splitting the
// uninitialised block.

struct [[rc::refined_by("a: nat")]] mem_t {
  [[rc::field("a @ int<size_t>")]] size_t len;
  [[rc::field("&own<uninit<a>>")]] unsigned char* buffer;
};

[[rc::parameters("a: nat", "n: nat", "p: loc")]]
[[rc::args("p @ &own<a @ mem_t>", "n @ int<size_t>")]]
[[rc::returns("{n <= a} @ optional<&own<uninit<n>>, null>")]]
[[rc::ensures("own p : {n <= a ? a - n : a} @ mem_t")]]
void* alloc(struct mem_t* d, size_t sz) {
  if (sz > d->len) return NULL;
  d->len -= sz;
  unsigned char* res = d->buffer;
  d->buffer += sz;
  return res;
}
