// Thread-safe allocator (Figure 7, class #2).  The allocator state of
// alloc.c lives in a global variable protected by a spinlock, as
// described at the end of Section 2.1 of the paper.  The lock's atomic
// boolean owns the allocator state while the lock is free; CAS-BOOL
// transfers it to the acquiring thread and the releasing store gives it
// back.  The state type hides the current number of available bytes
// behind a type-level existential, so the lock invariant is stable.

struct
[[rc::refined_by()]]
[[rc::exists("a: nat")]]
mem_state {
  [[rc::field("a @ int<size_t>")]] size_t len;
  [[rc::field("&own<uninit<a>>")]] unsigned char* buffer;
};

// Only the lock word is governed by the (shared) global invariant; the
// protected bytes behind it belong to whoever holds the lock.
struct [[rc::refined_by()]] ts_lock {
  [[rc::field("atomicbool<int; ; own POOL + 8 : mem_state>")]] _Atomic int word;
};

struct ts_alloc {
  struct ts_lock lock;
  struct mem_state state;
};

[[rc::global("ts_lock")]]
struct ts_alloc POOL;

[[rc::parameters("n: nat")]]
[[rc::args("n @ int<size_t>")]]
[[rc::exists("b: bool")]]
[[rc::returns("b @ optional<&own<uninit<n>>, null>")]]
void* ts_allocate(size_t sz) {
  int expected = 0;
  [[rc::inv_vars("expected: {0} @ int<int>")]]
  while (!atomic_compare_exchange_strong(&POOL.lock.word, &expected, 1)) {
    expected = 0;
  }
  // This thread now owns the allocator state at POOL + 8.
  unsigned char* res = NULL;
  if (sz <= POOL.state.len) {
    POOL.state.len -= sz;
    res = POOL.state.buffer + POOL.state.len;
  }
  atomic_store(&POOL.lock.word, 0);
  return res;
}

// Return sz bytes at p to the pool (a simplified free: memory handed
// back becomes the new buffer when the pool is empty).
[[rc::parameters("n: nat", "q: loc")]]
[[rc::args("q @ &own<uninit<n>>", "n @ int<size_t>")]]
void ts_give_back(unsigned char* p, size_t sz) {
  int expected = 0;
  [[rc::inv_vars("expected: {0} @ int<int>")]]
  while (!atomic_compare_exchange_strong(&POOL.lock.word, &expected, 1)) {
    expected = 0;
  }
  if (POOL.state.len == 0) {
    POOL.state.len = sz;
    POOL.state.buffer = p;
  }
  atomic_store(&POOL.lock.word, 0);
}
