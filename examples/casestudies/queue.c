// FIFO queue (Figure 7, class #1).  The queue is a linked list refined by
// the mathematical list of queued values; enqueue appends at the end,
// which exercises list-segment-style reasoning: the traversed prefix is a
// magic wand whose conclusion appends the new element.

typedef struct
[[rc::refined_by("xs: {list Z}")]]
[[rc::ptr_type("q_t: {xs != []} @ optional<&own<...>, null>")]]
[[rc::exists("x: int", "tl: {list Z}")]]
[[rc::constraints("{xs = x :: tl}")]]
qnode {
  [[rc::field("x @ int<int64_t>")]] int64_t value;
  [[rc::field("tl @ q_t")]] struct qnode* next;
}* q_t;

// Enqueue at the tail: walk to the last next-pointer, then link the new
// node there.  The invariant says: giving the cell at cp a list equal to
// cs ++ [x] completes the whole queue to xs ++ [x].
[[rc::parameters("xs: {list Z}", "p: loc", "x: int")]]
[[rc::args("p @ &own<xs @ q_t>", "&own<uninit<16>>", "x @ int<int64_t>")]]
[[rc::ensures("own p : {xs ++ [x]} @ q_t")]]
void enqueue(q_t* q, void* buf, int64_t value) {
  q_t* cur = q;
  [[rc::exists("cp: loc", "cs: {list Z}")]]
  [[rc::inv_vars("cur: cp @ &own<cs @ q_t>")]]
  [[rc::inv_vars("q: p @ &own<wand<{own cp : {cs ++ [x]} @ q_t}, {xs ++ [x]} @ q_t>>")]]
  while (*cur != NULL) {
    cur = &(*cur)->next;
  }
  q_t n = buf;
  n->value = value;
  n->next = NULL;
  *cur = n;
}

// Dequeue from the head (same shape as the linked list's pop).
[[rc::parameters("xs: {list Z}", "p: loc")]]
[[rc::args("p @ &own<xs @ q_t>")]]
[[rc::requires("{xs != []}")]]
[[rc::exists("q: loc")]]
[[rc::returns("{head(xs)} @ int<int64_t>")]]
[[rc::ensures("own p : {tail(xs)} @ q_t", "own q : uninit<16>")]]
int64_t dequeue(q_t* q) {
  q_t n = *q;
  int64_t v = n->value;
  *q = n->next;
  return v;
}

// Emptiness test: a pure observation on the optional type.
[[rc::parameters("xs: {list Z}", "p: loc")]]
[[rc::args("p @ &own<xs @ q_t>")]]
[[rc::returns("{xs = []} @ bool<int>")]]
[[rc::ensures("own p : xs @ q_t")]]
int queue_empty(q_t* q) {
  return *q == NULL;
}
