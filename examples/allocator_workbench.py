#!/usr/bin/env python3
"""Allocator workbench: the three verified allocators of the paper driven
against each other on the same workload.

Run:  python examples/allocator_workbench.py

Exercises the Figure 1 bump allocator, the Figure 3 sorted free list, and
the page allocator on a random allocate/free trace, checking conservation
of memory throughout (every byte handed out is a byte the pool lost).
"""

import random

from repro.caesium.eval import Machine
from repro.caesium.layout import SIZE_T
from repro.caesium.values import (NULL, VInt, VPtr, decode_int, decode_ptr,
                                  encode_int, encode_ptr)
from repro.frontend import verify_file
from repro.report import casestudies_dir


def load(study):
    out = verify_file(casestudies_dir() / f"{study}.c")
    assert out.ok, out.report()
    return out


def drive_bump_allocator(rounds=20, seed=1):
    print("--- Figure 1 bump allocator ---")
    out = load("alloc")
    machine = Machine(out.typed_program.program)
    mem = machine.memory
    total = 256
    buf = mem.allocate(total)
    state = mem.allocate(16)
    mem.store(state, encode_int(total, SIZE_T))
    mem.store(state + 8, encode_ptr(buf))
    rng = random.Random(seed)
    given = 0
    for _ in range(rounds):
        want = rng.randint(1, 64)
        res = machine.call("alloc", [VPtr(state), VInt(want, SIZE_T)])
        if not res.ptr.is_null:
            given += want
        left = decode_int(mem.load(state, 8), SIZE_T).value
        assert given + left == total, "memory not conserved!"
    print(f"  handed out {given} bytes, {total - given} left — conserved")


def drive_free_list(rounds=12, seed=2):
    print("--- Figure 3 sorted free list ---")
    out = load("free_list")
    machine = Machine(out.typed_program.program)
    mem = machine.memory
    head = mem.allocate(8)
    mem.store(head, encode_ptr(NULL))
    rng = random.Random(seed)
    sizes = []
    for _ in range(rounds):
        size = rng.randint(16, 128)
        chunk = mem.allocate(size)
        machine.call("free_chunk",
                     [VPtr(head), VPtr(chunk), VInt(size, SIZE_T)])
        sizes.append(size)
    # Walk the list: it must be the sorted multiset of freed sizes.
    walked = []
    cur = decode_ptr(mem.load(head, 8)).ptr
    while not cur.is_null:
        walked.append(decode_int(mem.load(cur, 8), SIZE_T).value)
        cur = decode_ptr(mem.load(cur + 8, 8)).ptr
    assert walked == sorted(sizes)
    print(f"  freed {rounds} chunks; list is sorted: {walked}")


def drive_page_allocator(rounds=15, seed=3):
    print("--- page allocator (4096-byte pages) ---")
    out = load("page_alloc")
    machine = Machine(out.typed_program.program)
    mem = machine.memory
    pool = mem.allocate(8)
    machine.call("page_pool_init", [VPtr(pool)])
    rng = random.Random(seed)
    live = 0
    for _ in range(rounds):
        if rng.random() < 0.6:
            page = mem.allocate(4096)
            machine.call("page_free", [VPtr(pool), VPtr(page)])
            live += 1
        else:
            got = machine.call("page_alloc", [VPtr(pool)])
            if live:
                assert not got.ptr.is_null
                live -= 1
            else:
                assert got.ptr.is_null
    print(f"  pool balanced; {live} pages currently pooled")


def main():
    drive_bump_allocator()
    drive_free_list()
    drive_page_allocator()
    print()
    print("allocator_workbench OK")


if __name__ == "__main__":
    main()
