#!/usr/bin/env python3
"""Extensibility scenario: add a user-defined typing rule (§5,
"Extensibility": "when new typing rules are added, Lithium's proof search
automatically uses them").

We define a new operator rule for ``x ^ x`` on integers (xor of a value
with itself is zero) — a pattern the standard rule library does not know —
register it, and verify a function that needs it.

Run:  python examples/extend_refinedc.py
"""

from repro.frontend import verify_source
from repro.lithium.goals import Goal
from repro.pure.terms import intlit
from repro.refinedc.judgments import BinOpJ
from repro.refinedc.rules import REGISTRY
from repro.refinedc.types import IntT

SRC = r'''
[[rc::parameters("n: nat")]]
[[rc::args("n @ int<size_t>")]]
[[rc::returns("{0} @ int<size_t>")]]
size_t zero(size_t x) {
  return x ^ x;
}
'''


def main() -> None:
    print("=== 1. Without the custom rule, verification fails ===")
    before = verify_source(SRC)
    assert not before.ok
    print(before.report().splitlines()[1])

    print()
    print("=== 2. Registering O-XOR-SELF ===")

    @REGISTRY.rule("O-XOR-SELF", ("binop", "^", "int", "int"))
    def rule_xor_self(f: BinOpJ, state) -> Goal:
        """x ^ y is only typed here when both operands are the same
        mathematical value: the result is the singleton zero."""
        a = f.t1.refinement if f.t1.refinement is not None else f.v1
        b = f.t2.refinement if f.t2.refinement is not None else f.v2
        if a != b:
            state.fail("O-XOR-SELF only covers x ^ x")
        return f.cont(intlit(0), IntT(f.t1.itype, intlit(0)))

    print("  registered; Lithium will select it by its dispatch key "
          "('binop', '^', 'int', 'int')")

    print()
    print("=== 3. The same program now verifies ===")
    after = verify_source(SRC)
    print(after.report())
    assert after.ok
    print()
    print("extend_refinedc OK")


if __name__ == "__main__":
    main()
