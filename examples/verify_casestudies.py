#!/usr/bin/env python3
"""Verify every case study of the paper's evaluation (Figure 7) and print
the regenerated table.

Run:  python examples/verify_casestudies.py
"""

from repro.report import figure7_table, format_table


def main() -> None:
    rows = figure7_table()
    print(format_table(rows))
    failed = [r.study for r in rows if not r.verified]
    print()
    if failed:
        print(f"FAILED: {failed}")
        raise SystemExit(1)
    print(f"All {len(rows)} case studies verified.")


if __name__ == "__main__":
    main()
