#!/usr/bin/env python3
"""Verify every case study of the paper's evaluation (Figure 7) and print
the regenerated table.

Run:  python examples/verify_casestudies.py [--jobs N] [--cache [DIR]]
                                            [--metrics-json PATH]

``--jobs N`` verifies independent functions on a process pool; ``--cache``
makes unchanged re-runs cache hits (persisted under ``.rc-cache/`` or the
given DIR); ``--metrics-json`` dumps the aggregated per-phase metrics.
"""

import argparse
import time
from pathlib import Path


def main(argv=None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--jobs", type=int, default=1,
                    help="parallel verification workers (0 = one per CPU)")
    ap.add_argument("--cache", nargs="?", const=True, default=False,
                    metavar="DIR",
                    help="enable the result cache (optionally in DIR)")
    ap.add_argument("--metrics-json", metavar="PATH",
                    help="write aggregated driver metrics as JSON")
    args = ap.parse_args(argv)

    from repro.driver import DriverConfig, merge_metrics
    from repro.frontend import verify_files
    from repro.report import (EXTRA_STUDIES, FIGURE7_STUDIES,
                              casestudies_dir, format_table, study_report)

    cache = bool(args.cache)
    cache_dir = args.cache if isinstance(args.cache, str) else None
    base = casestudies_dir()
    paths = [base / f"{stem}.c"
             for stem, _cls in FIGURE7_STUDIES + EXTRA_STUDIES]

    t0 = time.perf_counter()
    outcomes = verify_files(paths, jobs=args.jobs, cache=cache,
                            cache_dir=cache_dir)
    elapsed = time.perf_counter() - t0
    rows = [study_report(p, outcomes[p.stem]) for p in paths]
    print(format_table(rows))

    total = merge_metrics([o.metrics for o in outcomes.values()
                           if o.metrics is not None])
    print()
    jobs = DriverConfig(jobs=args.jobs).resolved_jobs()
    print(f"jobs={jobs}  elapsed {elapsed:.2f}s  "
          f"(search {total.phases.search_s:.2f}s, "
          f"solver {total.phases.solver_s:.2f}s, "
          f"front end {total.phases.parse_s + total.phases.elaborate_s:.2f}s"
          + (f", cache {total.cache_hits} hit / {total.cache_misses} miss"
             if cache else "") + ")")
    if args.metrics_json:
        out = Path(args.metrics_json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(total.to_json())
        print(f"metrics written to {out}")

    failed = [r.study for r in rows if not r.verified]
    if failed:
        print(f"FAILED: {failed}")
        raise SystemExit(1)
    print(f"All {len(rows)} case studies verified.")


if __name__ == "__main__":
    main()
