#!/usr/bin/env python3
"""Quickstart: verify the paper's Figure 1 allocator, end to end.

Run:  python examples/quickstart.py

This walks the full RefinedC pipeline (Figure 2 of the paper):
  (A) the front end parses annotated C and elaborates it to Caesium,
  (B) Lithium executes the typing rules without backtracking,
  (C) pure side conditions go to the default solver.
It then demonstrates the paper's §2.1 error-message experiment and runs
the verified code on the Caesium interpreter.
"""

from repro.frontend import verify_source

ALLOC_C = r'''
// Figure 1 of the paper, verbatim modulo ASCII operators.
struct [[rc::refined_by("a: nat")]] mem_t {
  [[rc::field("a @ int<size_t>")]] size_t len;
  [[rc::field("&own<uninit<a>>")]] unsigned char* buffer;
};

[[rc::parameters("a: nat", "n: nat", "p: loc")]]
[[rc::args("p @ &own<a @ mem_t>", "n @ int<size_t>")]]
[[rc::returns("{n <= a} @ optional<&own<uninit<n>>, null>")]]
[[rc::ensures("own p : {n <= a ? a - n : a} @ mem_t")]]
void* alloc(struct mem_t* d, size_t sz) {
  if (sz > d->len) return NULL;
  d->len -= sz;
  return d->buffer + d->len;
}
'''


def main() -> None:
    print("=== 1. Verifying Figure 1's alloc ===")
    outcome = verify_source(ALLOC_C)
    print(outcome.report())
    assert outcome.ok

    print()
    print("=== 2. The §2.1 experiment: an off-by-one in the spec ===")
    bad = ALLOC_C.replace("{n <= a} @ optional", "{n < a} @ optional")
    bad_outcome = verify_source(bad)
    assert not bad_outcome.ok
    print(bad_outcome.report())

    print()
    print("=== 3. Running the verified allocator on Caesium ===")
    from repro.caesium.eval import Machine
    from repro.caesium.layout import SIZE_T
    from repro.caesium.values import (VInt, VPtr, decode_int, encode_int,
                                      encode_ptr)

    machine = Machine(outcome.typed_program.program)
    mem = machine.memory
    buf = mem.allocate(64)
    state = mem.allocate(16)
    mem.store(state, encode_int(64, SIZE_T))
    mem.store(state + 8, encode_ptr(buf))
    for request in (16, 32, 40):
        result = machine.call("alloc", [VPtr(state), VInt(request, SIZE_T)])
        remaining = decode_int(mem.load(state, 8), SIZE_T).value
        status = "NULL" if result.ptr.is_null else f"{result.ptr!r}"
        print(f"  alloc({request}) -> {status:<14} remaining = {remaining}")

    print()
    print("quickstart OK")


if __name__ == "__main__":
    main()
