#!/usr/bin/env python3
"""Concurrency scenario: a verified spinlock protecting a shared counter.

Run:  python examples/concurrent_counter.py

Three things happen here:

1. the spinlock's acquire/release are *verified* — CAS-BOOL (Figure 6 of
   the paper) moves the lock token in and out of the atomic boolean's
   invariant;
2. the verified code is executed by several threads under randomised
   interleavings, with Caesium's data-race detection armed (races are
   undefined behaviour, §3) — mutual exclusion means no race and no lost
   update;
3. the same client *without* the lock is shown to be flagged as racy.
"""

from repro.caesium.concurrency import Scheduler
from repro.caesium.layout import INT, SIZE_T
from repro.caesium.values import (UndefinedBehavior, VInt, VPtr, decode_int,
                                  encode_int)
from repro.frontend import verify_source
from repro.proofs.adequacy import _SPINLOCK_CLIENT


def main() -> None:
    print("=== 1. Verifying spin_lock / spin_unlock ===")
    outcome = verify_source(_SPINLOCK_CLIENT)
    print(outcome.report())
    assert outcome.result.functions["spin_lock"].ok
    assert outcome.result.functions["spin_unlock"].ok

    print()
    print("=== 2. Executing 3 threads x 5 increments, 10 interleavings ===")
    for seed in range(10):
        sched = Scheduler(outcome.typed_program.program, seed=seed)
        mem = sched.memory
        lock = mem.allocate(4)
        mem.store(lock, encode_int(0, INT))
        counter = mem.allocate(8)
        mem.store(counter, encode_int(0, SIZE_T))
        for _ in range(3):
            sched.spawn("worker",
                        [VPtr(lock), VPtr(counter), VInt(5, SIZE_T)])
        sched.run()
        final = decode_int(mem.load(counter, 8), SIZE_T).value
        assert final == 15, f"lost updates: {final}"
        print(f"  seed {seed}: counter = {final}, no data race")

    print()
    print("=== 3. The unlocked client races (detected as UB) ===")
    racy_src = _SPINLOCK_CLIENT.replace("    spin_lock(l);\n", "") \
                               .replace("    spin_unlock(l);\n", "")
    tp = verify_source(racy_src).typed_program
    detected = 0
    for seed in range(10):
        sched = Scheduler(tp.program, seed=seed)
        mem = sched.memory
        lock = mem.allocate(4)
        mem.store(lock, encode_int(0, INT))
        counter = mem.allocate(8)
        mem.store(counter, encode_int(0, SIZE_T))
        for _ in range(2):
            sched.spawn("worker",
                        [VPtr(lock), VPtr(counter), VInt(3, SIZE_T)])
        try:
            sched.run()
        except UndefinedBehavior as exc:
            detected += 1
    print(f"  data race detected in {detected}/10 interleavings")
    assert detected > 0
    print()
    print("concurrent_counter OK")


if __name__ == "__main__":
    main()
