"""Concrete syntax tree for the C subset accepted by the front end."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..caesium.layout import IntType


# ---------------------------------------------------------------------
# C types.
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class CType:
    pass


@dataclass(frozen=True)
class CInt(CType):
    itype: IntType

    def __repr__(self) -> str:
        return self.itype.name


@dataclass(frozen=True)
class CPtr(CType):
    inner: CType

    def __repr__(self) -> str:
        return f"{self.inner!r}*"


@dataclass(frozen=True)
class CStruct(CType):
    name: str
    is_union: bool = False

    def __repr__(self) -> str:
        return f"{'union' if self.is_union else 'struct'} {self.name}"


@dataclass(frozen=True)
class CVoid(CType):
    def __repr__(self) -> str:
        return "void"


@dataclass(frozen=True)
class CFnPtr(CType):
    """A function-pointer type introduced by a typedef; parameter/return
    C types are tracked for call elaboration."""

    name: str
    ret: CType
    params: tuple[CType, ...]

    def __repr__(self) -> str:
        return f"fnptr {self.name}"


@dataclass(frozen=True)
class CArray(CType):
    elem: CType
    count: int

    def __repr__(self) -> str:
        return f"{self.elem!r}[{self.count}]"


# ---------------------------------------------------------------------
# Expressions.
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Ident(Expr):
    name: str


@dataclass(frozen=True)
class Num(Expr):
    value: int


@dataclass(frozen=True)
class NullLit(Expr):
    pass


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool


@dataclass(frozen=True)
class SizeofType(Expr):
    ctype: CType


@dataclass(frozen=True)
class Unary(Expr):
    op: str          # "-", "!", "~", "*", "&"
    e: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str
    l: Expr
    r: Expr


@dataclass(frozen=True)
class Member(Expr):
    e: Expr
    name: str
    arrow: bool      # True for "->", False for "."


@dataclass(frozen=True)
class Index(Expr):
    e: Expr
    i: Expr


@dataclass(frozen=True)
class Call(Expr):
    fn: Expr
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class CastExpr(Expr):
    ctype: CType
    e: Expr


# ---------------------------------------------------------------------
# Statements.
# ---------------------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class SDecl(Stmt):
    ctype: CType = None
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class SExpr(Stmt):
    e: Expr = None


@dataclass
class SAssign(Stmt):
    lhs: Expr = None
    op: str = "="    # "=", "+=", "-=", "*=", "/=", "%="
    rhs: Expr = None


@dataclass
class SIf(Stmt):
    cond: Expr = None
    then: list[Stmt] = field(default_factory=list)
    els: list[Stmt] = field(default_factory=list)


@dataclass
class LoopAnnots:
    exists: list[str] = field(default_factory=list)
    inv_vars: list[str] = field(default_factory=list)
    constraints: list[str] = field(default_factory=list)


@dataclass
class SWhile(Stmt):
    cond: Expr = None
    body: list[Stmt] = field(default_factory=list)
    annots: LoopAnnots = field(default_factory=LoopAnnots)


@dataclass
class SSwitch(Stmt):
    scrutinee: Expr = None
    # (case values, body) in source order; fallthrough is preserved.
    cases: list = field(default_factory=list)
    default: Optional[list] = None


@dataclass
class SReturn(Stmt):
    e: Optional[Expr] = None


@dataclass
class SBreak(Stmt):
    pass


@dataclass
class SContinue(Stmt):
    pass


# ---------------------------------------------------------------------
# Top-level declarations.
# ---------------------------------------------------------------------

@dataclass
class AttrSet:
    """Raw rc:: attributes attached to a declaration."""

    items: list[tuple[str, tuple[str, ...]]] = field(default_factory=list)

    def all(self, name: str) -> list[str]:
        out: list[str] = []
        for n, args in self.items:
            if n == name:
                out.extend(args)
        return out

    def first(self, name: str) -> Optional[str]:
        vals = self.all(name)
        return vals[0] if vals else None

    def has(self, name: str) -> bool:
        return any(n == name for n, _ in self.items)

    def count_lines(self) -> int:
        return len(self.items)


@dataclass
class StructDecl:
    name: str
    fields: list[tuple[CType, str, bool]]   # (type, name, is_atomic)
    attrs: AttrSet
    field_attrs: dict[str, str]             # field -> rc::field annotation
    is_union: bool = False
    typedef_alias: Optional[str] = None     # typedef struct {...} alias;
    typedef_ptr_alias: Optional[str] = None  # typedef struct {...}* alias;
    line: int = 0


@dataclass
class FuncDef:
    name: str
    ret: CType
    params: list[tuple[CType, str]]
    body: Optional[list[Stmt]]              # None for declarations
    attrs: AttrSet
    line: int = 0


@dataclass
class GlobalDecl:
    name: str
    ctype: CType
    attrs: AttrSet
    line: int = 0


@dataclass
class TranslationUnit:
    structs: list[StructDecl] = field(default_factory=list)
    functions: list[FuncDef] = field(default_factory=list)
    globals: list[GlobalDecl] = field(default_factory=list)
