"""Elaboration of parsed C into Caesium + RefinedC specifications (front
end step (A) of Figure 2).

Responsibilities, mirroring the paper's front end:

* compute struct layouts and register the RefinedC types their annotations
  define (``rc::refined_by``/``rc::field``/``rc::ptr_type``/…);
* build :class:`~repro.refinedc.spec.FunctionSpec` values from function
  annotations;
* lower structured control flow (``if``/``while``/``for``/``break``/
  ``continue``) to the CFG, attaching loop-invariant annotations to loop
  head blocks;
* make C's implicit operations explicit: integer promotions become casts,
  pointer arithmetic is scaled by ``sizeof``, ``&&``/``||``/``!`` in
  conditions become branches (fixing the left-to-right evaluation order
  Caesium mandates, §3);
* recognise the C11 atomics (``atomic_load``/``atomic_store``/
  ``atomic_compare_exchange_strong``) and mark the accesses sequentially
  consistent.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..caesium import syntax as cae
from ..caesium.layout import (INT, SIZE_T, ArrayLayout, IntLayout, IntType,
                              Layout, PtrLayout, StructLayout)
from ..pure.solver import Lemma
from ..pure.terms import intlit
from ..refinedc.checker import GlobalSpec, TypedProgram
from ..refinedc.spec import (RawFunctionAnnotations, RawStructAnnotations,
                             SpecContext, build_function_spec,
                             define_struct_type)
from . import cst
from .parser import parse


class ElaborationError(Exception):
    pass


_ATOMIC_BUILTINS = {"atomic_load", "atomic_store",
                    "atomic_compare_exchange_strong"}


def layout_of(ctype: cst.CType, structs: dict[str, StructLayout]) -> Layout:
    if isinstance(ctype, cst.CInt):
        return IntLayout(ctype.itype)
    if isinstance(ctype, cst.CPtr):
        return PtrLayout(repr(ctype.inner))
    if isinstance(ctype, cst.CFnPtr):
        return PtrLayout(f"fn {ctype.name}")
    if isinstance(ctype, cst.CStruct):
        if ctype.name not in structs:
            raise ElaborationError(f"unknown struct {ctype.name!r}")
        return structs[ctype.name]
    if isinstance(ctype, cst.CArray):
        return ArrayLayout(layout_of(ctype.elem, structs), ctype.count)
    raise ElaborationError(f"cannot lay out type {ctype!r}")


@dataclass
class _RValue:
    expr: cae.Expr
    ctype: cst.CType


class FnElaborator:
    """Lowers one function body to a Caesium CFG."""

    def __init__(self, unit_elab: "UnitElaborator", fd: cst.FuncDef) -> None:
        self.u = unit_elab
        self.fd = fd
        self.blocks: dict[str, cae.Block] = {}
        self.label_counter = itertools.count(1)
        self.cur_label = "entry"
        self.cur_stmts: list[cae.Stmt] = []
        self.locals: list[tuple[str, Layout]] = []
        self.var_types: dict[str, cst.CType] = {}
        self.break_stack: list[str] = []
        self.continue_stack: list[str] = []
        for ptype, pname in fd.params:
            self.var_types[pname] = ptype

    # ------------------------------------------------------------
    def fresh_label(self, hint: str) -> str:
        return f"{hint}{next(self.label_counter)}"

    def emit(self, stmt: cae.Stmt) -> None:
        self.cur_stmts.append(stmt)

    def finish_block(self, term: cae.Terminator,
                     annot: Optional[cae.LoopAnnotation] = None) -> None:
        if self.cur_label in self.blocks:
            raise ElaborationError(f"duplicate block {self.cur_label}")
        self.blocks[self.cur_label] = cae.Block(self.cur_stmts, term, annot)
        self.cur_stmts = []

    def start_block(self, label: str) -> None:
        self.cur_label = label

    # ------------------------------------------------------------
    def run(self) -> cae.Function:
        assert self.fd.body is not None
        self.elab_stmts(self.fd.body)
        # Fall-through at the end of a void function returns; an
        # unreferenced trailing block (e.g. the exit of a switch whose
        # cases all return) is simply dropped.
        if self.cur_label not in self.blocks:
            if not self._label_referenced(self.cur_label):
                pass
            elif isinstance(self.fd.ret, cst.CVoid):
                self.finish_block(cae.Ret(None))
            else:
                raise ElaborationError(
                    f"{self.fd.name}: control reaches the end of a non-void "
                    f"function")
        params = [(n, layout_of(t, self.u.layouts))
                  for t, n in self.fd.params]
        ret_layout = None if isinstance(self.fd.ret, cst.CVoid) \
            else layout_of(self.fd.ret, self.u.layouts)
        return cae.Function(self.fd.name, params, ret_layout, self.locals,
                            self.blocks, "entry")

    def _label_referenced(self, label: str) -> bool:
        for block in self.blocks.values():
            term = block.term
            if isinstance(term, cae.Goto) and term.target == label:
                return True
            if isinstance(term, cae.CondGoto) and \
                    label in (term.then_target, term.else_target):
                return True
            if isinstance(term, cae.Switch) and \
                    (label == term.default
                     or any(t == label for _v, t in term.cases)):
                return True
        return label == "entry"

    # ------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------
    def elab_stmts(self, stmts: list[cst.Stmt]) -> None:
        for s in stmts:
            if self.cur_label in self.blocks:
                # Unreachable trailing code (after return/break): skip.
                return
            self.elab_stmt(s)

    def elab_stmt(self, s: cst.Stmt) -> None:
        if isinstance(s, cst.SDecl):
            self._declare_local(s)
        elif isinstance(s, cst.SAssign):
            self._assign(s)
        elif isinstance(s, cst.SExpr):
            self._expr_stmt(s)
        elif isinstance(s, cst.SIf):
            self._if(s)
        elif isinstance(s, cst.SWhile):
            self._while(s)
        elif isinstance(s, cst.SSwitch):
            self._switch(s)
        elif isinstance(s, cst.SReturn):
            self._return(s)
        elif isinstance(s, cst.SBreak):
            if not self.break_stack:
                raise ElaborationError("break outside a loop")
            self.finish_block(cae.Goto(self.break_stack[-1]))
        elif isinstance(s, cst.SContinue):
            if not self.continue_stack:
                raise ElaborationError("continue outside a loop")
            self.finish_block(cae.Goto(self.continue_stack[-1]))
        else:
            raise ElaborationError(f"unsupported statement {s!r}")

    def _declare_local(self, s: cst.SDecl) -> None:
        if s.name in self.var_types:
            raise ElaborationError(
                f"{self.fd.name}: duplicate variable {s.name!r} (all locals "
                f"are function-scoped in Caesium)")
        self.var_types[s.name] = s.ctype
        self.locals.append((s.name, layout_of(s.ctype, self.u.layouts)))
        if s.init is not None:
            rv = self.coerce(self.rvalue(s.init), s.ctype)
            self.emit(cae.Assign(cae.VarAddr(s.name), rv.expr,
                                 layout_of(s.ctype, self.u.layouts),
                                 line=s.line))

    def _assign(self, s: cst.SAssign) -> None:
        if s.op != "=":
            base_op = s.op[0]
            rhs: cst.Expr = cst.Binary(base_op, s.lhs, s.rhs)
        else:
            rhs = s.rhs
        lv, obj_type = self.lvalue(s.lhs)
        rv = self.coerce(self.rvalue(rhs), obj_type)
        self.emit(cae.Assign(lv, rv.expr,
                             layout_of(obj_type, self.u.layouts),
                             line=s.line))

    def _expr_stmt(self, s: cst.SExpr) -> None:
        e = s.e
        if isinstance(e, cst.Call) and isinstance(e.fn, cst.Ident) \
                and e.fn.name == "atomic_store":
            if len(e.args) != 2:
                raise ElaborationError("atomic_store takes 2 arguments")
            ptr = self.rvalue(e.args[0])
            if not isinstance(ptr.ctype, cst.CPtr):
                raise ElaborationError("atomic_store target is not a pointer")
            obj = ptr.ctype.inner
            val = self.coerce(self.rvalue(e.args[1]), obj)
            self.emit(cae.Assign(ptr.expr, val.expr,
                                 layout_of(obj, self.u.layouts),
                                 atomic=True, line=s.line))
            return
        rv = self.rvalue(e)
        self.emit(cae.ExprS(rv.expr, line=s.line))

    def _if(self, s: cst.SIf) -> None:
        if isinstance(s.cond, cst.BoolLit) and s.cond.value and not s.els:
            # Desugared block ({ ... } or for-wrapper): inline directly.
            self.elab_stmts(s.then)
            return
        then_l = self.fresh_label("then")
        else_l = self.fresh_label("else")
        join_l = self.fresh_label("join")
        self.cond_branch(s.cond, then_l, else_l, s.line)
        self.start_block(then_l)
        self.elab_stmts(s.then)
        if self.cur_label not in self.blocks:
            self.finish_block(cae.Goto(join_l))
        self.start_block(else_l)
        self.elab_stmts(s.els)
        if self.cur_label not in self.blocks:
            self.finish_block(cae.Goto(join_l))
        self.start_block(join_l)

    def _while(self, s: cst.SWhile) -> None:
        head_l = self.fresh_label("loop_head")
        body_l = self.fresh_label("loop_body")
        exit_l = self.fresh_label("loop_exit")
        self.finish_block(cae.Goto(head_l))
        annot = None
        if s.annots.exists or s.annots.inv_vars or s.annots.constraints \
                or True:
            # Every while loop gets an (possibly empty) invariant
            # annotation: loops without resources to track still need a
            # head block so checking terminates.
            annot = cae.LoopAnnotation(
                exists=[self._split_binder(b) for b in s.annots.exists],
                inv_vars=[self._split_inv(v) for v in s.annots.inv_vars],
                constraints=list(s.annots.constraints))
        self.start_block(head_l)
        # The head must contain only the condition: emit it as the block's
        # terminator (statements before the condition would run on every
        # iteration, which is what we want — they are part of the head).
        self.break_stack.append(exit_l)
        self.continue_stack.append(head_l)
        self.cond_branch(s.cond, body_l, exit_l, s.line, annot=annot)
        self.start_block(body_l)
        self.elab_stmts(s.body)
        if self.cur_label not in self.blocks:
            self.finish_block(cae.Goto(head_l))
        self.break_stack.pop()
        self.continue_stack.pop()
        self.start_block(exit_l)

    def _switch(self, s: cst.SSwitch) -> None:
        """Lower a switch to Caesium's unstructured Switch terminator.
        Case bodies fall through to the next case block; break exits."""
        scrut = self.rvalue(s.scrutinee)
        exit_l = self.fresh_label("switch_exit")
        case_labels = [self.fresh_label(f"case") for _ in s.cases]
        default_l = self.fresh_label("switch_default") \
            if s.default is not None else exit_l
        table = []
        for (values, _body), label in zip(s.cases, case_labels):
            for v in values:
                table.append((v, label))
        self.finish_block(cae.Switch(scrut.expr, tuple(table), default_l))
        self.break_stack.append(exit_l)
        order = list(zip(case_labels, [b for _v, b in s.cases]))
        if s.default is not None:
            order.append((default_l, s.default))
        for i, (label, body) in enumerate(order):
            self.start_block(label)
            self.elab_stmts(body)
            if self.cur_label not in self.blocks:
                # Fallthrough to the next case (or exit after the last).
                target = order[i + 1][0] if i + 1 < len(order) else exit_l
                self.finish_block(cae.Goto(target))
        self.break_stack.pop()
        self.start_block(exit_l)

    @staticmethod
    def _split_binder(text: str) -> tuple[str, str]:
        name, _, sort = text.partition(":")
        return name.strip(), sort.strip()

    @staticmethod
    def _split_inv(text: str) -> tuple[str, str]:
        name, sep, ty = text.partition(":")
        if not sep:
            raise ElaborationError(f"bad rc::inv_vars entry {text!r}")
        return name.strip(), ty.strip()

    def _return(self, s: cst.SReturn) -> None:
        if s.e is None:
            self.finish_block(cae.Ret(None, line=s.line))
            return
        rv = self.coerce(self.rvalue(s.e), self.fd.ret)
        self.finish_block(cae.Ret(rv.expr, line=s.line))

    # ------------------------------------------------------------
    # Conditions (short-circuiting lowered to branches).
    # ------------------------------------------------------------
    def cond_branch(self, cond: cst.Expr, then_l: str, else_l: str,
                    line: int,
                    annot: Optional[cae.LoopAnnotation] = None) -> None:
        if isinstance(cond, cst.Unary) and cond.op == "!":
            self.cond_branch(cond.e, else_l, then_l, line, annot)
            return
        if isinstance(cond, cst.Binary) and cond.op == "&&":
            mid = self.fresh_label("and")
            self.cond_branch(cond.l, mid, else_l, line, annot)
            self.start_block(mid)
            self.cond_branch(cond.r, then_l, else_l, line)
            return
        if isinstance(cond, cst.Binary) and cond.op == "||":
            mid = self.fresh_label("or")
            self.cond_branch(cond.l, then_l, mid, line, annot)
            self.start_block(mid)
            self.cond_branch(cond.r, then_l, else_l, line)
            return
        rv = self.rvalue(cond)
        self.finish_block(cae.CondGoto(rv.expr, then_l, else_l, line=line),
                          annot=annot)

    # ------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------
    def lvalue(self, e: cst.Expr) -> tuple[cae.Expr, cst.CType]:
        """Elaborate to a location expression + the object's C type."""
        if isinstance(e, cst.Ident):
            if e.name in self.var_types:
                return cae.VarAddr(e.name), self.var_types[e.name]
            if e.name in self.u.global_types:
                return cae.GlobalAddr(e.name), self.u.global_types[e.name]
            raise ElaborationError(f"unknown variable {e.name!r}")
        if isinstance(e, cst.Unary) and e.op == "*":
            rv = self.rvalue(e.e)
            if not isinstance(rv.ctype, cst.CPtr):
                raise ElaborationError(f"dereference of non-pointer {e!r}")
            return rv.expr, rv.ctype.inner
        if isinstance(e, cst.Member):
            if e.arrow:
                base = self.rvalue(e.e)
                if not isinstance(base.ctype, cst.CPtr) or \
                        not isinstance(base.ctype.inner, cst.CStruct):
                    raise ElaborationError(f"-> on non-struct-pointer {e!r}")
                sname = base.ctype.inner.name
                base_expr = base.expr
            else:
                base_expr, obj = self.lvalue(e.e)
                if not isinstance(obj, cst.CStruct):
                    raise ElaborationError(f". on non-struct {e!r}")
                sname = obj.name
            layout = self.u.layouts[sname]
            ftype = self.u.field_type(sname, e.name)
            return cae.FieldOffset(base_expr, layout, e.name), ftype
        if isinstance(e, cst.Index):
            base = self.rvalue(e.e)
            if isinstance(base.ctype, cst.CPtr):
                elem = base.ctype.inner
            else:
                raise ElaborationError(f"indexing non-pointer {e!r}")
            idx = self.rvalue(e.i)
            scaled = self._scale_index(idx, elem)
            return cae.BinOpE("ptr_offset", base.expr, scaled), elem
        raise ElaborationError(f"not an lvalue: {e!r}")

    def _scale_index(self, idx: _RValue, elem: cst.CType) -> cae.Expr:
        size = layout_of(elem, self.u.layouts).size
        idx = self.coerce(idx, cst.CInt(SIZE_T))
        if size == 1:
            return idx.expr
        return cae.BinOpE("*", idx.expr, cae.IntConst(size, SIZE_T))

    def rvalue(self, e: cst.Expr) -> _RValue:
        if isinstance(e, cst.Num):
            return _RValue(cae.IntConst(e.value, INT), cst.CInt(INT))
        if isinstance(e, cst.BoolLit):
            return _RValue(cae.IntConst(1 if e.value else 0, INT),
                           cst.CInt(INT))
        if isinstance(e, cst.NullLit):
            return _RValue(cae.NullE(), cst.CPtr(cst.CVoid()))
        if isinstance(e, cst.SizeofType):
            layout = layout_of(e.ctype, self.u.layouts)
            return _RValue(cae.SizeOfE(layout, SIZE_T), cst.CInt(SIZE_T))
        if isinstance(e, cst.Ident) and e.name in self.u.fn_types \
                and e.name not in self.var_types:
            ret, params = self.u.fn_types[e.name]
            return _RValue(cae.FnPtrE(e.name),
                           cst.CFnPtr(e.name, ret, params))
        if isinstance(e, cst.Unary) and e.op == "&":
            lv, obj = self.lvalue(e.e)
            return _RValue(lv, cst.CPtr(obj))
        if isinstance(e, cst.Unary):
            if e.op == "*":
                lv, obj = self.lvalue(e)
                return _RValue(cae.Use(lv, layout_of(obj, self.u.layouts)),
                               obj)
            inner = self.rvalue(e.e)
            return _RValue(cae.UnOpE(e.op, inner.expr),
                           cst.CInt(INT) if e.op == "!" else inner.ctype)
        if isinstance(e, (cst.Ident, cst.Member, cst.Index)):
            lv, obj = self.lvalue(e)
            if isinstance(obj, cst.CArray):
                # Arrays decay to pointers to their first element.
                return _RValue(lv, cst.CPtr(obj.elem))
            return _RValue(cae.Use(lv, layout_of(obj, self.u.layouts)), obj)
        if isinstance(e, cst.Binary):
            return self._binary(e)
        if isinstance(e, cst.CastExpr):
            inner = self.rvalue(e.e)
            return self.coerce(inner, e.ctype, explicit=True)
        if isinstance(e, cst.Call):
            return self._call(e)
        raise ElaborationError(f"unsupported expression {e!r}")

    def _binary(self, e: cst.Binary) -> _RValue:
        lhs = self.rvalue(e.l)
        rhs = self.rvalue(e.r)
        # Pointer arithmetic: scale by the pointee size.
        if isinstance(lhs.ctype, cst.CPtr) and e.op in ("+", "-") \
                and isinstance(rhs.ctype, cst.CInt):
            scaled = self._scale_index(rhs, lhs.ctype.inner)
            if e.op == "-":
                scaled = cae.UnOpE("-", scaled)
            return _RValue(cae.BinOpE("ptr_offset", lhs.expr, scaled),
                           lhs.ctype)
        if isinstance(lhs.ctype, (cst.CPtr, cst.CFnPtr)) or \
                isinstance(rhs.ctype, (cst.CPtr, cst.CFnPtr)):
            # Pointer comparison.
            return _RValue(cae.BinOpE(e.op, lhs.expr, rhs.expr),
                           cst.CInt(INT))
        lhs, rhs = self._usual_conversions(lhs, rhs)
        result = lhs.ctype if e.op not in ("==", "!=", "<", "<=", ">", ">=",
                                           "&&", "||") else cst.CInt(INT)
        return _RValue(cae.BinOpE(e.op, lhs.expr, rhs.expr), result)

    def _usual_conversions(self, a: _RValue, b: _RValue
                           ) -> tuple[_RValue, _RValue]:
        if not (isinstance(a.ctype, cst.CInt) and isinstance(b.ctype,
                                                             cst.CInt)):
            raise ElaborationError(
                f"operands are not integers: {a.ctype!r} vs {b.ctype!r}")
        ta, tb = a.ctype.itype, b.ctype.itype
        if ta == tb:
            return a, b
        # Literals take the other operand's type directly (no cast, so no
        # spurious range side conditions).
        if isinstance(a.expr, cae.IntConst):
            return self.coerce(a, b.ctype), b
        if isinstance(b.expr, cae.IntConst):
            return a, self.coerce(b, a.ctype)
        common = self._common_type(ta, tb)
        return (self.coerce(a, cst.CInt(common)),
                self.coerce(b, cst.CInt(common)))

    @staticmethod
    def _common_type(ta: IntType, tb: IntType) -> IntType:
        if ta.size != tb.size:
            return ta if ta.size > tb.size else tb
        return ta if not ta.signed else tb

    def coerce(self, rv: _RValue, want: cst.CType,
               explicit: bool = False) -> _RValue:
        """Convert ``rv`` to the C type ``want`` (inserting casts)."""
        if isinstance(want, cst.CInt) and isinstance(rv.ctype, cst.CInt):
            if rv.ctype.itype == want.itype:
                return rv
            if isinstance(rv.expr, cae.IntConst):
                if not want.itype.in_range(rv.expr.n):
                    raise ElaborationError(
                        f"constant {rv.expr.n} out of range for "
                        f"{want.itype.name}")
                return _RValue(cae.IntConst(rv.expr.n, want.itype), want)
            return _RValue(cae.CastE(rv.expr, want.itype), want)
        if isinstance(want, (cst.CPtr, cst.CFnPtr, cst.CVoid)):
            # Pointer-to-pointer conversions are representation no-ops.
            return _RValue(rv.expr, want if not isinstance(want, cst.CVoid)
                           else rv.ctype)
        if isinstance(want, cst.CStruct):
            raise ElaborationError("struct assignment is not supported "
                                   "(Caesium lacks composite copies here)")
        if explicit and isinstance(want, cst.CInt):
            return _RValue(cae.CastE(rv.expr, want.itype), want)
        raise ElaborationError(f"cannot convert {rv.ctype!r} to {want!r}")

    def _call(self, e: cst.Call) -> _RValue:
        if isinstance(e.fn, cst.Ident) and e.fn.name in _ATOMIC_BUILTINS:
            return self._atomic_builtin(e)
        fn_rv: Optional[_RValue] = None
        if isinstance(e.fn, cst.Ident) and e.fn.name in self.u.fn_types \
                and e.fn.name not in self.var_types:
            ret, params = self.u.fn_types[e.fn.name]
            fn_expr: cae.Expr = cae.FnPtrE(e.fn.name)
        else:
            fn_rv = self.rvalue(e.fn)
            if not isinstance(fn_rv.ctype, cst.CFnPtr):
                raise ElaborationError(f"call of non-function {e.fn!r}")
            ret, params = fn_rv.ctype.ret, fn_rv.ctype.params
            fn_expr = fn_rv.expr
        if len(params) != len(e.args):
            raise ElaborationError(
                f"call arity mismatch for {e.fn!r}: expected {len(params)}")
        args = []
        for want, arg in zip(params, e.args):
            args.append(self.coerce(self.rvalue(arg), want).expr)
        return _RValue(cae.CallE(fn_expr, tuple(args)), ret)

    def _atomic_builtin(self, e: cst.Call) -> _RValue:
        name = e.fn.name
        if name == "atomic_load":
            ptr = self.rvalue(e.args[0])
            if not isinstance(ptr.ctype, cst.CPtr):
                raise ElaborationError("atomic_load of non-pointer")
            obj = ptr.ctype.inner
            return _RValue(cae.Use(ptr.expr,
                                   layout_of(obj, self.u.layouts),
                                   atomic=True), obj)
        if name == "atomic_store":
            raise ElaborationError(
                "atomic_store is a statement, not an expression")
        # atomic_compare_exchange_strong(&atom, &expected, desired)
        if len(e.args) != 3:
            raise ElaborationError("CAS takes three arguments")
        atom = self.rvalue(e.args[0])
        expected = self.rvalue(e.args[1])
        if not isinstance(atom.ctype, cst.CPtr):
            raise ElaborationError("CAS target is not a pointer")
        obj = atom.ctype.inner
        desired = self.coerce(self.rvalue(e.args[2]), obj)
        return _RValue(cae.CASE(atom.expr, expected.expr, desired.expr,
                                layout_of(obj, self.u.layouts)),
                       cst.CInt(INT))


class UnitElaborator:
    """Elaborates a whole translation unit."""

    def __init__(self, lemma_table: Optional[dict[str, Lemma]] = None) -> None:
        self.ctx = SpecContext()
        self.layouts: dict[str, StructLayout] = {}
        self.struct_decls: dict[str, cst.StructDecl] = {}
        self.fn_types: dict[str, tuple[cst.CType, tuple[cst.CType, ...]]] = {}
        self.global_types: dict[str, cst.CType] = {}
        self.lemma_table = lemma_table or {}
        self._context_parts: list[str] = []
        self._struct_texts: dict[str, str] = {}
        # Uninterpreted spec functions inherit their result sorts from the
        # manual lemma statements that mention them.
        from ..pure.terms import App as _App
        for lemma in self.lemma_table.values():
            for t in (lemma.conclusion,) + lemma.hyps + lemma.triggers:
                for sub in t.subterms():
                    if isinstance(sub, _App) and sub.op.startswith("fn:"):
                        self.ctx.fn_sorts[sub.op[3:]] = sub.sort

    def field_type(self, sname: str, fname: str) -> cst.CType:
        decl = self.struct_decls[sname]
        for ftype, name, _atomic in decl.fields:
            if name == fname:
                return ftype
        raise ElaborationError(f"struct {sname} has no field {fname!r}")

    def elaborate(self, unit: cst.TranslationUnit) -> TypedProgram:
        program = cae.Program()
        tp = TypedProgram(program=program, ctx=self.ctx)
        # Global names are in scope for all annotations (e.g. a lock
        # invariant owning state at a fixed global address).
        from ..pure.terms import Sort as _Sort, var as _var
        for g in unit.globals:
            self.ctx.constants[g.name] = _var(f"g_{g.name}", _Sort.LOC)
        for decl in unit.structs:
            self._elab_struct(decl, program)
        for g in unit.globals:
            layout = layout_of(g.ctype, self.layouts)
            program.globals[g.name] = layout
            self.global_types[g.name] = g.ctype
            tp.globals[g.name] = GlobalSpec(g.name, layout,
                                            g.attrs.first("global"))
            gtext = (f"global {g.name}: {layout!r} "
                     f"@ {g.attrs.first('global')!r}")
            self._context_parts.append(gtext)
            tp.global_texts[g.name] = gtext
        # Two passes over functions: specs first (so calls & fn<> types can
        # refer to any function), then bodies.
        for fd in unit.functions:
            self.fn_types[fd.name] = (fd.ret,
                                      tuple(t for t, _ in fd.params))
        for fd in unit.functions:
            if fd.attrs.items or fd.body is not None:
                raw = self._raw_annotations(fd)
                if raw is not None:
                    spec = build_function_spec(fd.name, raw, self.ctx,
                                               self.lemma_table)
                    tp.specs[fd.name] = spec
                    # Make the spec available to fn<...> type expressions.
                    self.ctx.fn_specs[fd.name] = spec
                    # Raw spec text, for the driver's result-cache key.
                    tp.spec_texts[fd.name] = repr(raw)
        for fd in unit.functions:
            if fd.body is None:
                continue
            elab = FnElaborator(self, fd)
            program.functions[fd.name] = elab.run()
        for name, layout in self.layouts.items():
            program.structs[name] = layout
        tp.context_text = "\n".join(self._context_parts)
        tp.struct_texts.update(self._struct_texts)
        return tp

    def _elab_struct(self, decl: cst.StructDecl,
                     program: cae.Program) -> None:
        fields = tuple((name, layout_of(ftype, self.layouts))
                       for ftype, name, _a in decl.fields)
        layout = StructLayout(decl.name, fields, decl.is_union)
        self.layouts[decl.name] = layout
        self.struct_decls[decl.name] = decl
        self.ctx.structs[decl.name] = layout
        self.ctx.constants[f"sizeof(struct {decl.name})"] = \
            intlit(layout.size)
        self.ctx.constants[f"sizeof(struct_{decl.name})"] = \
            intlit(layout.size)
        if decl.typedef_alias:
            self.ctx.constants[f"sizeof({decl.typedef_alias})"] = \
                intlit(layout.size)
        raw = RawStructAnnotations(
            refined_by=decl.attrs.all("refined_by"),
            fields=dict(decl.field_attrs),
            exists=decl.attrs.all("exists"),
            constraints=decl.attrs.all("constraints"),
            size=decl.attrs.first("size"),
            typedef_name=decl.typedef_alias,
        )
        ptr_type = decl.attrs.first("ptr_type")
        if ptr_type is not None:
            tname, _, ttext = ptr_type.partition(":")
            raw.ptr_type = (tname.strip(), ttext.strip())
        define_struct_type(layout, raw, self.ctx)
        text = f"struct {decl.name}: {layout!r} annot {raw!r}"
        self._context_parts.append(text)
        self._struct_texts[decl.name] = text

    def _raw_annotations(self, fd: cst.FuncDef
                         ) -> Optional[RawFunctionAnnotations]:
        a = fd.attrs
        if not a.items:
            return None
        return RawFunctionAnnotations(
            parameters=a.all("parameters"),
            args=a.all("args"),
            requires=a.all("requires"),
            exists=a.all("exists"),
            returns=a.first("returns"),
            ensures=a.all("ensures"),
            tactics=a.all("tactics"),
            lemmas=a.all("lemmas"),
            trusted=a.has("trusted"),
        )


def elaborate_unit(unit: cst.TranslationUnit, source: str,
                   lemmas: Optional[dict[str, Lemma]] = None
                   ) -> TypedProgram:
    """Elaborate an already-parsed translation unit.  Split out of
    :func:`elaborate_source` so the verification driver can time the parse
    and elaborate phases separately."""
    tp = UnitElaborator(lemmas).elaborate(unit)
    tp.source_lines = {"total": _count_impl_lines(source)}
    return tp


def elaborate_source(source: str,
                     lemmas: Optional[dict[str, Lemma]] = None
                     ) -> TypedProgram:
    """The front-end entry point: annotated C source → TypedProgram."""
    return elaborate_unit(parse(source), source, lemmas)


def _count_impl_lines(source: str) -> int:
    """Count implementation lines the way tokei does for Figure 7: skip
    blanks, comments, and annotation-only lines."""
    count = 0
    in_block_comment = False
    for line in source.splitlines():
        stripped = line.strip()
        if in_block_comment:
            if "*/" in stripped:
                in_block_comment = False
            continue
        if not stripped or stripped.startswith("//"):
            continue
        if stripped.startswith("/*"):
            if "*/" not in stripped:
                in_block_comment = True
            continue
        if stripped.startswith("[[rc::") or stripped.startswith('"'):
            continue
        count += 1
    return count
