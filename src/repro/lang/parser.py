"""Recursive-descent parser for the annotated C subset (front end step (A)
of Figure 2, playing the role of Cerberus's C parser).

Supported forms (everything the case studies of §7 need):

* ``struct``/``union`` definitions with ``[[rc::...]]`` attributes on the
  struct and ``[[rc::field(...)]]`` on each field, including the
  ``typedef struct [[...]] name {...} alias;`` and ``...}* alias;``
  (pointer-typedef) forms of Figures 1 and 3;
* function definitions/declarations with attribute specs;
* ``typedef <ret> (*<name>)(<params>);`` function-pointer typedefs;
* statements: declarations with initialisers, (compound) assignment,
  ``if``/``else``, ``while`` (with loop-invariant attributes), ``for``
  (desugared to ``while``), ``return``, ``break``, ``continue``, calls;
* expressions: the usual C operators, ``->``/``.``/``[]``, casts,
  ``sizeof``, ``NULL``, address-of and dereference.
"""

from __future__ import annotations

from typing import Optional

from ..caesium.layout import INT_TYPES_BY_NAME
from .cst import (AttrSet, Binary, BoolLit, Call, CastExpr, CFnPtr, CInt, CPtr,
                  CStruct, CType, CVoid, Expr, FuncDef, GlobalDecl, Ident,
                  Index, LoopAnnots, Member, NullLit, Num, SAssign, SBreak,
                  SContinue, SDecl, SExpr, SIf, SizeofType, SReturn, Stmt,
                  StructDecl, SWhile, TranslationUnit, Unary)
from .lexer import Token, tokenize


class ParseError(Exception):
    pass


_INT_KEYWORDS = {
    "size_t": "size_t", "uintptr_t": "uintptr_t",
    "uint8_t": "uint8_t", "uint16_t": "uint16_t", "uint32_t": "uint32_t",
    "uint64_t": "uint64_t", "int8_t": "int8_t", "int16_t": "int16_t",
    "int32_t": "int32_t", "int64_t": "int64_t", "_Bool": "_Bool",
    "bool": "_Bool",
}


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        # typedef name -> CType
        self.typedefs: dict[str, CType] = {}
        self.struct_names: set[str] = set()

    # ------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.peek()
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise ParseError(
                f"line {tok.line}: expected {text!r}, got {tok.text!r}")
        return tok

    def at(self, text: str) -> bool:
        return self.peek().text == text

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.next()
            return True
        return False

    def error(self, msg: str) -> None:
        raise ParseError(f"line {self.peek().line}: {msg}")

    # ------------------------------------------------------------
    # Top level.
    # ------------------------------------------------------------
    def parse_unit(self) -> TranslationUnit:
        unit = TranslationUnit()
        while self.peek().kind != "eof":
            attrs = self._collect_attrs()
            if self.at("typedef"):
                self._parse_typedef(unit, attrs)
            elif self.at("struct") or self.at("union"):
                self._parse_struct_or_decl(unit, attrs)
            else:
                self._parse_function_or_global(unit, attrs)
        return unit

    def _collect_attrs(self) -> AttrSet:
        attrs = AttrSet()
        while self.peek().kind == "attr":
            tok = self.next()
            attrs.items.append((tok.attr_name, tok.attr_args))
        return attrs

    # ------------------------------------------------------------
    def _parse_typedef(self, unit: TranslationUnit, attrs: AttrSet) -> None:
        self.expect("typedef")
        if self.at("struct") or self.at("union"):
            decl = self._parse_struct_body(attrs)
            stars = 0
            while self.accept("*"):
                stars += 1
            alias = self.next()
            if alias.kind != "ident":
                self.error("expected typedef alias name")
            self.expect(";")
            if stars == 0:
                decl.typedef_alias = alias.text
                self.typedefs[alias.text] = CStruct(decl.name, decl.is_union)
            elif stars == 1:
                decl.typedef_ptr_alias = alias.text
                self.typedefs[alias.text] = CPtr(
                    CStruct(decl.name, decl.is_union))
            else:
                self.error("multi-level pointer typedefs are unsupported")
            unit.structs.append(decl)
            return
        # typedef <ret> (*<name>)(<params>);  — function pointer typedef
        ret = self._parse_type()
        if self.accept("("):
            self.expect("*")
            name = self.next()
            if name.kind != "ident":
                self.error("expected function-pointer typedef name")
            self.expect(")")
            self.expect("(")
            params: list[CType] = []
            if not self.at(")"):
                while True:
                    ptype = self._parse_type()
                    if self.peek().kind == "ident":
                        self.next()  # optional parameter name
                    params.append(ptype)
                    if not self.accept(","):
                        break
            self.expect(")")
            self.expect(";")
            self.typedefs[name.text] = CFnPtr(name.text, ret, tuple(params))
            return
        # plain typedef <type> <name>;
        name = self.next()
        if name.kind != "ident":
            self.error("expected typedef name")
        self.expect(";")
        self.typedefs[name.text] = ret

    def _parse_struct_or_decl(self, unit: TranslationUnit,
                              attrs: AttrSet) -> None:
        # Either a struct definition or a global of struct type.
        save = self.pos
        kw = self.next().text
        name_tok = self.peek()
        if name_tok.kind in ("ident", "attr") and \
                (self.peek(1).text == "{" or name_tok.kind == "attr"
                 or self.peek().text == "{"):
            self.pos = save
            decl = self._parse_struct_body(attrs)
            if self.peek().kind == "ident":
                # struct definition + global variable in one declaration
                gname = self.next().text
                self.expect(";")
                unit.structs.append(decl)
                unit.globals.append(GlobalDecl(gname, CStruct(decl.name),
                                               attrs, line=decl.line))
                return
            self.expect(";")
            unit.structs.append(decl)
            return
        self.pos = save
        self._parse_function_or_global(unit, attrs)

    def _parse_struct_body(self, attrs: AttrSet) -> StructDecl:
        kw = self.next().text  # struct | union
        is_union = kw == "union"
        # Attributes may appear between the keyword and the tag (Figure 1).
        more = self._collect_attrs()
        attrs.items.extend(more.items)
        name = ""
        if self.peek().kind == "ident":
            name = self.next().text
        more = self._collect_attrs()
        attrs.items.extend(more.items)
        line = self.peek().line
        self.expect("{")
        if not name:
            name = f"anon_struct_{line}"
        self.struct_names.add(name)
        fields: list[tuple[CType, str, bool]] = []
        field_attrs: dict[str, str] = {}
        while not self.at("}"):
            fattrs = self._collect_attrs()
            atomic = self.accept("_Atomic")
            ftype = self._parse_type()
            atomic = self.accept("_Atomic") or atomic
            fname = self.next()
            if fname.kind != "ident":
                self.error("expected field name")
            if self.accept("["):
                count_tok = self.next()
                if count_tok.kind != "number":
                    self.error("array fields need a constant size")
                self.expect("]")
                from .cst import CArray
                ftype = CArray(ftype, int(count_tok.text.rstrip("uUlL"), 0))
            self.expect(";")
            fields.append((ftype, fname.text, atomic))
            fa = fattrs.first("field")
            if fa is not None:
                field_attrs[fname.text] = fa
        self.expect("}")
        return StructDecl(name, fields, attrs, field_attrs, is_union,
                          line=line)

    def _parse_function_or_global(self, unit: TranslationUnit,
                                  attrs: AttrSet) -> None:
        while self.peek().text in ("static", "inline", "extern", "const"):
            self.next()
        ctype = self._parse_type()
        name = self.next()
        if name.kind != "ident":
            self.error(f"expected declarator name, got {name.text!r}")
        if self.at("("):
            self._parse_function(unit, attrs, ctype, name.text, name.line)
            return
        self.expect(";")
        unit.globals.append(GlobalDecl(name.text, ctype, attrs,
                                       line=name.line))

    def _parse_function(self, unit: TranslationUnit, attrs: AttrSet,
                        ret: CType, name: str, line: int) -> None:
        self.expect("(")
        params: list[tuple[CType, str]] = []
        if not self.at(")"):
            if self.at("void") and self.peek(1).text == ")":
                self.next()
            else:
                while True:
                    ptype = self._parse_type()
                    pname = self.next()
                    if pname.kind != "ident":
                        self.error("expected parameter name")
                    params.append((ptype, pname.text))
                    if not self.accept(","):
                        break
        self.expect(")")
        if self.accept(";"):
            unit.functions.append(FuncDef(name, ret, params, None, attrs,
                                          line=line))
            return
        body = self._parse_block()
        unit.functions.append(FuncDef(name, ret, params, body, attrs,
                                      line=line))

    # ------------------------------------------------------------
    # Types.
    # ------------------------------------------------------------
    def _at_type(self) -> bool:
        t = self.peek()
        if t.kind != "ident":
            return False
        return (t.text in _INT_KEYWORDS or t.text in
                ("void", "int", "char", "short", "long", "unsigned",
                 "signed", "struct", "union", "const", "_Atomic")
                or t.text in self.typedefs)

    def _parse_type(self) -> CType:
        self.accept("const")
        self.accept("_Atomic")
        tok = self.next()
        base: CType
        if tok.text in _INT_KEYWORDS:
            base = CInt(INT_TYPES_BY_NAME[_INT_KEYWORDS[tok.text]])
        elif tok.text == "void":
            base = CVoid()
        elif tok.text in ("struct", "union"):
            tag = self.next()
            if tag.kind != "ident":
                self.error("expected struct tag")
            base = CStruct(tag.text, tok.text == "union")
        elif tok.text in ("unsigned", "signed", "int", "char", "short",
                          "long"):
            base = self._parse_plain_int(tok.text)
        elif tok.text in self.typedefs:
            base = self.typedefs[tok.text]
        else:
            raise ParseError(f"line {tok.line}: unknown type {tok.text!r}")
        self.accept("const")
        while self.accept("*"):
            base = CPtr(base)
            self.accept("const")
        return base

    def _parse_plain_int(self, first: str) -> CType:
        words = [first]
        while self.peek().text in ("unsigned", "signed", "int", "char",
                                   "short", "long"):
            words.append(self.next().text)
        signed = "unsigned" not in words
        if "char" in words:
            name = "char" if signed and "signed" not in words else (
                "signed char" if signed else "unsigned char")
        elif "short" in words:
            name = "short" if signed else "unsigned short"
        elif words.count("long") >= 1:
            name = "long" if signed else "unsigned long"
        else:
            name = "int" if signed else "unsigned int"
        return CInt(INT_TYPES_BY_NAME[name])

    # ------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------
    def _parse_block(self) -> list[Stmt]:
        self.expect("{")
        stmts: list[Stmt] = []
        while not self.at("}"):
            stmts.append(self._parse_stmt())
        self.expect("}")
        return stmts

    def _parse_stmt(self) -> Stmt:
        # Loop annotations precede while/for statements.
        if self.peek().kind == "attr":
            annots = LoopAnnots()
            while self.peek().kind == "attr":
                tok = self.next()
                if tok.attr_name == "exists":
                    annots.exists.extend(tok.attr_args)
                elif tok.attr_name == "inv_vars":
                    annots.inv_vars.extend(tok.attr_args)
                elif tok.attr_name == "constraints":
                    annots.constraints.extend(tok.attr_args)
                else:
                    raise ParseError(
                        f"line {tok.line}: unexpected statement attribute "
                        f"rc::{tok.attr_name}")
            stmt = self._parse_stmt()
            if isinstance(stmt, SWhile):
                stmt.annots = annots
                return stmt
            raise ParseError("loop annotations must precede a loop")
        line = self.peek().line
        if self.at("{"):
            inner = self._parse_block()
            blk = SIf(line=line)
            blk.cond = BoolLit(True)
            blk.then = inner
            blk.els = []
            return blk
        if self.accept("if"):
            self.expect("(")
            cond = self._parse_expr()
            self.expect(")")
            then = self._parse_stmt_or_block()
            els: list[Stmt] = []
            if self.accept("else"):
                els = self._parse_stmt_or_block()
            s = SIf(line=line)
            s.cond, s.then, s.els = cond, then, els
            return s
        if self.accept("while"):
            self.expect("(")
            cond = self._parse_expr()
            self.expect(")")
            body = self._parse_stmt_or_block()
            s = SWhile(line=line)
            s.cond, s.body = cond, body
            return s
        if self.accept("for"):
            return self._parse_for(line)
        if self.accept("switch"):
            return self._parse_switch(line)
        if self.accept("return"):
            e = None if self.at(";") else self._parse_expr()
            self.expect(";")
            s = SReturn(line=line)
            s.e = e
            return s
        if self.accept("break"):
            self.expect(";")
            return SBreak(line=line)
        if self.accept("continue"):
            self.expect(";")
            return SContinue(line=line)
        if self._at_type():
            ctype = self._parse_type()
            name = self.next()
            if name.kind != "ident":
                self.error("expected variable name")
            init = None
            if self.accept("="):
                init = self._parse_expr()
            self.expect(";")
            s = SDecl(line=line)
            s.ctype, s.name, s.init = ctype, name.text, init
            return s
        # Expression or assignment statement.
        e = self._parse_expr()
        tok = self.peek()
        if tok.text in ("=", "+=", "-=", "*=", "/=", "%="):
            self.next()
            rhs = self._parse_expr()
            self.expect(";")
            s = SAssign(line=line)
            s.lhs, s.op, s.rhs = e, tok.text, rhs
            return s
        if tok.text in ("++", "--"):
            self.next()
            self.expect(";")
            s = SAssign(line=line)
            s.lhs, s.op, s.rhs = e, "+=" if tok.text == "++" else "-=", Num(1)
            return s
        self.expect(";")
        s = SExpr(line=line)
        s.e = e
        return s

    def _parse_stmt_or_block(self) -> list[Stmt]:
        if self.at("{"):
            return self._parse_block()
        return [self._parse_stmt()]

    def _parse_switch(self, line: int) -> Stmt:
        """Parse a switch statement.  Fallthrough between cases is kept
        (Caesium supports unstructured switches, §3 of the paper)."""
        self.expect("(")
        scrutinee = self._parse_expr()
        self.expect(")")
        self.expect("{")
        cases: list = []
        default = None
        while not self.at("}"):
            if self.accept("case"):
                values = []
                tok = self.next()
                if tok.kind != "number":
                    self.error("case labels must be integer literals")
                values.append(int(tok.text.rstrip("uUlL"), 0))
                self.expect(":")
                while self.accept("case"):
                    tok = self.next()
                    values.append(int(tok.text.rstrip("uUlL"), 0))
                    self.expect(":")
                body: list[Stmt] = []
                while not (self.at("case") or self.at("default")
                           or self.at("}")):
                    body.append(self._parse_stmt())
                cases.append((values, body))
            elif self.accept("default"):
                self.expect(":")
                body = []
                while not (self.at("case") or self.at("default")
                           or self.at("}")):
                    body.append(self._parse_stmt())
                default = body
            else:
                self.error("expected case/default in switch")
        self.expect("}")
        from .cst import SSwitch
        sw = SSwitch(line=line)
        sw.scrutinee, sw.cases, sw.default = scrutinee, cases, default
        return sw

    def _parse_for(self, line: int) -> Stmt:
        """Desugar ``for(init; cond; step) body`` into init + while."""
        self.expect("(")
        init: Optional[Stmt] = None
        if not self.at(";"):
            if self._at_type():
                ctype = self._parse_type()
                name = self.next().text
                self.expect("=")
                init_e = self._parse_expr()
                init = SDecl(line=line)
                init.ctype, init.name, init.init = ctype, name, init_e
            else:
                lhs = self._parse_expr()
                op = self.next().text
                rhs = self._parse_expr()
                init = SAssign(line=line)
                init.lhs, init.op, init.rhs = lhs, op, rhs
        self.expect(";")
        cond: Expr = BoolLit(True)
        if not self.at(";"):
            cond = self._parse_expr()
        self.expect(";")
        step: Optional[Stmt] = None
        if not self.at(")"):
            lhs = self._parse_expr()
            tok = self.peek()
            if tok.text in ("=", "+=", "-=", "*=", "/=", "%="):
                self.next()
                rhs = self._parse_expr()
            elif tok.text in ("++", "--"):
                self.next()
                rhs = Num(1)
                tok = Token("punct", "+=" if tok.text == "++" else "-=",
                            tok.line)
            else:
                self.error("unsupported for-step")
            step = SAssign(line=line)
            step.lhs, step.op, step.rhs = lhs, tok.text, rhs
        self.expect(")")
        body = self._parse_stmt_or_block()
        if step is not None:
            body = body + [step]
        loop = SWhile(line=line)
        loop.cond, loop.body = cond, body
        # Wrap: the init runs once before the loop.  Represent as a block
        # via a trivially-true SIf (the elaborator flattens it).
        wrapper = SIf(line=line)
        wrapper.cond = BoolLit(True)
        wrapper.then = ([init] if init is not None else []) + [loop]
        wrapper.els = []
        return wrapper

    # ------------------------------------------------------------
    # Expressions (precedence climbing).
    # ------------------------------------------------------------
    _BINARY_LEVELS = [
        ["||"], ["&&"], ["|"], ["^"], ["&"], ["==", "!="],
        ["<", "<=", ">", ">="], ["<<", ">>"], ["+", "-"], ["*", "/", "%"],
    ]

    def _parse_expr(self) -> Expr:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(self._BINARY_LEVELS):
            return self._parse_unary()
        ops = self._BINARY_LEVELS[level]
        lhs = self._parse_binary(level + 1)
        while self.peek().text in ops and self.peek().kind == "punct":
            op = self.next().text
            rhs = self._parse_binary(level + 1)
            lhs = Binary(op, lhs, rhs)
        return lhs

    def _parse_unary(self) -> Expr:
        tok = self.peek()
        if tok.text in ("-", "!", "~", "*", "&") and tok.kind == "punct":
            self.next()
            return Unary(tok.text, self._parse_unary())
        if tok.text == "(" and self._is_cast():
            self.next()
            ctype = self._parse_type()
            self.expect(")")
            return CastExpr(ctype, self._parse_unary())
        return self._parse_postfix()

    def _is_cast(self) -> bool:
        save = self.pos
        try:
            self.next()  # "("
            if not self._at_type():
                return False
            self._parse_type()
            return self.at(")")
        except ParseError:
            return False
        finally:
            self.pos = save

    def _parse_postfix(self) -> Expr:
        e = self._parse_primary()
        while True:
            if self.accept("->"):
                name = self.next().text
                e = Member(e, name, arrow=True)
            elif self.peek().text == "." and self.peek().kind == "punct":
                self.next()
                name = self.next().text
                e = Member(e, name, arrow=False)
            elif self.accept("["):
                i = self._parse_expr()
                self.expect("]")
                e = Index(e, i)
            elif self.at("(") and isinstance(e, (Ident, Member, Unary,
                                                 Index)):
                self.next()
                args: list[Expr] = []
                if not self.at(")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self.accept(","):
                            break
                self.expect(")")
                e = Call(e, tuple(args))
            else:
                return e

    def _parse_primary(self) -> Expr:
        tok = self.next()
        if tok.kind == "number":
            return Num(int(tok.text.rstrip("uUlL"), 0))
        if tok.text == "NULL":
            return NullLit()
        if tok.text in ("true", "false"):
            return BoolLit(tok.text == "true")
        if tok.text == "sizeof":
            self.expect("(")
            ctype = self._parse_type()
            self.expect(")")
            return SizeofType(ctype)
        if tok.text == "(":
            e = self._parse_expr()
            self.expect(")")
            return e
        if tok.kind == "ident":
            return Ident(tok.text)
        raise ParseError(f"line {tok.line}: unexpected token {tok.text!r}")


def parse(source: str) -> TranslationUnit:
    """Parse an annotated C source file."""
    return Parser(tokenize(source)).parse_unit()
