"""Lexer for the C subset accepted by the RefinedC front end (§3).

Handles C2x attribute blocks ``[[rc::name("arg", ...)]]`` as first-class
tokens (the annotation payload is kept verbatim for the spec parser),
line/block comments, and the usual C operators and literals.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional


class LexError(Exception):
    pass


@dataclass(frozen=True)
class Token:
    kind: str       # "ident", "number", "string", "punct", "attr", "eof"
    text: str
    line: int
    # For "attr" tokens: the rc:: attribute name and its string arguments.
    attr_name: str = ""
    attr_args: tuple[str, ...] = ()


KEYWORDS = {
    "struct", "union", "typedef", "if", "else", "while", "for", "do",
    "return", "break", "continue", "goto", "switch", "case", "default",
    "void", "int", "char", "short", "long", "unsigned", "signed", "size_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t", "int8_t", "int16_t",
    "int32_t", "int64_t", "uintptr_t", "_Bool", "bool", "_Atomic", "static",
    "inline", "const", "volatile", "NULL", "sizeof", "extern",
}

_PUNCTS = [
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "{",
    "}", "(", ")", "[", "]", ";", ",", ".", "+", "-", "*", "/", "%", "<",
    ">", "=", "&", "|", "^", "!", "~", "?", ":",
]

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")
_NUM_RE = re.compile(r"0[xX][0-9a-fA-F]+[uUlL]*|\d+[uUlL]*")
_STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


def tokenize(source: str) -> list[Token]:
    """Tokenise a C source file."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    n = len(source)
    while pos < n:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = n if end < 0 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos)
            if end < 0:
                raise LexError(f"line {line}: unterminated block comment")
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        if source.startswith("#", pos):
            # Preprocessor lines (includes/defines) are ignored; the case
            # studies are self-contained.
            end = source.find("\n", pos)
            pos = n if end < 0 else end
            continue
        if source.startswith("[[", pos):
            tok, pos, line = _lex_attribute(source, pos, line)
            tokens.append(tok)
            continue
        m = _IDENT_RE.match(source, pos)
        if m:
            tokens.append(Token("ident", m.group(0), line))
            pos = m.end()
            continue
        m = _NUM_RE.match(source, pos)
        if m:
            tokens.append(Token("number", m.group(0), line))
            pos = m.end()
            continue
        m = _STRING_RE.match(source, pos)
        if m:
            tokens.append(Token("string", m.group(1), line))
            pos = m.end()
            continue
        for p in _PUNCTS:
            if source.startswith(p, pos):
                tokens.append(Token("punct", p, line))
                pos += len(p)
                break
        else:
            raise LexError(f"line {line}: cannot lex {source[pos:pos+12]!r}")
    tokens.append(Token("eof", "", line))
    return tokens


def _lex_attribute(source: str, pos: int, line: int) -> tuple[Token, int, int]:
    """Lex a ``[[rc::name("arg1", "arg2")]]`` attribute block."""
    start_line = line
    end = source.find("]]", pos)
    if end < 0:
        raise LexError(f"line {line}: unterminated attribute")
    body = source[pos + 2:end]
    line += source.count("\n", pos, end)
    m = re.match(r"\s*rc::([A-Za-z_][A-Za-z_0-9]*)\s*", body)
    if m is None:
        raise LexError(f"line {start_line}: expected rc:: attribute, got "
                       f"{body[:30]!r}")
    name = m.group(1)
    rest = body[m.end():].strip()
    args: list[str] = []
    if rest:
        if not (rest.startswith("(") and rest.endswith(")")):
            raise LexError(f"line {start_line}: malformed attribute args")
        inner = rest[1:-1]
        for sm in re.finditer(r'"((?:[^"\\]|\\.)*)"', inner):
            args.append(sm.group(1).replace('\\"', '"'))
        # Adjacent string literals concatenate (used for long annotations,
        # as in Figure 3 of the paper) unless separated by a comma.
        args = _merge_adjacent(inner, args)
    return (Token("attr", body, start_line, attr_name=name,
                  attr_args=tuple(args)), end + 2, line)


def _merge_adjacent(inner: str, args: list[str]) -> list[str]:
    """Apply C string-literal concatenation: consecutive literals without a
    comma between them merge into one argument."""
    out: list[str] = []
    pieces = re.findall(r'"(?:[^"\\]|\\.)*"|,', inner)
    cur: Optional[str] = None
    for p in pieces:
        if p == ",":
            if cur is not None:
                out.append(cur)
            cur = None
        else:
            lit = p[1:-1].replace('\\"', '"')
            cur = lit if cur is None else cur + lit
    if cur is not None:
        out.append(cur)
    return out
