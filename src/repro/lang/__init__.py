"""The RefinedC front end (Figure 2, step (A)): lexing/parsing annotated C
and elaborating it into Caesium + RefinedC specifications."""

from .elaborate import ElaborationError, UnitElaborator, elaborate_source
from .lexer import LexError, Token, tokenize
from .parser import ParseError, Parser, parse

__all__ = ["ElaborationError", "LexError", "ParseError", "Parser", "Token",
           "UnitElaborator", "elaborate_source", "parse", "tokenize"]
