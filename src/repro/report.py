"""Evaluation reporting: the columns of Figure 7.

For each case study this computes the same columns the paper reports:

* **Types used** — salient RefinedC type constructors in the annotations;
* **Rules** — distinct typing rules used / number of rule applications;
* **∃** — automatically instantiated existential quantifiers (evars);
* **⌜φ⌝** — side conditions proved automatically / needing manual help
  (named ``rc::tactics`` solvers or ``rc::lemmas``, per §7's accounting);
* **Impl / Spec / Annot** — lines of C, of function specification, and of
  other annotations (with the paper's breakdown: data-structure
  invariants / loop annotations / other);
* **Pure** — lines of manual mathematical reasoning (lemma statements);
* **Ovh** — (Annot + Pure) / Impl.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from .frontend import VerificationOutcome, verify_file, verify_files
from .lang.parser import parse
from .proofs.manual import pure_line_count

_SPEC_ATTRS = {"parameters", "args", "returns", "ensures", "requires",
               "exists"}
_OTHER_ATTRS = {"tactics", "lemmas", "trusted", "global"}

_SALIENT_TYPES = [
    ("wand<", "wand"), ("rc::size", "padded"), ("atomicbool", "atomic bool"),
    ("array<", "arrays"), ("fn<", "func. ptr."), ("&shr<", "lock"),
    ("optional<", "optional"), ("uninit<", "uninit"),
]


@dataclass
class StudyReport:
    study: str
    verified: bool
    types_used: list[str] = field(default_factory=list)
    rules_distinct: int = 0
    rule_applications: int = 0
    evars_instantiated: int = 0
    side_auto: int = 0
    side_manual: int = 0
    impl_lines: int = 0
    spec_lines: int = 0
    annot_lines: int = 0
    annot_struct: int = 0
    annot_loop: int = 0
    annot_other: int = 0
    pure_lines: int = 0
    # Driver metrics (new columns next to the paper's):
    wall_s: float = 0.0           # checking wall time for the unit
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def overhead(self) -> float:
        if self.impl_lines == 0:
            return 0.0
        return (self.annot_lines + self.pure_lines) / self.impl_lines

    def row(self) -> dict:
        return {
            "study": self.study,
            "verified": self.verified,
            "types": ", ".join(self.types_used),
            "rules": f"{self.rules_distinct}/{self.rule_applications}",
            "exists": self.evars_instantiated,
            "side_conditions": f"{self.side_auto}/{self.side_manual}",
            "impl": self.impl_lines,
            "spec": self.spec_lines,
            "annot": (f"{self.annot_lines} ({self.annot_struct}/"
                      f"{self.annot_loop}/{self.annot_other})"),
            "pure": self.pure_lines,
            "ovh": round(self.overhead, 1),
            "time": f"{self.wall_s * 1e3:.0f}ms",
            "cache": (f"{self.cache_hits}h/{self.cache_misses}m"
                      if self.cache_hits or self.cache_misses else "-"),
        }


def _count_annotations(source: str) -> tuple[int, int, int, int]:
    """(spec, struct, loop, other) annotation counts, paper-style."""
    unit = parse(source)
    spec = struct = loop = other = 0
    for sd in unit.structs:
        struct += len(sd.attrs.items) + len(sd.field_attrs)
    for g in unit.globals:
        other += len(g.attrs.items)
    for fd in unit.functions:
        for name, _args in fd.attrs.items:
            if name in _SPEC_ATTRS:
                spec += 1
            else:
                other += 1
        if fd.body is not None:
            loop += _count_loop_annots(fd.body)
    return spec, struct, loop, other


def _count_loop_annots(stmts) -> int:
    from .lang import cst
    count = 0
    for s in stmts:
        if isinstance(s, cst.SWhile):
            count += (len(s.annots.exists) + len(s.annots.inv_vars)
                      + len(s.annots.constraints))
            count += _count_loop_annots(s.body)
        elif isinstance(s, cst.SIf):
            count += _count_loop_annots(s.then) + _count_loop_annots(s.els)
    return count


def study_report(path, outcome: Optional[VerificationOutcome] = None, *,
                 jobs: int = 1, cache: bool = False,
                 cache_dir=None, trace: Optional[bool] = None) -> StudyReport:
    """Compute the Figure 7 row for one case-study file."""
    path = Path(path)
    source = path.read_text()
    if outcome is None:
        outcome = verify_file(path, jobs=jobs, cache=cache,
                              cache_dir=cache_dir, trace=trace)
    report = StudyReport(path.stem, outcome.ok)
    report.types_used = [label for needle, label in _SALIENT_TYPES
                         if needle in source]
    rules: set[str] = set()
    for fr in outcome.result.functions.values():
        rules |= fr.stats.rules_used
        report.rule_applications += fr.stats.rule_applications
        report.evars_instantiated += fr.stats.evars_instantiated
        report.side_auto += fr.stats.side_conditions_auto
        report.side_manual += fr.stats.side_conditions_manual
    report.rules_distinct = len(rules)
    report.impl_lines = outcome.typed_program.source_lines.get("total", 0)
    spec, struct, loop, other = _count_annotations(source)
    report.spec_lines = spec
    report.annot_struct = struct
    report.annot_loop = loop
    report.annot_other = other
    report.annot_lines = struct + loop + other
    report.pure_lines = pure_line_count(path.stem)
    if outcome.metrics is not None:
        m = outcome.metrics
        report.wall_s = m.wall_s
        report.cache_hits = m.cache_hits
        report.cache_misses = m.cache_misses
    return report


FIGURE7_STUDIES = [
    # (file stem, paper class) — rows of Figure 7 plus the two Figure 1/§6
    # allocators the evaluation builds on.
    ("linked_list", "#1"),
    ("queue", "#1"),
    ("binary_search", "#1"),
    ("threadsafe_alloc", "#2"),
    ("page_alloc", "#2"),
    ("bst_layered", "#3"),
    ("bst_direct", "#3"),
    ("hashmap", "#4"),
    ("mpool", "#5"),
    ("spinlock", "#6"),
    ("barrier", "#6"),
]

EXTRA_STUDIES = [("alloc", "Fig.1"), ("alloc_from_start", "§6"),
                 ("free_list", "Fig.3")]


def casestudies_dir() -> Path:
    return Path(__file__).resolve().parents[2] / "examples" / "casestudies"


def figure7_table(include_extra: bool = True, *, jobs: int = 1,
                  cache: bool = False, cache_dir=None,
                  trace: Optional[bool] = None) -> list[StudyReport]:
    """Regenerate the Figure 7 table over all case studies.

    With ``jobs>1`` every (study, function) pair is scheduled on one
    shared process pool; with ``cache=True`` unchanged studies are cache
    hits (see :mod:`repro.driver`)."""
    base = casestudies_dir()
    studies = FIGURE7_STUDIES + (EXTRA_STUDIES if include_extra else [])
    paths = [base / f"{stem}.c" for stem, _cls in studies]
    outcomes = verify_files(paths, jobs=jobs, cache=cache,
                            cache_dir=cache_dir, trace=trace)
    return [study_report(path, outcomes[path.stem]) for path in paths]


def format_table(rows: list[StudyReport]) -> str:
    header = (f"{'Test':<18} {'Rules':>9} {'∃':>4} {'⌜φ⌝':>8} {'Impl':>5} "
              f"{'Spec':>5} {'Annot':>14} {'Pure':>5} {'Ovh':>5} "
              f"{'Time':>7} {'Cache':>6}  Types")
    lines = [header, "-" * len(header)]
    for r in rows:
        d = r.row()
        mark = "" if r.verified else "  [FAILED]"
        lines.append(
            f"{d['study']:<18} {d['rules']:>9} {d['exists']:>4} "
            f"{d['side_conditions']:>8} {d['impl']:>5} {d['spec']:>5} "
            f"{d['annot']:>14} {d['pure']:>5} {d['ovh']:>5} "
            f"{d['time']:>7} {d['cache']:>6}  {d['types']}{mark}")
    return "\n".join(lines)
