"""List reasoning — the second half of RefinedC's default solver (§7: the
default solver "currently only targets linear arithmetic and Coq lists").

Handles equalities between list expressions (append/cons normal forms,
rewriting by hypothesis equations) and delegates element-level residual
obligations to the linear-arithmetic backend.
"""

from __future__ import annotations

from typing import Iterable

from . import linarith
from .memo import MEMO, register_cache, trim_cache
from .simplify import _list_parts, simplify
from .terms import App, Lit, Sort, Term, eq

_LIST_CACHE: dict = register_cache({})
_MISS = object()


class ListSolver:
    """Decide list goals under a hypothesis set."""

    def __init__(self, hyps: Iterable[Term]) -> None:
        self.rewrites: dict[Term, Term] = {}
        self.facts: list[Term] = []
        for h in (simplify(x) for x in hyps):
            oriented = False
            if isinstance(h, App) and h.op == "eq":
                a, b = h.args
                # Prefer eliminating uninterpreted-function applications
                # (cheap congruence closure by rewriting), then variables.
                for lhs, rhs in ((a, b), (b, a)):
                    if isinstance(lhs, App) and lhs.op.startswith("fn:") \
                            and lhs not in rhs.subterms():
                        self.rewrites[lhs] = rhs
                        oriented = True
                        break
                if not oriented:
                    for lhs, rhs in ((a, b), (b, a)):
                        if not isinstance(lhs, (App, Lit)) \
                                and lhs not in rhs.subterms():
                            self.rewrites[lhs] = rhs
                            oriented = True
                            break
            if not oriented or (isinstance(h, App) and h.op == "eq"
                                and h.args[0].sort is not Sort.LIST):
                self.facts.append(h)

    def normalise(self, t: Term) -> Term:
        for _ in range(32):
            t2 = simplify(self._rewrite(t))
            if t2 == t:
                return t
            t = t2
        return t

    def _rewrite(self, t: Term) -> Term:
        if t in self.rewrites:
            return self.rewrites[t]
        if isinstance(t, App):
            new_args = tuple(self._rewrite(a) for a in t.args)
            if new_args != t.args:
                from .terms import app
                if t.op.startswith("fn:") or t.op == "list_lit":
                    return App(t.op, new_args, t.result_sort)
                return app(t.op, *new_args, sort=t.result_sort)
        return t

    def prove(self, goal: Term, arith_hyps: Iterable[Term] = ()) -> bool:
        arith = list(arith_hyps)
        goal = self.normalise(goal)
        if isinstance(goal, Lit):
            return goal.value is True
        if isinstance(goal, App) and goal.op == "and":
            return all(self.prove(g, arith) for g in goal.args)
        if isinstance(goal, App) and goal.op == "eq" and goal.args[0].sort is Sort.LIST:
            return self._prove_list_eq(goal.args[0], goal.args[1], arith)
        return linarith.implies_linear(arith + self.facts, goal)

    def _prove_list_eq(self, a: Term, b: Term, arith: list[Term]) -> bool:
        a, b = self.normalise(a), self.normalise(b)
        if a == b:
            return True
        pa, pb = _list_parts(a), _list_parts(b)
        # Cancel common prefix and suffix parts.
        while pa and pb and pa[0] == pb[0]:
            pa.pop(0)
            pb.pop(0)
        while pa and pb and pa[-1] == pb[-1]:
            pa.pop()
            pb.pop()
        if not pa and not pb:
            return True
        # Single cons-cells left: compare element-wise.
        if len(pa) == 1 and len(pb) == 1:
            x, y = pa[0], pb[0]
            if isinstance(x, App) and isinstance(y, App) \
                    and x.op == "cons" and y.op == "cons":
                return linarith.implies_linear(arith + self.facts,
                                               eq(x.args[0], y.args[0])) \
                    and self._prove_list_eq(x.args[1], y.args[1], arith)
        fact = eq(self._build(pa), self._build(pb))
        return any(self.normalise(f) == simplify(fact) for f in self.facts)

    @staticmethod
    def _build(parts: list[Term]) -> Term:
        from .terms import app
        if not parts:
            return app("nil")
        out = parts[-1]
        for p in reversed(parts[:-1]):
            out = app("append", p, out)
        return out


def list_solver(hyps: Iterable[Term], goal: Term) -> bool:
    hyps = tuple(hyps)
    if not MEMO.enabled:
        return _list_solver(hyps, goal)
    key = (hyps, goal)
    hit = _LIST_CACHE.get(key, _MISS)
    if hit is _MISS:
        hit = _list_solver(hyps, goal)
        trim_cache(_LIST_CACHE)
        _LIST_CACHE[key] = hit
    return hit


def _list_solver(hyps: tuple[Term, ...], goal: Term) -> bool:
    hyps = list(hyps)
    return ListSolver(hyps).prove(simplify(goal), hyps)
