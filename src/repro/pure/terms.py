"""Symbolic term language for RefinedC refinements and pure side conditions.

RefinedC refinements range over "arbitrary mathematical domains" (Coq types in
the paper).  This module provides the executable analogue: a small multi-sorted
first-order term language with

* mathematical integers (``INT``) -- naturals are integers plus ``0 <= x``
  hypotheses, as in the paper's use of ``nat``,
* booleans (``BOOL``) used both as values and as propositions,
* symbolic memory locations (``LOC``) with byte offsets,
* multisets of integers (``MSET``) -- the paper's ``gmultiset nat``,
* lists of integers (``LIST``) -- used for array/functional specs.

Terms are immutable and **hash-consed**: constructing a term that is
structurally equal to a live one returns the very same object (interned in
per-class tables), so structural equality is usually pointer identity and
terms are cheap dictionary keys for the solvers and Lithium's context.
Per-node attributes that the solvers used to recompute by traversal —
``has_evars``, ``size``, the hash, and (lazily) ``free_vars``/``evars`` —
are cached on the node and computed once at construction from the
children's caches.

Interning is an *allocation* optimization, never a semantic one: ``==``
and ``hash`` keep their historical structural definitions (in particular
``Lit(True) == Lit(1)`` still holds, mirroring Python's ``True == 1``,
while the two stay distinct interned objects so their ``sort``/``repr``
differ).  Pickling reconstructs through the constructors, so unpickled
terms re-intern into the local tables.

Existential metavariables (:class:`EVar`) implement the paper's *evars*
(Section 5, "Handling of evars"): they are created by the ``∃`` case of the
Lithium interpreter and instantiated only through a :class:`Subst` store,
never destructively.
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterator, Mapping, Optional, Sequence, Union

from .memo import MEMO, register_clearer


class Sort(enum.Enum):
    """Sorts of the refinement term language."""

    INT = "int"
    BOOL = "bool"
    LOC = "loc"
    MSET = "mset"
    LIST = "list"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Sort.{self.name}"


class TermError(Exception):
    """Raised on ill-sorted term construction or malformed substitution."""


# ------------------------------------------------------------------
# Intern tables.  Keys never collide across semantically distinct nodes:
# Lit keys carry the value's type (bool vs int), and App keys are built
# from the children's intern ids (``_iid``), which are unique for the
# process lifetime and never reused — so clearing the tables mid-run can
# cost identity, never correctness.
# ------------------------------------------------------------------

_set = object.__setattr__

_VAR_TABLE: dict = {}
_EVAR_TABLE: dict = {}
_LIT_TABLE: dict = {}
_APP_TABLE: dict = {}

_IID_COUNTER = itertools.count(1)
_TERMS_INTERNED = 0


def intern_count() -> int:
    """Total number of distinct term nodes interned so far (monotonic).

    The driver snapshots this around each function check to report the
    ``terms_interned`` metric."""
    return _TERMS_INTERNED


def intern_table_sizes() -> dict:
    """Current table sizes (diagnostics / benchmarks)."""
    return {"var": len(_VAR_TABLE), "evar": len(_EVAR_TABLE),
            "lit": len(_LIT_TABLE), "app": len(_APP_TABLE)}


def _intern(table: dict, key, node):
    global _TERMS_INTERNED
    _TERMS_INTERNED += 1
    table[key] = node
    return node


def clear_term_caches() -> None:
    """Drop the intern tables (and re-seed the module singletons).

    Live terms stay valid — equality is structural, so two copies of one
    term merely stop being pointer-identical until re-interned."""
    _VAR_TABLE.clear()
    _EVAR_TABLE.clear()
    _LIT_TABLE.clear()
    _APP_TABLE.clear()
    for lit in (TRUE, FALSE, ZERO, ONE):
        _LIT_TABLE.setdefault((lit.value.__class__, lit.value), lit)


class Term:
    """Base class of all terms.  Instances are immutable and interned."""

    __slots__ = ()

    def __setattr__(self, name, value):
        raise TermError(f"terms are immutable ({name!r})")

    def __delattr__(self, name):
        raise TermError(f"terms are immutable ({name!r})")

    @property
    def sort(self) -> Sort:
        raise NotImplementedError

    @property
    def size(self) -> int:
        """Number of nodes in the term (cached; O(1))."""
        return 1

    def subterms(self) -> Iterator["Term"]:
        """Yield this term and all its subterms, pre-order."""
        yield self

    def free_vars(self) -> frozenset["Var"]:
        return _EMPTY_VARS

    def evars(self) -> frozenset["EVar"]:
        return _EMPTY_EVARS

    def has_evars(self) -> bool:
        return False


_EMPTY_VARS: frozenset = frozenset()
_EMPTY_EVARS: frozenset = frozenset()


class Var(Term):
    """A universally quantified (rigid) variable, e.g. a ``rc::parameters``
    entry or a loop-invariant ``rc::exists`` binder after introduction."""

    __slots__ = ("name", "var_sort", "_hash", "_iid", "_fvs")

    def __new__(cls, name: str, var_sort: Sort) -> "Var":
        key = (name, var_sort)
        cached = _VAR_TABLE.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        _set(self, "name", name)
        _set(self, "var_sort", var_sort)
        _set(self, "_hash", hash(key))
        _set(self, "_iid", next(_IID_COUNTER))
        _set(self, "_fvs", None)
        return _intern(_VAR_TABLE, key, self)

    @property
    def sort(self) -> Sort:
        return self.var_sort

    def free_vars(self) -> frozenset["Var"]:
        fvs = self._fvs
        if fvs is None:
            fvs = frozenset((self,))
            _set(self, "_fvs", fvs)
        return fvs

    def __eq__(self, other) -> bool:
        return self is other or (type(other) is Var
                                 and other.name == self.name
                                 and other.var_sort is self.var_sort)

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Var, (self.name, self.var_sort))

    def __repr__(self) -> str:
        return self.name


_EVAR_COUNTER = itertools.count()


class EVar(Term):
    """An existential metavariable (paper: *evar*).

    Evars are instantiated via a :class:`Subst`; the ``sealed`` protocol that
    prevents premature instantiation lives in :mod:`repro.lithium.search`,
    which tracks the set of currently sealed evar ids.
    """

    __slots__ = ("eid", "var_sort", "hint", "_hash", "_iid", "_evs")

    def __new__(cls, eid: int, var_sort: Sort, hint: str = "") -> "EVar":
        key = (eid, var_sort, hint)
        cached = _EVAR_TABLE.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        _set(self, "eid", eid)
        _set(self, "var_sort", var_sort)
        _set(self, "hint", hint)
        _set(self, "_hash", hash(key))
        _set(self, "_iid", next(_IID_COUNTER))
        _set(self, "_evs", None)
        return _intern(_EVAR_TABLE, key, self)

    @property
    def sort(self) -> Sort:
        return self.var_sort

    def evars(self) -> frozenset["EVar"]:
        evs = self._evs
        if evs is None:
            evs = frozenset((self,))
            _set(self, "_evs", evs)
        return evs

    def has_evars(self) -> bool:
        return True

    def __eq__(self, other) -> bool:
        return self is other or (type(other) is EVar
                                 and other.eid == self.eid
                                 and other.var_sort is self.var_sort
                                 and other.hint == self.hint)

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (EVar, (self.eid, self.var_sort, self.hint))

    def __repr__(self) -> str:
        suffix = f":{self.hint}" if self.hint else ""
        return f"?e{self.eid}{suffix}"


def fresh_evar(sort: Sort, hint: str = "") -> EVar:
    """Create a globally fresh evar of the given sort."""
    return EVar(next(_EVAR_COUNTER), sort, hint)


class Lit(Term):
    """An integer or boolean literal.

    Interned with a type-tagged key, so ``Lit(True)`` and ``Lit(1)`` stay
    distinct objects (different ``sort``/``repr``) while — exactly as the
    historical structural equality did via Python's ``True == 1`` —
    remaining ``==``/hash-equal."""

    __slots__ = ("value", "_hash", "_iid")

    def __new__(cls, value: Union[int, bool]) -> "Lit":
        key = (value.__class__, value)
        cached = _LIT_TABLE.get(key)
        if cached is not None:
            return cached
        if not isinstance(value, (int, bool)):
            raise TermError(f"bad literal {value!r}")
        self = object.__new__(cls)
        _set(self, "value", value)
        _set(self, "_hash", hash((value,)))
        _set(self, "_iid", next(_IID_COUNTER))
        return _intern(_LIT_TABLE, key, self)

    @property
    def sort(self) -> Sort:
        return Sort.BOOL if isinstance(self.value, bool) else Sort.INT

    def __eq__(self, other) -> bool:
        return self is other or (type(other) is Lit
                                 and other.value == self.value)

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Lit, (self.value,))

    def __repr__(self) -> str:
        return repr(self.value)


# Operator table: name -> (argument sorts or None for variadic, result sort).
# ``None`` in an argument position means "same sort as first argument".
_OPS: dict[str, tuple[Optional[tuple[Optional[Sort], ...]], Sort]] = {
    # Integer arithmetic.
    "add": (None, Sort.INT),          # variadic, INT args
    "mul": (None, Sort.INT),
    "sub": ((Sort.INT, Sort.INT), Sort.INT),
    "neg": ((Sort.INT,), Sort.INT),
    "div": ((Sort.INT, Sort.INT), Sort.INT),
    "mod": ((Sort.INT, Sort.INT), Sort.INT),
    "min": ((Sort.INT, Sort.INT), Sort.INT),
    "max": ((Sort.INT, Sort.INT), Sort.INT),
    "ite": ((Sort.BOOL, None, None), Sort.INT),  # result sort fixed at build
    # Comparisons / propositions.
    "le": ((Sort.INT, Sort.INT), Sort.BOOL),
    "lt": ((Sort.INT, Sort.INT), Sort.BOOL),
    "eq": ((None, None), Sort.BOOL),
    "not": ((Sort.BOOL,), Sort.BOOL),
    "and": (None, Sort.BOOL),
    "or": (None, Sort.BOOL),
    "implies": ((Sort.BOOL, Sort.BOOL), Sort.BOOL),
    # Locations.
    "loc_offset": ((Sort.LOC, Sort.INT), Sort.LOC),
    # Multisets (gmultiset nat).
    "mempty": ((), Sort.MSET),
    "msingle": ((Sort.INT,), Sort.MSET),
    "munion": (None, Sort.MSET),
    "msize": ((Sort.MSET,), Sort.INT),
    "mmember": ((Sort.INT, Sort.MSET), Sort.BOOL),
    "mall_ge": ((Sort.MSET, Sort.INT), Sort.BOOL),  # ∀k∈s. n ≤ k
    "mall_le": ((Sort.MSET, Sort.INT), Sort.BOOL),  # ∀k∈s. k ≤ n
    # Lists of integers.
    "nil": ((), Sort.LIST),
    "cons": ((Sort.INT, Sort.LIST), Sort.LIST),
    "append": ((Sort.LIST, Sort.LIST), Sort.LIST),
    "len": ((Sort.LIST,), Sort.INT),
    "head": ((Sort.LIST,), Sort.INT),
    "tail": ((Sort.LIST,), Sort.LIST),
    "index": ((Sort.LIST, Sort.INT), Sort.INT),
    "store": ((Sort.LIST, Sort.INT, Sort.INT), Sort.LIST),
    "list_lit": (None, Sort.LIST),   # literal list of INT terms
    "sorted": ((Sort.LIST,), Sort.BOOL),
}


class App(Term):
    """An operator or uninterpreted-function application.

    Uninterpreted functions (used e.g. for the hashmap's probing function)
    have ``op`` of the form ``"fn:<name>"`` and carry their result sort.
    """

    # The trailing slots hold *compiled forms* (RC_COMPILE): the
    # simplified normal form, the hypothesis decomposition (stamped with
    # the hyp-rule generation) and the linear row of the node.  They are
    # left unset until first use — reads go through ``getattr(t, s, None)``
    # and writes through ``object.__setattr__`` — so construction pays
    # nothing for them.
    __slots__ = ("op", "args", "result_sort", "_hash", "_iid",
                 "_hevars", "_size", "_fvs", "_evs",
                 "_simp", "_hypx", "_lrow", "_subs")

    def __new__(cls, op: str, args: Sequence[Term],
                result_sort: Sort) -> "App":
        args = tuple(args)
        # The intern ids of the children identify them *exactly* (stricter
        # than ``==``, which conflates Lit(True)/Lit(1)), so the key can
        # never merge Apps whose reprs or child sorts differ.
        key = (op, tuple(a._iid for a in args), result_sort)
        cached = _APP_TABLE.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        _set(self, "op", op)
        _set(self, "args", args)
        _set(self, "result_sort", result_sort)
        _set(self, "_hash", hash((op, args, result_sort)))
        _set(self, "_iid", next(_IID_COUNTER))
        _set(self, "_hevars", any(a.has_evars() for a in args))
        _set(self, "_size", 1 + sum(a.size for a in args))
        _set(self, "_fvs", None)
        _set(self, "_evs", None)
        return _intern(_APP_TABLE, key, self)

    @property
    def sort(self) -> Sort:
        return self.result_sort

    @property
    def size(self) -> int:
        return self._size

    def subterms(self) -> Iterator[Term]:
        yield self
        for a in self.args:
            yield from a.subterms()

    def free_vars(self) -> frozenset[Var]:
        fvs = self._fvs
        if fvs is None:
            fvs = _EMPTY_VARS.union(*(a.free_vars() for a in self.args)) \
                if self.args else _EMPTY_VARS
            _set(self, "_fvs", fvs)
        return fvs

    def evars(self) -> frozenset[EVar]:
        evs = self._evs
        if evs is None:
            evs = _EMPTY_EVARS.union(*(a.evars() for a in self.args)) \
                if self.args else _EMPTY_EVARS
            _set(self, "_evs", evs)
        return evs

    def has_evars(self) -> bool:
        return self._hevars

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return (type(other) is App
                and other._hash == self._hash
                and other.op == self.op
                and other.result_sort is self.result_sort
                and other.args == self.args)

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (App, (self.op, self.args, self.result_sort))

    def __repr__(self) -> str:
        if not self.args:
            return self.op
        return f"{self.op}({', '.join(map(repr, self.args))})"


def _check_sorts(op: str, args: Sequence[Term]) -> Sort:
    if op.startswith("fn:"):
        raise TermError("use fn_app() for uninterpreted functions")
    if op not in _OPS:
        raise TermError(f"unknown operator {op!r}")
    arg_sorts, result = _OPS[op]
    if arg_sorts is None:
        want = {"and": Sort.BOOL, "or": Sort.BOOL, "munion": Sort.MSET,
                "list_lit": Sort.INT}.get(op, Sort.INT)
        for a in args:
            if a.sort is not want:
                raise TermError(f"{op}: expected {want}, got {a.sort} in {a!r}")
    else:
        if len(args) != len(arg_sorts):
            raise TermError(f"{op}: arity {len(arg_sorts)}, got {len(args)}")
        for a, want in zip(args, arg_sorts):
            if want is not None and a.sort is not want:
                raise TermError(f"{op}: expected {want}, got {a.sort} in {a!r}")
        if op == "eq" and args[0].sort is not args[1].sort:
            raise TermError(f"eq: sort mismatch {args[0].sort} vs {args[1].sort}")
    return result


def app(op: str, *args: Term, sort: Optional[Sort] = None) -> Term:
    """Build an application with light canonicalisation (constant folding,
    flattening of associative operators, neutral-element removal)."""
    result = _check_sorts(op, args)
    if op == "ite":
        if sort is None:
            sort = args[1].sort
        if args[1].sort is not args[2].sort:
            raise TermError("ite: branch sort mismatch")
        result = sort
        cond = args[0]
        if cond == TRUE:
            return args[1]
        if cond == FALSE:
            return args[2]
        if args[1] == args[2]:
            return args[1]
    if op in ("add", "mul", "and", "or", "munion"):
        flat: list[Term] = []
        for a in args:
            if isinstance(a, App) and a.op == op:
                flat.extend(a.args)
            else:
                flat.append(a)
        args = tuple(flat)
        folded = _fold_variadic(op, args)
        if folded is not None:
            return folded
    simple = _fold_fixed(op, args)
    if simple is not None:
        return simple
    return App(op, tuple(args), result)


def _fold_variadic(op: str, args: tuple[Term, ...]) -> Optional[Term]:
    """Constant-fold / simplify variadic operators; return None to keep App."""
    if op == "add":
        const = sum(a.value for a in args if isinstance(a, Lit))
        rest = [a for a in args if not isinstance(a, Lit)]
        if not rest:
            return Lit(const)
        if const:
            rest.append(Lit(const))
        if len(rest) == 1:
            return rest[0]
        return App("add", tuple(rest), Sort.INT)
    if op == "mul":
        const = 1
        rest = []
        for a in args:
            if isinstance(a, Lit):
                const *= a.value
            else:
                rest.append(a)
        if const == 0 or not rest:
            return Lit(const if not rest else 0)
        if const != 1:
            rest.insert(0, Lit(const))
        if len(rest) == 1:
            return rest[0]
        return App("mul", tuple(rest), Sort.INT)
    if op in ("and", "or"):
        unit, absorb = (TRUE, FALSE) if op == "and" else (FALSE, TRUE)
        out: list[Term] = []
        for a in args:
            if a == absorb:
                return absorb
            if a != unit and a not in out:
                out.append(a)
        if not out:
            return unit
        if len(out) == 1:
            return out[0]
        return App(op, tuple(out), Sort.BOOL)
    if op == "munion":
        out = [a for a in args if not (isinstance(a, App) and a.op == "mempty")]
        if not out:
            return App("mempty", (), Sort.MSET)
        if len(out) == 1:
            return out[0]
        return App("munion", tuple(out), Sort.MSET)
    return None


def _fold_fixed(op: str, args: tuple[Term, ...]) -> Optional[Term]:
    """Constant-fold fixed-arity operators on literal arguments."""
    vals = [a.value for a in args if isinstance(a, Lit)]
    if len(vals) == len(args):
        if op == "sub":
            return Lit(vals[0] - vals[1])
        if op == "neg":
            return Lit(-vals[0])
        if op == "div" and vals[1] != 0:
            q = abs(vals[0]) // abs(vals[1])
            return Lit(q if (vals[0] >= 0) == (vals[1] > 0) else -q)
        if op == "mod" and vals[1] != 0:
            return Lit(vals[0] - vals[1] * (vals[0] // vals[1] if (vals[0] >= 0) == (vals[1] > 0) else -(abs(vals[0]) // abs(vals[1]))))
        if op == "min":
            return Lit(min(vals))
        if op == "max":
            return Lit(max(vals))
        if op == "le":
            return Lit(bool(vals[0] <= vals[1]))
        if op == "lt":
            return Lit(bool(vals[0] < vals[1]))
        if op == "eq":
            return Lit(bool(vals[0] == vals[1]))
        if op == "not":
            return Lit(not vals[0])
        if op == "implies":
            return Lit((not vals[0]) or vals[1])
    if op == "sub" and isinstance(args[1], Lit) and args[1].value == 0:
        return args[0]
    if op == "not" and isinstance(args[0], App) and args[0].op == "not":
        return args[0].args[0]
    if op == "eq" and args[0] == args[1] and not args[0].has_evars():
        return TRUE
    if op == "implies" and args[0] == TRUE:
        return args[1]
    if op == "implies" and args[1] == TRUE:
        return TRUE
    if op == "loc_offset" and isinstance(args[1], Lit) and args[1].value == 0:
        return args[0]
    if op == "loc_offset" and isinstance(args[0], App) and args[0].op == "loc_offset":
        inner_loc, inner_off = args[0].args
        return app("loc_offset", inner_loc, app("add", inner_off, args[1]))
    return None


def fn_app(name: str, args: Sequence[Term], sort: Sort) -> Term:
    """Apply an uninterpreted function symbol (e.g. a spec-level Coq function)."""
    return App(f"fn:{name}", tuple(args), sort)


# ------------------------------------------------------------------
# Convenience constructors (the public vocabulary used everywhere else).
# ------------------------------------------------------------------

TRUE = Lit(True)
FALSE = Lit(False)
ZERO = Lit(0)
ONE = Lit(1)

register_clearer(clear_term_caches)


def intlit(n: int) -> Lit:
    return Lit(int(n))


def var(name: str, sort: Sort = Sort.INT) -> Var:
    return Var(name, sort)


def add(*ts: Term) -> Term:
    return app("add", *ts)


def sub(a: Term, b: Term) -> Term:
    return app("sub", a, b)


def mul(*ts: Term) -> Term:
    return app("mul", *ts)


def neg(a: Term) -> Term:
    return app("neg", a)


def le(a: Term, b: Term) -> Term:
    return app("le", a, b)


def lt(a: Term, b: Term) -> Term:
    return app("lt", a, b)


def ge(a: Term, b: Term) -> Term:
    return app("le", b, a)


def gt(a: Term, b: Term) -> Term:
    return app("lt", b, a)


def eq(a: Term, b: Term) -> Term:
    return app("eq", a, b)


def ne(a: Term, b: Term) -> Term:
    return app("not", app("eq", a, b))


def not_(a: Term) -> Term:
    return app("not", a)


def and_(*ts: Term) -> Term:
    return app("and", *ts)


def or_(*ts: Term) -> Term:
    return app("or", *ts)


def implies(a: Term, b: Term) -> Term:
    return app("implies", a, b)


def ite(c: Term, t: Term, e: Term) -> Term:
    return app("ite", c, t, e)


def loc_offset(l: Term, off: Term) -> Term:
    return app("loc_offset", l, off)


def mempty() -> Term:
    return app("mempty")


def msingle(n: Term) -> Term:
    return app("msingle", n)


def munion(*ts: Term) -> Term:
    return app("munion", *ts)


def msize(s: Term) -> Term:
    return app("msize", s)


def mmember(n: Term, s: Term) -> Term:
    return app("mmember", n, s)


def mall_ge(s: Term, n: Term) -> Term:
    return app("mall_ge", s, n)


def mall_le(s: Term, n: Term) -> Term:
    return app("mall_le", s, n)


def store(l: Term, i: Term, v: Term) -> Term:
    return app("store", l, i, v)


def nil() -> Term:
    return app("nil")


def cons(h: Term, t: Term) -> Term:
    return app("cons", h, t)


def append(a: Term, b: Term) -> Term:
    return app("append", a, b)


def length(l: Term) -> Term:
    return app("len", l)


def list_lit(*ts: Term) -> Term:
    return App("list_lit", tuple(ts), Sort.LIST)


# ------------------------------------------------------------------
# Substitution.
# ------------------------------------------------------------------

class Subst:
    """A persistent-feeling substitution store for evars and variables.

    Evar bindings are added by unification during Lithium proof search and
    never removed (no backtracking!), so a plain mutable dict suffices.

    ``generation`` counts bindings: it bumps on every :meth:`bind_evar`
    and never otherwise, so any value derived from resolving terms
    (e.g. :meth:`~repro.lithium.context.Gamma.resolved_facts`) can be
    cached against it.  Resolution itself is memoized per generation, and
    evar-free terms resolve to themselves in O(1) via the interned
    ``has_evars`` bit.
    """

    def __init__(self) -> None:
        self._evar: dict[int, Term] = {}
        self.generation = 0
        self._resolve_memo: dict[Term, Term] = {}

    def bind_evar(self, ev: EVar, t: Term) -> None:
        if ev.eid in self._evar:
            raise TermError(f"evar {ev!r} already bound")
        t = self.resolve(t)
        if ev in t.evars():
            raise TermError(f"occurs check failed binding {ev!r} to {t!r}")
        if t.sort is not ev.sort:
            raise TermError(f"sort mismatch binding {ev!r} to {t!r}")
        self._evar[ev.eid] = t
        self.generation += 1
        self._resolve_memo.clear()

    def lookup(self, ev: EVar) -> Optional[Term]:
        return self._evar.get(ev.eid)

    def is_bound(self, ev: EVar) -> bool:
        return ev.eid in self._evar

    def resolve(self, t: Term) -> Term:
        """Fully apply the substitution to ``t`` (with re-canonicalisation)."""
        if not t.has_evars():
            return t
        if isinstance(t, EVar):
            bound = self._evar.get(t.eid)
            if bound is None:
                return t
            resolved = self.resolve(bound)
            if resolved is not bound:
                self._evar[t.eid] = resolved  # path compression
            return resolved
        if isinstance(t, App):
            if MEMO.enabled:
                hit = self._resolve_memo.get(t)
                if hit is not None:
                    return hit
            new_args = tuple(self.resolve(a) for a in t.args)
            if new_args == t.args:
                out: Term = t
            elif t.op.startswith("fn:") or t.op == "list_lit":
                out = App(t.op, new_args, t.result_sort)
            else:
                out = app(t.op, *new_args, sort=t.result_sort)
            if MEMO.enabled:
                self._resolve_memo[t] = out
            return out
        return t

    def snapshot(self) -> dict[int, Term]:
        """Return a copy of the raw store (used by tests/diagnostics)."""
        return dict(self._evar)

    def copy(self) -> "Subst":
        """An independent clone with the same bindings.

        Equivalent to rebinding every snapshot entry into a fresh
        :class:`Subst` (the bindings are identical, so every later
        ``resolve`` agrees), but skips the per-entry occurs/sort
        re-checks, which matters on the unification-heavy forward
        chaining path.
        """
        out = Subst.__new__(Subst)
        out._evar = dict(self._evar)
        out.generation = self.generation
        out._resolve_memo = {}
        return out


def subst_vars(t: Term, mapping: Mapping[Var, Term]) -> Term:
    """Capture-avoiding substitution of rigid variables (terms are closed
    w.r.t. binders, so this is plain structural replacement)."""
    if isinstance(t, Var):
        repl = mapping.get(t)
        if repl is not None and repl.sort is not t.sort:
            raise TermError(f"sort mismatch substituting {t!r} -> {repl!r}")
        return repl if repl is not None else t
    if isinstance(t, App):
        new_args = tuple(subst_vars(a, mapping) for a in t.args)
        if new_args == t.args:
            return t
        if t.op.startswith("fn:") or t.op == "list_lit":
            return App(t.op, new_args, t.result_sort)
        return app(t.op, *new_args, sort=t.result_sort)
    return t
