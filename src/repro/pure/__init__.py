"""Pure (mathematical) reasoning layer: terms, solvers, and the annotation
expression parser.

This package is the executable analogue of the "pure Coq propositions" side
of RefinedC (step (C) in Figure 2 of the paper): refinements are terms of
this language, and side conditions emitted by Lithium are discharged by
:class:`repro.pure.solver.PureSolver`.
"""

from .eval import EvalError, evaluate
from .parser import SpecParseError, parse_sort, parse_term
from .simplify import simplify, simplify_hyp
from .solver import Lemma, Outcome, ProveResult, PureSolver
from .terms import (App, EVar, Lit, Sort, Subst, Term, TermError, Var,
                    fresh_evar, subst_vars)
from .unify import unify

__all__ = [
    "App", "EVar", "EvalError", "Lemma", "Lit", "Outcome", "ProveResult",
    "PureSolver", "Sort", "SpecParseError", "Subst", "Term", "TermError",
    "Var", "evaluate", "fresh_evar", "parse_sort", "parse_term", "simplify",
    "simplify_hyp", "subst_vars", "unify",
]
