"""Linear integer arithmetic solver (the core of RefinedC's *default solver*).

The paper's default pure-side-condition solver "currently only targets linear
arithmetic and Coq lists" (§7).  This module is the linear-arithmetic half: a
Fourier--Motzkin elimination procedure over the rationals with integer
tightening (``a < b`` over ints becomes ``a + 1 <= b``), preceded by Gaussian
elimination of equalities.

Entailment ``hyps |= goal`` is decided by refutation: normalise the
hypotheses and the negated goal into linear atoms and test unsatisfiability.
Non-linear subterms (``min``/``max``/``mod``/``msize``/``len``/uninterpreted
functions/...) are treated as opaque atoms, with sound bounding axioms added
lazily (e.g. ``0 <= len l``, ``min(a,b) <= a``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Iterable, Optional

from .compiled import COMPILE, note_compiled
from .memo import MEMO, register_cache, trim_cache
from .terms import App, Lit, Sort, Term, Var, sub

_set = object.__setattr__

# A linear expression is a mapping from opaque INT atoms to coefficients plus
# a constant; it denotes  sum(coeff * atom) + const.
LinMap = dict[Term, Fraction]

# Memoization over interned terms.  Linearisation and constraint extraction
# are pure up to their ``atoms`` out-parameter, so each cache entry stores
# the result together with the frozenset of atoms the computation would have
# added; a hit replays the set union.  Entailment results are plain bools
# keyed on (hyps tuple, goal).
_LINEARISE_CACHE: dict = register_cache({})
_CONSTRAINT_CACHE: dict = register_cache({})
_IMPLIES_CACHE: dict = register_cache({})
_AXIOM_CACHE: dict = register_cache({})
_FM_CACHE: dict = register_cache({})
# RC_COMPILE: hypothesis-context snapshot — hyps tuple -> (constraints,
# integer rows, per-hyp atom sets).  Consecutive entailment queries under
# one Γ (and every conjunct of an `and` goal) share their hypotheses, so
# the matrix is assembled once per context and reused for every goal
# implication of a prove call.
_HYPROWS_CACHE: dict = register_cache({})
_MISS = object()


@dataclass
class LinExpr:
    coeffs: LinMap
    const: Fraction

    def __add__(self, other: "LinExpr") -> "LinExpr":
        out = dict(self.coeffs)
        for k, v in other.coeffs.items():
            out[k] = out.get(k, Fraction(0)) + v
            if out[k] == 0:
                del out[k]
        return LinExpr(out, self.const + other.const)

    def scale(self, f: Fraction) -> "LinExpr":
        if f == 0:
            return LinExpr({}, Fraction(0))
        return LinExpr({k: v * f for k, v in self.coeffs.items()}, self.const * f)

    def __sub__(self, other: "LinExpr") -> "LinExpr":
        return self + other.scale(Fraction(-1))

    def is_const(self) -> bool:
        return not self.coeffs


# Constraint: LinExpr <= 0 (kind "le") or LinExpr == 0 (kind "eq").
@dataclass
class Constraint:
    expr: LinExpr
    kind: str  # "le" | "eq"


class _NonLinear(Exception):
    """Internal: raised when a term cannot be linearised further."""


def linearise(t: Term, atoms: set[Term]) -> LinExpr:
    """Turn an INT term into a linear expression, collecting opaque atoms."""
    if COMPILE.enabled and isinstance(t, App):
        # Compiled form attached to the interned node; the dict cache is
        # still consulted (and fed) so structurally equal nodes from a
        # later function check reuse the row.
        hit = getattr(t, "_lrow", None)
        if hit is None:
            if MEMO.enabled:
                hit = _LINEARISE_CACHE.get(t)
            if hit is None:
                local: set[Term] = set()
                e = _linearise(t, local)
                hit = (e, frozenset(local))
                if MEMO.enabled:
                    trim_cache(_LINEARISE_CACHE)
                    _LINEARISE_CACHE[t] = hit
            _set(t, "_lrow", hit)
            note_compiled()
        atoms |= hit[1]
        return LinExpr(dict(hit[0].coeffs), hit[0].const)
    if not MEMO.enabled:
        return _linearise(t, atoms)
    hit = _LINEARISE_CACHE.get(t)
    if hit is None:
        local: set[Term] = set()
        e = _linearise(t, local)
        trim_cache(_LINEARISE_CACHE)
        hit = (e, frozenset(local))
        _LINEARISE_CACHE[t] = hit
    atoms |= hit[1]
    # Fresh coeff dict per call: downstream arithmetic never mutates a
    # LinExpr in place, but sharing one dict across calls would make that
    # invariant load-bearing for correctness rather than just hygiene.
    return LinExpr(dict(hit[0].coeffs), hit[0].const)


def _linearise(t: Term, atoms: set[Term]) -> LinExpr:
    if isinstance(t, Lit):
        return LinExpr({}, Fraction(int(t.value)))
    if isinstance(t, App):
        if t.op == "add":
            out = LinExpr({}, Fraction(0))
            for a in t.args:
                out = out + linearise(a, atoms)
            return out
        if t.op == "sub":
            return linearise(t.args[0], atoms) - linearise(t.args[1], atoms)
        if t.op == "neg":
            return linearise(t.args[0], atoms).scale(Fraction(-1))
        if t.op == "mul":
            const = Fraction(1)
            non_const: list[Term] = []
            for a in t.args:
                if isinstance(a, Lit):
                    const *= int(a.value)
                else:
                    non_const.append(a)
            if not non_const:
                return LinExpr({}, const)
            if len(non_const) == 1:
                return linearise(non_const[0], atoms).scale(const)
            # Product of symbolic terms: opaque.
            atoms.add(t)
            return LinExpr({t: Fraction(1)}, Fraction(0))
        if t.op == "ite":
            atoms.add(t)
            return LinExpr({t: Fraction(1)}, Fraction(0))
    # Var, EVar, or opaque App (min/max/div/mod/len/msize/fn:...)
    atoms.add(t)
    return LinExpr({t: Fraction(1)}, Fraction(0))


def _atom_axioms(atom: Term, atoms: set[Term]) -> list[Constraint]:
    """Sound bounding facts for an opaque atom (lazy theory axioms)."""
    out: list[Constraint] = []
    if not isinstance(atom, App):
        return out
    nonneg_ops = {"len", "msize"}
    if atom.op in nonneg_ops:
        # 0 <= atom   i.e.  -atom <= 0
        out.append(Constraint(LinExpr({atom: Fraction(-1)}, Fraction(0)), "le"))
    if atom.op in ("min", "max"):
        a = linearise(atom.args[0], atoms)
        b = linearise(atom.args[1], atoms)
        me = LinExpr({atom: Fraction(1)}, Fraction(0))
        if atom.op == "min":
            out.append(Constraint(me - a, "le"))  # min <= a
            out.append(Constraint(me - b, "le"))  # min <= b
        else:
            out.append(Constraint(a - me, "le"))  # a <= max
            out.append(Constraint(b - me, "le"))  # b <= max
    if atom.op == "mod" and isinstance(atom.args[1], Lit) and int(atom.args[1].value) > 0:
        m = int(atom.args[1].value)
        me = LinExpr({atom: Fraction(1)}, Fraction(0))
        out.append(Constraint(me.scale(Fraction(-1)), "le"))           # 0 <= mod
        out.append(Constraint(me + LinExpr({}, Fraction(1 - m)), "le"))  # mod <= m-1
    return out


def _to_constraints(prop: Term, atoms: set[Term]) -> Optional[list[Constraint]]:
    """Translate a boolean term into conjunction of linear constraints.

    Returns ``None`` if the proposition is not (a conjunction of) linear
    atoms -- such hypotheses are simply not visible to this solver.
    """
    if not MEMO.enabled:
        return _to_constraints_impl(prop, atoms)
    hit = _CONSTRAINT_CACHE.get(prop, _MISS)
    if hit is _MISS:
        local: set[Term] = set()
        cs = _to_constraints_impl(prop, local)
        trim_cache(_CONSTRAINT_CACHE)
        hit = (tuple(cs) if cs is not None else None, frozenset(local))
        _CONSTRAINT_CACHE[prop] = hit
    atoms |= hit[1]
    return list(hit[0]) if hit[0] is not None else None


def _to_constraints_impl(prop: Term, atoms: set[Term]
                         ) -> Optional[list[Constraint]]:
    if isinstance(prop, Lit):
        if prop.value is True:
            return []
        # False hypothesis: encode as 1 <= 0.
        return [Constraint(LinExpr({}, Fraction(1)), "le")]
    if isinstance(prop, App):
        if prop.op == "and":
            out: list[Constraint] = []
            for a in prop.args:
                sub_cs = _to_constraints(a, atoms)
                if sub_cs is None:
                    continue  # ignore non-linear conjunct (sound for hyps)
                out.extend(sub_cs)
            return out
        if prop.op == "le":
            e = linearise(prop.args[0], atoms) - linearise(prop.args[1], atoms)
            return [Constraint(e, "le")]
        if prop.op == "lt":
            e = linearise(prop.args[0], atoms) - linearise(prop.args[1], atoms)
            return [Constraint(e + LinExpr({}, Fraction(1)), "le")]
        if prop.op == "eq" and prop.args[0].sort is Sort.INT:
            e = linearise(prop.args[0], atoms) - linearise(prop.args[1], atoms)
            return [Constraint(e, "eq")]
        if prop.op == "not":
            inner = prop.args[0]
            if isinstance(inner, App):
                if inner.op == "le":
                    return _to_constraints(App("lt", (inner.args[1], inner.args[0]), Sort.BOOL), atoms)
                if inner.op == "lt":
                    return _to_constraints(App("le", (inner.args[1], inner.args[0]), Sort.BOOL), atoms)
                if inner.op == "not":
                    return _to_constraints(inner.args[0], atoms)
    return None


def _negate_to_constraint_sets(goal: Term, atoms: set[Term]) -> Optional[list[list[Constraint]]]:
    """Negate ``goal`` into a *disjunction* of constraint conjunctions.

    Refutation must show every disjunct unsat.  ``None`` = not linear.
    """
    if isinstance(goal, Lit):
        if goal.value is True:
            return []  # ¬True = False: nothing to refute, trivially unsat
        # Proving False: refute the hypotheses themselves (¬False = True
        # adds no constraints).
        return [[]]
    if isinstance(goal, App):
        if goal.op == "le":
            cs = _to_constraints(App("lt", (goal.args[1], goal.args[0]), Sort.BOOL), atoms)
            return [cs] if cs is not None else None
        if goal.op == "lt":
            cs = _to_constraints(App("le", (goal.args[1], goal.args[0]), Sort.BOOL), atoms)
            return [cs] if cs is not None else None
        if goal.op == "eq" and goal.args[0].sort is Sort.INT:
            lt1 = _to_constraints(App("lt", (goal.args[0], goal.args[1]), Sort.BOOL), atoms)
            lt2 = _to_constraints(App("lt", (goal.args[1], goal.args[0]), Sort.BOOL), atoms)
            if lt1 is None or lt2 is None:
                return None
            return [lt1, lt2]
        if goal.op == "not":
            inner = goal.args[0]
            if isinstance(inner, App) and inner.op in ("le", "lt"):
                cs = _to_constraints(inner, atoms)
                return [cs] if cs is not None else None
            if isinstance(inner, App) and inner.op == "eq" and inner.args[0].sort is Sort.INT:
                cs = _to_constraints(inner, atoms)
                return [cs] if cs is not None else None
    return None


def _gauss_eliminate(constraints: list[Constraint]) -> Optional[list[Constraint]]:
    """Eliminate equalities by substitution; detect trivial contradictions.

    Returns remaining inequality constraints, or ``None`` if an immediate
    contradiction (e.g. ``2 = 0``) was found.
    """
    eqs = [c for c in constraints if c.kind == "eq"]
    les = [c.expr for c in constraints if c.kind == "le"]
    while eqs:
        c = eqs.pop()
        e = c.expr
        if e.is_const():
            if e.const != 0:
                return None
            continue
        # Pick a pivot variable and solve for it:  pivot = rest / -coeff
        pivot, coeff = next(iter(e.coeffs.items()))
        rest = LinExpr({k: v for k, v in e.coeffs.items() if k != pivot}, e.const)
        sol = rest.scale(Fraction(-1) / coeff)

        def substitute(x: LinExpr) -> LinExpr:
            if pivot not in x.coeffs:
                return x
            c0 = x.coeffs[pivot]
            trimmed = LinExpr({k: v for k, v in x.coeffs.items() if k != pivot}, x.const)
            return trimmed + sol.scale(c0)

        eqs = [Constraint(substitute(q.expr), "eq") for q in eqs]
        les = [substitute(x) for x in les]
    return [Constraint(e, "le") for e in les]


_FM_VAR_LIMIT = 24
_FM_SIZE_LIMIT = 3000


def _normalise_int(e: LinExpr) -> LinExpr:
    """Integer cut: scale ``e ≤ 0`` to integral coefficients, divide by
    their gcd, and floor the constant.  All atoms denote integers, so this
    is sound and recovers integer facts FM alone would miss (e.g. that
    ``8x + 1 ≤ 0`` entails ``x ≤ -1``)."""
    if not e.coeffs:
        return e
    from math import gcd
    denom_lcm = 1
    for v in list(e.coeffs.values()) + [e.const]:
        denom_lcm = denom_lcm * v.denominator // gcd(denom_lcm,
                                                     v.denominator)
    scaled = e.scale(Fraction(denom_lcm))
    g = 0
    for v in scaled.coeffs.values():
        g = gcd(g, abs(int(v)))
    if g <= 1:
        return scaled
    coeffs = {k: v / g for k, v in scaled.coeffs.items()}
    # sum(c_i x_i) ≤ -const  ⇒  sum ≤ floor(-const / g) for integral sums.
    import math
    new_const = -Fraction(math.floor(-scaled.const / g))
    return LinExpr(coeffs, new_const)


def _fourier_motzkin(ineqs: list[LinExpr]) -> bool:
    """Return True iff the system  {e <= 0}  is unsatisfiable over Q.

    Complete over the rationals; with the integer tightening performed during
    translation this is a sound (if incomplete) integer unsat check.

    The elimination runs on an integer representation: after the initial
    :func:`_normalise_int` pass every coefficient is integral, and the
    positive combination ``|c_n|·p + c_p·n`` spans the same half-space as
    the rational ``p/c_p - n/c_n`` combination, so after gcd reduction the
    normalised constraints — and hence every pivot choice, size cutoff,
    and the final verdict — are identical to the rational-arithmetic
    formulation, while avoiding ~5 Fraction allocations per coefficient.
    Only the constant term stays a Fraction (Gaussian elimination upstream
    can make it non-integral)."""
    if MEMO.enabled:
        # Keys hash the Fraction constants as (numerator, denominator)
        # int pairs — Fraction.__hash__ computes a modular inverse and
        # shows up in profiles at this call volume.
        key = tuple((tuple(e.coeffs.items()),
                     e.const.numerator, e.const.denominator) for e in ineqs)
        hit = _FM_CACHE.get(key)
        if hit is None:
            hit = _fourier_motzkin_impl(ineqs)
            trim_cache(_FM_CACHE)
            _FM_CACHE[key] = hit
        return hit
    return _fourier_motzkin_impl(ineqs)


def _fourier_motzkin_impl(ineqs: list[LinExpr]) -> bool:
    # (coeffs: dict[Term, int], const: Fraction), mirroring LinExpr.
    work: list[tuple[dict, Fraction]] = []
    for e in ineqs:
        e = _normalise_int(e)
        work.append(({k: int(v) for k, v in e.coeffs.items()}, e.const))
    from math import floor, gcd
    for _round in range(_FM_VAR_LIMIT):
        if any(const > 0 for coeffs, const in work if not coeffs):
            return True
        work = [(coeffs, const) for coeffs, const in work if coeffs]
        if not work:
            return False
        # Choose the variable minimising the pos*neg product (Bland-ish).
        occurrence: dict[Term, tuple[int, int]] = {}
        for coeffs, _const in work:
            for k, v in coeffs.items():
                p, n = occurrence.get(k, (0, 0))
                occurrence[k] = (p + (v > 0), n + (v < 0))
        pivot = min(occurrence, key=lambda k: occurrence[k][0] * occurrence[k][1])
        with_pos = [e for e in work if e[0].get(pivot, 0) > 0]
        with_neg = [e for e in work if e[0].get(pivot, 0) < 0]
        new = [e for e in work if pivot not in e[0]]
        for pc, pconst in with_pos:
            a = pc[pivot]
            for nc, nconst in with_neg:
                b = nc[pivot]
                # p: a*x + r_p <= 0 (a>0) and n: b*x + r_n <= 0 (b<0)
                # combine positively to eliminate x:  -b*p + a*n <= 0.
                out = {k: -b * v for k, v in pc.items()}
                for k, v in nc.items():
                    s = out.get(k, 0) + a * v
                    if s == 0:
                        out.pop(k, None)
                    else:
                        out[k] = s
                const = -b * pconst + a * nconst
                # Normalise (same algebra as _normalise_int): make the
                # constant integral, divide by the coefficient gcd, floor.
                if out:
                    lcm = const.denominator
                    if lcm != 1:
                        out = {k: v * lcm for k, v in out.items()}
                        const = const * lcm
                    g = 0
                    for v in out.values():
                        g = gcd(g, abs(v))
                    if g > 1:
                        out = {k: v // g for k, v in out.items()}
                        const = -Fraction(floor(-const / g))
                new.append((out, const))
        if len(new) > _FM_SIZE_LIMIT:
            return False  # give up (incomplete, but sound: "not proved")
        work = new
    return False


# ------------------------------------------------------------------
# RC_COMPILE: the integer elimination kernel.
#
# The interpreted pipeline above manipulates ``LinExpr`` objects with
# ``Fraction`` coefficients through Gaussian elimination and only drops
# to integers inside Fourier--Motzkin.  The compiled kernel converts
# every constraint to an integer row *once* (cached on the Constraint),
# keeps Gaussian elimination integral by combining rows as
# ``|p|·x − sign(p)·x_p·e`` (a positive multiple of the rational
# substitution), and runs FM with integer constants throughout.
#
# Equivalence: every compiled row is a positive multiple ``c·r`` of its
# rational counterpart ``r`` (conversion scales by the denominator lcm;
# the Gauss combination multiplies by ``|p|``; gcd reductions divide
# exactly).  Positive scaling preserves which coefficients are zero, the
# dict insertion order (and hence every pivot choice), the sign of
# constant-only rows, and the normalised form: gcd-reducing ``c·r`` and
# flooring its constant yields the same primitive row as
# ``_normalise_int(r)``.  So the verdicts — including the size/round
# give-ups — are identical by construction, which the differential tests
# and the bench fingerprint assertions check.
# ------------------------------------------------------------------

# An integer row is (coeffs: dict[Term, int], const: int) denoting
# sum(coeff·atom) + const (<= 0 or == 0 depending on the carried kind).
IntRow = tuple[dict, int]


def _to_int_row(e: LinExpr) -> IntRow:
    """Scale a rational expression to the least positive integer multiple."""
    lcm = 1
    for v in e.coeffs.values():
        d = v.denominator
        if d != 1:
            lcm = lcm * d // gcd(lcm, d)
    d = e.const.denominator
    if d != 1:
        lcm = lcm * d // gcd(lcm, d)
    if lcm == 1:
        return ({k: v.numerator for k, v in e.coeffs.items()},
                e.const.numerator)
    return ({k: (v * lcm).numerator for k, v in e.coeffs.items()},
            (e.const * lcm).numerator)


def _int_row3(c: Constraint) -> tuple[str, dict, int]:
    """The (kind, coeffs, const) integer row of a constraint, computed once
    per Constraint object (constraints are shared via the memo tables)."""
    row = getattr(c, "_irow", None)
    if row is None:
        coeffs, const = _to_int_row(c.expr)
        row = (c.kind, coeffs, const)
        c._irow = row
        note_compiled()
    return row


def _gauss_int(rows: list[tuple[str, dict, int]]) -> Optional[list[IntRow]]:
    """Integer Gaussian elimination, mirroring :func:`_gauss_eliminate`.

    Returns the remaining inequality rows (each a positive multiple of
    the rational result), or ``None`` on an immediate contradiction."""
    eqs = [(coeffs, const) for kind, coeffs, const in rows if kind == "eq"]
    les = [(coeffs, const) for kind, coeffs, const in rows if kind == "le"]
    while eqs:
        coeffs, const = eqs.pop()
        if not coeffs:
            if const != 0:
                return None
            continue
        pivot = next(iter(coeffs))
        p = coeffs[pivot]
        a = p if p > 0 else -p
        s = 1 if p > 0 else -1

        def substitute(row: IntRow) -> IntRow:
            rc, rconst = row
            xp = rc.get(pivot)
            if xp is None:
                return row
            m = -s * xp
            out = {}
            for k, v in rc.items():
                if k != pivot:
                    out[k] = v * a
            for k, v in coeffs.items():
                if k == pivot:
                    continue
                nv = out.get(k, 0) + m * v
                if nv == 0:
                    out.pop(k, None)
                else:
                    out[k] = nv
            nconst = rconst * a + m * const
            # Exact gcd reduction keeps the integers small; the row stays
            # a positive multiple of its rational counterpart.
            g = 0
            for v in out.values():
                g = gcd(g, v if v > 0 else -v)
            g = gcd(g, nconst if nconst >= 0 else -nconst)
            if g > 1:
                out = {k: v // g for k, v in out.items()}
                nconst //= g
            return out, nconst

        eqs = [substitute(r) for r in eqs]
        les = [substitute(r) for r in les]
    return les


def _norm_int_row(row: IntRow) -> IntRow:
    """Integer-row form of :func:`_normalise_int`: primitive coefficients,
    floored constant."""
    coeffs, const = row
    if not coeffs:
        return row
    g = 0
    for v in coeffs.values():
        g = gcd(g, v if v > 0 else -v)
    if g <= 1:
        return row
    return {k: v // g for k, v in coeffs.items()}, -((-const) // g)


def _fm_int(rows: list[IntRow]) -> bool:
    """Integer Fourier--Motzkin unsat check (= :func:`_fourier_motzkin`)."""
    if MEMO.enabled:
        key = tuple((tuple(coeffs.items()), const) for coeffs, const in rows)
        hit = _FM_CACHE.get(key)
        if hit is None:
            hit = _fm_int_impl(rows)
            trim_cache(_FM_CACHE)
            _FM_CACHE[key] = hit
        return hit
    return _fm_int_impl(rows)


def _fm_int_impl(rows: list[IntRow]) -> bool:
    work = [_norm_int_row(r) for r in rows]
    for _round in range(_FM_VAR_LIMIT):
        if any(const > 0 for coeffs, const in work if not coeffs):
            return True
        work = [r for r in work if r[0]]
        if not work:
            return False
        occurrence: dict[Term, tuple[int, int]] = {}
        for coeffs, _const in work:
            for k, v in coeffs.items():
                p, n = occurrence.get(k, (0, 0))
                occurrence[k] = (p + (v > 0), n + (v < 0))
        pivot = min(occurrence, key=lambda k: occurrence[k][0] * occurrence[k][1])
        with_pos = [r for r in work if r[0].get(pivot, 0) > 0]
        with_neg = [r for r in work if r[0].get(pivot, 0) < 0]
        new = [r for r in work if pivot not in r[0]]
        for pc, pconst in with_pos:
            a = pc[pivot]
            for nc, nconst in with_neg:
                b = nc[pivot]
                out = {k: -b * v for k, v in pc.items()}
                for k, v in nc.items():
                    nv = out.get(k, 0) + a * v
                    if nv == 0:
                        out.pop(k, None)
                    else:
                        out[k] = nv
                const = -b * pconst + a * nconst
                if out:
                    g = 0
                    for v in out.values():
                        g = gcd(g, v if v > 0 else -v)
                    if g > 1:
                        out = {k: v // g for k, v in out.items()}
                        const = -((-const) // g)
                new.append((out, const))
        if len(new) > _FM_SIZE_LIMIT:
            return False
        work = new
    return False


def _hyp_rows(hyps: tuple) -> tuple:
    """Snapshot of a hypothesis context: (constraints, integer rows,
    atom set), assembled once per distinct ``hyps`` tuple."""
    if MEMO.enabled:
        hit = _HYPROWS_CACHE.get(hyps)
        if hit is not None:
            return hit
    atoms: set[Term] = set()
    constraints: list[Constraint] = []
    for h in hyps:
        cs = _to_constraints(h, atoms)
        if cs is not None:
            constraints.extend(cs)
    rows = tuple(_int_row3(c) for c in constraints)
    hit = (tuple(constraints), rows, frozenset(atoms))
    if MEMO.enabled:
        trim_cache(_HYPROWS_CACHE)
        _HYPROWS_CACHE[hyps] = hit
    return hit


def _div_axioms(hyp_constraints: list[Constraint], atoms: set[Term]
                ) -> list[Constraint]:
    """Conditional axioms for truncating division by a positive constant:
    when ``0 ≤ x`` is entailed (checked with a nested FM query), add
    ``c*d ≤ x ≤ c*d + c - 1`` for ``d = x / c`` (exact for truncation)."""
    out: list[Constraint] = []
    if COMPILE.enabled:
        hyp_rows = [_int_row3(c) for c in hyp_constraints]

    def entailed(e: LinExpr) -> bool:
        """Does hyps entail e <= 0?  (Refute hyps ∧ e >= 1.)"""
        neg_expr = e.scale(Fraction(-1)) + LinExpr({}, Fraction(1))
        if COMPILE.enabled:
            rows = hyp_rows + [("le", *_to_int_row(neg_expr))]
            remaining = _gauss_int(rows)
            return remaining is None or _fm_int(remaining)
        neg = Constraint(neg_expr, "le")
        system = _gauss_eliminate(hyp_constraints + [neg])
        return system is None or _fourier_motzkin(
            [q.expr for q in system])

    for atom in list(atoms):
        if isinstance(atom, App) and atom.op == "div":
            x_t, c_t = atom.args
            x = linearise(x_t, atoms)
            d = LinExpr({atom: Fraction(1)}, Fraction(0))
            if isinstance(c_t, Lit) and int(c_t.value) > 0:
                c = int(c_t.value)
                if not entailed(x.scale(Fraction(-1))):   # need 0 <= x
                    continue
                out.append(Constraint(d.scale(Fraction(c)) - x, "le"))
                out.append(Constraint(x - d.scale(Fraction(c))
                                      + LinExpr({}, Fraction(1 - c)), "le"))
            else:
                # Symbolic divisor: with 0 <= x and 1 <= c we still know
                # 0 <= x/c <= x.
                cexpr = linearise(c_t, atoms)
                if entailed(x.scale(Fraction(-1))) and \
                        entailed(LinExpr({}, Fraction(1)) - cexpr):
                    out.append(Constraint(d.scale(Fraction(-1)), "le"))
                    out.append(Constraint(d - x, "le"))
        if isinstance(atom, App) and atom.op in ("min", "max"):
            a = linearise(atom.args[0], atoms)
            b = linearise(atom.args[1], atoms)
            me = LinExpr({atom: Fraction(1)}, Fraction(0))
            # If the order of the operands is entailed, the min/max is
            # determined exactly.
            if entailed(a - b):       # a <= b
                out.append(Constraint(
                    (me - (b if atom.op == "max" else a)), "eq"))
            elif entailed(b - a):     # b <= a
                out.append(Constraint(
                    (me - (a if atom.op == "max" else b)), "eq"))
    return out


def _axioms_for(hyps: tuple[Term, ...], hyp_constraints: list[Constraint],
                atoms: set[Term]) -> list[Constraint]:
    """Bounding axioms for every opaque atom (mutates ``atoms``), memoized
    on (hyps, atoms) — ``hyp_constraints`` is a function of ``hyps``."""
    if not MEMO.enabled:
        out: list[Constraint] = []
        for a in list(atoms):
            out.extend(_atom_axioms(a, atoms))
        out.extend(_div_axioms(hyp_constraints, atoms))
        return out
    key = (tuple(hyps), frozenset(atoms))
    hit = _AXIOM_CACHE.get(key)
    if hit is None:
        local = set(atoms)
        axioms: list[Constraint] = []
        for a in list(local):
            axioms.extend(_atom_axioms(a, local))
        axioms.extend(_div_axioms(hyp_constraints, local))
        trim_cache(_AXIOM_CACHE)
        hit = (tuple(axioms), frozenset(local - atoms))
        _AXIOM_CACHE[key] = hit
    atoms |= hit[1]
    return list(hit[0])


def implies_linear(hyps: Iterable[Term], goal: Term) -> bool:
    """Decide whether the linear fragment of ``hyps`` entails ``goal``."""
    hyps = tuple(hyps)
    if not MEMO.enabled:
        return _implies_linear(hyps, goal)
    key = (hyps, goal)
    hit = _IMPLIES_CACHE.get(key, _MISS)
    if hit is _MISS:
        hit = _implies_linear(hyps, goal)
        trim_cache(_IMPLIES_CACHE)
        _IMPLIES_CACHE[key] = hit
    return hit


def _implies_linear(hyps: tuple[Term, ...], goal: Term) -> bool:
    if isinstance(goal, App) and goal.op == "and":
        hyps = list(hyps)
        return all(implies_linear(hyps, g) for g in goal.args)
    if isinstance(goal, App) and goal.op == "implies":
        return implies_linear(list(hyps) + [goal.args[0]], goal.args[1])
    # Integer disequality hypotheses require a case split (a ≠ b is a < b
    # or b < a); split on the first few.
    hyps = list(hyps)
    for i, h in enumerate(hyps):
        if isinstance(h, App) and h.op == "not":
            inner = h.args[0]
            if isinstance(inner, App) and inner.op == "eq" \
                    and inner.args[0].sort is Sort.INT:
                a, b = inner.args
                rest = hyps[:i] + hyps[i + 1:]
                return (implies_linear(rest + [App("lt", (a, b), Sort.BOOL)],
                                       goal)
                        and implies_linear(rest + [App("lt", (b, a),
                                                       Sort.BOOL)], goal))
    if COMPILE.enabled:
        # Compiled linear core: the hypothesis matrix is assembled once
        # per context (shared across every goal implication of a prove
        # call, including all conjuncts of an `and` goal) and the whole
        # refutation runs on integer rows.
        constraints, rows, hyp_atoms = _hyp_rows(tuple(hyps))
        atoms = set(hyp_atoms)
        neg_sets = _negate_to_constraint_sets(goal, atoms)
        if neg_sets is None:
            return False
        axioms = _axioms_for(hyps, list(constraints), atoms)
        ax_rows = [_int_row3(c) for c in axioms]
        hyp_ax = list(rows) + ax_rows
        for neg in neg_sets:
            remaining = _gauss_int(hyp_ax + [_int_row3(c) for c in neg])
            if remaining is None:
                continue  # equalities already contradictory: unsat
            if not _fm_int(remaining):
                return False
        return True
    atoms = set()
    hyp_constraints: list[Constraint] = []
    for h in hyps:
        cs = _to_constraints(h, atoms)
        if cs is not None:
            hyp_constraints.extend(cs)
    neg_sets = _negate_to_constraint_sets(goal, atoms)
    if neg_sets is None:
        return False
    # Lazy axioms for every opaque atom seen anywhere.  The axiom set —
    # including the nested entailment queries of _div_axioms — depends
    # only on (hyps, atoms), and consecutive queries under one Γ share
    # their hypotheses, so this is one of the hottest memoization points.
    axioms = _axioms_for(hyps, hyp_constraints, atoms)
    for neg in neg_sets:
        system = hyp_constraints + axioms + neg
        remaining = _gauss_eliminate(system)
        if remaining is None:
            continue  # equalities already contradictory: this disjunct unsat
        if not _fourier_motzkin([c.expr for c in remaining]):
            return False
    return True
