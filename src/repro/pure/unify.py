"""Syntactic first-order unification over refinement terms.

This implements the evar-instantiation heuristic of Lithium (paper §5,
"Handling of evars"): when a pure side condition is an equality, all evars
are unsealed and the two sides are unified, potentially instantiating evars.

As in the paper, unification is *syntactic* and may instantiate an evar under
a non-injective symbol (e.g. unifying ``len ?x`` with ``len l`` binds
``?x := l``); this can in principle turn a provable goal unprovable, which is
an accepted incompleteness of RefinedC (§5, §9).

Unlike Coq's unification we make one hygiene improvement that does not affect
the search discipline: candidate bindings are accumulated on a trail and
committed to the shared :class:`~repro.pure.terms.Subst` only if the whole
unification succeeds, so a failed attempt leaves no partial instantiation.
"""

from __future__ import annotations

from typing import Iterable

from .terms import App, EVar, Lit, Subst, Term, Var, app


def unify(a: Term, b: Term, subst: Subst, frozen: Iterable[int] = ()) -> bool:
    """Try to unify ``a`` and ``b`` modulo ``subst``.

    ``frozen`` is a set of evar ids that must not be instantiated (Lithium's
    *sealed* evars).  On success the new bindings are committed to ``subst``
    and ``True`` is returned; on failure ``subst`` is unchanged.
    """
    frozen_set = set(frozen)
    trail: dict[int, Term] = {}

    def walk(t: Term) -> Term:
        t = subst.resolve(t)
        while isinstance(t, EVar) and t.eid in trail:
            t = trail[t.eid]
        return t

    def occurs(ev: EVar, t: Term) -> bool:
        return any(isinstance(s, EVar) and s.eid == ev.eid
                   for s in walk_deep(t))

    def walk_deep(t: Term):
        t = walk(t)
        yield t
        if isinstance(t, App):
            for arg in t.args:
                yield from walk_deep(arg)

    def go(x: Term, y: Term) -> bool:
        x, y = walk(x), walk(y)
        if x == y:
            return True
        if isinstance(x, EVar) and x.eid not in frozen_set:
            if x.sort is not y.sort or occurs(x, y):
                return False
            trail[x.eid] = y
            return True
        if isinstance(y, EVar) and y.eid not in frozen_set:
            if y.sort is not x.sort or occurs(y, x):
                return False
            trail[y.eid] = x
            return True
        if isinstance(x, App) and isinstance(y, App):
            if x.op != y.op or len(x.args) != len(y.args):
                return False
            return all(go(xa, ya) for xa, ya in zip(x.args, y.args))
        return False

    if not go(a, b):
        return False
    for eid, t in trail.items():
        # Resolve through the rest of the trail before committing.
        resolved = _resolve_trail(t, trail, subst)
        subst.bind_evar(EVar(eid, resolved.sort), resolved)
    return True


def _resolve_trail(t: Term, trail: dict[int, Term], subst: Subst) -> Term:
    t = subst.resolve(t)
    if isinstance(t, EVar) and t.eid in trail:
        return _resolve_trail(trail[t.eid], trail, subst)
    if isinstance(t, App):
        new_args = tuple(_resolve_trail(a, trail, subst) for a in t.args)
        if new_args == t.args:
            return t
        if t.op.startswith("fn:") or t.op == "list_lit":
            return App(t.op, new_args, t.result_sort)
        return app(t.op, *new_args, sort=t.result_sort)
    return t
