"""Multiset / set solver — the analogue of std++'s ``multiset_solver`` and
``set_solver`` (paper §2.2 line 19, §7).

RefinedC counts a side condition as "manually" discharged whenever the user
must name a solver via ``rc::tactics`` (even if that solver then succeeds
automatically).  We reproduce that accounting: this solver is only consulted
when the annotation asks for it, and :mod:`repro.pure.solver` records which
engine closed each side condition.

The algorithm: saturate the hypotheses (rewriting multiset variables by their
defining equations, decomposing ``mall_ge``/membership facts over unions),
normalise both sides of the goal into union-of-parts form, cancel, and
discharge residual element-level obligations with the linear-arithmetic
backend.
"""

from __future__ import annotations

from typing import Iterable, Optional

from . import linarith
from .compiled import COMPILE
from .memo import MEMO, register_cache, trim_cache
from .simplify import _mset_parts, simplify
from .terms import App, Lit, Sort, Term, eq, le, mall_ge, mall_le

_MSET_CACHE: dict = register_cache({})
# The member-split search re-derives the same (hyps, goal, arith) subproofs
# along different branches of the case tree; caching them turns the
# exponential exploration into a DAG walk.
_MSET_PROVE_CACHE: dict = register_cache({})
# Saturation (``_ingest``) is itself deterministic in the constructor
# arguments and solver instances are immutable afterwards, so equal
# hypothesis tuples can share one instance.
_MSET_SOLVER_CACHE: dict = register_cache({})
_MISS = object()


def _get_solver(hyps: Iterable[Term]) -> "MultisetSolver":
    hyps = tuple(hyps)
    if not MEMO.enabled:
        return MultisetSolver(hyps)
    s = _MSET_SOLVER_CACHE.get(hyps)
    if s is None:
        s = MultisetSolver(hyps)
        trim_cache(_MSET_SOLVER_CACHE)
        _MSET_SOLVER_CACHE[hyps] = s
    return s

_SATURATION_ROUNDS = 4


class MultisetSolver:
    """Decide multiset goals under a hypothesis set."""

    def __init__(self, hyps: Iterable[Term]) -> None:
        hyps = list(hyps)
        # Instances are immutable after ``_ingest``; the constructor
        # arguments fully determine every later ``prove`` answer, so they
        # double as the memoization key.
        self._memo_key = tuple(hyps)
        self.rewrites: dict[Term, Term] = {}
        self.facts: list[Term] = []
        # RC_COMPILE: per-instance normal-form cache.  Only valid once
        # ``rewrites`` is final, i.e. after ``_ingest`` returns.
        self._norm_cache: dict[Term, Term] = {}
        self._frozen = False
        self._ingest(hyps)
        self._frozen = True

    def _ingest(self, hyps: Iterable[Term]) -> None:
        pending = [simplify(h) for h in hyps]
        for _ in range(_SATURATION_ROUNDS):
            next_pending: list[Term] = []
            for h in pending:
                h = self.normalise(h)
                if isinstance(h, App) and h.op == "eq":
                    a, b = h.args
                    # Orient var := expr (or uninterpreted-fn := expr, the
                    # "functional layer" pattern of §7 #3) when the lhs
                    # does not occur in the rhs.
                    oriented = False
                    for lhs, rhs in ((a, b), (b, a)):
                        rewritable = ((not isinstance(lhs, (App, Lit)))
                                      or (isinstance(lhs, App)
                                          and lhs.op.startswith("fn:")))
                        if rewritable and lhs not in rhs.subterms():
                            self.rewrites[lhs] = rhs
                            oriented = True
                            break
                    if not oriented or a.sort is not Sort.MSET:
                        self.facts.append(h)
                    continue
                if isinstance(h, App) and h.op in ("mall_ge", "mall_le"):
                    parts = _mset_parts(self.normalise_mset(h.args[0]))
                    if parts is not None and (len(parts) != 1 or parts[0] is not h.args[0]):
                        for p in parts:
                            next_pending.append(
                                App(h.op, (p, h.args[1]), Sort.BOOL))
                        continue
                    self.facts.append(h)
                    continue
                if isinstance(h, App) and h.op == "and":
                    next_pending.extend(h.args)
                    continue
                self.facts.append(h)
            if not next_pending:
                break
            pending = next_pending

    def normalise(self, t: Term) -> Term:
        """Apply the oriented hypothesis rewrites, then simplify."""
        cacheable = self._frozen and COMPILE.enabled
        if cacheable:
            hit = self._norm_cache.get(t)
            if hit is not None:
                return hit
        t0 = t
        changed = True
        guard = 0
        while changed and guard < 32:
            guard += 1
            t2 = self._rewrite(t)
            t2 = simplify(t2)
            changed = t2 != t
            t = t2
        if cacheable:
            self._norm_cache[t0] = t
        return t

    def normalise_mset(self, t: Term) -> Term:
        return self.normalise(t)

    def _rewrite(self, t: Term) -> Term:
        if t in self.rewrites:
            return self.rewrites[t]
        if isinstance(t, App):
            new_args = tuple(self._rewrite(a) for a in t.args)
            if new_args != t.args:
                from .terms import app
                if t.op.startswith("fn:") or t.op == "list_lit":
                    return App(t.op, new_args, t.result_sort)
                return app(t.op, *new_args, sort=t.result_sort)
        return t

    # ---------------------------------------------------------------
    def _arith_hyps(self) -> list[Term]:
        """Element-level arithmetic facts derivable from the saturated set:
        membership in a bounded part yields the element-level bound
        (k ∈ p ∧ mall_ge(p, b) ⇒ b ≤ k)."""
        out: list[Term] = []
        members: list[tuple[Term, Term]] = []
        bounds: list[tuple[str, Term, Term]] = []
        for f in self.facts:
            if f.sort is Sort.BOOL:
                out.append(f)
            if isinstance(f, App) and f.op == "mmember":
                members.append((f.args[0], self.normalise(f.args[1])))
            if isinstance(f, App) and f.op in ("mall_ge", "mall_le"):
                bounds.append((f.op, self.normalise(f.args[0]), f.args[1]))
        for k, part in members:
            for op, bpart, b in bounds:
                if bpart == part:
                    out.append(le(b, k) if op == "mall_ge" else le(k, b))
        return out

    def prove(self, goal: Term, arith_hyps: Iterable[Term] = ()) -> bool:
        """Try to prove a (multi)set goal."""
        extra = tuple(arith_hyps)
        if not MEMO.enabled:
            return self._prove(goal, extra)
        key = (self._memo_key, goal, extra)
        hit = _MSET_PROVE_CACHE.get(key, _MISS)
        if hit is _MISS:
            hit = self._prove(goal, extra)
            trim_cache(_MSET_PROVE_CACHE)
            _MSET_PROVE_CACHE[key] = hit
        return hit

    def _prove(self, goal: Term, arith_hyps: Iterable[Term]) -> bool:
        arith = list(arith_hyps) + self._arith_hyps()
        goal = self.normalise(goal)
        if isinstance(goal, Lit):
            return goal.value is True
        if linarith.implies_linear(arith, Lit(False)):
            return True  # contradictory hypotheses (e.g. after a case split)
        if isinstance(goal, App) and goal.op == "and":
            return all(self.prove(g, arith_hyps) for g in goal.args)
        if isinstance(goal, App) and goal.op == "or":
            if any(self.prove(g, arith_hyps) for g in goal.args):
                return True
            return self._prove_by_member_split(goal, arith)
        if isinstance(goal, App) and goal.op == "implies":
            return _get_solver(list(self.facts) + [goal.args[0]]).prove(
                goal.args[1], arith + [goal.args[0]])
        if isinstance(goal, App) and goal.op == "eq" \
                and goal.args[0].sort is Sort.BOOL:
            from .terms import implies
            a, b = goal.args
            return self.prove(implies(a, b), arith_hyps) \
                and self.prove(implies(b, a), arith_hyps)
        if isinstance(goal, App) and goal.op == "eq" and goal.args[0].sort is Sort.MSET:
            return self._prove_mset_eq(goal.args[0], goal.args[1], arith) \
                or self._prove_by_member_split(goal, arith)
        if isinstance(goal, App) and goal.op == "not":
            inner = goal.args[0]
            if isinstance(inner, App) and inner.op == "eq" \
                    and inner.args[0].sort is Sort.MSET:
                return self._prove_mset_ne(inner.args[0], inner.args[1],
                                           arith) \
                    or self._prove_by_member_split(goal, arith)
        if isinstance(goal, App) and goal.op in ("mall_ge", "mall_le"):
            return self._prove_all_bound(goal.op, goal.args[0], goal.args[1],
                                         arith) \
                or self._prove_by_member_split(goal, arith)
        if isinstance(goal, App) and goal.op == "mmember":
            return self._prove_member(goal.args[0], goal.args[1], arith) \
                or self._prove_by_member_split(goal, arith)
        # Residual arithmetic goal; if it fails, try a case split on a
        # membership hypothesis (k ∈ {[a]} ⊎ rest  ⇒  k = a ∨ k ∈ rest).
        if linarith.implies_linear(arith, goal):
            return True
        return self._prove_by_member_split(goal, arith)

    def _prove_mset_eq(self, a: Term, b: Term, arith: list[Term]) -> bool:
        pa = _mset_parts(self.normalise(a)) or []
        pb = _mset_parts(self.normalise(b)) or []
        rb = list(pb)
        residual_a: list[Term] = []
        for x in pa:
            if x in rb:
                rb.remove(x)
            else:
                residual_a.append(x)
        # Try matching residual singletons by provable equality of elements.
        for x in list(residual_a):
            if not (isinstance(x, App) and x.op == "msingle"):
                continue
            for y in list(rb):
                if isinstance(y, App) and y.op == "msingle" and \
                        linarith.implies_linear(arith, eq(x.args[0], y.args[0])):
                    residual_a.remove(x)
                    rb.remove(y)
                    break
        if not residual_a and not rb:
            return True
        # Residual opaque parts equal as known facts?
        fact = eq(self._build(residual_a), self._build(rb))
        return any(self.normalise(f) == simplify(fact) for f in self.facts)

    @staticmethod
    def _build(parts: list[Term]) -> Term:
        from .terms import app
        if not parts:
            return app("mempty")
        if len(parts) == 1:
            return parts[0]
        return app("munion", *parts)

    def _prove_mset_ne(self, a: Term, b: Term, arith: list[Term]) -> bool:
        pa = _mset_parts(self.normalise(a)) or [self.normalise(a)]
        pb = _mset_parts(self.normalise(b)) or [self.normalise(b)]
        # s ≠ ∅ holds when s contains a singleton part.
        if not pb:
            return any(isinstance(p, App) and p.op == "msingle" for p in pa)
        if not pa:
            return any(isinstance(p, App) and p.op == "msingle" for p in pb)
        return False

    def _prove_all_bound(self, op: str, s: Term, n: Term,
                         arith: list[Term]) -> bool:
        """Prove ``mall_ge(s, n)`` (every element ≥ n) or ``mall_le(s, n)``
        (every element ≤ n)."""
        parts = _mset_parts(self.normalise(s))
        if parts is None:
            parts = [self.normalise(s)]
        for p in parts:
            if isinstance(p, App) and p.op == "msingle":
                elem_goal = le(n, p.args[0]) if op == "mall_ge" \
                    else le(p.args[0], n)
                if not linarith.implies_linear(arith, elem_goal):
                    return False
                continue
            if isinstance(p, App) and p.op == "mempty":
                continue
            if not self._all_bound_from_facts(op, p, n, arith):
                return False
        return True

    def _all_bound_from_facts(self, op: str, part: Term, n: Term,
                              arith: list[Term]) -> bool:
        for f in self.facts:
            if isinstance(f, App) and f.op == op \
                    and self.normalise(f.args[0]) == part:
                side = le(n, f.args[1]) if op == "mall_ge" \
                    else le(f.args[1], n)
                if linarith.implies_linear(arith, side):
                    return True
        return False

    _SPLIT_DEPTH = 3

    def _prove_by_member_split(self, goal: Term, arith: list[Term],
                               depth: int = 0) -> bool:
        """Case-split over a membership hypothesis: from ``k ∈ s`` with
        ``s = {[a]} ⊎ rest``, prove the goal under ``k = a`` and under
        ``k ∈ rest``.  This is what std++'s set_solver does for the
        BST/member-style conditions (§7 #3)."""
        if depth >= self._SPLIT_DEPTH:
            return False
        for f in list(self.facts):
            cases: Optional[list[Term]] = None
            if isinstance(f, App) and f.op == "or":
                cases = list(f.args)
            elif isinstance(f, App) and f.op == "mmember":
                parts = _mset_parts(self.normalise(f.args[1]))
                if parts is not None and not (len(parts) == 1
                                              and parts[0] == f.args[1]):
                    k = f.args[0]
                    cases = [eq(k, p.args[0])
                             if isinstance(p, App) and p.op == "msingle"
                             else App("mmember", (k, p), Sort.BOOL)
                             for p in parts]
            if cases is None:
                continue
            ok = True
            for case_hyp in cases:
                sub_hyps = [h for h in self.facts if h != f] + [case_hyp]
                sub = _get_solver(sub_hyps)
                sub_arith = [h for h in arith if h != f] + [case_hyp]
                if sub.prove(goal, sub_arith):
                    continue
                if sub._prove_by_member_split(goal, sub_arith, depth + 1):
                    continue
                ok = False
                break
            if ok:
                return True
        return False

    def _prove_member(self, k: Term, s: Term, arith: list[Term]) -> bool:
        parts = _mset_parts(self.normalise(s)) or [self.normalise(s)]
        for p in parts:
            if isinstance(p, App) and p.op == "msingle" and \
                    linarith.implies_linear(arith, eq(k, p.args[0])):
                return True
            for f in self.facts:
                if isinstance(f, App) and f.op == "mmember" and \
                        self.normalise(f.args[1]) == p and \
                        linarith.implies_linear(arith, eq(k, f.args[0])):
                    return True
        return False


def multiset_solver(hyps: Iterable[Term], goal: Term) -> bool:
    """Entry point matching std++'s ``multiset_solver`` tactic."""
    hyps = tuple(hyps)
    if not MEMO.enabled:
        return _multiset_solver(hyps, goal)
    key = (hyps, goal)
    hit = _MSET_CACHE.get(key, _MISS)
    if hit is _MISS:
        hit = _multiset_solver(hyps, goal)
        trim_cache(_MSET_CACHE)
        _MSET_CACHE[key] = hit
    return hit


def _multiset_solver(hyps: tuple[Term, ...], goal: Term) -> bool:
    hyps = list(hyps)
    return _get_solver(hyps).prove(simplify(goal), hyps)


def set_solver(hyps: Iterable[Term], goal: Term) -> bool:
    """Entry point matching std++'s ``set_solver`` tactic.

    Sets are modelled as multisets here (the case studies use them for
    membership and union reasoning, where the semantics agree as long as
    idempotence is not needed; duplicates never arise in the generated
    conditions because keys are fresh on insertion).
    """
    return multiset_solver(hyps, goal)
