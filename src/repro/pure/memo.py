"""Central registry for the pure-stack memoization caches.

The hash-consed term engine (:mod:`repro.pure.terms`) makes structurally
equal terms pointer-identical, which turns every derived computation over
immutable terms — ``simplify``, hypothesis expansion, linearisation,
entailment checking — into a candidate for *observationally pure*
memoization: the cached result must be indistinguishable from recomputing
it (same value, same ``Stats`` counters, same error text).

This module owns the single global switch for those caches plus the
registry used to clear them:

* :data:`MEMO` — ``MEMO.enabled`` is consulted by every cache site before
  reading or writing a cache.  Disabling the switch reproduces the
  cache-free reference behaviour (used by ``scripts/bench_solver.py`` and
  the property tests to prove observational purity).
* :func:`register_cache` / :func:`register_clearer` — every cache
  registers itself so :func:`clear_pure_caches` can drop the lot.  The
  verification driver clears only the term *intern* tables between
  function checks (so the per-function ``terms_interned`` metric counts
  one function's constructions); the semantic memo caches survive across
  functions — they are purely syntactic, so cross-function hits are free
  speedup — and are bounded by :func:`trim_cache`.

Caches registered here must hold only *derived* data: clearing them at an
arbitrary point may cost performance but can never change a result.

The ``RC_PURE_CACHE`` environment variable (``0``/``false``/``off`` to
disable) sets the initial switch state, so whole test runs or benchmarks
can be executed cache-free without code changes.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator, MutableMapping

from ..trace import tracer as _trace

#: Default per-cache entry cap; a cache whose size exceeds its cap is
#: simply cleared (results are derived data, so this is always safe).
DEFAULT_CACHE_CAP = 1 << 18


class _MemoSwitch:
    """The global cache switch.  A tiny class (not a bare module global)
    so call sites can read ``MEMO.enabled`` after ``from .memo import
    MEMO`` and still observe later toggles."""

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled


def _env_enabled() -> bool:
    raw = os.environ.get("RC_PURE_CACHE", "1").strip().lower()
    return raw not in ("0", "false", "off", "no")


MEMO = _MemoSwitch(_env_enabled())

_CACHES: list[tuple[MutableMapping, int]] = []
_CLEARERS: list[Callable[[], None]] = []


def register_cache(cache: MutableMapping, cap: int = DEFAULT_CACHE_CAP
                   ) -> MutableMapping:
    """Register a memoization dict; returns it for assignment symmetry."""
    _CACHES.append((cache, cap))
    return cache


def register_clearer(fn: Callable[[], None]) -> Callable[[], None]:
    """Register a callback invoked by :func:`clear_pure_caches` (for
    caches that need more than ``dict.clear`` — e.g. the term intern
    tables, which re-seed their singletons)."""
    _CLEARERS.append(fn)
    return fn


def clear_pure_caches() -> None:
    """Drop every registered cache.  Observationally a no-op."""
    for cache, _cap in _CACHES:
        cache.clear()
    for fn in _CLEARERS:
        fn()


def trim_cache(cache: MutableMapping, cap: int = DEFAULT_CACHE_CAP) -> None:
    """Bound a cache's size by clearing it once it exceeds ``cap``."""
    if len(cache) > cap:
        entries = len(cache)
        cache.clear()
        tr = _trace.CURRENT
        if tr is not None:
            # Cache-pressure signal: a memo table hit its cap and was
            # dropped wholesale (derived data — safe, but a cold restart).
            tr.instant("memo", "trim", entries=entries, cap=cap)


def cache_enabled() -> bool:
    return MEMO.enabled


def set_cache_enabled(enabled: bool) -> bool:
    """Toggle all pure-stack caches; returns the previous state.

    Caches are cleared on every transition so a re-enabled run starts
    cold and a disabled run holds no memory."""
    previous = MEMO.enabled
    MEMO.enabled = bool(enabled)
    if previous != MEMO.enabled:
        clear_pure_caches()
    return previous


@contextmanager
def caches_disabled() -> Iterator[None]:
    """Context manager running its body with every pure cache off —
    the reference semantics used by the memoization property tests."""
    previous = set_cache_enabled(False)
    try:
        yield
    finally:
        set_cache_enabled(previous)
