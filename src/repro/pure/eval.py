"""Ground evaluation of refinement terms.

Used by the adequacy harness (:mod:`repro.proofs.adequacy`) to instantiate
specifications with concrete mathematical values, and by the property-based
tests to check that simplification and solving are semantics-preserving.

Value representations:

* ``INT``  -- Python ``int``
* ``BOOL`` -- Python ``bool``
* ``LOC``  -- ``(allocation_id: int, offset: int)`` tuples
* ``MSET`` -- ``collections.Counter`` over ints
* ``LIST`` -- Python ``tuple`` of ints
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Mapping

from .terms import App, EVar, Lit, Term, TermError, Var

GroundValue = Any


class EvalError(Exception):
    """Raised when a term cannot be evaluated (unbound variable, div by 0)."""


def evaluate(t: Term, env: Mapping[str, GroundValue]) -> GroundValue:
    """Evaluate ``t`` under ``env`` mapping variable names to ground values."""
    if isinstance(t, Lit):
        return t.value
    if isinstance(t, Var):
        if t.name not in env:
            raise EvalError(f"unbound variable {t.name}")
        return env[t.name]
    if isinstance(t, EVar):
        raise EvalError(f"cannot evaluate unresolved evar {t!r}")
    assert isinstance(t, App)
    if t.op.startswith("fn:"):
        fn = env.get(t.op)
        if fn is None:
            raise EvalError(f"uninterpreted function {t.op} not in environment")
        return fn(*(evaluate(a, env) for a in t.args))
    args = [evaluate(a, env) for a in t.args]
    return _apply(t.op, args, t)


def _apply(op: str, args: list[GroundValue], t: App) -> GroundValue:
    if op == "add":
        return sum(args)
    if op == "mul":
        out = 1
        for a in args:
            out *= a
        return out
    if op == "sub":
        return args[0] - args[1]
    if op == "neg":
        return -args[0]
    if op == "div":
        if args[1] == 0:
            raise EvalError("division by zero")
        q = abs(args[0]) // abs(args[1])
        return q if (args[0] >= 0) == (args[1] > 0) else -q
    if op == "mod":
        if args[1] == 0:
            raise EvalError("modulo by zero")
        return args[0] - args[1] * _apply("div", args, t)
    if op == "min":
        return min(args)
    if op == "max":
        return max(args)
    if op == "ite":
        return args[1] if args[0] else args[2]
    if op == "le":
        return args[0] <= args[1]
    if op == "lt":
        return args[0] < args[1]
    if op == "eq":
        return args[0] == args[1]
    if op == "not":
        return not args[0]
    if op == "and":
        return all(args)
    if op == "or":
        return any(args)
    if op == "implies":
        return (not args[0]) or args[1]
    if op == "loc_offset":
        aid, off = args[0]
        return (aid, off + args[1])
    if op == "mempty":
        return Counter()
    if op == "msingle":
        return Counter({args[0]: 1})
    if op == "munion":
        out: Counter = Counter()
        for a in args:
            out.update(a)
        return out
    if op == "msize":
        return sum(args[0].values())
    if op == "mmember":
        return args[1][args[0]] > 0
    if op == "mall_ge":
        return all(args[1] <= k for k in args[0].elements())
    if op == "mall_le":
        return all(k <= args[1] for k in args[0].elements())
    if op == "nil":
        return ()
    if op == "cons":
        return (args[0],) + tuple(args[1])
    if op == "append":
        return tuple(args[0]) + tuple(args[1])
    if op == "len":
        return len(args[0])
    if op == "head":
        if not args[0]:
            raise EvalError("head of empty list")
        return args[0][0]
    if op == "tail":
        if not args[0]:
            raise EvalError("tail of empty list")
        return tuple(args[0][1:])
    if op == "index":
        if not 0 <= args[1] < len(args[0]):
            raise EvalError("list index out of range")
        return args[0][args[1]]
    if op == "store":
        if not 0 <= args[1] < len(args[0]):
            raise EvalError("list store out of range")
        out = list(args[0])
        out[args[1]] = args[2]
        return tuple(out)
    if op == "list_lit":
        return tuple(args)
    if op == "sorted":
        return all(a <= b for a, b in zip(args[0], args[0][1:]))
    raise TermError(f"unknown op {op!r} in {t!r}")
