"""Normalisation of refinement terms and hypotheses.

Two mechanisms from the paper live here:

1. Term *normalisation* used before solving: distribute ``msize`` over
   multiset unions, ``len`` over list constructors, decompose structural
   equalities, etc.  These are equivalences, so they preserve provability
   (paper §5: "By default, this simplification mechanism applies
   equivalences and thus preserves provability").

2. Hypothesis *simplification* used by Lithium case (7c) when a pure fact is
   introduced into the context: e.g. ``xs ++ ys = []`` is split into
   ``xs = []`` and ``ys = []``, and ``mall_ge({[k]} ⊎ s, n)`` into
   ``n <= k`` and ``mall_ge(s, n)``.

The rule set is user-extensible (:func:`register_hyp_rule`), mirroring the
paper's extensible ``autorewrite``/typeclass mechanism.
"""

from __future__ import annotations

from typing import Callable, Optional

from .compiled import COMPILE, note_compiled
from .memo import MEMO, register_cache, trim_cache
from .terms import (App, Lit, Sort, Term, add, and_, app, eq, intlit, le,
                    mall_ge, mall_le, msize, not_, sub)

_set = object.__setattr__

# Memoization over interned terms: simplify is a pure function of its
# (immutable, hash-consed) argument, so caching term -> normal form is
# observationally invisible.  The cache is registered with the central
# registry and cleared per function check by the driver.
_SIMPLIFY_CACHE: dict[Term, Term] = register_cache({})
_HYP_CACHE: dict[Term, tuple[Term, ...]] = register_cache({})


def simplify(t: Term) -> Term:
    """Normalise a term bottom-up.  Idempotent and semantics-preserving.

    With ``RC_COMPILE`` on, each interned node dispatches through a flat
    per-operator closure table and remembers its normal form in a slot on
    the node itself (``_simp``) — the compiled form of the term.  The
    node slot dies with the intern table (cleared per function check);
    the dict cache persists across functions, so both are consulted.
    """
    if not isinstance(t, App):
        return t
    if COMPILE.enabled:
        hit = getattr(t, "_simp", None)
        if hit is not None:
            return hit
        return _simplify_compiled(t)
    if MEMO.enabled:
        hit = _SIMPLIFY_CACHE.get(t)
        if hit is not None:
            return hit
    args = tuple(simplify(a) for a in t.args)
    if t.op.startswith("fn:") or t.op == "list_lit":
        t2: Term = App(t.op, args, t.result_sort)
    else:
        t2 = app(t.op, *args, sort=t.result_sort)
    if isinstance(t2, App):
        out = _simplify_node(t2)
        if out is not t2:
            out = simplify(out)
    else:
        out = t2
    if MEMO.enabled:
        trim_cache(_SIMPLIFY_CACHE)
        _SIMPLIFY_CACHE[t] = out
    return out


def _simplify_compiled(t: Term) -> Term:
    """Compiled simplify: same recursion, flat closure dispatch, results
    attached to the interned nodes."""
    if not isinstance(t, App):
        return t
    hit = getattr(t, "_simp", None)
    if hit is not None:
        return hit
    if MEMO.enabled:
        hit = _SIMPLIFY_CACHE.get(t)
        if hit is not None:
            _set(t, "_simp", hit)
            return hit
    args = tuple(_simplify_compiled(a) for a in t.args)
    op = t.op
    if op.startswith("fn:") or op == "list_lit":
        t2: Term = App(op, args, t.result_sort)
    else:
        t2 = app(op, *args, sort=t.result_sort)
    if isinstance(t2, App):
        handler = _NODE_RULES.get(t2.op)
        out = handler(t2) if handler is not None else t2
        if out is not t2:
            out = _simplify_compiled(out)
    else:
        out = t2
    _set(t, "_simp", out)
    note_compiled()
    if MEMO.enabled:
        trim_cache(_SIMPLIFY_CACHE)
        _SIMPLIFY_CACHE[t] = out
    return out


def _mset_parts(t: Term) -> Optional[list[Term]]:
    """Flatten a multiset term into union parts; None if not constructor-led."""
    if isinstance(t, App):
        if t.op == "mempty":
            return []
        if t.op == "munion":
            out: list[Term] = []
            for a in t.args:
                sub_parts = _mset_parts(a)
                if sub_parts is None:
                    out.append(a)
                else:
                    out.extend(sub_parts)
            return out
        if t.op == "msingle":
            return [t]
    return [t] if t.sort is Sort.MSET else None


def _list_parts(t: Term) -> list[Term]:
    """Flatten a list term into append-parts (cons cells kept as parts)."""
    if isinstance(t, App) and t.op == "append":
        return _list_parts(t.args[0]) + _list_parts(t.args[1])
    if isinstance(t, App) and t.op == "nil":
        return []
    return [t]


def _simplify_node(t: App) -> Term:
    op, args = t.op, t.args
    if op == "list_lit":
        # Canonicalise literal lists to cons chains.
        out: Term = app("nil")
        for x in reversed(args):
            out = app("cons", x, out)
        return out
    if op == "msize":
        inner = args[0]
        if isinstance(inner, App):
            if inner.op == "mempty":
                return intlit(0)
            if inner.op == "msingle":
                return intlit(1)
            if inner.op == "munion":
                return add(*(msize(a) for a in inner.args))
    if op == "len":
        inner = args[0]
        if isinstance(inner, App):
            if inner.op == "nil":
                return intlit(0)
            if inner.op == "cons":
                return add(intlit(1), app("len", inner.args[1]))
            if inner.op == "append":
                return add(app("len", inner.args[0]), app("len", inner.args[1]))
            if inner.op == "list_lit":
                return intlit(len(inner.args))
    if op == "sub":
        a, b = args
        # Cancel an additive component:  (x + b + ...) - b  =  x + ...
        a_parts = list(a.args) if isinstance(a, App) and a.op == "add" else [a]
        b_parts = list(b.args) if isinstance(b, App) and b.op == "add" else [b]
        remaining = list(a_parts)
        cancelled = True
        for bp in b_parts:
            if bp in remaining:
                remaining.remove(bp)
            elif isinstance(bp, Lit):
                lit = next((x for x in remaining if isinstance(x, Lit)), None)
                if lit is None:
                    cancelled = False
                    break
                remaining.remove(lit)
                remaining.append(intlit(int(lit.value) - int(bp.value)))
            else:
                cancelled = False
                break
        if cancelled:
            if not remaining:
                return intlit(0)
            return add(*remaining)
    if op == "append":
        a, b = args
        if isinstance(a, App) and a.op == "nil":
            return b
        if isinstance(b, App) and b.op == "nil":
            return a
        if isinstance(a, App) and a.op == "cons":
            return app("cons", a.args[0], app("append", a.args[1], b))
        if isinstance(a, App) and a.op == "list_lit" and a.args:
            out = b
            for x in reversed(a.args):
                out = app("cons", x, out)
            return out
        if isinstance(a, App) and a.op == "append":
            return app("append", a.args[0], app("append", a.args[1], b))
    if op == "head" and isinstance(args[0], App) and args[0].op == "cons":
        return args[0].args[0]
    if op == "tail" and isinstance(args[0], App) and args[0].op == "cons":
        return args[0].args[1]
    if op == "index" and isinstance(args[0], App) and args[0].op == "cons" \
            and isinstance(args[1], Lit):
        i = int(args[1].value)
        if i == 0:
            return args[0].args[0]
        return app("index", args[0].args[1], intlit(i - 1))
    if op == "index" and isinstance(args[0], App) and args[0].op == "store":
        xs, i, v = args[0].args
        j = args[1]
        if i == j:
            return v
        if isinstance(i, Lit) and isinstance(j, Lit):
            return app("index", xs, j)
    if op == "len" and isinstance(args[0], App) and args[0].op == "store":
        return app("len", args[0].args[0])
    if op == "implies" and args[1] == Lit(False):
        return not_(args[0])
    if op == "eq":
        decomposed = _decompose_eq(args[0], args[1])
        if decomposed is not None:
            return decomposed
    if op == "mall_ge":
        s, n = args
        if isinstance(s, App):
            if s.op == "mempty":
                return Lit(True)
            if s.op == "msingle":
                return le(n, s.args[0])
            if s.op == "munion":
                return and_(*(mall_ge(a, n) for a in s.args))
    if op == "mall_le":
        s, n = args
        if isinstance(s, App):
            if s.op == "mempty":
                return Lit(True)
            if s.op == "msingle":
                return le(s.args[0], n)
            if s.op == "munion":
                return and_(*(mall_le(a, n) for a in s.args))
    if op == "mmember":
        k, s = args
        if isinstance(s, App):
            if s.op == "mempty":
                return Lit(False)
            if s.op == "msingle":
                return eq(k, s.args[0])
            if s.op == "munion":
                return app("or", *(app("mmember", k, a) for a in s.args))
    return t


# ------------------------------------------------------------------
# Compiled node rules (RC_COMPILE): one closure per App head, together
# equivalent to the `_simplify_node` if-chain above.  Each closure takes
# the canonicalised node and returns the rewritten term, or the node
# itself when no rewrite applies — the same contract `_simplify_node`
# satisfies, just dispatched through one dict hit instead of a linear
# scan over every operator's guard.  The differential test suite checks
# closure-for-branch equivalence on random terms.
# ------------------------------------------------------------------


def _c_list_lit(t: App) -> Term:
    out: Term = app("nil")
    for x in reversed(t.args):
        out = app("cons", x, out)
    return out


def _c_msize(t: App) -> Term:
    inner = t.args[0]
    if isinstance(inner, App):
        if inner.op == "mempty":
            return intlit(0)
        if inner.op == "msingle":
            return intlit(1)
        if inner.op == "munion":
            return add(*(msize(a) for a in inner.args))
    return t


def _c_len(t: App) -> Term:
    inner = t.args[0]
    if isinstance(inner, App):
        if inner.op == "nil":
            return intlit(0)
        if inner.op == "cons":
            return add(intlit(1), app("len", inner.args[1]))
        if inner.op == "append":
            return add(app("len", inner.args[0]), app("len", inner.args[1]))
        if inner.op == "list_lit":
            return intlit(len(inner.args))
        if inner.op == "store":
            return app("len", inner.args[0])
    return t


def _c_sub(t: App) -> Term:
    a, b = t.args
    a_parts = list(a.args) if isinstance(a, App) and a.op == "add" else [a]
    b_parts = list(b.args) if isinstance(b, App) and b.op == "add" else [b]
    remaining = list(a_parts)
    for bp in b_parts:
        if bp in remaining:
            remaining.remove(bp)
        elif isinstance(bp, Lit):
            lit = next((x for x in remaining if isinstance(x, Lit)), None)
            if lit is None:
                return t
            remaining.remove(lit)
            remaining.append(intlit(int(lit.value) - int(bp.value)))
        else:
            return t
    if not remaining:
        return intlit(0)
    return add(*remaining)


def _c_append(t: App) -> Term:
    a, b = t.args
    if isinstance(a, App) and a.op == "nil":
        return b
    if isinstance(b, App) and b.op == "nil":
        return a
    if isinstance(a, App) and a.op == "cons":
        return app("cons", a.args[0], app("append", a.args[1], b))
    if isinstance(a, App) and a.op == "list_lit" and a.args:
        out = b
        for x in reversed(a.args):
            out = app("cons", x, out)
        return out
    if isinstance(a, App) and a.op == "append":
        return app("append", a.args[0], app("append", a.args[1], b))
    return t


def _c_head(t: App) -> Term:
    if isinstance(t.args[0], App) and t.args[0].op == "cons":
        return t.args[0].args[0]
    return t


def _c_tail(t: App) -> Term:
    if isinstance(t.args[0], App) and t.args[0].op == "cons":
        return t.args[0].args[1]
    return t


def _c_index(t: App) -> Term:
    xs0, j = t.args
    if isinstance(xs0, App) and xs0.op == "cons" and isinstance(j, Lit):
        i = int(j.value)
        if i == 0:
            return xs0.args[0]
        return app("index", xs0.args[1], intlit(i - 1))
    if isinstance(xs0, App) and xs0.op == "store":
        xs, i, v = xs0.args
        if i == j:
            return v
        if isinstance(i, Lit) and isinstance(j, Lit):
            return app("index", xs, j)
    return t


def _c_implies(t: App) -> Term:
    if t.args[1] == Lit(False):
        return not_(t.args[0])
    return t


def _c_eq(t: App) -> Term:
    decomposed = _decompose_eq(t.args[0], t.args[1])
    return t if decomposed is None else decomposed


def _c_mall_ge(t: App) -> Term:
    s, n = t.args
    if isinstance(s, App):
        if s.op == "mempty":
            return Lit(True)
        if s.op == "msingle":
            return le(n, s.args[0])
        if s.op == "munion":
            return and_(*(mall_ge(a, n) for a in s.args))
    return t


def _c_mall_le(t: App) -> Term:
    s, n = t.args
    if isinstance(s, App):
        if s.op == "mempty":
            return Lit(True)
        if s.op == "msingle":
            return le(s.args[0], n)
        if s.op == "munion":
            return and_(*(mall_le(a, n) for a in s.args))
    return t


def _c_mmember(t: App) -> Term:
    k, s = t.args
    if isinstance(s, App):
        if s.op == "mempty":
            return Lit(False)
        if s.op == "msingle":
            return eq(k, s.args[0])
        if s.op == "munion":
            return app("or", *(app("mmember", k, a) for a in s.args))
    return t


_NODE_RULES: dict[str, Callable[[App], Term]] = {
    "list_lit": _c_list_lit,
    "msize": _c_msize,
    "len": _c_len,
    "sub": _c_sub,
    "append": _c_append,
    "head": _c_head,
    "tail": _c_tail,
    "index": _c_index,
    "implies": _c_implies,
    "eq": _c_eq,
    "mall_ge": _c_mall_ge,
    "mall_le": _c_mall_le,
    "mmember": _c_mmember,
}


def _decompose_eq(a: Term, b: Term) -> Optional[Term]:
    """Structural decomposition of constructor-led equalities."""
    if a.sort is Sort.LIST:
        if isinstance(a, App) and isinstance(b, App):
            if a.op == "cons" and b.op == "cons":
                return and_(eq(a.args[0], b.args[0]), eq(a.args[1], b.args[1]))
            if {a.op, b.op} == {"cons", "nil"}:
                return Lit(False)
            if a.op == "nil" and b.op == "nil":
                return Lit(True)
            # xs ++ ys = []  <->  xs = [] ∧ ys = []  (an equivalence)
            for x, y in ((a, b), (b, a)):
                if y.op == "nil" and x.op == "append":
                    return and_(eq(x.args[0], app("nil")),
                                eq(x.args[1], app("nil")))
                if y.op == "nil" and x.op == "list_lit" and x.args:
                    return Lit(False)
                if y.op == "nil" and x.op == "store":
                    return eq(x.args[0], app("nil"))
    if a.sort is Sort.MSET:
        pa, pb = _mset_parts(a), _mset_parts(b)
        if pa is not None and pb is not None:
            # Cancel syntactically equal parts from both sides.
            rb = list(pb)
            ra: list[Term] = []
            for x in pa:
                if x in rb:
                    rb.remove(x)
                else:
                    ra.append(x)
            if len(ra) != len(pa):  # progress was made
                return _rebuild_mset_eq(ra, rb)
            # {[x]} = {[y]}  <->  x = y
            if len(ra) == 1 and len(rb) == 1 and \
                    all(isinstance(p, App) and p.op == "msingle" for p in (ra[0], rb[0])):
                return eq(ra[0].args[0], rb[0].args[0])
            if not ra and any(isinstance(p, App) and p.op == "msingle" for p in rb):
                return Lit(False)
            if not rb and any(isinstance(p, App) and p.op == "msingle" for p in ra):
                return Lit(False)
    return None


def _rebuild_mset_eq(ra: list[Term], rb: list[Term]) -> Term:
    def build(parts: list[Term]) -> Term:
        if not parts:
            return app("mempty")
        return app("munion", *parts) if len(parts) > 1 else parts[0]
    return eq(build(ra), build(rb))


# ------------------------------------------------------------------
# Hypothesis simplification (Lithium case (7c)).
# ------------------------------------------------------------------

HypRule = Callable[[Term], Optional[list[Term]]]
_HYP_RULES: list[HypRule] = []

# Bumped on every rule registration; compiled decompositions attached to
# term nodes carry the generation they were computed under, so a stale
# one is recomputed rather than replayed.
_HYP_GEN = 0


def register_hyp_rule(rule: HypRule) -> None:
    """Register a user-extensible hypothesis simplification rule.

    A rule takes a hypothesis and returns a list of replacement hypotheses,
    or ``None`` if it does not apply.  Rules should be equivalences unless
    the user deliberately opts into implications (the paper's escape hatch).
    """
    global _HYP_GEN
    _HYP_RULES.append(rule)
    # Cached decompositions may be stale w.r.t. the new rule set.
    _HYP_CACHE.clear()
    _HYP_GEN += 1


def simplify_hyp(phi: Term) -> list[Term]:
    """Normalise a hypothesis into a list of simpler hypotheses."""
    if COMPILE.enabled and isinstance(phi, App):
        hit = getattr(phi, "_hypx", None)
        if hit is not None and hit[0] == _HYP_GEN:
            return list(hit[1])
    if MEMO.enabled:
        hit = _HYP_CACHE.get(phi)
        if hit is not None:
            if COMPILE.enabled and isinstance(phi, App):
                _set(phi, "_hypx", (_HYP_GEN, hit))
            return list(hit)
    out = _simplify_hyp(phi)
    if COMPILE.enabled and isinstance(phi, App):
        _set(phi, "_hypx", (_HYP_GEN, tuple(out)))
        note_compiled()
    if MEMO.enabled:
        trim_cache(_HYP_CACHE)
        _HYP_CACHE[phi] = tuple(out)
    return out


def _simplify_hyp(phi: Term) -> list[Term]:
    phi = simplify(phi)
    if isinstance(phi, Lit) and phi.value is True:
        return []
    if isinstance(phi, App) and phi.op == "and":
        out: list[Term] = []
        for a in phi.args:
            out.extend(simplify_hyp(a))
        return out
    for rule in _HYP_RULES:
        repl = rule(phi)
        if repl is not None:
            out = []
            for r in repl:
                out.extend(simplify_hyp(r))
            return out
    return [phi]


def _rule_append_nil(phi: Term) -> Optional[list[Term]]:
    """``xs ++ ys = []``  ~~>  ``xs = []`` and ``ys = []`` (and symmetric)."""
    if not (isinstance(phi, App) and phi.op == "eq"):
        return None
    a, b = phi.args
    if a.sort is not Sort.LIST:
        return None
    for x, y in ((a, b), (b, a)):
        if isinstance(y, App) and y.op == "nil" and isinstance(x, App) and x.op == "append":
            return [eq(x.args[0], app("nil")), eq(x.args[1], app("nil"))]
    return None


def _rule_munion_empty(phi: Term) -> Optional[list[Term]]:
    """``a ⊎ b = ∅``  ~~>  ``a = ∅`` and ``b = ∅`` (and symmetric)."""
    if not (isinstance(phi, App) and phi.op == "eq"):
        return None
    a, b = phi.args
    if a.sort is not Sort.MSET:
        return None
    for x, y in ((a, b), (b, a)):
        if isinstance(y, App) and y.op == "mempty" and isinstance(x, App) and x.op == "munion":
            return [eq(p, app("mempty")) for p in x.args]
    return None


register_hyp_rule(_rule_append_nil)
register_hyp_rule(_rule_munion_empty)
