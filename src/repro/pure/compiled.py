"""The ``RC_COMPILE`` switch: compiled fast paths for the hot loops.

Where :mod:`repro.pure.memo` makes repeated work cheap by *caching*,
this switch makes first-time work cheap by *compiling*: the rule
registry snapshots its wildcard-resolution order into a flat dispatch
table, ``simplify`` runs per-operator closures and stores results on
the interned term nodes themselves, and linear arithmetic runs Gaussian
and Fourier--Motzkin elimination on integer rows instead of
``Fraction``-valued ``LinExpr`` chains.

Every compiled path is observationally identical to the interpreted
one — same outcomes, same ``Stats.counters()``, same error text — which
``scripts/bench_solver.py`` and the differential test suites assert.
The switch exists so that claim stays checkable: ``RC_COMPILE=0`` (or
:func:`set_compile_enabled`) restores the interpreted reference
implementation wholesale.

Telemetry: :func:`compiled_count` counts term nodes whose compiled form
(normal form, hypothesis decomposition, or linear row) was computed and
attached to the node.  Like ``intern_count`` it feeds a per-function
metric (``terms_compiled``) that is excluded from ``Stats.counters()``
so fingerprints stay deterministic across configs.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator


def _env_enabled() -> bool:
    raw = os.environ.get("RC_COMPILE", "1").strip().lower()
    return raw not in ("0", "false", "off", "no")


class _CompileSwitch:
    """Mutable holder so every module sees toggles immediately."""

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled


COMPILE = _CompileSwitch(_env_enabled())

_TERMS_COMPILED = 0


def note_compiled(n: int = 1) -> None:
    """Record that a term node's compiled form was just materialised."""
    global _TERMS_COMPILED
    _TERMS_COMPILED += n


def compiled_count() -> int:
    """Total compiled-form materialisations in this process (telemetry)."""
    return _TERMS_COMPILED


def compile_enabled() -> bool:
    return COMPILE.enabled


def set_compile_enabled(enabled: bool) -> bool:
    """Flip the compiled fast paths on/off; returns the previous setting.

    Transitioning clears the pure-stack caches: compiled and interpreted
    modes produce identical values, but benchmarks and differential
    tests want each mode measured from a cold start, and the flush keeps
    any future divergence bug from hiding behind a warm cache.
    """
    prev = COMPILE.enabled
    if prev != bool(enabled):
        COMPILE.enabled = bool(enabled)
        from .memo import clear_pure_caches
        clear_pure_caches()
    return prev


@contextmanager
def compile_disabled() -> Iterator[None]:
    """Run a block on the interpreted reference path."""
    prev = set_compile_enabled(False)
    try:
        yield
    finally:
        set_compile_enabled(prev)
