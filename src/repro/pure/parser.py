"""Parser for the refinement-term language used inside ``[[rc::...]]``
annotations.

The paper embeds Coq snippets in curly braces (``{n ≤ a}``, ``{s = {[n]} ⊎
tail}``, ``{∀ k, k ∈ tail → n ≤ k}``).  We support the same surface syntax
(including the Unicode operators used in the paper) plus ASCII equivalents:

=============================  =============================
paper / unicode                ASCII equivalent
=============================  =============================
``≤``  ``≥``  ``≠``            ``<=``  ``>=``  ``!=``
``∧``  ``∨``  ``→``            ``&&``  ``||``  ``->``
``⊎`` (multiset union)         ``(+)``
``∅`` (empty multiset)         ``0mset``
``∈`` (membership)             ``in``
``∀ k, k ∈ s → n ≤ k``         ``forall k, k in s -> n <= k``
=============================  =============================

``{[e]}`` is the singleton multiset, ``[]`` the empty list, ``e1 :: e2``
cons, ``e1 ++ e2`` append.  The universally quantified membership pattern is
recognised specially and compiled to the ``mall_ge`` operator (general
binders are out of scope, as for RefinedC's default solver).
"""

from __future__ import annotations

import re
from typing import Callable, Mapping, Optional

from . import terms as T
from .terms import Sort, Term


class SpecParseError(Exception):
    """Raised on malformed annotation expressions."""


_TOKEN_RE = re.compile(r"""
      (?P<num>\d+)
    | (?P<msingle_open>\{\[)
    | (?P<msingle_close>\]\})
    | (?P<op><=|>=|!=|==|\(\+\)|\+\+|::|&&|\|\||->|[≤≥≠∧∨→⊎∅∈∀?:+\-*/%<>=(),\[\]])
    | (?P<ident>[A-Za-z_][A-Za-z_0-9']*)
    | (?P<ws>\s+)
""", re.VERBOSE)

_SORT_NAMES: dict[str, tuple[Sort, bool]] = {
    "nat": (Sort.INT, True),
    "int": (Sort.INT, False),
    "Z": (Sort.INT, False),
    "loc": (Sort.LOC, False),
    "bool": (Sort.BOOL, False),
    "gmultiset nat": (Sort.MSET, False),
    "gmultiset Z": (Sort.MSET, False),
    "mset": (Sort.MSET, False),
    "list nat": (Sort.LIST, False),
    "list Z": (Sort.LIST, False),
    "list": (Sort.LIST, False),
}


def parse_sort(text: str) -> tuple[Sort, bool]:
    """Parse a sort annotation like ``nat`` or ``{gmultiset nat}``.

    Returns ``(sort, is_nat)`` where ``is_nat`` requests an implicit
    non-negativity hypothesis.
    """
    text = text.strip()
    if text.startswith("{") and text.endswith("}"):
        text = text[1:-1].strip()
    if text not in _SORT_NAMES:
        raise SpecParseError(f"unknown sort {text!r}")
    return _SORT_NAMES[text]


def tokenize(text: str) -> list[str]:
    out: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise SpecParseError(f"cannot tokenise {text[pos:]!r}")
        pos = m.end()
        if m.lastgroup != "ws":
            out.append(m.group(0))
    return out


_NORMALISE = {
    "≤": "<=", "≥": ">=", "≠": "!=", "∧": "&&", "∨": "||", "→": "->",
    "⊎": "(+)", "∈": "in", "∀": "forall", "==": "=",
}

# Binary operator precedence (looser binds weaker).
_PRECEDENCE: list[list[str]] = [
    ["->"],
    ["||"],
    ["&&"],
    ["=", "!=", "<=", "<", ">=", ">", "in"],
    ["(+)", "++", "::"],
    ["+", "-"],
    ["*", "/", "%"],
]

_FUNCTIONS: dict[str, Callable[..., Term]] = {
    "len": T.length,
    "length": T.length,
    "msize": T.msize,
    "size": T.msize,
    "min": lambda a, b: T.app("min", a, b),
    "max": lambda a, b: T.app("max", a, b),
    "head": lambda l: T.app("head", l),
    "tail": lambda l: T.app("tail", l),
    "index": lambda l, i: T.app("index", l, i),
    "store": lambda l, i, v: T.app("store", l, i, v),
    "sorted": lambda l: T.app("sorted", l),
}


class _Parser:
    def __init__(self, tokens: list[str], env: Mapping[str, Term],
                 constants: Optional[Mapping[str, Term]] = None,
                 fn_sorts: Optional[Mapping[str, Sort]] = None) -> None:
        self.tokens = [_NORMALISE.get(t, t) for t in tokens]
        self.pos = 0
        self.env = env
        self.constants = constants or {}
        self.fn_sorts = fn_sorts or {}

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise SpecParseError("unexpected end of expression")
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise SpecParseError(f"expected {tok!r}, got {got!r}")

    # ------------------------------------------------------------
    def parse(self) -> Term:
        t = self.parse_ternary()
        if self.peek() is not None:
            raise SpecParseError(f"trailing tokens: {self.tokens[self.pos:]!r}")
        return t

    def parse_ternary(self) -> Term:
        cond = self.parse_binary(0)
        if self.peek() == "?":
            self.next()
            then = self.parse_ternary()
            self.expect(":")
            els = self.parse_ternary()
            return T.ite(cond, then, els)
        return cond

    def parse_binary(self, level: int) -> Term:
        if level >= len(_PRECEDENCE):
            return self.parse_unary()
        lhs = self.parse_binary(level + 1)
        ops = _PRECEDENCE[level]
        while self.peek() in ops:
            op = self.next()
            # ``->``, ``::``, ``++`` and ``(+)`` are right-associative
            # (matching Coq's notations).
            right_assoc = op in ("->", "::", "++", "(+)")
            rhs = self.parse_binary(level if right_assoc else level + 1)
            lhs = self._apply_binop(op, lhs, rhs)
        return lhs

    def _apply_binop(self, op: str, a: Term, b: Term) -> Term:
        try:
            if op == "->":
                return T.implies(a, b)
            if op == "||":
                return T.or_(a, b)
            if op == "&&":
                return T.and_(a, b)
            if op == "=":
                return T.eq(a, b)
            if op == "!=":
                return T.ne(a, b)
            if op == "<=":
                return T.le(a, b)
            if op == "<":
                return T.lt(a, b)
            if op == ">=":
                return T.ge(a, b)
            if op == ">":
                return T.gt(a, b)
            if op == "in":
                return T.mmember(a, b)
            if op == "(+)":
                return T.munion(a, b)
            if op == "++":
                return T.append(a, b)
            if op == "::":
                return T.cons(a, b)
            if op == "+":
                if a.sort is Sort.LOC:
                    return T.loc_offset(a, b)
                return T.add(a, b)
            if op == "-":
                return T.sub(a, b)
            if op == "*":
                return T.mul(a, b)
            if op == "/":
                return T.app("div", a, b)
            if op == "%":
                return T.app("mod", a, b)
        except T.TermError as exc:
            raise SpecParseError(str(exc)) from exc
        raise SpecParseError(f"unknown operator {op!r}")

    def parse_unary(self) -> Term:
        tok = self.peek()
        if tok == "-":
            self.next()
            return T.neg(self.parse_unary())
        if tok == "forall":
            return self.parse_forall()
        return self.parse_primary()

    def parse_forall(self) -> Term:
        """Recognise ``forall k, k ∈ s -> φ(k)`` and compile to mall_ge."""
        self.expect("forall")
        binder = self.next()
        if not binder.isidentifier():
            raise SpecParseError(f"bad binder {binder!r}")
        self.expect(",")
        k = T.var(binder, Sort.INT)
        inner_env = dict(self.env)
        inner_env[binder] = k
        sub = _Parser(self.tokens[self.pos:], inner_env, self.constants)
        body = sub.parse_ternary()
        self.pos += sub.pos
        # Expected shapes:  mmember(k, s) -> n <= k   (mall_ge)
        #                or  mmember(k, s) -> k <= n   (mall_le),
        # with k not free in s or n.
        if isinstance(body, T.App) and body.op == "implies":
            prem, concl = body.args
            if isinstance(prem, T.App) and prem.op == "mmember" \
                    and prem.args[0] == k \
                    and k not in prem.args[1].free_vars() \
                    and isinstance(concl, T.App) and concl.op == "le":
                lo, hi = concl.args
                if hi == k and k not in lo.free_vars():
                    return T.mall_ge(prem.args[1], lo)
                if lo == k and k not in hi.free_vars():
                    return T.mall_le(prem.args[1], hi)
        raise SpecParseError(
            "only the patterns 'forall k, k ∈ s -> n ≤ k' and "
            "'forall k, k ∈ s -> k ≤ n' are supported")

    def parse_primary(self) -> Term:
        tok = self.next()
        if tok.isdigit():
            return T.intlit(int(tok))
        if tok == "(":
            t = self.parse_ternary()
            self.expect(")")
            return t
        if tok == "{[":
            t = self.parse_ternary()
            self.expect("]}")
            return T.msingle(t)
        if tok in ("∅", "0mset", "mempty"):
            return T.mempty()
        if tok == "[":
            if self.peek() == "]":
                self.next()
                return T.nil()
            elems = [self.parse_ternary()]
            while self.peek() == ",":
                self.next()
                elems.append(self.parse_ternary())
            self.expect("]")
            return T.list_lit(*elems)
        if tok in ("true", "True"):
            return T.TRUE
        if tok in ("false", "False"):
            return T.FALSE
        if tok in ("nil", "[]"):
            return T.nil()
        if tok.isidentifier():
            return self.parse_ident(tok)
        raise SpecParseError(f"unexpected token {tok!r}")

    def parse_ident(self, name: str) -> Term:
        if self.peek() == "(":
            self.next()
            if name == "sizeof":
                value = self.parse_sizeof_arg()
                self.expect(")")
                return value
            args: list[Term] = []
            if self.peek() != ")":
                args.append(self.parse_ternary())
                while self.peek() == ",":
                    self.next()
                    args.append(self.parse_ternary())
            self.expect(")")
            fn = _FUNCTIONS.get(name)
            if fn is not None:
                try:
                    return fn(*args)
                except (TypeError, T.TermError) as exc:
                    raise SpecParseError(f"{name}: {exc}") from exc
            return T.fn_app(name, args, self.fn_sorts.get(name, Sort.INT))
        if name in self.env:
            return self.env[name]
        if name in self.constants:
            return self.constants[name]
        raise SpecParseError(f"unknown identifier {name!r}")

    def parse_sizeof_arg(self) -> Term:
        """``sizeof(struct foo)``/``sizeof(struct_foo)`` resolves a layout
        constant instead of parsing an expression."""
        parts = []
        while self.peek() not in (")", None):
            parts.append(self.next())
        key = "sizeof(" + " ".join(parts) + ")"
        key_us = "sizeof(" + "_".join(parts) + ")"
        for k in (key, key_us):
            if k in self.constants:
                return self.constants[k]
        raise SpecParseError(f"unknown layout constant {key!r}")


def parse_term(text: str, env: Mapping[str, Term],
               constants: Optional[Mapping[str, Term]] = None,
               fn_sorts: Optional[Mapping[str, Sort]] = None) -> Term:
    """Parse an annotation expression.

    ``env`` maps in-scope refinement variable names to their terms;
    ``constants`` maps layout constants like ``sizeof(struct chunk)``;
    ``fn_sorts`` gives result sorts of uninterpreted spec functions (from
    the lemma tables; unknown functions default to INT).
    Curly braces around the whole expression (the paper's Coq escapes) are
    stripped.
    """
    text = text.strip()
    if text.startswith("{") and text.endswith("}") and not text.startswith("{["):
        text = text[1:-1]
    tokens = tokenize(text)
    if not tokens:
        raise SpecParseError("empty expression")
    return _Parser(tokens, env, constants, fn_sorts).parse()
