"""The pure side-condition solver front door (step (C) of Figure 2).

Lithium emits *pure* verification conditions (plain propositions about the
refinements).  These are discharged by:

1. the **default solver** — simplification + linear arithmetic + lists
   (mirroring the paper's default solver that "currently only targets linear
   arithmetic and Coq lists"),
2. **named solvers** requested via ``rc::tactics`` annotations
   (``multiset_solver``, ``set_solver``), and
3. **assumed lemmas** registered by the user (the analogue of manual Coq
   proofs; these are recorded so the reporting layer can count the "Pure"
   column of Figure 7).

Mirroring §7's accounting, any side condition not closed by the default
solver counts as *manually* discharged, even if a named solver then closes
it fully automatically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..trace import tracer as _trace
from . import linarith
from .compiled import COMPILE
from .lists import ListSolver
from .memo import MEMO, register_cache, trim_cache
from .sets import multiset_solver, set_solver
from .simplify import simplify, simplify_hyp
from .terms import App, Lit, Sort, Term, Var, subst_vars


def _app_subterms(t: Term) -> tuple[App, ...]:
    """All ``App`` subterms of ``t``, pre-order, duplicates included.

    With compilation on, the tuple is cached on the (interned) node so
    repeated forward-chaining passes over the same hypotheses skip the
    generator walk.
    """
    if isinstance(t, App):
        if COMPILE.enabled:
            subs = getattr(t, "_subs", None)
            if subs is None:
                subs = tuple(s for s in t.subterms() if isinstance(s, App))
                object.__setattr__(t, "_subs", subs)
            return subs
        return tuple(s for s in t.subterms() if isinstance(s, App))
    return ()


def _find_ite(t: Term) -> Optional[App]:
    """Return the first ``ite`` subterm of ``t``, if any."""
    for s in t.subterms():
        if isinstance(s, App) and s.op == "ite":
            return s
    return None


def _replace(t: Term, target: Term, replacement: Term) -> Term:
    """Replace every occurrence of the subterm ``target`` in ``t``."""
    if t == target:
        return replacement
    if isinstance(t, App):
        new_args = tuple(_replace(a, target, replacement) for a in t.args)
        if new_args != t.args:
            if t.op.startswith("fn:") or t.op == "list_lit":
                return App(t.op, new_args, t.result_sort)
            from .terms import app
            return app(t.op, *new_args, sort=t.result_sort)
    return t


class Outcome(enum.Enum):
    """How a side condition was discharged."""

    DEFAULT = "default"      # default solver: counted as automatic
    NAMED = "named"          # rc::tactics solver: counted as manual (§7)
    LEMMA = "lemma"          # user-assumed lemma: counted as manual
    FAILED = "failed"


@dataclass
class ProveResult:
    outcome: Outcome
    solver: str = "default"


@dataclass(frozen=True)
class Lemma:
    """A user-provided pure fact, the analogue of a manual Coq proof.

    ``params`` are universally quantified variables; the lemma states
    ``hyps -> conclusion``.  Lemmas are applied two ways: by unifying the
    conclusion against the goal (backward), and by *forward chaining* —
    instantiating the ``triggers`` (by default, the uninterpreted-function
    and list-access subterms of the lemma) against subterms of the proof
    context, discharging the hypotheses, and adding the conclusion as an
    extra fact.
    """

    name: str
    params: tuple[Var, ...]
    hyps: tuple[Term, ...]
    conclusion: Term
    triggers: tuple[Term, ...] = ()

    def trigger_patterns(self) -> tuple[Term, ...]:
        if self.triggers:
            return self.triggers
        out = []
        for t in (self.conclusion,) + self.hyps:
            for s in t.subterms():
                if isinstance(s, App) and (s.op.startswith("fn:")
                                           or s.op in ("index", "sorted")):
                    if s not in out:
                        out.append(s)
        return tuple(out)


_NAMED_SOLVERS = {
    "multiset_solver": multiset_solver,
    "set_solver": set_solver,
}

# The default solver uses no per-function state (no lemmas, no tactics),
# so its memo lives at module level and persists across function checks.
_DEFAULT_CACHE: dict = register_cache({})
# Full prove() results and hypothesis expansion are likewise module-level:
# a query's answer is determined by (tactics, lemmas, hyps, goal) — Lemma
# is a frozen dataclass of terms, so the configuration is hashable — and
# the functions of a unit share many side conditions verbatim.
_PROVE_CACHE: dict = register_cache({})
_EXPAND_CACHE: dict = register_cache({})


class PureSolver:
    """Solve pure side conditions; records per-proof statistics.

    ``prove`` results are memoized on the *resolved, expanded*
    ``(tactics, lemmas, frozenset(hyps), goal)`` query (evar instantiation
    changes the resolved terms and hence the key, so entries can never go
    stale), and hypothesis expansion is memoized on the raw hypothesis
    tuple.  ``cache_hits`` counts prove-cache hits observed by *this*
    instance; the Lithium search layer surfaces it as the
    ``solver_cache_hits`` metric (deliberately *not* a ``Stats`` counter —
    those stay byte-identical to the cache-free run).
    """

    def __init__(self, tactics: Sequence[str] = (), lemmas: Sequence[Lemma] = ()) -> None:
        self.tactics = [t for t in tactics if t]
        self.lemmas = list(lemmas)
        unknown = [t for t in self.tactics if t not in _NAMED_SOLVERS]
        if unknown:
            raise ValueError(f"unknown solver tactic(s): {unknown}")
        self._config_key = (tuple(self.tactics), tuple(self.lemmas))
        self.cache_hits = 0

    # -----------------------------------------------------------------
    def prove(self, hyps: Iterable[Term], goal: Term) -> ProveResult:
        hyps = self._expand_hyps(hyps)
        goal = simplify(goal)
        tr = _trace.CURRENT
        if tr is None:
            return self._prove_memo(hyps, goal, None)
        # Traced path: one span per prove call, closed with the outcome
        # and the solver (tactic) that discharged the goal.
        tr.begin("solver", "prove", goal=repr(goal))
        late: dict = {}
        try:
            result = self._prove_memo(hyps, goal, tr)
            late = {"outcome": result.outcome.value, "solver": result.solver}
            return result
        finally:
            tr.end(**late)

    def _prove_memo(self, hyps: list[Term], goal: Term,
                    tr) -> ProveResult:
        if MEMO.enabled:
            key = (self._config_key, frozenset(hyps), goal)
            hit = _PROVE_CACHE.get(key)
            if hit is not None:
                self.cache_hits += 1
                if tr is not None:
                    tr.instant("memo", "hit", cache="prove")
                return hit
            if tr is not None:
                tr.instant("memo", "miss", cache="prove")
            result = self._prove(hyps, goal)
            trim_cache(_PROVE_CACHE)
            _PROVE_CACHE[key] = result
            return result
        return self._prove(hyps, goal)

    def _prove(self, hyps: list[Term], goal: Term) -> ProveResult:
        if self._default(hyps, goal):
            return ProveResult(Outcome.DEFAULT)
        for name in self.tactics:
            if _NAMED_SOLVERS[name](hyps, goal):
                return ProveResult(Outcome.NAMED, name)
        if self._by_lemma(hyps, goal):
            return ProveResult(Outcome.LEMMA, "lemma")
        if self.lemmas and self._forward_lemmas(hyps, goal):
            return ProveResult(Outcome.LEMMA, "lemma")
        return ProveResult(Outcome.FAILED)

    # -----------------------------------------------------------------
    def _expand_hyps(self, hyps: Iterable[Term]) -> list[Term]:
        hyps = tuple(hyps)
        if MEMO.enabled:
            hit = _EXPAND_CACHE.get(hyps)
            if hit is not None:
                return list(hit)
        out: list[Term] = []
        seen: set[Term] = set()
        for h in hyps:
            for s in simplify_hyp(h):
                # Γ routinely re-introduces the same fact (loop invariants,
                # unfolded owned types); duplicates only bloat every
                # downstream linarith call.
                if s not in seen:
                    seen.add(s)
                    out.append(s)
        if MEMO.enabled:
            trim_cache(_EXPAND_CACHE)
            _EXPAND_CACHE[hyps] = tuple(out)
        return out

    def _default(self, hyps: list[Term], goal: Term) -> bool:
        """The default solver: recursive goal decomposition over
        simplification + linarith + lists.  Memoized per (hyps, goal)
        subproblem — the decomposition revisits the same subgoals across
        lemma-hypothesis discharge and case splits."""
        if not MEMO.enabled:
            return self._default_impl(hyps, goal)
        key = (tuple(hyps), goal)
        hit = _DEFAULT_CACHE.get(key)
        if hit is None:
            hit = self._default_impl(hyps, goal)
            trim_cache(_DEFAULT_CACHE)
            _DEFAULT_CACHE[key] = hit
        return hit

    def _default_impl(self, hyps: list[Term], goal: Term) -> bool:
        goal = simplify(goal)
        # A hypothesis is literally False, or a pair of contradictory
        # hypotheses exists: anything follows.
        if any(isinstance(h, Lit) and h.value is False for h in hyps):
            return True
        hypset = set(hyps)
        if any(isinstance(h, App) and h.op == "not" and h.args[0] in hypset
               for h in hyps):
            return True
        if isinstance(goal, Lit) and goal.value is True:
            return True
        if goal in hypset:
            return True
        if isinstance(goal, App):
            if goal.op == "and":
                return all(self._default(hyps, g) for g in goal.args)
            if goal.op == "implies":
                return self._default(hyps + simplify_hyp(goal.args[0]), goal.args[1])
            if goal.op == "or":
                if any(self._default(hyps, g) for g in goal.args):
                    return True
            if goal.op == "eq" and goal.args[0].sort is Sort.BOOL:
                a, b = goal.args
                return (self._default(hyps + simplify_hyp(a), b)
                        and self._default(hyps + simplify_hyp(b), a))
            if goal.op == "eq" and goal.args[0].sort is Sort.LIST:
                return ListSolver(hyps).prove(goal, hyps)
            if goal.op == "ite":
                c, t, e = goal.args
                return (self._default(hyps + simplify_hyp(c), t)
                        and self._default(hyps + simplify_hyp(simplify(App("not", (c,), Sort.BOOL))), e))
        if linarith.implies_linear(hyps, goal):
            return True
        # Normalise with the list theory (rewriting by list equations in
        # the hypotheses) and retry — the default solver covers "linear
        # arithmetic and Coq lists" (§7).  ListSolver orients rewrites only
        # from (simplified) equality hypotheses; with none present its
        # normalise() degenerates to simplify(), so skip building it.
        simplified = [simplify(h) for h in hyps]
        if any(isinstance(h, App) and h.op == "eq" for h in simplified):
            ls = ListSolver(hyps)
            goal2 = ls.normalise(goal)
            hyps2 = [ls.normalise(h) for h in hyps]
        else:
            goal2 = goal  # already simplified above
            hyps2 = simplified
        if goal2 != goal or hyps2 != hyps:
            if self._default(hyps2, goal2):
                return True
        # Case-split on an integer disequality hypothesis (a ≠ b becomes
        # a < b ∨ b < a; linarith cannot use disequalities directly).
        for h in hyps:
            if isinstance(h, App) and h.op == "not":
                inner = h.args[0]
                if isinstance(inner, App) and inner.op == "eq" \
                        and inner.args[0].sort is Sort.INT:
                    a, b = inner.args
                    rest = [x for x in hyps if x != h]
                    return (self._default(rest + [App("lt", (a, b),
                                                      Sort.BOOL)], goal)
                            and self._default(rest + [App("lt", (b, a),
                                                          Sort.BOOL)], goal))
        # Case-split on an if-then-else occurring in the goal or hypotheses
        # (the ensures clause of Figure 1 produces `n ≤ a ? a - n : a`).
        split = self._split_ite(hyps, goal)
        if split is not None:
            return all(self._default(h, g) for h, g in split)
        # Try contradiction in the hypotheses (e.g. n <= 0 and 1 <= n).
        return linarith.implies_linear(hyps, Lit(False)) if hyps else False

    def _split_ite(self, hyps: list[Term],
                   goal: Term) -> Optional[list[tuple[list[Term], Term]]]:
        """Find an ``ite`` subterm and return the two case-split subproblems,
        or ``None`` if there is nothing to split on."""
        ite_term = _find_ite(goal)
        if ite_term is None:
            for h in hyps:
                ite_term = _find_ite(h)
                if ite_term is not None:
                    break
        if ite_term is None:
            return None
        cond, then_b, else_b = ite_term.args
        cases = []
        for guard, branch in ((cond, then_b),
                              (simplify(App("not", (cond,), Sort.BOOL)), else_b)):
            new_hyps = [simplify(_replace(h, ite_term, branch)) for h in hyps]
            new_goal = simplify(_replace(goal, ite_term, branch))
            cases.append((new_hyps + simplify_hyp(guard), new_goal))
        return cases

    # -----------------------------------------------------------------
    _FORWARD_ATTEMPTS = 64

    def _forward_lemmas(self, hyps: list[Term], goal: Term) -> bool:
        """Forward chaining: instantiate lemma triggers against subterms of
        the context/goal, discharge the lemma hypotheses, add the
        conclusions, and retry the default solver."""
        from .terms import Subst, fresh_evar
        from .unify import unify
        triggered = [(lemma, lemma.trigger_patterns())
                     for lemma in self.lemmas]
        triggered = [(lemma, pats) for lemma, pats in triggered if pats]
        if not triggered:
            return False
        pool: list[Term] = []
        seen: set[Term] = set()
        for t in hyps + [goal]:
            for s in _app_subterms(t):
                if s not in seen:
                    seen.add(s)
                    pool.append(s)
        derived: list[Term] = []
        for lemma, patterns in triggered:
            for inst in self._instantiations(lemma, patterns, pool):
                inst_hyps = [subst_vars(h, inst) for h in lemma.hyps]
                if any(h.has_evars() for h in inst_hyps):
                    continue
                if all(self._default(hyps + derived, h) or
                       any(_NAMED_SOLVERS[t](hyps + derived, h)
                           for t in self.tactics)
                       for h in inst_hyps):
                    concl = subst_vars(lemma.conclusion, inst)
                    for part in simplify_hyp(concl):
                        if part not in derived and part not in hyps:
                            derived.append(part)
        if not derived:
            return False
        if self._default(hyps + derived, goal):
            return True
        return any(_NAMED_SOLVERS[t](hyps + derived, goal)
                   for t in self.tactics)

    def _instantiations(self, lemma: Lemma, patterns, pool):
        """Enumerate (boundedly many) full instantiations of the lemma
        parameters by unifying trigger patterns with pool terms."""
        from .terms import EVar, Subst, fresh_evar
        from .unify import unify

        def go(idx: int, subst: Subst, evmap, budget: list[int]):
            if budget[0] <= 0:
                return
            if idx == len(patterns):
                inst = {}
                complete = True
                for p, ev in evmap.items():
                    bound = subst.resolve(ev)
                    if bound.has_evars():
                        complete = False
                        break
                    inst[p] = bound
                if complete:
                    budget[0] -= 1
                    yield inst
                return
            pat = subst_vars(patterns[idx], evmap)
            for cand in pool:
                if COMPILE.enabled:
                    trial = subst.copy()
                else:
                    trial = Subst()
                    for eid, t in subst.snapshot().items():
                        trial.bind_evar(EVar(eid, t.sort), t)
                if unify(pat, cand, trial):
                    yield from go(idx + 1, trial, evmap, budget)

        evmap = {p: fresh_evar(p.sort, p.name) for p in lemma.params}
        budget = [self._FORWARD_ATTEMPTS]
        yield from go(0, Subst(), evmap, budget)

    def _by_lemma(self, hyps: list[Term], goal: Term) -> bool:
        from .terms import Subst, fresh_evar
        from .unify import unify
        for lemma in self.lemmas:
            subst = Subst()
            evars = {p: fresh_evar(p.sort, p.name) for p in lemma.params}
            concl = subst_vars(lemma.conclusion, evars)
            if not unify(concl, goal, subst):
                continue
            inst_hyps = [subst.resolve(subst_vars(h, evars)) for h in lemma.hyps]
            if any(h.has_evars() for h in inst_hyps):
                continue
            if all(self._default(hyps, h)
                   or any(_NAMED_SOLVERS[t](hyps, h) for t in self.tactics)
                   for h in inst_hyps):
                return True
        return False
