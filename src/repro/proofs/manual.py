"""Manual pure proofs accompanying the case studies.

The paper's "Pure" column in Figure 7 counts "lines of pure Coq reasoning,
including definitions and lemma statements" — the mathematical facts the
default solver cannot derive, proved by hand in Coq.  Our executable
analogue states each such fact as a :class:`~repro.pure.solver.Lemma`
(checked against ground instances by the adequacy tests in
``tests/proofs``), referenced from the C sources via ``rc::lemmas``.
"""

from __future__ import annotations

from ..pure.solver import Lemma
from ..pure.terms import (Sort, Term, app, eq, fn_app, ge, intlit, le, lt, ne,
                          var)

XS = var("XS", Sort.LIST)
K = var("K")
I = var("I")
J = var("J")
V = var("V")
N = var("N")


def lb(xs: Term, k: Term) -> Term:
    """``lb(xs, k)``: the least index i with k ≤ xs[i] (len(xs) if none) —
    the abstract result of lower-bound binary search."""
    return fn_app("lb", [xs, k], Sort.INT)


def _sorted(xs: Term) -> Term:
    return app("sorted", xs)


# ---------------------------------------------------------------------
# Binary search (Figure 7 #1, "Binary search": 19 lines of pure reasoning
# in the paper).  The facts about lb that the loop invariant needs.
# ---------------------------------------------------------------------

LB_NONNEG = Lemma(
    "lb_nonneg", (XS, K), (),
    le(intlit(0), lb(XS, K)),
)

LB_LE_LEN = Lemma(
    "lb_le_len", (XS, K), (),
    le(lb(XS, K), app("len", XS)),
)

LB_LOWER = Lemma(
    # If xs[i] < k in a sorted list, the lower bound is beyond i.
    "lb_lower", (XS, K, I),
    (_sorted(XS), le(intlit(0), I), lt(I, app("len", XS)),
     lt(app("index", XS, I), K)),
    lt(I, lb(XS, K)),
)

LB_UPPER = Lemma(
    # If k ≤ xs[i] in a sorted list, the lower bound is at most i.
    "lb_upper", (XS, K, I),
    (_sorted(XS), le(intlit(0), I), lt(I, app("len", XS)),
     le(K, app("index", XS, I))),
    le(lb(XS, K), I),
)

BINARY_SEARCH_LEMMAS = {l.name: l for l in
                        (LB_NONNEG, LB_LE_LEN, LB_LOWER, LB_UPPER)}


# ---------------------------------------------------------------------
# Linear-probing hashmap (Figure 7 #4: 265 lines of pure reasoning in the
# paper).  ``slot(ks, k)`` abstracts the result of the probe sequence for
# key k in the key array ks: the index where k lives or would be inserted.
# The lemmas state the properties of the probing function that the paper
# proves by hand in Coq about its functional model.
# ---------------------------------------------------------------------

KS = var("KS", Sort.LIST)


def hm_slot(ks: Term, k: Term) -> Term:
    return fn_app("hm_slot", [ks, k], Sort.INT)


def hm_ok(ks: Term) -> Term:
    """The hashmap invariant on the key array: 0 marks an empty slot, the
    nonzero keys are distinct and *probe-reachable* (every stored key is
    found by its own probe sequence — the linear-probing invariant), and
    at least one slot is free (probing terminates)."""
    return fn_app("hm_ok", [ks], Sort.BOOL)


def hm_has_room(ks: Term) -> Term:
    """At least two free slots: inserting a fresh key keeps hm_ok."""
    return fn_app("hm_has_room", [ks], Sort.BOOL)


def hm_probe(ks: Term, k: Term, j: Term) -> Term:
    """``hm_probe(ks, k, j)``: the index found by linear probing for key k
    starting from slot j (the step-indexed functional probing model the
    paper states its invariant with)."""
    return fn_app("hm_probe", [ks, k, j], Sort.INT)


HM_SLOT_DEF = Lemma(
    # The slot of k is found by probing from its hash bucket (k mod 16).
    "hm_slot_def", (KS, K), (hm_ok(KS), ne(K, intlit(0))),
    eq(hm_slot(KS, K), hm_probe(KS, K, app("mod", K, intlit(16)))),
)

HM_PROBE_STEP = Lemma(
    # Probing walks past occupied slots holding other keys.
    "hm_probe_step", (KS, K, J),
    (hm_ok(KS), le(intlit(0), J), lt(J, intlit(16)),
     ne(app("index", KS, J), K), ne(app("index", KS, J), intlit(0))),
    eq(hm_probe(KS, K, J),
       hm_probe(KS, K, app("mod", app("add", J, intlit(1)), intlit(16)))),
)

HM_PROBE_HIT = Lemma(
    # Probing stops at the key itself.
    "hm_probe_hit", (KS, K, J),
    (le(intlit(0), J), lt(J, intlit(16)), eq(app("index", KS, J), K)),
    eq(hm_probe(KS, K, J), J),
)

HM_PROBE_EMPTY = Lemma(
    # Probing stops at an empty slot.
    "hm_probe_empty", (KS, K, J),
    (le(intlit(0), J), lt(J, intlit(16)),
     eq(app("index", KS, J), intlit(0))),
    eq(hm_probe(KS, K, J), J),
)

HM_SLOT_BOUNDS_LO = Lemma(
    "hm_slot_bounds_lo", (KS, K), (hm_ok(KS),),
    le(intlit(0), hm_slot(KS, K)),
)

HM_SLOT_BOUNDS_HI = Lemma(
    "hm_slot_bounds_hi", (KS, K), (hm_ok(KS),),
    lt(hm_slot(KS, K), intlit(16)),
)

HM_STORE_KEY_OK = Lemma(
    # Writing the probed key into its slot preserves the invariant — the
    # slot holds either k already (no change) or the empty marker (a fresh
    # insertion, which needs room so a free slot remains).
    "hm_store_key_ok", (KS, K),
    (hm_ok(KS), hm_has_room(KS), ne(K, intlit(0))),
    hm_ok(app("store", KS, hm_slot(KS, K), K)),
)

HASHMAP_LEMMAS = {l.name: l for l in
                  (HM_SLOT_DEF, HM_PROBE_STEP, HM_PROBE_HIT, HM_PROBE_EMPTY,
                   HM_SLOT_BOUNDS_LO, HM_SLOT_BOUNDS_HI, HM_STORE_KEY_OK)}


# ---------------------------------------------------------------------
# Binary search tree, layered variant (Figure 7 #3): the intermediate
# functional layer is the abstract predicate ``bst(...)`` with its algebra.
# ---------------------------------------------------------------------

S1 = var("S1", Sort.MSET)
S2 = var("S2", Sort.MSET)
S = var("S", Sort.MSET)


def fmember(s: Term, x: Term) -> Term:
    """Layer-1 membership: the functional model's member operation."""
    return fn_app("fmember", [s, x], Sort.BOOL)


def finsert(s: Term, x: Term) -> Term:
    """Layer-1 insertion: the functional model's insert operation."""
    return fn_app("finsert", [s, x], Sort.MSET)


FMEMBER_DEF = Lemma(
    # The functional layer's member agrees with multiset membership (the
    # "refinement between layers" proved manually in the layered style).
    "fmember_def", (S, K), (),
    eq(fmember(S, K), app("mmember", K, S)),
)

FINSERT_DEF = Lemma(
    "finsert_def", (S, K), (),
    eq(finsert(S, K), app("munion", app("msingle", K), S)),
)

LAYER_MEMBER_LEFT = Lemma(
    "layer_member_left", (K, N, S1, S2),
    (app("mall_le", S1, N), app("mall_ge", S2, N), lt(K, N)),
    eq(app("mmember", K, app("munion", app("msingle", N), S1, S2)),
       app("mmember", K, S1)),
)

LAYER_MEMBER_RIGHT = Lemma(
    "layer_member_right", (K, N, S1, S2),
    (app("mall_le", S1, N), app("mall_ge", S2, N), lt(N, K)),
    eq(app("mmember", K, app("munion", app("msingle", N), S1, S2)),
       app("mmember", K, S2)),
)

BST_LAYERED_LEMMAS = {l.name: l for l in
                      (FMEMBER_DEF, FINSERT_DEF, LAYER_MEMBER_LEFT,
                       LAYER_MEMBER_RIGHT)}


# ---------------------------------------------------------------------
# Registry: case-study file stem -> lemma table.
# ---------------------------------------------------------------------

LEMMAS_BY_STUDY: dict[str, dict[str, Lemma]] = {
    "binary_search": BINARY_SEARCH_LEMMAS,
    "hashmap": HASHMAP_LEMMAS,
    "bst_layered": BST_LAYERED_LEMMAS,
}


def pure_line_count(study: str) -> int:
    """The "Pure" column analogue: lines of manual mathematical reasoning
    (lemma statements) associated with a case study."""
    table = LEMMAS_BY_STUDY.get(study, {})
    # Each lemma statement counts its hypotheses + conclusion lines, the
    # way the paper counts definition/lemma lines.
    return sum(2 + len(l.hyps) for l in table.values())
