"""The foundational-verification substitute (see DESIGN.md): an executable
semantic model of the RefinedC types, an independent checker for the
derivations Lithium produces, randomised adequacy testing of verified
programs, and the manual-lemma tables accompanying the case studies."""

from .adequacy import ALL_SCENARIOS, AdequacyViolation
from .certcheck import CertificateReport, check_derivation
from .manual import LEMMAS_BY_STUDY, pure_line_count
from .semantics import (CheckFailure, SemanticBuilder, SemanticChecker,
                        SemanticsError)

__all__ = ["ALL_SCENARIOS", "AdequacyViolation", "CertificateReport",
           "CheckFailure", "LEMMAS_BY_STUDY", "SemanticBuilder",
           "SemanticChecker", "SemanticsError", "check_derivation",
           "pure_line_count"]
