"""Executable semantic model of RefinedC types.

In the paper every type is interpreted as an Iris separation-logic
predicate, and the typing rules are lemmas about that model.  Our
executable analogue interprets a type as a predicate over

* a concrete Caesium :class:`~repro.caesium.memory.Memory`,
* a location (or value),
* a ground environment for the refinement variables, and
* an ownership *footprint* — the set of bytes the type claims.

Separation is checked for real: a footprint byte may be claimed only once
(the semantic content of the ∗ connective), and ``&own`` recursively claims
its target.  The adequacy harness (:mod:`repro.proofs.adequacy`) uses this
model in both directions: *building* memories that satisfy argument types,
and *checking* that results satisfy return/ensures types after running the
interpreter — the executable counterpart of the Coq soundness statement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Optional

from ..caesium.layout import PTR_SIZE
from ..caesium.memory import Memory
from ..caesium.values import (NULL, Pointer, VFn, VInt, VPtr, decode_int,
                              decode_ptr, encode_int, encode_ptr)
from ..pure.eval import EvalError, evaluate
from ..pure.terms import Term
from ..refinedc.spec import ShrPtr
from ..refinedc.types import (ArrayT, AtomicBoolT, BoolT, ConstrainedT,
                              ExistsT, FnT, IntT, NamedT, NullT, OptionalT,
                              OwnPtr, PaddedT, RType, StructT, TypeTable,
                              UninitT, ValueT)

GroundEnv = dict[str, Any]


class SemanticsError(Exception):
    """A type cannot be interpreted/built in the given situation."""


@dataclass
class Footprint:
    """Bytes claimed by a type interpretation; claiming twice = no
    separation = model violation."""

    claimed: set[tuple[int, int]] = field(default_factory=set)

    def claim(self, ptr: Pointer, size: int) -> bool:
        span = {(ptr.alloc_id, ptr.offset + i) for i in range(size)}
        if span & self.claimed:
            return False
        self.claimed |= span
        return True


@dataclass
class CheckFailure(Exception):
    reason: str

    def __str__(self) -> str:
        return self.reason


# ---------------------------------------------------------------------
# Checking: does (memory, loc) satisfy a type?
# ---------------------------------------------------------------------

class SemanticChecker:
    """Checks type membership against a concrete memory."""

    def __init__(self, mem: Memory, types: TypeTable,
                 env: Optional[GroundEnv] = None) -> None:
        self.mem = mem
        self.types = types
        self.env: GroundEnv = dict(env or {})
        self.footprint = Footprint()

    # -- helpers ---------------------------------------------------
    def _eval(self, t: Term):
        try:
            return evaluate(t, self.env)
        except EvalError as exc:
            raise SemanticsError(f"cannot evaluate {t!r}: {exc}") from exc

    def _as_pointer(self, v) -> Pointer:
        if isinstance(v, Pointer):
            return v
        if isinstance(v, tuple) and len(v) == 2:
            return Pointer(*v)
        raise SemanticsError(f"not a pointer value: {v!r}")

    # -- the model -------------------------------------------------
    def check_loc(self, loc: Pointer, ty: RType) -> None:
        """Check ``loc ◁ₗ τ``; raises CheckFailure on violation."""
        ty = self._peel(ty)
        if isinstance(ty, IntT):
            size = ty.itype.size
            if not self.footprint.claim(loc, size):
                raise CheckFailure(f"double ownership of {loc!r}")
            data = self.mem.load(loc, size)
            v = decode_int(data, ty.itype)
            if v is None:
                raise CheckFailure(f"{loc!r}: expected an initialised "
                                   f"{ty.itype.name}, found poison")
            if ty.refinement is not None:
                want = self._eval(ty.refinement)
                if v.value != want:
                    raise CheckFailure(
                        f"{loc!r}: value {v.value} does not match "
                        f"refinement {want}")
            return
        if isinstance(ty, BoolT):
            size = ty.itype.size
            if not self.footprint.claim(loc, size):
                raise CheckFailure(f"double ownership of {loc!r}")
            v = decode_int(self.mem.load(loc, size), ty.itype)
            if v is None:
                raise CheckFailure(f"{loc!r}: boolean is poison")
            if ty.phi is not None:
                if bool(v.value) != bool(self._eval(ty.phi)):
                    raise CheckFailure(f"{loc!r}: boolean {v.value} does "
                                       f"not reflect its proposition")
            return
        if isinstance(ty, UninitT):
            size = self._eval(ty.size)
            if not self.footprint.claim(loc, size):
                raise CheckFailure(f"double ownership of {loc!r}")
            # Any bytes qualify — uninit means "arbitrary".
            self.mem.load(loc, size)  # bounds/liveness check
            return
        if isinstance(ty, (NullT, OwnPtr, OptionalT, FnT)) or \
                isinstance(ty, ShrPtr):
            if not self.footprint.claim(loc, PTR_SIZE):
                raise CheckFailure(f"double ownership of {loc!r}")
            v = decode_ptr(self.mem.load(loc, PTR_SIZE))
            if v is None:
                raise CheckFailure(f"{loc!r}: pointer is poison")
            self.check_val(v, ty)
            return
        if isinstance(ty, ValueT):
            # The singleton: the location holds exactly the tracked value.
            raise SemanticsError("value types are checker-internal")
        if isinstance(ty, StructT):
            for fname, flayout in ty.layout.fields:
                off = ty.layout.offset_of(fname)
                self.check_loc(loc + off, ty.field_type(fname))
            return
        if isinstance(ty, PaddedT):
            inner_size = self._eval(ty.inner.layout_size())
            total = self._eval(ty.size)
            self.check_loc(loc, ty.inner)
            if not self.footprint.claim(loc + inner_size,
                                        total - inner_size):
                raise CheckFailure(f"double ownership of padding at {loc!r}")
            return
        if isinstance(ty, ArrayT):
            xs = self._eval(ty.xs)
            n = self._eval(ty.length)
            if len(xs) != n:
                raise CheckFailure("array refinement length mismatch")
            size = ty.itype.size
            for i, x in enumerate(xs):
                self.check_loc(loc + i * size, IntT(ty.itype))
                v = decode_int(self.mem.load(loc + i * size, size), ty.itype)
                if v is None or v.value != x:
                    raise CheckFailure(f"array cell {i} mismatch")
            return
        if isinstance(ty, AtomicBoolT):
            if not self.footprint.claim(loc, ty.itype.size):
                raise CheckFailure(f"double ownership of {loc!r}")
            v = decode_int(self.mem.load(loc, ty.itype.size), ty.itype)
            if v is None:
                raise CheckFailure("atomic boolean is poison")
            return
        raise SemanticsError(f"no location model for {ty!r}")

    def check_val(self, v, ty: RType) -> None:
        """Check ``v ◁ᵥ τ``."""
        ty = self._peel(ty)
        if isinstance(ty, NullT):
            if not (isinstance(v, VPtr) and v.ptr.is_null):
                raise CheckFailure(f"{v!r} is not NULL")
            return
        if isinstance(ty, IntT):
            if not isinstance(v, VInt):
                raise CheckFailure(f"{v!r} is not an integer")
            if ty.refinement is not None and \
                    v.value != self._eval(ty.refinement):
                raise CheckFailure(f"integer {v.value} does not match "
                                   f"refinement")
            return
        if isinstance(ty, BoolT):
            if not isinstance(v, VInt):
                raise CheckFailure(f"{v!r} is not a boolean")
            if ty.phi is not None and bool(v.value) != bool(self._eval(ty.phi)):
                raise CheckFailure("boolean does not reflect its "
                                   "proposition")
            return
        if isinstance(ty, OwnPtr) or isinstance(ty, ShrPtr):
            if not isinstance(v, VPtr) or v.ptr.is_null:
                raise CheckFailure(f"{v!r} is not a valid pointer")
            if ty.loc is not None:
                want = self._as_pointer(self._eval(ty.loc))
                if v.ptr != want:
                    raise CheckFailure(f"pointer {v.ptr!r} is not the "
                                       f"required location {want!r}")
            self.check_loc(v.ptr, ty.inner)
            return
        if isinstance(ty, OptionalT):
            if bool(self._eval(ty.phi)):
                self.check_val(v, ty.then_type)
            else:
                self.check_val(v, ty.else_type)
            return
        if isinstance(ty, FnT):
            if not isinstance(v, VFn):
                raise CheckFailure(f"{v!r} is not a function pointer")
            return
        raise SemanticsError(f"no value model for {ty!r}")

    def _peel(self, ty: RType) -> RType:
        """Unfold named types and resolve constrained/existential wrappers
        (existentials are checked by *search* over the stored data — for
        the model this means finding a witness; we use the stored bytes to
        guide it, which suffices for the first-order types in use)."""
        guard = 0
        while guard < 64:
            guard += 1
            if isinstance(ty, NamedT):
                args = [self._eval(a) for a in ty.args]
                td = self.types.lookup(ty.name)
                # Bind the definition's parameters by value via a fresh
                # environment extension using the HOAS body.
                from ..pure.terms import Var, var
                params = [var(f"·{ty.name}{i}", s)
                          for i, s in enumerate(td.param_sorts)]
                for p, a in zip(params, args):
                    self.env[p.name] = a
                ty = td.body(*params)
                continue
            if isinstance(ty, ConstrainedT):
                if not bool(self._eval(ty.phi)):
                    raise CheckFailure(f"constraint {ty.phi!r} violated")
                ty = ty.inner
                continue
            if isinstance(ty, ExistsT):
                ty = self._instantiate_exists(ty)
                continue
            return ty
        raise SemanticsError("type unfolding did not terminate")

    # Existential witnesses are provided externally per check via hooks.
    def _instantiate_exists(self, ty: ExistsT) -> RType:
        witness = self.env.get(f"∃{ty.hint}")
        if witness is None:
            raise SemanticsError(
                f"no witness provided for existential {ty.hint!r} "
                f"(set env['∃{ty.hint}'])")
        from ..pure.terms import var
        v = var(f"·{ty.hint}{id(ty)}", ty.sort)
        self.env[v.name] = witness
        return ty.body(v)


# ---------------------------------------------------------------------
# Building: construct a memory state satisfying a type.
# ---------------------------------------------------------------------

class SemanticBuilder:
    """Builds concrete memory satisfying ``ℓ ◁ₗ τ`` — used to realise
    function preconditions for the adequacy tests."""

    def __init__(self, mem: Memory, types: TypeTable,
                 env: Optional[GroundEnv] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.mem = mem
        self.types = types
        self.env: GroundEnv = dict(env or {})
        self.rng = rng or random.Random(0)

    def _eval(self, t: Term):
        return evaluate(t, self.env)

    def build_val(self, ty: RType):
        """Produce a value of the given type (allocating as needed)."""
        ty = self._peel(ty)
        if isinstance(ty, IntT):
            if ty.refinement is not None:
                return VInt(self._eval(ty.refinement), ty.itype)
            return VInt(self.rng.randint(max(ty.itype.min_value, -100),
                                         min(ty.itype.max_value, 100)),
                        ty.itype)
        if isinstance(ty, BoolT):
            val = 1 if (ty.phi is not None and bool(self._eval(ty.phi))) \
                else 0
            return VInt(val, ty.itype)
        if isinstance(ty, NullT):
            return VPtr(NULL)
        if isinstance(ty, OwnPtr):
            size = self._size_of(ty.inner)
            ptr = self.mem.allocate(size)
            if ty.loc is not None:
                # The location refinement names this fresh pointer.
                self._bind_loc(ty.loc, ptr)
            self.build_loc(ptr, ty.inner)
            return VPtr(ptr)
        if isinstance(ty, OptionalT):
            if bool(self._eval(ty.phi)):
                return self.build_val(ty.then_type)
            return self.build_val(ty.else_type)
        if isinstance(ty, FnT):
            return VFn(ty.spec.name)
        raise SemanticsError(f"cannot build a value of {ty!r}")

    def build_loc(self, loc: Pointer, ty: RType) -> None:
        ty = self._peel(ty)
        if isinstance(ty, (IntT, BoolT, NullT, OwnPtr, OptionalT, FnT)):
            v = self.build_val(ty)
            if isinstance(v, VInt):
                self.mem.store(loc, encode_int(v.value, v.int_type))
            elif isinstance(v, VPtr):
                self.mem.store(loc, encode_ptr(v.ptr))
            else:
                from ..caesium.values import encode_value
                self.mem.store(loc, encode_value(v))
            return
        if isinstance(ty, UninitT):
            return  # fresh memory is already poison
        if isinstance(ty, StructT):
            for fname, _ in ty.layout.fields:
                self.build_loc(loc + ty.layout.offset_of(fname),
                               ty.field_type(fname))
            return
        if isinstance(ty, PaddedT):
            self.build_loc(loc, ty.inner)
            return
        if isinstance(ty, ArrayT):
            xs = self._eval(ty.xs)
            for i, x in enumerate(xs):
                self.mem.store(loc + i * ty.itype.size,
                               encode_int(x, ty.itype))
            return
        if isinstance(ty, AtomicBoolT):
            self.mem.store(loc, encode_int(0, ty.itype))
            return
        raise SemanticsError(f"cannot build a location of {ty!r}")

    def _size_of(self, ty: RType) -> int:
        size_t = ty.layout_size()
        if size_t is None:
            inner = self._peel(ty)
            size_t = inner.layout_size()
        if size_t is None:
            raise SemanticsError(f"unknown size for {ty!r}")
        return self._eval(size_t)

    def _bind_loc(self, loc_term: Term, ptr: Pointer) -> None:
        from ..pure.terms import Var
        if isinstance(loc_term, Var):
            self.env[loc_term.name] = (ptr.alloc_id, ptr.offset)

    def _peel(self, ty: RType) -> RType:
        guard = 0
        while guard < 64:
            guard += 1
            if isinstance(ty, NamedT):
                td = self.types.lookup(ty.name)
                from ..pure.terms import var
                params = [var(f"·{ty.name}{i}", s)
                          for i, s in enumerate(td.param_sorts)]
                for p, a in zip(params, ty.args):
                    self.env[p.name] = self._eval(a)
                ty = td.body(*params)
                continue
            if isinstance(ty, ConstrainedT):
                if not bool(self._eval(ty.phi)):
                    raise SemanticsError(
                        f"cannot realise constraint {ty.phi!r}")
                ty = ty.inner
                continue
            if isinstance(ty, ExistsT):
                witness = self.env.get(f"∃{ty.hint}")
                if witness is None:
                    raise SemanticsError(
                        f"no witness for existential {ty.hint!r}")
                from ..pure.terms import var
                v = var(f"·{ty.hint}{id(ty)}", ty.sort)
                self.env[v.name] = witness
                return self._peel_body(ty, v)
            return ty
        raise SemanticsError("type unfolding did not terminate")

    def _peel_body(self, ty: ExistsT, v) -> RType:
        return self._peel(ty.body(v))
