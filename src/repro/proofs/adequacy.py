"""Adequacy harness: randomised semantic testing of verified functions.

In the paper, soundness is a Coq theorem: a RefinedC-typed program is safe
and meets its specification, by Iris adequacy.  Our executable substitute
runs each *verified* case study on the Caesium interpreter under random
inputs that satisfy the precondition, and checks

1. **safety** — no undefined behaviour is ever raised (no OOB, no poison
   use, no signed overflow, no data race, …), and
2. **functional correctness** — the produced memory/value satisfy the
   postcondition, checked against the executable semantic model
   (:mod:`repro.proofs.semantics`) or against a reference Python
   implementation of the mathematical specification.

Each scenario returns the number of executed checks; any violation raises.
"""

from __future__ import annotations

import random
from typing import Callable

from ..caesium.concurrency import Scheduler
from ..caesium.eval import Machine
from ..caesium.layout import I64, INT, SIZE_T
from ..caesium.memory import Memory
from ..caesium.values import (NULL, Pointer, UndefinedBehavior, VInt, VPtr,
                              decode_int, decode_ptr, encode_int, encode_ptr)
# Imported lazily inside _machine to avoid a circular import with
# repro.frontend (which pulls in the lemma tables from this package).


class AdequacyViolation(AssertionError):
    """A verified program violated its specification at runtime — this
    would be a *soundness bug* in the type system."""


_OUTCOME_CACHE: dict = {}


def _machine(study: str, detect_races: bool = False
             ) -> tuple[Machine, "VerificationOutcome"]:
    from ..frontend import verify_file
    from ..report import casestudies_dir
    outcome = _OUTCOME_CACHE.get(study)
    if outcome is None:
        outcome = verify_file(casestudies_dir() / f"{study}.c")
        _OUTCOME_CACHE[study] = outcome
    if not outcome.ok:
        raise AdequacyViolation(f"{study} failed to verify:\n"
                                + outcome.report())
    mem = Memory(detect_races=detect_races)
    return Machine(outcome.typed_program.program, mem), outcome


def _expect(cond: bool, msg: str) -> None:
    if not cond:
        raise AdequacyViolation(msg)


# ---------------------------------------------------------------------
# Figure 1 allocators.
# ---------------------------------------------------------------------

def check_alloc(study: str = "alloc", trials: int = 50,
                seed: int = 0) -> int:
    """Random allocation requests against the Figure 1 allocator: the
    optional return and the updated mem_t must match the specification."""
    rng = random.Random(seed)
    checks = 0
    for _ in range(trials):
        machine, _out = _machine(study)
        mem = machine.memory
        a = rng.randint(0, 64)
        n = rng.randint(0, 80)
        buf = mem.allocate(a)
        state = mem.allocate(16)
        mem.store(state, encode_int(a, SIZE_T), 8)
        mem.store(state + 8, encode_ptr(buf), 8)
        result = machine.call("alloc", [VPtr(state), VInt(n, SIZE_T)])
        assert isinstance(result, VPtr)
        if n <= a:
            _expect(not result.ptr.is_null,
                    f"alloc({n}) of {a} returned NULL")
            # Returned block: n usable bytes inside buf.
            mem.store(result.ptr, [0x5A] * n)  # must be writable, no UB
        else:
            _expect(result.ptr.is_null,
                    f"alloc({n}) of {a} returned non-NULL")
        new_len = decode_int(mem.load(state, 8), SIZE_T)
        want = a - n if n <= a else a
        _expect(new_len is not None and new_len.value == want,
                f"len after alloc: {new_len} != {want}")
        checks += 1
    return checks


# ---------------------------------------------------------------------
# Figure 3 free list.
# ---------------------------------------------------------------------

def _read_chunk_list(mem: Memory, head_cell: Pointer) -> list[int]:
    """Walk the chunk list, returning the size of every chunk."""
    sizes = []
    ptr = decode_ptr(mem.load(head_cell, 8))
    assert ptr is not None
    cur = ptr.ptr
    while not cur.is_null:
        size = decode_int(mem.load(cur, 8), SIZE_T)
        assert size is not None
        sizes.append(size.value)
        nxt = decode_ptr(mem.load(cur + 8, 8))
        assert nxt is not None
        cur = nxt.ptr
    return sizes


def check_free_list(trials: int = 30, seed: int = 0) -> int:
    """Free random chunks into the sorted free list of Figure 3: the list
    must stay sorted and contain exactly the freed sizes (a multiset)."""
    rng = random.Random(seed)
    checks = 0
    for _ in range(trials):
        machine, _out = _machine("free_list")
        mem = machine.memory
        head = mem.allocate(8)
        mem.store(head, encode_ptr(NULL))
        freed: list[int] = []
        for _i in range(rng.randint(1, 8)):
            size = rng.randint(16, 64)
            chunk = mem.allocate(size)
            machine.call("free_chunk",
                         [VPtr(head), VPtr(chunk), VInt(size, SIZE_T)])
            freed.append(size)
            sizes = _read_chunk_list(mem, head)
            _expect(sorted(sizes) == sizes,
                    f"free list not sorted: {sizes}")
            _expect(sorted(sizes) == sorted(freed),
                    f"free list {sizes} != freed {freed}")
            checks += 1
    return checks


# ---------------------------------------------------------------------
# Linked list / queue.
# ---------------------------------------------------------------------

def check_linked_list(trials: int = 30, seed: int = 0) -> int:
    rng = random.Random(seed)
    checks = 0
    for _ in range(trials):
        machine, _out = _machine("linked_list")
        mem = machine.memory
        head = mem.allocate(8)
        mem.store(head, encode_ptr(NULL))
        model: list[int] = []
        for _i in range(rng.randint(1, 10)):
            if model and rng.random() < 0.4:
                got = machine.call("pop", [VPtr(head)])
                want = model.pop(0)
                _expect(isinstance(got, VInt) and got.value == want,
                        f"pop: {got} != {want}")
            else:
                x = rng.randint(-100, 100)
                buf = mem.allocate(16)
                machine.call("push", [VPtr(head), VPtr(buf),
                                      VInt(x, I64)])
                model.insert(0, x)
            length = machine.call("length", [VPtr(head)])
            _expect(isinstance(length, VInt)
                    and length.value == len(model),
                    f"length: {length} != {len(model)}")
            checks += 1
    return checks


def check_queue(trials: int = 30, seed: int = 0) -> int:
    rng = random.Random(seed)
    checks = 0
    for _ in range(trials):
        machine, _out = _machine("queue")
        mem = machine.memory
        q = mem.allocate(8)
        mem.store(q, encode_ptr(NULL))
        model: list[int] = []
        for _i in range(rng.randint(1, 10)):
            if model and rng.random() < 0.4:
                got = machine.call("dequeue", [VPtr(q)])
                want = model.pop(0)  # FIFO!
                _expect(isinstance(got, VInt) and got.value == want,
                        f"dequeue: {got} != {want} (FIFO order)")
            else:
                x = rng.randint(-100, 100)
                buf = mem.allocate(16)
                machine.call("enqueue", [VPtr(q), VPtr(buf), VInt(x, I64)])
                model.append(x)
            empty = machine.call("queue_empty", [VPtr(q)])
            _expect(isinstance(empty, VInt)
                    and bool(empty.value) == (not model), "queue_empty")
            checks += 1
    return checks


# ---------------------------------------------------------------------
# Binary search.
# ---------------------------------------------------------------------

def check_binary_search(trials: int = 60, seed: int = 0) -> int:
    import bisect
    rng = random.Random(seed)
    machine, _out = _machine("binary_search")
    mem = machine.memory
    checks = 0
    for _ in range(trials):
        n = rng.randint(0, 24)
        xs = sorted(rng.randint(-50, 50) for _ in range(n))
        arr = mem.allocate(8 * max(n, 1))
        for i, x in enumerate(xs):
            mem.store(arr + 8 * i, encode_int(x, I64))
        key = rng.randint(-60, 60)
        got = machine.call("find_slot",
                           [VPtr(arr), VInt(n, SIZE_T), VInt(key, I64)])
        want = bisect.bisect_left(xs, key)
        _expect(isinstance(got, VInt) and got.value == want,
                f"binary_search({xs}, {key}): {got} != {want}")
        checks += 1
    return checks


# ---------------------------------------------------------------------
# Page allocator / mpool (single-threaded driver).
# ---------------------------------------------------------------------

def check_page_alloc(trials: int = 20, seed: int = 0) -> int:
    rng = random.Random(seed)
    checks = 0
    for _ in range(trials):
        machine, _out = _machine("page_alloc")
        mem = machine.memory
        pool = mem.allocate(8)
        machine.call("page_pool_init", [VPtr(pool)])
        live = 0
        for _i in range(rng.randint(1, 10)):
            if rng.random() < 0.5:
                page = mem.allocate(4096)
                machine.call("page_free", [VPtr(pool), VPtr(page)])
                live += 1
            else:
                got = machine.call("page_alloc", [VPtr(pool)])
                assert isinstance(got, VPtr)
                if live > 0:
                    _expect(not got.ptr.is_null, "page_alloc returned NULL "
                            "despite available pages")
                    mem.store(got.ptr, [1] * 4096)  # fully usable
                    live -= 1
                else:
                    _expect(got.ptr.is_null,
                            "page_alloc invented a page")
            checks += 1
    return checks


def check_mpool(trials: int = 20, seed: int = 0) -> int:
    rng = random.Random(seed)
    checks = 0
    for _ in range(trials):
        machine, _out = _machine("mpool")
        mem = machine.memory
        # Initialise the global pool: lock word 0, empty entry list.
        pool_loc = machine.globals["MPOOL"]
        mem.store(pool_loc, encode_int(0, INT))
        mem.store(pool_loc + 8, encode_ptr(NULL))
        live = 0
        for _i in range(rng.randint(1, 10)):
            if rng.random() < 0.5:
                chunk = mem.allocate(64)
                machine.call("mpool_add_chunk", [VPtr(chunk)])
                live += 1
            else:
                got = machine.call("mpool_alloc", [])
                assert isinstance(got, VPtr)
                if live > 0:
                    _expect(not got.ptr.is_null, "mpool_alloc NULL with "
                            "entries available")
                    mem.store(got.ptr, [7] * 64)
                    live -= 1
                else:
                    _expect(got.ptr.is_null, "mpool_alloc invented memory")
            checks += 1
    return checks


# ---------------------------------------------------------------------
# Binary search trees.
# ---------------------------------------------------------------------

def check_bst(study: str = "bst_direct", trials: int = 30,
              seed: int = 0) -> int:
    rng = random.Random(seed)
    member = "tree_member" if study == "bst_direct" else "ltree_member"
    insert = "tree_insert" if study == "bst_direct" else "ltree_insert"
    checks = 0
    for _ in range(trials):
        machine, _out = _machine(study)
        mem = machine.memory
        root = mem.allocate(8)
        mem.store(root, encode_ptr(NULL))
        model: set[int] = set()
        for _i in range(rng.randint(1, 12)):
            x = rng.randint(0, 30)
            if rng.random() < 0.5:
                buf = mem.allocate(24)
                machine.call(insert, [VPtr(root), VPtr(buf),
                                      VInt(x, SIZE_T)])
                model.add(x)
            got = machine.call(member, [VPtr(root), VInt(x, SIZE_T)])
            _expect(isinstance(got, VInt)
                    and bool(got.value) == (x in model),
                    f"{study} member({x}): {got} vs {x in model}")
            checks += 1
    return checks


# ---------------------------------------------------------------------
# Hashmap.
# ---------------------------------------------------------------------

def check_hashmap(trials: int = 30, seed: int = 0) -> int:
    rng = random.Random(seed)
    checks = 0
    for _ in range(trials):
        machine, _out = _machine("hashmap")
        mem = machine.memory
        h = mem.allocate(256)
        for i in range(32):
            mem.store(h + 8 * i, encode_int(0, SIZE_T))
        model: dict[int, int] = {}
        for _i in range(rng.randint(1, 12)):  # capacity 16, never filled
            k = rng.randint(1, 40)
            if rng.random() < 0.6:
                v = rng.randint(1, 1000)
                machine.call("hm_put", [VPtr(h), VInt(k, SIZE_T),
                                        VInt(v, SIZE_T)])
                model[k] = v
            got = machine.call("hm_get", [VPtr(h), VInt(k, SIZE_T)])
            want = model.get(k, 0)
            _expect(isinstance(got, VInt) and got.value == want,
                    f"hm_get({k}): {got} != {want}")
            checks += 1
    return checks


# ---------------------------------------------------------------------
# Concurrency: spinlock mutual exclusion + barrier, with the data-race
# detector armed (races are UB in Caesium, §3).
# ---------------------------------------------------------------------

_SPINLOCK_CLIENT = """
struct [[rc::refined_by()]] spinlock {
  [[rc::field("atomicbool<int; ; tok(lockres, 0)>")]] _Atomic int locked;
};

[[rc::parameters("l: loc")]]
[[rc::args("l @ &shr<spinlock>")]]
[[rc::ensures("tok(lockres, 0)")]]
void spin_lock(struct spinlock* l) {
  int expected = 0;
  [[rc::inv_vars("expected: {0} @ int<int>")]]
  while (!atomic_compare_exchange_strong(&l->locked, &expected, 1)) {
    expected = 0;
  }
}

[[rc::parameters("l: loc")]]
[[rc::args("l @ &shr<spinlock>")]]
[[rc::requires("tok(lockres, 0)")]]
void spin_unlock(struct spinlock* l) {
  atomic_store(&l->locked, 0);
}

void worker(struct spinlock* l, size_t* counter, size_t rounds) {
  size_t i = 0;
  while (i < rounds) {
    spin_lock(l);
    *counter = *counter + 1;
    spin_unlock(l);
    i += 1;
  }
}
"""


def check_spinlock_concurrent(threads: int = 3, rounds: int = 5,
                              seeds=range(8)) -> int:
    """Run several workers incrementing a lock-protected counter under
    randomised interleavings with the race detector armed: no data race
    (= UB) may occur and no increment may be lost."""
    from ..lang import elaborate_source
    tp = elaborate_source(_SPINLOCK_CLIENT)
    checks = 0
    for seed in seeds:
        sched = Scheduler(tp.program, seed=seed)
        mem = sched.memory
        lock = mem.allocate(4)
        mem.store(lock, encode_int(0, INT), tid=0)
        counter = mem.allocate(8)
        mem.store(counter, encode_int(0, SIZE_T), tid=0)
        for _t in range(threads):
            sched.spawn("worker", [VPtr(lock), VPtr(counter),
                                   VInt(rounds, SIZE_T)])
        sched.run()  # raises UndefinedBehavior on any data race
        final = decode_int(mem.load(counter, 8), SIZE_T)
        _expect(final is not None
                and final.value == threads * rounds,
                f"lost updates: {final} != {threads * rounds}")
        checks += 1
    return checks


def check_spinlock_race_detected(seeds=range(6)) -> int:
    """The same client *without* locking must be flagged as racy by the
    Caesium semantics in at least one interleaving — the detector is not
    vacuous."""
    from ..lang import elaborate_source
    src = _SPINLOCK_CLIENT.replace("    spin_lock(l);\n", "") \
                          .replace("    spin_unlock(l);\n", "")
    tp = elaborate_source(src)
    raced = 0
    for seed in seeds:
        sched = Scheduler(tp.program, seed=seed)
        mem = sched.memory
        lock = mem.allocate(4)
        mem.store(lock, encode_int(0, INT), tid=0)
        counter = mem.allocate(8)
        mem.store(counter, encode_int(0, SIZE_T), tid=0)
        for _t in range(2):
            sched.spawn("worker", [VPtr(lock), VPtr(counter),
                                   VInt(3, SIZE_T)])
        try:
            sched.run()
        except UndefinedBehavior:
            raced += 1
    _expect(raced > 0, "unlocked concurrent increments were never "
            "detected as a data race")
    return raced


ALL_SCENARIOS: dict[str, Callable[[], int]] = {
    "alloc": lambda: check_alloc("alloc"),
    "alloc_from_start": lambda: check_alloc("alloc_from_start"),
    "free_list": check_free_list,
    "linked_list": check_linked_list,
    "queue": check_queue,
    "binary_search": check_binary_search,
    "page_alloc": check_page_alloc,
    "mpool": check_mpool,
    "bst_direct": lambda: check_bst("bst_direct"),
    "bst_layered": lambda: check_bst("bst_layered"),
    "hashmap": check_hashmap,
    "spinlock_concurrent": check_spinlock_concurrent,
    "spinlock_race_detected": check_spinlock_race_detected,
}
