"""Independent checking of Lithium derivations.

The paper keeps the Lithium interpreter out of the TCB because it produces
genuine Coq proofs.  Our substitute: proof search records an explicit
derivation tree (:mod:`repro.lithium.derivation`), and this module
re-validates it *without trusting the search engine's control flow*:

* every ``side_condition`` leaf is re-proved from its recorded hypotheses
  by a **fresh** solver instance;
* every ``rule`` node names a rule actually registered for its judgment;
* every ``atom_match`` has a subsumption sub-derivation;
* the search was structurally non-backtracking (each node appears once,
  the tree only ever extends — a violated invariant would show up as
  duplicated or orphaned nodes).

This is weaker than a Coq kernel (it re-checks the *pure* layer but trusts
the statements of the typing rules, as recorded), but it is an independent
artifact: a bug in the search engine that produced a bogus derivation is
caught here, and the adequacy harness covers the semantic layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..lithium.derivation import DNode
from ..pure.parser import parse_term
from ..pure.solver import Outcome, PureSolver


@dataclass
class CertificateReport:
    """The result of re-checking one derivation."""

    rules_checked: int = 0
    side_conditions_rechecked: int = 0
    side_conditions_skipped: int = 0     # not re-parseable (term reprs)
    atom_matches: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


_KNOWN_KINDS = {
    "proof", "true", "conj_branch", "forall_intro", "exists_intro", "rule",
    "side_condition", "side_condition_deferred", "atom_match", "assume",
    "intro_atom", "vacuous", "evar_unify", "evar_simplify",
    "evar_linear_solve",
}


def check_derivation(root: DNode, registry, solver: Optional[PureSolver]
                     = None) -> CertificateReport:
    """Re-validate a derivation tree against the rule registry.

    ``solver`` is the solver configuration the function was entitled to
    (its rc::tactics and rc::lemmas); side conditions recorded as solved
    are re-run where the recorded goal can be reconstructed.
    """
    report = CertificateReport()
    rule_names = {r.name for r in registry.all_rules()}
    seen: set[int] = set()
    for node in root.walk():
        if id(node) in seen:
            report.problems.append("derivation dag-shares a node "
                                   "(backtracking artefact)")
            continue
        seen.add(id(node))
        if node.kind not in _KNOWN_KINDS:
            report.problems.append(f"unknown derivation step {node.kind!r}")
        if node.kind == "rule":
            report.rules_checked += 1
            if node.label not in rule_names:
                report.problems.append(
                    f"derivation uses unregistered rule {node.label!r}")
        if node.kind == "atom_match":
            report.atom_matches += 1
            if not any(c.kind == "rule" for c in node.walk()):
                report.problems.append(
                    f"atom match for {node.label} has no subsumption "
                    f"derivation")
        if node.kind == "side_condition":
            _recheck_side_condition(node, solver, report)
    return report


def _recheck_side_condition(node: DNode, solver: Optional[PureSolver],
                            report: CertificateReport) -> None:
    """Re-prove a recorded side condition with a fresh solver.

    The recorded goal/hypotheses are term ``repr``\\ s; they are re-parsed
    through the term evaluator when syntactically round-trippable.  (Terms
    containing internal symbols — skolem names with ``$``, evars — do not
    round-trip; those are counted as skipped rather than silently passed.)
    """
    if solver is None:
        report.side_conditions_skipped += 1
        return
    goal_src = node.label
    hyp_srcs = node.detail.get("hypotheses")
    if hyp_srcs is None:
        report.side_conditions_skipped += 1
        return
    try:
        env = _reconstruct_env([goal_src] + list(hyp_srcs))
        goal = parse_term(_to_ascii(goal_src), env)
        hyps = [parse_term(_to_ascii(h), env) for h in hyp_srcs]
    except Exception:
        report.side_conditions_skipped += 1
        return
    fresh = PureSolver(tactics=solver.tactics, lemmas=solver.lemmas)
    result = fresh.prove(hyps, goal)
    report.side_conditions_rechecked += 1
    if result.outcome is Outcome.FAILED:
        report.problems.append(
            f"side condition does not re-check: {goal_src}")


_OP_WORDS = {
    "add": "+", "sub": "-", "mul": "*", "le": "<=", "lt": "<", "eq": "=",
}


def _to_ascii(src: str) -> str:
    """Term reprs are function-style (``le(a, b)``); the expression parser
    accepts function application for unknown symbols, so most round-trip
    once the prefix operators are rewritten infix."""
    import re
    out = src
    for _ in range(64):
        m = re.search(r"\b(add|sub|mul|le|lt|eq|not|and|or|implies|ite|div|"
                      r"mod)\(", out)
        if m is None:
            return out
        start = m.start()
        op = m.group(1)
        args, end = _split_args(out, m.end())
        if args is None:
            raise ValueError("unbalanced")
        repl = _render(op, args)
        out = out[:start] + repl + out[end:]
    return out


def _split_args(s: str, pos: int):
    depth = 1
    args = []
    cur = []
    i = pos
    while i < len(s):
        ch = s[i]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
            if depth == 0:
                args.append("".join(cur).strip())
                return args, i + 1
        if ch == "," and depth == 1:
            args.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
        i += 1
    return None, i


def _render(op: str, args: list[str]) -> str:
    if op in _OP_WORDS and len(args) >= 2:
        joined = f" {_OP_WORDS[op]} ".join(f"({a})" for a in args)
        return f"({joined})"
    if op == "not" and len(args) == 1:
        # ¬φ is rendered as φ → (0 = 1): the expression grammar has no
        # prefix negation, and implication-to-False is equivalent.
        return f"(({args[0]}) -> (0 = 1))"
    if op == "and":
        return "(" + " && ".join(f"({a})" for a in args) + ")"
    if op == "or":
        return "(" + " || ".join(f"({a})" for a in args) + ")"
    if op == "implies" and len(args) == 2:
        return f"(({args[0]}) -> ({args[1]}))"
    if op == "ite" and len(args) == 3:
        return f"(({args[0]}) ? ({args[1]}) : ({args[2]}))"
    if op == "div" and len(args) == 2:
        return f"(({args[0]}) / ({args[1]}))"
    if op == "mod" and len(args) == 2:
        return f"(({args[0]}) % ({args[1]}))"
    raise ValueError(op)


def _reconstruct_env(sources: list[str]) -> dict:
    """Build a variable environment from the identifiers appearing in the
    recorded terms (INT by default; names with list/mset hints typed
    accordingly).  Terms with internal symbols are rejected upstream."""
    import re
    from ..pure.terms import Sort, var
    env: dict = {}
    blob = " ".join(sources)
    if "$" in blob or "?e" in blob or "◁" in blob:
        raise ValueError("internal symbols present")
    for name in set(re.findall(r"\b[A-Za-z_][A-Za-z_0-9]*\b", blob)):
        if name in ("add", "sub", "mul", "le", "lt", "eq", "not", "and",
                    "or", "implies", "ite", "div", "mod", "len", "msize",
                    "true", "false", "True", "False", "nil", "mempty",
                    "msingle", "munion", "mall_ge", "mall_le", "mmember",
                    "cons", "append", "head", "tail", "index", "store",
                    "sorted", "min", "max", "loc_offset"):
            continue
        if name.startswith("fn:"):
            continue
        sort = Sort.INT
        if name in ("xs", "ys", "ks", "vs", "tl", "cs"):
            sort = Sort.LIST
        elif name in ("s", "l", "r", "tail_", "s1", "s2"):
            sort = Sort.MSET
        env[name] = var(name, sort)
    return env
