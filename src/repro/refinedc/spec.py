"""RefinedC specifications: parsing type expressions and building function
types from ``[[rc::...]]`` annotations (§2, §4).

The type-expression surface syntax mirrors the paper's::

    n @ int<size_t>                  singleton integer
    int<size_t>                      unrefined integer
    p @ &own<a @ mem_t>              owned pointer, location-refined
    &shr<spinlock_t<g>>              shared (invariant-governed) pointer
    &own<uninit<a>>                  pointer to a uninitialised bytes
    null                             the NULL singleton
    {n ≤ a} @ optional<T1, T2>       type-level conditional
    wand<{own cp : T}, T2>           magic-wand type (partial structures)
    xs @ array<int64_t, n>           integer array refined by a list
    fn<qsort_cmp>                    function pointer with a named spec
    atomicbool<int, H_true; H_false> atomic boolean (§6)
    s @ chunks_t                     user-defined (possibly recursive) type
    ...                              the enclosing-struct placeholder
                                     inside rc::ptr_type (§2.2)

Resource assertions (in ``rc::requires``/``rc::ensures``/wand holes)::

    own <loc-expr> : <type>          a LocType atom (the paper's "own p : τ")
    shr <loc-expr> : <type>          a persistent LocType atom
    tok(<name>, <expr>)              a ghost token
    ptok(<name>, <expr>)             a persistent ghost token
    <anything else>                  a pure proposition
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from ..caesium.layout import INT_TYPES_BY_NAME, IntType, Layout, StructLayout
from ..pure.compiled import COMPILE
from ..pure.parser import SpecParseError, parse_sort, parse_term
from ..pure.solver import Lemma
from ..pure.terms import (Sort, Term, Var, and_, ge, intlit, le, subst_vars,
                          var)
from .judgments import LocType, TokenAtom
from .types import (ArrayT, AtomicBoolT, BoolT, ConstrainedT, ExistsT, FnT,
                    IntT, NamedT, NullT, OptionalT, OwnPtr, PaddedT, RType,
                    StructT, TypeDef, TypeTable, UninitT, WandT)


class SpecError(Exception):
    """Raised for malformed specifications."""


@dataclass(frozen=True)
class ShrPtr(RType):
    """``&shr<τ>`` — a shared pointer to invariant-governed content.

    Only atomic accesses are allowed through it; its target ``LocType`` is
    persistent.  (The paper's spinlock abstraction is built on this.)
    """

    inner: RType
    loc: Optional[Term] = None

    @property
    def head(self) -> str:
        return "shr"

    def resolve(self, subst):
        return ShrPtr(self.inner.resolve(subst),
                      subst.resolve(self.loc) if self.loc is not None else None)

    def layout_size(self):
        return intlit(8)

    def subst_with(self, m):
        from ..pure.terms import subst_vars
        from .substitution import subst_type
        return ShrPtr(subst_type(self.inner, m),
                      subst_vars(self.loc, m) if self.loc is not None else None)

    def __repr__(self) -> str:
        prefix = f"{self.loc!r} @ " if self.loc is not None else ""
        return f"{prefix}&shr<{self.inner!r}>"


@dataclass
class SpecContext:
    """Everything a type expression may refer to."""

    types: TypeTable = field(default_factory=TypeTable)
    structs: dict[str, StructLayout] = field(default_factory=dict)
    fn_specs: dict[str, "FunctionSpec"] = field(default_factory=dict)
    constants: dict[str, Term] = field(default_factory=dict)
    fn_sorts: dict[str, Sort] = field(default_factory=dict)
    # The rc::ptr_type "..." placeholder, set while elaborating a struct.
    placeholder: Optional[Callable[[], RType]] = None
    # Which struct definition owns each named RefinedC type (filled by
    # define_struct_type).  The dependency graph (repro.driver.depgraph)
    # uses this to map a consumed type name back to its defining struct.
    type_sources: dict[str, str] = field(default_factory=dict)
    # When set, parse_type records every named type / fn<> spec it
    # resolves as a ``(kind, name)`` pair — the "verification inputs
    # actually consumed" by the annotation being elaborated.
    recording: Optional[set] = None
    # RC_COMPILE: (text, env) -> parsed refinement term, per context
    # (refinements re-parse on every named-type unfold at check time).
    refinement_cache: dict = field(default_factory=dict)

    def record(self, kind: str, name: str) -> None:
        if self.recording is not None:
            self.recording.add((kind, name))


# ---------------------------------------------------------------------
# Splitting helpers (respecting <>, {}, () nesting).
# ---------------------------------------------------------------------

def _depths(text: str):
    """Yield ``(index, top_level)`` for each character.

    Angle brackets only count as nesting *outside* ``{...}`` Coq escapes —
    inside braces, ``<``/``<=`` are comparisons, not type brackets.
    """
    brace = paren = bracket = angle = 0
    for i, ch in enumerate(text):
        if ch == "{":
            brace += 1
        elif ch == "}":
            brace -= 1
        elif ch == "(":
            paren += 1
        elif ch == ")":
            paren -= 1
        elif ch == "[":
            bracket += 1
        elif ch == "]":
            bracket -= 1
        elif brace == 0 and ch == "<":
            angle += 1
        elif brace == 0 and ch == ">":
            angle -= 1
        opener = ch in "{([" or (brace == 0 and ch == "<")
        top = (brace == 0 and paren == 0 and bracket == 0 and angle == 0
               and not opener)
        yield i, top


def _split_top(text: str, seps: str) -> list[str]:
    """Split ``text`` at top-level occurrences of any char in ``seps``."""
    parts: list[str] = []
    cur: list[str] = []
    for i, top in _depths(text):
        ch = text[i]
        if top and ch in seps:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    parts.append("".join(cur))
    return parts


def _find_top(text: str, target: str) -> int:
    """Index of the first top-level occurrence of ``target``, or -1."""
    for i, top in _depths(text):
        if top and text[i:i + len(target)] == target:
            return i
    return -1


def _angle_body(text: str, prefix: str) -> str:
    """For ``prefix<...>`` return the ``...`` (validating the match)."""
    rest = text[len(prefix):].strip()
    if not (rest.startswith("<") and rest.endswith(">")):
        raise SpecError(f"expected {prefix}<...>, got {text!r}")
    return rest[1:-1].strip()


# ---------------------------------------------------------------------
# Type expressions.
# ---------------------------------------------------------------------

def parse_type(text: str, env: Mapping[str, Term], ctx: SpecContext) -> RType:
    """Parse a RefinedC type expression."""
    text = text.strip()
    at = _find_top(text, "@")
    refinement: Optional[Term] = None
    refinements: Optional[list[Term]] = None
    if at >= 0:
        ref_text = text[:at].strip()
        text = text[at + 1:].strip()
        if ref_text.startswith("(") and ref_text.endswith(")") \
                and "," in ref_text:
            refinements = [
                _parse_refinement(p.strip(), env, ctx)
                for p in _split_top(ref_text[1:-1], ",")]
        else:
            refinement = _parse_refinement(ref_text, env, ctx)
            refinements = [refinement]
    return _parse_constructor(text, refinement, refinements, env, ctx)


_TMPL_MISS = object()


def _parse_refinement(text: str, env: Mapping[str, Term],
                      ctx: SpecContext) -> Term:
    if COMPILE.enabled:
        # Refinement texts are re-parsed at check time whenever a named
        # type is unfolded (struct_body closures call back into
        # parse_type per field).  The binder *terms* differ per unfold,
        # so memoizing on the exact environment rarely hits; instead the
        # text is parsed ONCE per (text, binder-sort signature) against
        # placeholder variables, and each unfold merely substitutes the
        # actual binders into the compiled template.  ``subst_vars``
        # rebuilds changed nodes through ``app()``, so constant folding
        # and canonicalisation match a direct parse exactly.  The
        # placeholder names start with NUL, which the surface syntax
        # cannot produce, so they can never collide with variables
        # embedded in ``ctx.constants``.
        key = (text, tuple((n, t.sort) for n, t in env.items()))
        cache = ctx.refinement_cache
        tmpl = cache.get(key, _TMPL_MISS)
        if tmpl is _TMPL_MISS:
            try:
                phold = {n: Var("\x00tmpl:" + n, t.sort)
                         for n, t in env.items()}
                tmpl = (parse_term(text, phold, ctx.constants,
                                   ctx.fn_sorts), phold)
            except Exception:
                # Re-parse failing texts directly so the error message
                # never mentions a placeholder.
                tmpl = None
            cache[key] = tmpl
        if tmpl is not None:
            term, phold = tmpl
            mapping = {phold[n]: t for n, t in env.items()
                       if phold[n] is not t}
            return subst_vars(term, mapping) if mapping else term
    return _parse_refinement_impl(text, env, ctx)


def _parse_refinement_impl(text: str, env: Mapping[str, Term],
                           ctx: SpecContext) -> Term:
    try:
        return parse_term(text, env, ctx.constants, ctx.fn_sorts)
    except SpecParseError as exc:
        raise SpecError(f"bad refinement {text!r}: {exc}") from exc


def _parse_constructor(text: str, refinement: Optional[Term],
                       refinements: Optional[list[Term]],
                       env: Mapping[str, Term], ctx: SpecContext) -> RType:
    if text == "...":
        if ctx.placeholder is None:
            raise SpecError("'...' used outside rc::ptr_type")
        return ctx.placeholder()
    if text == "null":
        if refinement is not None:
            raise SpecError("null takes no refinement")
        return NullT()
    if text.startswith("int<"):
        itype = _int_type(_angle_body(text, "int"))
        return IntT(itype, refinement)
    if text.startswith("bool<"):
        itype = _int_type(_angle_body(text, "bool"))
        return BoolT(itype, refinement)
    if text == "bool":
        return BoolT(INT_TYPES_BY_NAME["int"], refinement)
    if text.startswith("&own<"):
        inner = parse_type(_angle_body(text, "&own"), env, ctx)
        return OwnPtr(inner, refinement)
    if text.startswith("&shr<"):
        inner = parse_type(_angle_body(text, "&shr"), env, ctx)
        return ShrPtr(inner, refinement)
    if text.startswith("uninit<"):
        size = _parse_refinement(_angle_body(text, "uninit"), env, ctx)
        return UninitT(size)
    if text.startswith("optional<"):
        parts = _split_top(_angle_body(text, "optional"), ",")
        if len(parts) != 2:
            raise SpecError(f"optional takes two types: {text!r}")
        if refinement is None:
            raise SpecError("optional needs a boolean refinement")
        return OptionalT(refinement, parse_type(parts[0], env, ctx),
                         parse_type(parts[1], env, ctx))
    if text.startswith("wand<"):
        parts = _split_top(_angle_body(text, "wand"), ",")
        if len(parts) < 2:
            raise SpecError(f"wand takes a hole and a type: {text!r}")
        hole_text = ",".join(parts[:-1]).strip()
        if hole_text.startswith("{") and hole_text.endswith("}"):
            hole_text = hole_text[1:-1]
        hole = tuple(parse_assertion(p.strip(), env, ctx)
                     for p in _split_top(hole_text, ";") if p.strip())
        return WandT(hole, parse_type(parts[-1], env, ctx))
    if text.startswith("array<"):
        parts = _split_top(_angle_body(text, "array"), ",")
        if len(parts) != 2:
            raise SpecError(f"array takes an int type and a length: {text!r}")
        itype = _int_type(parts[0].strip())
        length = _parse_refinement(parts[1], env, ctx)
        if refinement is None:
            raise SpecError("array needs a list refinement")
        return ArrayT(itype, refinement, length)
    if text.startswith("fn<"):
        name = _angle_body(text, "fn").strip()
        if name not in ctx.fn_specs:
            raise SpecError(f"fn<{name}>: unknown function spec")
        ctx.record("fnspec", name)
        return FnT(ctx.fn_specs[name])
    if text.startswith("atomicbool<"):
        parts = _split_top(_angle_body(text, "atomicbool"), ";")
        if len(parts) != 3:
            raise SpecError(
                "atomicbool<itype; H_true; H_false> takes three parts")
        itype = _int_type(parts[0].strip())
        h_true = _parse_hole(parts[1], env, ctx)
        h_false = _parse_hole(parts[2], env, ctx)
        return AtomicBoolT(itype, h_true, h_false)
    # Named type (possibly with explicit <args>).
    name = text
    args: list[Term] = list(refinements or [])
    lt = -1
    brace = 0
    for i, ch in enumerate(text):
        if ch == "{":
            brace += 1
        elif ch == "}":
            brace -= 1
        elif ch == "<" and brace == 0:
            lt = i
            break
    if lt > 0 and text.endswith(">"):
        name = text[:lt]
        args = [_parse_refinement(p, env, ctx)
                for p in _split_top(text[lt + 1:-1], ",") if p.strip()]
    if name in ctx.types:
        td = ctx.types.lookup(name)
        if len(args) != len(td.param_sorts):
            raise SpecError(
                f"type {name} expects {len(td.param_sorts)} refinement(s), "
                f"got {len(args)}")
        ctx.record("type", name)
        return NamedT(name, tuple(args))
    raise SpecError(f"cannot parse type expression {text!r}")


def _parse_hole(text: str, env: Mapping[str, Term],
                ctx: SpecContext) -> tuple:
    text = text.strip()
    if text in ("True", "true", "{True}", ""):
        return ()
    if text.startswith("{") and text.endswith("}"):
        text = text[1:-1]
    return tuple(parse_assertion(p.strip(), env, ctx)
                 for p in _split_top(text, ";") if p.strip())


def _int_type(name: str) -> IntType:
    name = name.strip()
    if name not in INT_TYPES_BY_NAME:
        raise SpecError(f"unknown C integer type {name!r}")
    return INT_TYPES_BY_NAME[name]


# ---------------------------------------------------------------------
# Resource assertions (requires/ensures/wand holes).
# ---------------------------------------------------------------------

def parse_assertion(text: str, env: Mapping[str, Term], ctx: SpecContext):
    """Parse an assertion: a LocType/Token atom, or a pure Term."""
    text = text.strip()
    for keyword, shared in (("own ", False), ("shr ", True)):
        if text.startswith(keyword):
            colon = _find_top(text[len(keyword):], ":")
            if colon < 0:
                raise SpecError(f"expected 'own <loc> : <type>': {text!r}")
            loc_text = text[len(keyword):len(keyword) + colon].strip()
            ty_text = text[len(keyword) + colon + 1:].strip()
            loc = _parse_refinement(loc_text, env, ctx)
            if loc.sort is not Sort.LOC:
                raise SpecError(f"{loc_text!r} is not a location")
            return LocType(loc, parse_type(ty_text, env, ctx), shared)
    for keyword, dup in (("ptok(", True), ("tok(", False)):
        if text.startswith(keyword) and text.endswith(")"):
            parts = _split_top(text[len(keyword):-1], ",")
            if len(parts) != 2:
                raise SpecError(f"tok takes (name, index): {text!r}")
            return TokenAtom(parts[0].strip(),
                             _parse_refinement(parts[1], env, ctx), dup)
    return _parse_refinement(text, env, ctx)


# ---------------------------------------------------------------------
# Function specifications.
# ---------------------------------------------------------------------

@dataclass
class FunctionSpec:
    """A RefinedC function type
    ``fn(∀x. τ_args; H_pre) → ∃y. τ_ret; H_post`` (§4)."""

    name: str
    params: list[Var] = field(default_factory=list)
    param_facts: list[Term] = field(default_factory=list)   # nat ≥ 0 etc.
    arg_types: list[RType] = field(default_factory=list)
    requires: list = field(default_factory=list)            # atoms + Terms
    exists: list[Var] = field(default_factory=list)         # postcond ∃y
    returns: Optional[RType] = None                         # None = void
    ensures: list = field(default_factory=list)             # atoms + Terms
    tactics: list[str] = field(default_factory=list)
    lemmas: list[Lemma] = field(default_factory=list)
    trusted: bool = False          # spec assumed without a verified body
    annotation_lines: dict[str, int] = field(default_factory=dict)
    # The named types and fn<> specs this spec's annotations consumed
    # during elaboration (``(kind, name)`` pairs, kind in {"type",
    # "fnspec"}) — the spec-side edges of the dependency graph.
    spec_deps: frozenset = frozenset()

    def spec_env(self) -> dict[str, Term]:
        env: dict[str, Term] = {p.name: p for p in self.params}
        for y in self.exists:
            env[y.name] = y
        return env


@dataclass
class RawFunctionAnnotations:
    """The raw string annotations attached to a C function definition, as
    produced by the front end."""

    parameters: list[str] = field(default_factory=list)   # "a: nat"
    args: list[str] = field(default_factory=list)
    requires: list[str] = field(default_factory=list)
    exists: list[str] = field(default_factory=list)
    returns: Optional[str] = None
    ensures: list[str] = field(default_factory=list)
    tactics: list[str] = field(default_factory=list)
    lemmas: list[str] = field(default_factory=list)        # named lemma refs
    trusted: bool = False


def build_function_spec(name: str, raw: RawFunctionAnnotations,
                        ctx: SpecContext,
                        lemma_table: Optional[Mapping[str, Lemma]] = None,
                        ) -> FunctionSpec:
    """Elaborate raw annotations into a :class:`FunctionSpec`.

    While the annotations are parsed, ``ctx.recording`` collects every
    named type and ``fn<>`` spec they resolve; the consumed set lands in
    ``spec.spec_deps`` for the incremental driver's dependency graph."""
    consumed: set = set()
    previous_recording = ctx.recording
    ctx.recording = consumed
    try:
        spec = _build_function_spec(name, raw, ctx, lemma_table)
    finally:
        ctx.recording = previous_recording
    spec.spec_deps = frozenset(consumed)
    return spec


def _build_function_spec(name: str, raw: RawFunctionAnnotations,
                         ctx: SpecContext,
                         lemma_table: Optional[Mapping[str, Lemma]] = None,
                         ) -> FunctionSpec:
    spec = FunctionSpec(name)
    env: dict[str, Term] = {}
    for decl in raw.parameters:
        pname, psort, is_nat = _parse_binder(decl)
        p = var(pname, psort)
        spec.params.append(p)
        env[pname] = p
        if is_nat:
            spec.param_facts.append(le(intlit(0), p))
    for decl in raw.exists:
        yname, ysort, is_nat = _parse_binder(decl)
        y = var(yname, ysort)
        spec.exists.append(y)
        if is_nat:
            spec.ensures.append(le(intlit(0), y))
    arg_env = dict(env)
    for a in raw.args:
        spec.arg_types.append(parse_type(a, arg_env, ctx))
    full_env = dict(env)
    for y in spec.exists:
        full_env[y.name] = y
    for r in raw.requires:
        spec.requires.append(parse_assertion(r, env, ctx))
    if raw.returns is not None:
        spec.returns = parse_type(raw.returns, full_env, ctx)
    for e in raw.ensures:
        spec.ensures.append(parse_assertion(e, full_env, ctx))
    spec.tactics = [t.strip().rstrip(".").removeprefix("all:").strip()
                    for t in raw.tactics]
    if raw.lemmas:
        table = lemma_table or {}
        missing = [l for l in raw.lemmas if l not in table]
        if missing:
            raise SpecError(f"{name}: unknown lemmas {missing}")
        spec.lemmas = [table[l] for l in raw.lemmas]
    spec.trusted = raw.trusted
    spec.annotation_lines = {
        "parameters": len(raw.parameters), "args": len(raw.args),
        "requires": len(raw.requires), "exists": len(raw.exists),
        "returns": 1 if raw.returns else 0, "ensures": len(raw.ensures),
        "tactics": len(raw.tactics),
    }
    return spec


def _parse_binder(decl: str) -> tuple[str, Sort, bool]:
    """Parse ``"a: nat"`` / ``"s: {gmultiset nat}"`` binder declarations."""
    if ":" not in decl:
        raise SpecError(f"bad binder {decl!r} (expected 'name: sort')")
    pname, sort_text = decl.split(":", 1)
    pname = pname.strip()
    if not pname.isidentifier():
        raise SpecError(f"bad binder name {pname!r}")
    try:
        psort, is_nat = parse_sort(sort_text)
    except SpecParseError as exc:
        raise SpecError(str(exc)) from exc
    return pname, psort, is_nat


# ---------------------------------------------------------------------
# Struct specifications (rc::refined_by / rc::field / ... on structs).
# ---------------------------------------------------------------------

@dataclass
class RawStructAnnotations:
    refined_by: list[str] = field(default_factory=list)
    fields: dict[str, str] = field(default_factory=dict)   # field -> type
    exists: list[str] = field(default_factory=list)
    constraints: list[str] = field(default_factory=list)
    size: Optional[str] = None
    ptr_type: Optional[tuple[str, str]] = None   # (name, type expr)
    typedef_name: Optional[str] = None           # plain typedef alias


def define_struct_type(layout: StructLayout, raw: RawStructAnnotations,
                       ctx: SpecContext) -> Optional[str]:
    """Register the named RefinedC type a struct annotation defines.

    Returns the name of the defined type (or ``None`` if the struct carries
    no refinement annotations).
    """
    if not raw.refined_by and not raw.fields:
        return None
    binders = [_parse_binder(d) for d in raw.refined_by]
    ex_binders = [_parse_binder(d) for d in raw.exists]
    param_sorts = tuple(s for _, s, _ in binders)

    def struct_body(*args: Term) -> RType:
        env: dict[str, Term] = {n: a for (n, _, _), a in zip(binders, args)}
        nat_facts = [le(intlit(0), a)
                     for (n, _, is_nat), a in zip(binders, args) if is_nat]

        def wrap_exists(pending: list, env2: dict[str, Term]) -> RType:
            if pending:
                nm, srt, is_nat = pending[0]
                return ExistsT(srt, nm, lambda x: wrap_exists(
                    pending[1:], {**env2, nm: x}))
            fields = []
            for fname, _flayout in layout.fields:
                ftext = raw.fields.get(fname)
                if ftext is None:
                    raise SpecError(
                        f"struct {layout.name}: field {fname!r} lacks an "
                        f"rc::field annotation")
                fields.append((fname, parse_type(ftext, env2, ctx)))
            t: RType = StructT(layout, tuple(fields))
            constraints = [
                _parse_refinement(c, env2, ctx) for c in raw.constraints]
            for nm, _srt, nat in ex_binders:
                if nat:
                    constraints.append(le(intlit(0), env2[nm]))
            if constraints:
                t = ConstrainedT(t, and_(*constraints))
            if raw.size is not None:
                t = PaddedT(t, _parse_refinement(raw.size, env2, ctx))
            return t

        t = wrap_exists(ex_binders, env)
        if nat_facts:
            t = ConstrainedT(t, and_(*nat_facts))
        return t

    if raw.ptr_type is not None:
        ptr_name, ptr_text = raw.ptr_type
        # Defer: '...' inside the ptr_type expression means the struct body.
        def ptr_body(*args: Term) -> RType:
            env = {n: a for (n, _, _), a in zip(binders, args)}
            old = ctx.placeholder
            ctx.placeholder = lambda: struct_body(*args)
            try:
                return parse_type(ptr_text, env, ctx)
            finally:
                ctx.placeholder = old
        ctx.types.define(TypeDef(ptr_name, param_sorts, ptr_body,
                                 layout=None, is_ptr_type=True))
        ctx.type_sources[ptr_name] = layout.name
        return ptr_name
    type_name = raw.typedef_name or layout.name
    ctx.types.define(TypeDef(type_name, param_sorts, struct_body,
                             layout=layout))
    ctx.type_sources[type_name] = layout.name
    return type_name
