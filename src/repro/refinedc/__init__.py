"""The RefinedC type system: refinement + ownership types for C (§4–§6),
expressed as Lithium rules and driven by the checker."""

from .checker import (FnCtx, FunctionResult, GlobalSpec, ProgramResult,
                      TypedProgram, check_function, check_program,
                      missing_body_result, verification_targets)
from .judgments import LocType, TokenAtom, ValType
from .spec import (FunctionSpec, RawFunctionAnnotations, RawStructAnnotations,
                   ShrPtr, SpecContext, SpecError, build_function_spec,
                   define_struct_type, parse_assertion, parse_type)
from .types import (ArrayT, AtomicBoolT, BoolT, ConstrainedT, ExistsT, FnT,
                    IntT, NamedT, NullT, OptionalT, OwnPtr, PaddedT, RType,
                    StructT, TypeDef, TypeTable, UninitT, ValueT, WandT)

__all__ = [
    "ArrayT", "AtomicBoolT", "BoolT", "ConstrainedT", "ExistsT", "FnCtx",
    "FnT", "FunctionResult", "FunctionSpec", "GlobalSpec", "IntT",
    "LocType", "NamedT", "NullT", "OptionalT", "OwnPtr", "PaddedT",
    "ProgramResult", "RType", "RawFunctionAnnotations",
    "RawStructAnnotations", "ShrPtr", "SpecContext", "SpecError", "StructT",
    "TokenAtom", "TypeDef", "TypeTable", "TypedProgram", "UninitT",
    "ValType", "ValueT", "WandT", "build_function_spec", "check_function",
    "check_program", "define_struct_type", "missing_body_result",
    "parse_assertion", "parse_type", "verification_targets",
]
