"""RefinedC types (§4, Figure 4).

Every type is an immutable description of (a) the physical layout of some
bytes and (b) the logical refinement constraining them.  Refinements are
terms of :mod:`repro.pure.terms` and "range over arbitrary mathematical
domains".

The executable *semantic model* of these types — the analogue of the paper's
Iris interpretation — lives in :mod:`repro.proofs.semantics`; the typing
rules in :mod:`repro.refinedc.rules` are validated against it by the
adequacy harness.

Type heads (used as Lithium dispatch keys):

======================= ================================================
``int``                 ``n @ int<α>`` — C integer of type α encoding n
``bool``                ``φ @ bool`` — boolean reflecting proposition φ
``own``                 ``ℓ @ &own<τ>`` — unique ownership of τ at ℓ
``uninit``              ``uninit<n>`` — n uninitialised bytes
``null``                singleton type of NULL
``optional``            ``φ @ optional<τ₁, τ₂>`` — if φ then τ₁ else τ₂
``wand``                ``wand<H, τ>`` — τ with hole H (magic wand)
``struct``              struct with per-field types
``exists``              ``∃x. τ(x)``
``constrained``         ``{τ | φ}``
``padded``              ``padded<τ, n>`` — τ padded to n bytes
``array``               array of cells refined by a mathematical list
``value``               singleton "this location holds exactly value v"
``fn``                  function-pointer type carrying a full spec
``atomicbool``          atomic boolean holding H⊤ or H⊥ (§6)
``named``               a (possibly recursive) user-defined type by name
======================= ================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from ..caesium.layout import PTR_SIZE, IntType, Layout, StructLayout
from ..pure.compiled import COMPILE
from ..pure.terms import Sort, Subst, Term, intlit

if TYPE_CHECKING:  # pragma: no cover
    from .judgments import LocType, ValType
    from .spec import FunctionSpec


class RType:
    """Base class of RefinedC types."""

    @property
    def head(self) -> str:
        raise NotImplementedError

    def resolve(self, subst: Subst) -> "RType":
        return self

    def layout_size(self) -> Optional[Term]:
        """The number of bytes this type occupies, as a term (``None`` when
        not statically known from the type alone)."""
        return None

    def describe(self) -> str:
        return repr(self)


@dataclass(frozen=True)
class IntT(RType):
    """``n @ int<α>`` (refinement ``None`` = unrefined ``int<α>``)."""

    itype: IntType
    refinement: Optional[Term] = None

    @property
    def head(self) -> str:
        return "int"

    def resolve(self, subst: Subst) -> "IntT":
        if self.refinement is None:
            return self
        r = subst.resolve(self.refinement)
        return self if COMPILE.enabled and r is self.refinement else IntT(self.itype, r)

    def layout_size(self) -> Term:
        return intlit(self.itype.size)

    def __repr__(self) -> str:
        prefix = f"{self.refinement!r} @ " if self.refinement is not None else ""
        return f"{prefix}int<{self.itype.name}>"


@dataclass(frozen=True)
class BoolT(RType):
    """``φ @ bool`` over an integer layout (C has no native bool in our
    subset; comparisons produce ``int``)."""

    itype: IntType
    phi: Optional[Term] = None

    @property
    def head(self) -> str:
        return "bool"

    def resolve(self, subst: Subst) -> "BoolT":
        if self.phi is None:
            return self
        r = subst.resolve(self.phi)
        return self if COMPILE.enabled and r is self.phi else BoolT(self.itype, r)

    def layout_size(self) -> Term:
        return intlit(self.itype.size)

    def __repr__(self) -> str:
        prefix = f"{self.phi!r} @ " if self.phi is not None else ""
        return f"{prefix}bool<{self.itype.name}>"


@dataclass(frozen=True)
class OwnPtr(RType):
    """``ℓ @ &own<τ>`` — unique ownership of ``τ`` stored at ``ℓ``.

    The refinement ``loc`` pins the exact location (used for the ownership
    give-back pattern of ``rc::ensures``, §2.1); ``None`` leaves it
    unconstrained.
    """

    inner: RType
    loc: Optional[Term] = None

    @property
    def head(self) -> str:
        return "own"

    def resolve(self, subst: Subst) -> "OwnPtr":
        inner = self.inner.resolve(subst)
        loc = subst.resolve(self.loc) if self.loc is not None else None
        if COMPILE.enabled and inner is self.inner and loc is self.loc:
            return self
        return OwnPtr(inner, loc)

    def layout_size(self) -> Term:
        return intlit(PTR_SIZE)

    def __repr__(self) -> str:
        prefix = f"{self.loc!r} @ " if self.loc is not None else ""
        return f"{prefix}&own<{self.inner!r}>"


@dataclass(frozen=True)
class UninitT(RType):
    """``uninit<n>`` — ``n`` uninitialised (arbitrary) bytes."""

    size: Term

    @property
    def head(self) -> str:
        return "uninit"

    def resolve(self, subst: Subst) -> "UninitT":
        r = subst.resolve(self.size)
        return self if COMPILE.enabled and r is self.size else UninitT(r)

    def layout_size(self) -> Term:
        return self.size

    def __repr__(self) -> str:
        return f"uninit<{self.size!r}>"


@dataclass(frozen=True)
class NullT(RType):
    """The singleton type of ``NULL``."""

    @property
    def head(self) -> str:
        return "null"

    def layout_size(self) -> Term:
        return intlit(PTR_SIZE)

    def __repr__(self) -> str:
        return "null"


@dataclass(frozen=True)
class OptionalT(RType):
    """``φ @ optional<τ₁, τ₂>`` — τ₁ if φ holds, else τ₂ (§2.1, §6)."""

    phi: Term
    then_type: RType
    else_type: RType

    @property
    def head(self) -> str:
        return "optional"

    def resolve(self, subst: Subst) -> "OptionalT":
        phi = subst.resolve(self.phi)
        then_t = self.then_type.resolve(subst)
        else_t = self.else_type.resolve(subst)
        if COMPILE.enabled and phi is self.phi and then_t is self.then_type \
                and else_t is self.else_type:
            return self
        return OptionalT(phi, then_t, else_t)

    def layout_size(self) -> Optional[Term]:
        return self.then_type.layout_size()

    def __repr__(self) -> str:
        return (f"{self.phi!r} @ optional<{self.then_type!r}, "
                f"{self.else_type!r}>")


@dataclass(frozen=True)
class WandT(RType):
    """``wand<H, τ>`` — the partial data structure pattern (§2.2): providing
    the resources ``H`` yields ``τ``.  ``hole`` is a tuple of atoms."""

    hole: tuple                 # tuple of Atom (LocType/ValType)
    inner: RType

    @property
    def head(self) -> str:
        return "wand"

    def resolve(self, subst: Subst) -> "WandT":
        hole = tuple(a.resolve(subst) for a in self.hole)
        inner = self.inner.resolve(subst)
        if COMPILE.enabled and inner is self.inner \
                and all(a is b for a, b in zip(hole, self.hole)):
            return self
        return WandT(hole, inner)

    def __repr__(self) -> str:
        return f"wand<{list(self.hole)!r}, {self.inner!r}>"


@dataclass(frozen=True)
class StructT(RType):
    """A struct type: per-field RefinedC types over a C struct layout."""

    layout: StructLayout
    fields: tuple[tuple[str, RType], ...]

    @property
    def head(self) -> str:
        return "struct"

    def resolve(self, subst: Subst) -> "StructT":
        fields = tuple((n, t.resolve(subst)) for n, t in self.fields)
        if COMPILE.enabled and all(t is u for (_, t), (_, u) in zip(fields, self.fields)):
            return self
        return StructT(self.layout, fields)

    def field_type(self, name: str) -> RType:
        for n, t in self.fields:
            if n == name:
                return t
        raise KeyError(name)

    def layout_size(self) -> Term:
        return intlit(self.layout.size)

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}: {t!r}" for n, t in self.fields)
        return f"struct {self.layout.name}{{{inner}}}"


@dataclass(frozen=True)
class ExistsT(RType):
    """``∃x. τ(x)`` (generated by ``rc::exists``)."""

    sort: Sort
    hint: str
    body: Callable[[Term], RType]

    @property
    def head(self) -> str:
        return "exists"

    def resolve(self, subst: Subst) -> "ExistsT":
        # ``resolve`` is idempotent, so once the body has been wrapped to
        # resolve against *this* store (bindings only ever accumulate,
        # and unfolding reads the store's state at unfold time), wrapping
        # again against the same store is the identity.  Collapsing the
        # stack is a compiled-mode optimisation only; the interpreted
        # reference keeps the plain wrapper chain.
        if COMPILE.enabled and getattr(self, "_rsubst", None) is subst:
            return self
        body = self.body
        out = ExistsT(self.sort, self.hint,
                      lambda x: body(x).resolve(subst))
        if COMPILE.enabled:
            object.__setattr__(out, "_rsubst", subst)
        return out

    def __repr__(self) -> str:
        return f"∃{self.hint}. …"


@dataclass(frozen=True)
class ConstrainedT(RType):
    """``{τ | φ}`` (generated by ``rc::constraints``)."""

    inner: RType
    phi: Term

    @property
    def head(self) -> str:
        return "constrained"

    def resolve(self, subst: Subst) -> "ConstrainedT":
        inner = self.inner.resolve(subst)
        phi = subst.resolve(self.phi)
        if COMPILE.enabled and inner is self.inner and phi is self.phi:
            return self
        return ConstrainedT(inner, phi)

    def layout_size(self) -> Optional[Term]:
        return self.inner.layout_size()

    def __repr__(self) -> str:
        return f"{{{self.inner!r} | {self.phi!r}}}"


@dataclass(frozen=True)
class PaddedT(RType):
    """``padded<τ, n>`` — τ overlaid at the start of ``n`` bytes; the rest
    is uninitialised (generated by ``rc::size``, §2.2)."""

    inner: RType
    size: Term

    @property
    def head(self) -> str:
        return "padded"

    def resolve(self, subst: Subst) -> "PaddedT":
        inner = self.inner.resolve(subst)
        size = subst.resolve(self.size)
        if COMPILE.enabled and inner is self.inner and size is self.size:
            return self
        return PaddedT(inner, size)

    def layout_size(self) -> Term:
        return self.size

    def __repr__(self) -> str:
        return f"padded<{self.inner!r}, {self.size!r}>"


@dataclass(frozen=True)
class ArrayT(RType):
    """An array of integer cells refined by a mathematical list ``xs``:
    cell ``i`` has type ``xs[i] @ int<α>``.  ``length`` is the cell count."""

    itype: IntType
    xs: Term        # LIST-sorted refinement
    length: Term    # INT-sorted

    @property
    def head(self) -> str:
        return "array"

    def resolve(self, subst: Subst) -> "ArrayT":
        xs = subst.resolve(self.xs)
        length = subst.resolve(self.length)
        if COMPILE.enabled and xs is self.xs and length is self.length:
            return self
        return ArrayT(self.itype, xs, length)

    def layout_size(self) -> Term:
        from ..pure.terms import mul
        return mul(intlit(self.itype.size), self.length)

    def __repr__(self) -> str:
        return f"array<{self.itype.name}, {self.xs!r}, {self.length!r}>"


@dataclass(frozen=True)
class ValueT(RType):
    """The singleton location type "holds exactly the value ``v``".

    Produced when ownership is *moved out* of a place by a read: the place
    keeps the raw value, the ownership travels with the expression.
    """

    v: Term
    layout: Optional[Layout]

    @property
    def head(self) -> str:
        return "value"

    def resolve(self, subst: Subst) -> "ValueT":
        v = subst.resolve(self.v)
        return self if COMPILE.enabled and v is self.v else ValueT(v, self.layout)

    def layout_size(self) -> Optional[Term]:
        if self.layout is None:
            return None
        return intlit(self.layout.size)

    def __repr__(self) -> str:
        return f"value({self.v!r})"


@dataclass(frozen=True)
class FnT(RType):
    """A first-class function-pointer type carrying a full RefinedC
    function spec (function types are first class, §4)."""

    spec: "FunctionSpec"

    @property
    def head(self) -> str:
        return "fn"

    def layout_size(self) -> Term:
        return intlit(PTR_SIZE)

    def __repr__(self) -> str:
        return f"fn<{self.spec.name}>"


@dataclass(frozen=True)
class AtomicBoolT(RType):
    """``atomicbool<H⊤, H⊥>`` (§6): an atomically accessed boolean that owns
    the resources ``h_true`` when true and ``h_false`` when false."""

    itype: IntType
    h_true: tuple    # tuple of Atom
    h_false: tuple   # tuple of Atom

    @property
    def head(self) -> str:
        return "atomicbool"

    def resolve(self, subst: Subst) -> "AtomicBoolT":
        h_true = tuple(a.resolve(subst) for a in self.h_true)
        h_false = tuple(a.resolve(subst) for a in self.h_false)
        if COMPILE.enabled and all(a is b for a, b in zip(h_true, self.h_true)) \
                and all(a is b for a, b in zip(h_false, self.h_false)):
            return self
        return AtomicBoolT(self.itype, h_true, h_false)

    def layout_size(self) -> Term:
        return intlit(self.itype.size)

    def __repr__(self) -> str:
        return f"atomicbool<{list(self.h_true)!r}, {list(self.h_false)!r}>"


@dataclass(frozen=True)
class NamedT(RType):
    """A reference to a user-defined (possibly recursive) type, e.g.
    ``s @ chunks_t``.  Unfolding is automatic (§2.2) via the
    :class:`TypeTable` rules."""

    name: str
    args: tuple[Term, ...]

    @property
    def head(self) -> str:
        return "named"

    def resolve(self, subst: Subst) -> "NamedT":
        args = tuple(subst.resolve(a) for a in self.args)
        if COMPILE.enabled and all(a is b for a, b in zip(args, self.args)):
            return self
        return NamedT(self.name, args)

    def __repr__(self) -> str:
        if not self.args:
            return self.name
        args = ", ".join(map(repr, self.args))
        return f"{args} @ {self.name}" if len(self.args) == 1 \
            else f"({args}) @ {self.name}"


@dataclass
class TypeDef:
    """Definition of a named type: parameters + body builder."""

    name: str
    param_sorts: tuple[Sort, ...]
    body: Callable[..., RType]     # takes len(param_sorts) terms
    # Layout this type refines, for size computations (None for ptr types).
    layout: Optional[Layout] = None
    is_ptr_type: bool = False      # rc::ptr_type (refines the pointer)

    def unfold(self, args: Sequence[Term]) -> RType:
        if len(args) != len(self.param_sorts):
            raise TypeError(
                f"type {self.name} expects {len(self.param_sorts)} "
                f"refinement(s), got {len(args)}")
        return self.body(*args)


class TypeTable:
    """Registry of user-defined named types (one per verification run)."""

    def __init__(self) -> None:
        self._defs: dict[str, TypeDef] = {}

    def define(self, td: TypeDef) -> None:
        if td.name in self._defs:
            raise ValueError(f"type {td.name!r} already defined")
        self._defs[td.name] = td

    def lookup(self, name: str) -> TypeDef:
        if name not in self._defs:
            raise KeyError(f"unknown named type {name!r}")
        return self._defs[name]

    def unfold(self, t: NamedT) -> RType:
        return self.lookup(t.name).unfold(t.args)

    def __contains__(self, name: str) -> bool:
        return name in self._defs
