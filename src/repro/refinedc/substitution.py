"""Substitution of rigid variables inside RefinedC types and assertions.

Used when instantiating a function specification at a call site (spec
parameters become evars) and at returns (postcondition existentials become
evars).  HOAS binders are substituted underneath lazily.
"""

from __future__ import annotations

from typing import Mapping, Union

from ..lithium.goals import Atom
from ..pure.terms import Term, Var, subst_vars
from .judgments import LocType, TokenAtom, ValType
from .types import (ArrayT, AtomicBoolT, BoolT, ConstrainedT, ExistsT, FnT,
                    IntT, NamedT, NullT, OptionalT, OwnPtr, PaddedT, RType,
                    StructT, UninitT, ValueT, WandT)

VarMap = Mapping[Var, Term]


def subst_type(ty: RType, m: VarMap) -> RType:
    """Substitute rigid variables in a type."""
    if isinstance(ty, IntT):
        return IntT(ty.itype, subst_vars(ty.refinement, m)
                    if ty.refinement is not None else None)
    if isinstance(ty, BoolT):
        return BoolT(ty.itype, subst_vars(ty.phi, m)
                     if ty.phi is not None else None)
    if isinstance(ty, OwnPtr):
        return OwnPtr(subst_type(ty.inner, m),
                      subst_vars(ty.loc, m) if ty.loc is not None else None)
    if isinstance(ty, UninitT):
        return UninitT(subst_vars(ty.size, m))
    if isinstance(ty, NullT):
        return ty
    if isinstance(ty, OptionalT):
        return OptionalT(subst_vars(ty.phi, m),
                         subst_type(ty.then_type, m),
                         subst_type(ty.else_type, m))
    if isinstance(ty, WandT):
        return WandT(tuple(subst_assertion(a, m) for a in ty.hole),
                     subst_type(ty.inner, m))
    if isinstance(ty, StructT):
        return StructT(ty.layout,
                       tuple((n, subst_type(t, m)) for n, t in ty.fields))
    if isinstance(ty, ExistsT):
        body = ty.body
        return ExistsT(ty.sort, ty.hint, lambda x: subst_type(body(x), m))
    if isinstance(ty, ConstrainedT):
        return ConstrainedT(subst_type(ty.inner, m), subst_vars(ty.phi, m))
    if isinstance(ty, PaddedT):
        return PaddedT(subst_type(ty.inner, m), subst_vars(ty.size, m))
    if isinstance(ty, ArrayT):
        return ArrayT(ty.itype, subst_vars(ty.xs, m), subst_vars(ty.length, m))
    if isinstance(ty, ValueT):
        return ValueT(subst_vars(ty.v, m), ty.layout)
    if isinstance(ty, FnT):
        return ty
    if isinstance(ty, AtomicBoolT):
        return AtomicBoolT(ty.itype,
                           tuple(subst_assertion(a, m) for a in ty.h_true),
                           tuple(subst_assertion(a, m) for a in ty.h_false))
    if isinstance(ty, NamedT):
        return NamedT(ty.name, tuple(subst_vars(a, m) for a in ty.args))
    # ShrPtr and user-defined extensions provide their own hook.
    subst_hook = getattr(ty, "subst_with", None)
    if subst_hook is not None:
        return subst_hook(m)
    raise TypeError(f"cannot substitute in {ty!r}")


def subst_assertion(a: Union[Atom, Term], m: VarMap) -> Union[Atom, Term]:
    """Substitute rigid variables in an assertion (atom or pure term)."""
    if isinstance(a, LocType):
        return LocType(subst_vars(a.loc, m), subst_type(a.ty, m), a.shared)
    if isinstance(a, ValType):
        return ValType(subst_vars(a.val, m), subst_type(a.ty, m))
    if isinstance(a, TokenAtom):
        return TokenAtom(a.name, subst_vars(a.index, m), a.dup)
    if isinstance(a, Term):
        return subst_vars(a, m)
    raise TypeError(f"cannot substitute in assertion {a!r}")
