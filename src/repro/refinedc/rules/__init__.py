"""The RefinedC typing rules — "an open set of Lithium rules" (§1).

Each submodule registers rules against :data:`REGISTRY`; importing this
package populates the standard library of rules (the paper's standard
library "currently contains around 30 types and 200 typing rules").
"""

from ...lithium.rules import RuleRegistry

REGISTRY = RuleRegistry()

from . import expr    # noqa: E402,F401
from . import stmt    # noqa: E402,F401
from . import ops     # noqa: E402,F401
from . import place   # noqa: E402,F401
from . import subsume  # noqa: E402,F401
from . import call    # noqa: E402,F401
from . import atomic  # noqa: E402,F401

__all__ = ["REGISTRY"]
