"""Expression typing rules (⊢expr, the T-… rules of Figure 6).

Every rule linearises checking via the continuation: ``⊢expr e {v, τ. G}``
first types the subexpressions left-to-right (Caesium fixes left-to-right
evaluation order, §3), then dispatches to the construct-specific judgment
(⊢binop, ⊢read, ⊢call, …) — the type-based overloading of §6.
"""

from __future__ import annotations

from ...caesium.layout import PtrLayout
from ...caesium.syntax import (CASE, BinOpE, CallE, CastE, FieldOffset, FnPtrE,
                               GlobalAddr, IntConst, NullE, SizeOfE, UnOpE,
                               Use, ValE, VarAddr)
from ...caesium.values import VInt, VPtr
from ...lithium.goals import GBasic, Goal, GSep, HPure
from ...pure.terms import Sort, Term, and_, fn_app, intlit, le, loc_offset
from ..judgments import BinOpJ, CallJ, ExprJ, ReadJ, ToPlaceJ, UnOpJ
from ..types import FnT, IntT, NullT, RType, ValueT
from . import REGISTRY

NULL_LOC = fn_app("null$", [], Sort.LOC)
"""The symbolic NULL pointer value."""


def fnptr_term(name: str) -> Term:
    """The symbolic value of the function pointer to ``name``."""
    return fn_app(f"fnptr${name}", [], Sort.LOC)


@REGISTRY.rule("T-INT-CONST", ("expr", "IntConst"))
def rule_int_const(f: ExprJ, state) -> Goal:
    """An integer literal has the singleton type of its value."""
    e: IntConst = f.expr
    v = intlit(e.n)
    return f.cont(v, IntT(e.int_type, v))


@REGISTRY.rule("T-VAL", ("expr", "ValE"))
def rule_val(f: ExprJ, state) -> Goal:
    """A pre-evaluated literal value (used by tests and the harness)."""
    e: ValE = f.expr
    if isinstance(e.value, VInt):
        v = intlit(e.value.value)
        return f.cont(v, IntT(e.value.int_type, v))
    if isinstance(e.value, VPtr) and e.value.ptr.is_null:
        return f.cont(NULL_LOC, NullT())
    state.fail(f"cannot type literal value {e.value!r}")


@REGISTRY.rule("T-NULL", ("expr", "NullE"))
def rule_null(f: ExprJ, state) -> Goal:
    """``NULL`` has the singleton type null."""
    return f.cont(NULL_LOC, NullT())


@REGISTRY.rule("T-SIZEOF", ("expr", "SizeOfE"))
def rule_sizeof(f: ExprJ, state) -> Goal:
    """``sizeof`` is the layout's size, a compile-time singleton."""
    e: SizeOfE = f.expr
    v = intlit(e.layout.size)
    return f.cont(v, IntT(e.int_type, v))


@REGISTRY.rule("T-VAR-ADDR", ("expr", "VarAddr"))
def rule_var_addr(f: ExprJ, state) -> Goal:
    """``&x`` for a local slot: the slot's symbolic location."""
    loc = f.sigma.slot(f.expr.name)
    return f.cont(loc, ValueT(loc, PtrLayout()))


@REGISTRY.rule("T-GLOBAL-ADDR", ("expr", "GlobalAddr"))
def rule_global_addr(f: ExprJ, state) -> Goal:
    """The address of a global variable (a fixed symbolic location)."""
    loc = f.sigma.global_loc(f.expr.name)
    return f.cont(loc, ValueT(loc, PtrLayout()))


@REGISTRY.rule("T-FN-PTR", ("expr", "FnPtrE"))
def rule_fn_ptr(f: ExprJ, state) -> Goal:
    """Function pointers are first class: the value carries the function's
    full RefinedC type (§4)."""
    name = f.expr.name
    spec = f.sigma.fn_spec(name)
    if spec is None:
        state.fail(f"call of function {name!r} without a RefinedC spec")
    return f.cont(fnptr_term(name), FnT(spec))


@REGISTRY.rule("T-USE", ("expr", "Use"))
def rule_use(f: ExprJ, state) -> Goal:
    """Loading from a place: type the place, then dispatch ⊢read."""
    e: Use = f.expr
    return GBasic(ExprJ(f.sigma, e.e, lambda v, ty: GBasic(ToPlaceJ(
        f.sigma, v, ty, lambda loc: GBasic(ReadJ(
            f.sigma, loc, e.layout, e.atomic, f.cont))))))


@REGISTRY.rule("T-FIELD", ("expr", "FieldOffset"))
def rule_field(f: ExprJ, state) -> Goal:
    """``&(e->f)``: a pointer into the struct; the field's ownership stays
    in the context, the value is the offset location."""
    e: FieldOffset = f.expr
    off = intlit(e.struct.offset_of(e.fld))

    def with_place(loc: Term) -> Goal:
        floc = loc_offset(loc, off)
        return f.cont(floc, ValueT(floc, PtrLayout()))

    return GBasic(ExprJ(f.sigma, e.e, lambda v, ty: GBasic(
        ToPlaceJ(f.sigma, v, ty, with_place))))


@REGISTRY.rule("T-CAST", ("expr", "CastE"))
def rule_cast(f: ExprJ, state) -> Goal:
    """An integer cast; the value must provably fit the target type (so the
    mathematical refinement is preserved)."""
    e: CastE = f.expr

    def after(v: Term, ty: RType) -> Goal:
        from ..types import BoolT
        if isinstance(ty, BoolT):
            # Casting a boolean (0/1) preserves the refinement.
            return f.cont(v, BoolT(e.to, ty.phi))
        if not isinstance(ty, IntT):
            state.fail(f"integer cast applied to {ty!r}")
        fits = and_(le(intlit(e.to.min_value), v),
                    le(v, intlit(e.to.max_value)))
        return GSep(HPure(fits, origin=f"cast to {e.to.name}"),
                    f.cont(v, IntT(e.to, v)))

    return GBasic(ExprJ(f.sigma, e.e, after))


@REGISTRY.rule("T-UNOP", ("expr", "UnOpE"))
def rule_unop(f: ExprJ, state) -> Goal:
    """Type the operand, then dispatch ⊢unop on its type."""
    e: UnOpE = f.expr
    return GBasic(ExprJ(f.sigma, e.e, lambda v, ty: GBasic(
        UnOpJ(f.sigma, e.op, v, ty, f.cont))))


@REGISTRY.rule("T-BINOP", ("expr", "BinOpE"))
def rule_binop(f: ExprJ, state) -> Goal:
    """Figure 6, T-BINOP: type e₁, then e₂, then dispatch ⊢binop."""
    e: BinOpE = f.expr
    return GBasic(ExprJ(f.sigma, e.e1, lambda v1, t1: GBasic(
        ExprJ(f.sigma, e.e2, lambda v2, t2: GBasic(
            BinOpJ(f.sigma, e.op, v1, t1, v2, t2, f.cont))))))


@REGISTRY.rule("T-CALL", ("expr", "CallE"))
def rule_call(f: ExprJ, state) -> Goal:
    """Type the callee (a function pointer), then the arguments
    left-to-right, then dispatch ⊢call against the callee's spec."""
    e: CallE = f.expr

    def with_fn(vf: Term, tf: RType) -> Goal:
        if not isinstance(tf, FnT):
            state.fail(f"call of non-function value {vf!r} : {tf!r}")

        def eval_args(i: int, acc: tuple) -> Goal:
            if i == len(e.args):
                return GBasic(CallJ(f.sigma, tf.spec, acc, f.cont))
            return GBasic(ExprJ(f.sigma, e.args[i],
                                lambda v, ty: eval_args(i + 1, acc + ((v, ty),))))

        return eval_args(0, ())

    return GBasic(ExprJ(f.sigma, e.fn, with_fn))


@REGISTRY.rule("T-CAS", ("expr", "CASE"))
def rule_cas(f: ExprJ, state) -> Goal:
    """Type CAS(l_atom, l_exp, v_des): evaluate the three operands, convert
    the pointers to places, then dispatch ⊢cas on the located types."""
    e: CASE = f.expr
    sigma = f.sigma

    def with_atom(v1: Term, t1: RType) -> Goal:
        return GBasic(ToPlaceJ(sigma, v1, t1, lambda atom_loc: GBasic(
            ExprJ(sigma, e.expected, lambda v2, t2: GBasic(
                ToPlaceJ(sigma, v2, t2, lambda exp_loc: GBasic(
                    ExprJ(sigma, e.desired, lambda v3, t3: sigma.make_cas(
                        state, atom_loc, exp_loc, v3, t3, e.layout,
                        f.cont)))))))))

    return GBasic(ExprJ(sigma, e.atom, with_atom))
