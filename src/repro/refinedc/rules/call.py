"""Function-call typing (⊢call): instantiate the callee's RefinedC function
type ``fn(∀x. τ_args; H_pre) → ∃y. τ_ret; H_post`` (§4).

The spec parameters ``x`` become evars; the arguments are checked *before*
the extra preconditions, "so one need not worry about evars in the
preconditions if they are determined by the arguments" (§5).  After the
call, the postcondition existentials ``y`` are fresh universals for the
caller, the return value is introduced at the return type, and the ensures
resources enter the context.
"""

from __future__ import annotations

from ...lithium.goals import GBasic, GExists, GForall, Goal, GSep, GWand, HPure
from ...pure.terms import Sort, Term
from ..judgments import LocType, SubsumeValJ, TokenAtom, ValType
from ..ownership import range_facts
from ..substitution import subst_assertion, subst_type
from ..types import RType
from . import REGISTRY


@REGISTRY.rule("T-CALL-SPEC", ("call",))
def rule_call(f, state) -> Goal:
    """Instantiate the callee's function type: spec parameters become
    evars, arguments are checked before rc::requires (§5), then the
    postcondition is introduced for the continuation."""
    spec = f.spec
    sigma = f.sigma
    if len(f.args) != len(spec.arg_types):
        state.fail(f"call to {spec.name}: expected {len(spec.arg_types)} "
                   f"arguments, got {len(f.args)}")

    def bind_params(idx: int, pmap: dict) -> Goal:
        if idx < len(spec.params):
            p = spec.params[idx]
            return GExists(p.sort, f"{spec.name}.{p.name}",
                           lambda ev: bind_params(idx + 1, {**pmap, p: ev}))
        return check_args(pmap)

    def check_args(pmap: dict) -> Goal:
        goal = check_requires(pmap)
        # Arguments are checked left-to-right, before rc::requires.
        for (v, ty), want in reversed(list(zip(f.args, spec.arg_types))):
            want_i = subst_type(want, pmap)
            goal = GBasic(SubsumeValJ(sigma, v, ty, want_i, goal))
        return goal

    def check_requires(pmap: dict) -> Goal:
        goal = introduce_post(pmap)
        for a in reversed(spec.requires):
            a_i = subst_assertion(a, pmap)
            goal = sigma.consume_assertion_goal(
                goal_after=goal, assertion=a_i,
                origin=f"rc::requires of {spec.name}")
        # The nat-ness facts of the parameters become side conditions the
        # instantiated arguments must satisfy.
        for phi in reversed(spec.param_facts):
            from ...pure.terms import subst_vars
            goal = GSep(HPure(subst_vars(phi, pmap),
                              origin=f"parameter domain of {spec.name}"),
                        goal)
        return goal

    def introduce_post(pmap: dict) -> Goal:
        def bind_exists(idx: int, emap: dict) -> Goal:
            if idx < len(spec.exists):
                y = spec.exists[idx]
                return GForall(y.sort, f"{spec.name}.{y.name}",
                               lambda xv: bind_exists(idx + 1,
                                                      {**emap, y: xv}))
            return finish({**pmap, **emap})

        return bind_exists(0, {})

    def finish(fullmap: dict) -> Goal:
        # Introduce the postcondition resources, then the return value.
        if spec.returns is None:
            ret_goal = f.cont(None, None)
        else:
            ret_ty = subst_type(spec.returns, fullmap)
            v_ret = state.fresh_var(Sort.LOC if ret_ty.head in
                                    ("own", "shr", "null", "optional",
                                     "named", "value", "fn")
                                    else Sort.INT, "ret")
            resolved = _intro_ret_type(ret_ty, v_ret)
            ret_goal = f.cont(v_ret, resolved)
            for phi in reversed(range_facts(resolved)):
                ret_goal = GWand(HPure(phi), ret_goal)
        goal = ret_goal
        for a in reversed(spec.ensures):
            a_i = subst_assertion(a, fullmap)
            if isinstance(a_i, (LocType, ValType, TokenAtom)):
                # Decomposing introduction (struct postconditions unfold
                # into per-field atoms, constraints enter Γ).
                goal = sigma.intro_assertion_goal(state, a_i, goal)
            else:
                goal = GWand(HPure(a_i), goal)
        return goal

    return bind_params(0, {})


def _intro_ret_type(ret_ty: RType, v_ret: Term) -> RType:
    """Pin the return type's value where the type dictates it."""
    from ..types import IntT, OwnPtr
    if isinstance(ret_ty, IntT) and ret_ty.refinement is not None:
        return ret_ty
    if isinstance(ret_ty, OwnPtr) and ret_ty.loc is None:
        return OwnPtr(ret_ty.inner, v_ret)
    return ret_ty
