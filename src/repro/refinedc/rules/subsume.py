"""Subsumption (subtyping) rules: ``A₁ <: A₂ {G}`` (§5, §6).

The workhorse is a *structural* comparison that reduces same-shaped types
to pure equality side conditions on their refinements (which is also where
sealed evars get instantiated, e.g. S-NULL's ``¬φ`` determining a list
tail).  When shapes differ, explicit decomposition rules fire: unfolding
named types (§2.2), skolemising/introducing type-level existentials,
struct recomposition, padding splits, optional case selection (S-OWN /
S-NULL of Figure 6), and magic-wand introduction/application.
"""

from __future__ import annotations

from typing import Optional

from ...lithium.goals import (GBasic, GConj, GExists, GForall, Goal, GSep,
                              GWand, HAtom, HPure)
from ...pure.terms import (TRUE, Sort, Term, eq, intlit, ite, le, loc_offset,
                           ne, not_, sub)
from ..judgments import (LocType, ProvePlaceJ, SubsumeLocJ, SubsumeValJ,
                         TokenAtom, ValType)
from ..ownership import intro_loc_goal, quiet_entails, struct_pieces
from ..spec import ShrPtr
from ..types import (ArrayT, AtomicBoolT, BoolT, ConstrainedT, ExistsT, FnT,
                     IntT, NamedT, NullT, OptionalT, OwnPtr, PaddedT, RType,
                     StructT, UninitT, ValueT, WandT)
from . import REGISTRY


def structural_conditions(have: RType, want: RType) -> Optional[list[Term]]:
    """If ``have`` and ``want`` have the same shape, return the pure
    equality conditions making them equal; ``None`` if shapes differ."""
    if isinstance(have, IntT) and isinstance(want, IntT):
        if have.itype != want.itype:
            return None
        if want.refinement is None:
            return []
        if have.refinement is None:
            return None
        return [eq(have.refinement, want.refinement)]
    if isinstance(have, BoolT) and isinstance(want, BoolT):
        if want.phi is None:
            return []
        if have.phi is None:
            return None
        return [eq(have.phi, want.phi)]
    if isinstance(have, NullT) and isinstance(want, NullT):
        return []
    if isinstance(have, UninitT) and isinstance(want, UninitT):
        return [eq(have.size, want.size)]
    if isinstance(have, ValueT) and isinstance(want, ValueT):
        return [eq(have.v, want.v)]
    if isinstance(have, OwnPtr) and isinstance(want, OwnPtr):
        inner = structural_conditions(have.inner, want.inner)
        if inner is None:
            return None
        out = list(inner)
        if want.loc is not None:
            if have.loc is None:
                return None
            out.append(eq(have.loc, want.loc))
        return out
    if isinstance(have, ShrPtr) and isinstance(want, ShrPtr):
        inner = structural_conditions(have.inner, want.inner)
        if inner is None:
            return None
        out = list(inner)
        if want.loc is not None:
            if have.loc is None:
                return None
            out.append(eq(have.loc, want.loc))
        return out
    if isinstance(have, OptionalT) and isinstance(want, OptionalT):
        t = structural_conditions(have.then_type, want.then_type)
        e = structural_conditions(have.else_type, want.else_type)
        if t is None or e is None:
            return None
        return [eq(have.phi, want.phi)] + t + e
    if isinstance(have, NamedT) and isinstance(want, NamedT):
        if have.name != want.name:
            return None
        return [eq(a, b) for a, b in zip(have.args, want.args)]
    if isinstance(have, ArrayT) and isinstance(want, ArrayT):
        if have.itype != want.itype:
            return None
        return [eq(have.xs, want.xs), eq(have.length, want.length)]
    if isinstance(have, StructT) and isinstance(want, StructT):
        if have.layout != want.layout:
            return None
        out: list[Term] = []
        for (_, th), (_, tw) in zip(have.fields, want.fields):
            sub_conds = structural_conditions(th, tw)
            if sub_conds is None:
                return None
            out.extend(sub_conds)
        return out
    if isinstance(have, PaddedT) and isinstance(want, PaddedT):
        inner = structural_conditions(have.inner, want.inner)
        if inner is None:
            return None
        return inner + [eq(have.size, want.size)]
    if isinstance(have, ConstrainedT) and isinstance(want, ConstrainedT):
        inner = structural_conditions(have.inner, want.inner)
        if inner is None:
            return None
        return inner + [eq(have.phi, want.phi)]
    if isinstance(have, WandT) and isinstance(want, WandT):
        # Wands are never compared structurally: re-establishing a wand
        # with different hole refinements (the loop back-edge of §2.2)
        # requires *applying* the old wand and proving the new one, which
        # the decomposition rules below handle.
        return None
    if isinstance(have, FnT) and isinstance(want, FnT):
        return [] if have.spec.name == want.spec.name else None
    if isinstance(have, ExistsT) and isinstance(want, ExistsT):
        # α-compare: instantiate both bodies with the same probe variable;
        # conditions mentioning the probe would not be globally valid, so
        # shapes only match when the bodies agree wherever the probe flows.
        if have.sort is not want.sort:
            return None
        from ...pure.terms import Var as _Var
        probe = _Var(f"α${id(have)}_{id(want)}", have.sort)
        conds = structural_conditions(have.body(probe), want.body(probe))
        if conds is None:
            return None
        out: list[Term] = []
        for c in conds:
            generalised = _drop_probe(c, probe)
            if generalised is None:
                return None
            out.extend(generalised)
        return out
    if isinstance(have, AtomicBoolT) and isinstance(want, AtomicBoolT):
        if len(have.h_true) != len(want.h_true) \
                or len(have.h_false) != len(want.h_false):
            return None
        out = []
        for ha, wa in zip(have.h_true + have.h_false,
                          want.h_true + want.h_false):
            conds = _atom_conditions(ha, wa)
            if conds is None:
                return None
            out.extend(conds)
        return out
    return None


def _drop_probe(cond: Term, probe) -> Optional[list[Term]]:
    """Turn a condition arising under a binder into probe-free sufficient
    conditions: identical sides vanish; equalities decompose structurally
    (``eq(f(a), f(b))`` strengthens to ``eq(a, b)``); anything that still
    mentions the probe defeats the comparison."""
    from ...pure.terms import App as _App
    if probe not in cond.free_vars():
        return [cond]
    if isinstance(cond, _App) and cond.op == "eq":
        lhs, rhs = cond.args
        return _decompose_probe_eq(lhs, rhs, probe)
    return None


def _decompose_probe_eq(lhs: Term, rhs: Term, probe) -> Optional[list[Term]]:
    from ...pure.terms import App as _App
    if lhs == rhs:
        return []
    lhs_has = probe in lhs.free_vars()
    rhs_has = probe in rhs.free_vars()
    if not lhs_has and not rhs_has:
        return [eq(lhs, rhs)] if lhs.sort is rhs.sort else None
    if isinstance(lhs, _App) and isinstance(rhs, _App) \
            and lhs.op == rhs.op and len(lhs.args) == len(rhs.args):
        out: list[Term] = []
        for a, b in zip(lhs.args, rhs.args):
            sub_conds = _decompose_probe_eq(a, b, probe)
            if sub_conds is None:
                return None
            out.extend(sub_conds)
        return out
    return None


def _atom_conditions(a, b) -> Optional[list[Term]]:
    if isinstance(a, LocType) and isinstance(b, LocType):
        inner = structural_conditions(a.ty, b.ty)
        if inner is None or a.shared != b.shared:
            return None
        return [eq(a.loc, b.loc)] + inner
    if isinstance(a, ValType) and isinstance(b, ValType):
        inner = structural_conditions(a.ty, b.ty)
        if inner is None:
            return None
        return [eq(a.val, b.val)] + inner
    if isinstance(a, TokenAtom) and isinstance(b, TokenAtom):
        if a.name != b.name or a.dup != b.dup:
            return None
        return [eq(a.index, b.index)]
    if isinstance(a, Term) and isinstance(b, Term):
        return [eq(a, b)] if a.sort is b.sort else None
    return None


def _conds_goal(conds: list[Term], cont: Goal, origin: str) -> Goal:
    goal = cont
    for c in reversed(conds):
        if c == TRUE:
            continue
        goal = GSep(HPure(c, origin=origin), goal)
    return goal


# ---------------------------------------------------------------------
# Location subsumption.
# ---------------------------------------------------------------------

@REGISTRY.rule("S-LOC", ("subsume_loc", "*", "*"), priority=-10)
def rule_subsume_loc_generic(f: SubsumeLocJ, state) -> Goal:
    """The generic location-subsumption rule: structural comparison first,
    then shape-changing decompositions in a fixed, deterministic order."""
    have, want, loc = f.have, f.want, f.loc
    conds = structural_conditions(have, want)
    if conds is not None:
        return _conds_goal(conds, f.cont, f"subsumption at {loc!r}")
    # --- shape-changing steps, most specific first -------------------
    if isinstance(have, NamedT):
        return GBasic(SubsumeLocJ(f.sigma, loc, f.sigma.types.unfold(have),
                                  want, f.cont))
    if isinstance(have, ExistsT):
        body = have.body
        return GForall(have.sort, have.hint, lambda x: GBasic(
            SubsumeLocJ(f.sigma, loc, body(x), want, f.cont)))
    if isinstance(have, ConstrainedT):
        return GWand(HPure(have.phi), GBasic(
            SubsumeLocJ(f.sigma, loc, have.inner, want, f.cont)))
    if isinstance(want, NamedT):
        return GBasic(SubsumeLocJ(f.sigma, loc, have,
                                  f.sigma.types.unfold(want), f.cont))
    if isinstance(want, ExistsT):
        body = want.body
        return GExists(want.sort, want.hint, lambda x: GBasic(
            SubsumeLocJ(f.sigma, loc, have, body(x), f.cont)))
    if isinstance(want, ConstrainedT):
        # Inner first so the constraint sees instantiated evars (§5's
        # left-to-right discipline).
        return GBasic(SubsumeLocJ(
            f.sigma, loc, have, want.inner,
            GSep(HPure(want.phi, origin="rc::constraints"), f.cont)))
    if isinstance(want, UninitT):
        return _loc_to_uninit(f, state, have, want)
    if isinstance(want, StructT):
        goal: Goal = f.cont
        for off, piece in reversed(struct_pieces(want)):
            goal = GBasic(ProvePlaceJ(f.sigma, loc_offset(loc, intlit(off)),
                                      piece, goal))
        return GWand(HAtom(LocType(loc, have)), goal)
    if isinstance(want, PaddedT):
        inner_size = want.inner.layout_size()
        if inner_size is None:
            state.fail(f"padded type with unsized inner: {want!r}")
        pad = UninitT(sub(want.size, inner_size))
        return GWand(HAtom(LocType(loc, have)), GBasic(ProvePlaceJ(
            f.sigma, loc, want.inner, GBasic(ProvePlaceJ(
                f.sigma, loc_offset(loc, inner_size), pad, f.cont)))))
    if isinstance(have, ValueT):
        return _loc_value_to(f, state, have.v)
    if isinstance(have, PaddedT):
        inner_size = have.inner.layout_size()
        if inner_size is None:
            state.fail(f"padded type with unsized inner: {have!r}")
        pad = UninitT(sub(have.size, inner_size))
        return GWand(HAtom(LocType(loc, have.inner)), GWand(
            HAtom(LocType(loc_offset(loc, inner_size), pad)),
            GSep(HAtom(LocType(loc, want)), f.cont)))
    if isinstance(have, WandT):
        # Wand application: provide the hole, get the conclusion (§2.2).
        goal = GBasic(SubsumeLocJ(f.sigma, loc, have.inner, want, f.cont))
        for hole_atom in reversed(have.hole):
            goal = GSep(HAtom(hole_atom), goal)
        return goal
    if isinstance(want, WandT):
        goal = GBasic(ProvePlaceJ(f.sigma, loc, want, f.cont))
        return GWand(HAtom(LocType(loc, have)), goal)
    if isinstance(want, OptionalT):
        return _loc_to_optional(f, state, have, want)
    if isinstance(have, OptionalT):
        return _loc_from_optional(f, state, have, want)
    if isinstance(have, OwnPtr) and isinstance(want, OwnPtr):
        return _own_to_own_loc(f, state, have, want)
    if isinstance(want, UninitT):
        return _loc_to_uninit(f, state, have, want)
    state.fail(f"no subsumption from {have!r} to {want!r} at {loc!r}")


def _loc_to_uninit(f: SubsumeLocJ, state, have: RType,
                   want: UninitT) -> Goal:
    """Forget initialisation: any owned bytes may be viewed as ``uninit``
    (this is how freed nodes give their memory back, e.g. pop in the
    linked-list case study).  Gathers consecutive atoms until the wanted
    byte count is covered."""
    from ..ownership import quiet_entails
    from ...pure.terms import add as _add, eq as _eq, intlit as _intlit
    from ...pure.simplify import simplify as _simp
    # Re-add the consumed atom, then gather from the start location.
    state.delta.add(LocType(f.loc, have), state.subst)
    covered = _intlit(0)
    for _ in range(64):
        if quiet_entails(state, _eq(covered, want.size)):
            return f.cont
        cur_loc = state.subst.resolve(loc_offset(f.loc, covered))
        atom = state.delta.find_related(cur_loc, state.subst)
        if not isinstance(atom, LocType) or atom.persistent:
            break
        piece = atom.ty.resolve(state.subst)
        if piece.head == "atomicbool":
            break
        piece_size = piece.layout_size()
        if piece_size is None:
            break
        state.delta.remove(atom)
        covered = _simp(_add(covered, piece_size))
    return GSep(HPure(eq(covered, want.size),
                      origin="reclaiming memory as uninit"), f.cont)


def _loc_value_to(f: SubsumeLocJ, state, v: Term) -> Goal:
    """Location holds the raw value ``v``: subsume at the value level."""
    return GBasic(SubsumeValJ(f.sigma, v, ValueT(v, None), f.want, f.cont))


def _loc_to_optional(f: SubsumeLocJ, state, have: RType,
                     want: OptionalT) -> Goal:
    if isinstance(have, OwnPtr):
        return GSep(HPure(want.phi, origin="optional (pointer case)"),
                    GBasic(SubsumeLocJ(f.sigma, f.loc, have, want.then_type,
                                       f.cont)))
    if isinstance(have, NullT):
        return GSep(HPure(not_(want.phi), origin="optional (NULL case)"),
                    GBasic(SubsumeLocJ(f.sigma, f.loc, have, want.else_type,
                                       f.cont)))
    # Decide by provability (deterministic order: φ first).
    phi = state.subst.resolve(want.phi)
    if not phi.has_evars() and quiet_entails(state, phi):
        return GSep(HPure(phi), GBasic(SubsumeLocJ(
            f.sigma, f.loc, have, want.then_type, f.cont)))
    if not phi.has_evars() and quiet_entails(state, not_(phi)):
        return GSep(HPure(not_(phi)), GBasic(SubsumeLocJ(
            f.sigma, f.loc, have, want.else_type, f.cont)))
    state.fail(f"cannot decide optional condition {want.phi!r} when "
               f"subsuming {have!r}")


def _loc_from_optional(f: SubsumeLocJ, state, have: OptionalT,
                       want: RType) -> Goal:
    phi = state.subst.resolve(have.phi)
    if quiet_entails(state, phi):
        return GWand(HPure(phi), GBasic(SubsumeLocJ(
            f.sigma, f.loc, have.then_type, want, f.cont)))
    if quiet_entails(state, not_(phi)):
        return GWand(HPure(not_(phi)), GBasic(SubsumeLocJ(
            f.sigma, f.loc, have.else_type, want, f.cont)))
    state.fail(f"cannot decide optional condition {have.phi!r} of context "
               f"type at {f.loc!r}")


def _own_to_own_loc(f: SubsumeLocJ, state, have: OwnPtr,
                    want: OwnPtr) -> Goal:
    conds = []
    loc_inner = have.loc
    if loc_inner is None:
        loc_inner = state.fresh_var(Sort.LOC, "ptr")
    if want.loc is not None:
        conds.append(eq(loc_inner, want.loc))
    goal = intro_loc_goal(f.sigma, state, loc_inner, have.inner,
                          GBasic(ProvePlaceJ(f.sigma, loc_inner, want.inner,
                                             f.cont)))
    return _conds_goal(conds, goal, "owned pointer subsumption")


# ---------------------------------------------------------------------
# Value subsumption (S-NULL / S-OWN of Figure 6 live here).
# ---------------------------------------------------------------------

@REGISTRY.rule("S-OWN", ("subsume_val", "own", "optional"))
def rule_s_own(f: SubsumeValJ, state) -> Goal:
    """Figure 6, S-OWN: an owned pointer fits an optional if φ holds."""
    want: OptionalT = f.want
    return GSep(HPure(want.phi, origin="S-OWN (value is a pointer, so the "
                      "optional condition must hold)"),
                GBasic(SubsumeValJ(f.sigma, f.v, f.have, want.then_type,
                                   f.cont)))


@REGISTRY.rule("S-NULL", ("subsume_val", "null", "optional"))
def rule_s_null(f: SubsumeValJ, state) -> Goal:
    """Figure 6, S-NULL: NULL fits an optional if φ is false."""
    want: OptionalT = f.want
    return GSep(HPure(not_(want.phi), origin="S-NULL (value is NULL, so the "
                      "optional condition must be false)"),
                GBasic(SubsumeValJ(f.sigma, f.v, f.have, want.else_type,
                                   f.cont)))


@REGISTRY.rule("S-INT-BOOL", ("subsume_val", "int", "bool"))
def rule_int_to_bool(f: SubsumeValJ, state) -> Goal:
    """An integer fits a boolean type when the proposition matches n ≠ 0."""
    n = f.have.refinement if f.have.refinement is not None else f.v
    if f.want.phi is None:
        return f.cont
    return GSep(HPure(eq(f.want.phi, ne(n, intlit(0))),
                      origin="int-as-bool"), f.cont)


@REGISTRY.rule("S-BOOL-INT", ("subsume_val", "bool", "int"))
def rule_bool_to_int(f: SubsumeValJ, state) -> Goal:
    """A boolean fits an integer type as 0/1."""
    phi = f.have.phi if f.have.phi is not None else ne(f.v, intlit(0))
    if f.want.refinement is None:
        return f.cont
    return GSep(HPure(eq(ite(phi, intlit(1), intlit(0)), f.want.refinement),
                      origin="bool-as-int"), f.cont)


@REGISTRY.rule("S-VAL", ("subsume_val", "*", "*"), priority=-10)
def rule_subsume_val_generic(f: SubsumeValJ, state) -> Goal:
    """Generic value subsumption: structural first, then decompositions."""
    have, want, v = f.have, f.want, f.v
    conds = structural_conditions(have, want)
    if conds is not None:
        return _conds_goal(conds, f.cont, f"subsumption of {v!r}")
    if isinstance(have, NamedT):
        return GBasic(SubsumeValJ(f.sigma, v, f.sigma.types.unfold(have),
                                  want, f.cont))
    if isinstance(have, ExistsT):
        body = have.body
        return GForall(have.sort, have.hint, lambda x: GBasic(
            SubsumeValJ(f.sigma, v, body(x), want, f.cont)))
    if isinstance(have, ConstrainedT):
        return GWand(HPure(have.phi), GBasic(
            SubsumeValJ(f.sigma, v, have.inner, want, f.cont)))
    if isinstance(want, NamedT):
        return GBasic(SubsumeValJ(f.sigma, v, have,
                                  f.sigma.types.unfold(want), f.cont))
    if isinstance(want, ExistsT):
        body = want.body
        return GExists(want.sort, want.hint, lambda x: GBasic(
            SubsumeValJ(f.sigma, v, have, body(x), f.cont)))
    if isinstance(want, ConstrainedT):
        return GBasic(SubsumeValJ(
            f.sigma, v, have, want.inner,
            GSep(HPure(want.phi, origin="rc::constraints"), f.cont)))
    if isinstance(have, ValueT):
        parked = state.delta.find_related(ValType(v, have).subject,
                                          state.subst)
        if isinstance(parked, ValType):
            state.delta.remove(parked)
            return GBasic(SubsumeValJ(f.sigma, v, parked.ty, want, f.cont))
        if isinstance(want, OwnPtr):
            conds = [] if want.loc is None else [eq(v, want.loc)]
            return _conds_goal(conds, GBasic(ProvePlaceJ(
                f.sigma, v, want.inner, f.cont)), "pointer value as &own")
        if isinstance(want, OptionalT):
            # A raw pointer value into an optional: it is a real pointer
            # (places are never NULL), so take the pointer branch.
            return GSep(HPure(want.phi, origin="optional (pointer case)"),
                        GBasic(SubsumeValJ(f.sigma, v, have, want.then_type,
                                           f.cont)))
    if isinstance(have, OwnPtr) and isinstance(want, OwnPtr):
        conds = []
        loc_inner = have.loc if have.loc is not None else v
        if want.loc is not None:
            conds.append(eq(loc_inner, want.loc))
        goal = intro_loc_goal(
            f.sigma, state, loc_inner, have.inner,
            GBasic(ProvePlaceJ(f.sigma, loc_inner, want.inner, f.cont)))
        return _conds_goal(conds, goal, "owned pointer subsumption")
    if isinstance(have, OptionalT) and isinstance(want, OptionalT):
        # Same-shape comparison failed: match the conditions, then check
        # branch pairs under the respective assumptions.
        branches = GConj((
            GWand(HPure(have.phi), GBasic(SubsumeValJ(
                f.sigma, v, have.then_type, want.then_type, GTrue()))),
            GWand(HPure(not_(have.phi)), GBasic(SubsumeValJ(
                f.sigma, v, have.else_type, want.else_type, GTrue()))),
        ), ("optional: pointer case", "optional: NULL case"))
        return GSep(HPure(eq(have.phi, want.phi),
                          origin="optional condition"),
                    _seq(branches, f.cont))
    if isinstance(have, OptionalT):
        phi = state.subst.resolve(have.phi)
        if quiet_entails(state, phi):
            return GWand(HPure(phi), GBasic(SubsumeValJ(
                f.sigma, v, have.then_type, want, f.cont)))
        if quiet_entails(state, not_(phi)):
            return GWand(HPure(not_(phi)), GBasic(SubsumeValJ(
                f.sigma, v, have.else_type, want, f.cont)))
    state.fail(f"no subsumption from {have!r} to {want!r} for value {v!r}")


from ...lithium.goals import GTrue  # noqa: E402


def _seq(first: Goal, then: Goal) -> Goal:
    """Run ``first`` (which must be self-contained), then ``then``."""
    if isinstance(first, GConj):
        return GConj(first.goals + (then,), first.labels + ("continue",))
    return then
