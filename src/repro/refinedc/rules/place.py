"""Place (l-value) typing rules: reads, writes, and pointer-to-place
conversion.  This is where RefinedC's ownership bookkeeping lives:

* reading a *copyable* type (int/bool/null/value) leaves the location type
  unchanged;
* reading an *ownership-carrying* type (own/optional/named/…) moves the
  ownership into the expression and leaves the location with the singleton
  ``value(v)`` type;
* writing replaces the location's type by the stored value's type (carving
  out of ``uninit`` blocks as needed, with arithmetic side conditions).
"""

from __future__ import annotations

from ...caesium.layout import Layout, PtrLayout
from ...lithium.goals import GBasic, Goal, GSep, GWand, HAtom, HPure
from ...pure.terms import (App, Sort, Term, add, and_, app, eq, intlit, le,
                           loc_offset, mul, ne, sub)
from ..judgments import (HookJ, LocType, ProvePlaceJ, ReadAtJ, ReadJ, ToPlaceJ,
                         ValType, WriteAtJ, WriteJ)
from ..ownership import intro_loc_goal, locate, quiet_entails, split_loc
from ..types import (ArrayT, BoolT, IntT, NullT, OptionalT, OwnPtr, RType,
                     UninitT, ValueT)
from . import REGISTRY

_MOVABLE_HEADS = {"own", "shr", "optional", "named", "wand", "null", "fn"}
"""Type heads whose values carry ownership: reading them *moves*."""


@REGISTRY.rule("T-READ", ("read",))
def rule_read(f: ReadJ, state) -> Goal:
    """Locate the ownership covering the read and dispatch on its type."""
    found = locate(f.sigma, state, f.loc, intlit(f.layout.size))
    if found is None:
        state.fail(f"read from {state.subst.resolve(f.loc)!r}: no ownership "
                   f"of this location is available")
    atom, _off = found
    return GBasic(ReadAtJ(f.sigma, f.loc, atom.ty, f.layout, f.atomic,
                          f.cont))


@REGISTRY.rule("READ-INT", ("read_at", "int"))
def rule_read_int(f: ReadAtJ, state) -> Goal:
    """Reading an integer copies it; the location keeps its type."""
    ty: IntT = f.ty
    if ty.refinement is not None:
        return f.cont(ty.refinement, ty)
    v = state.fresh_var(Sort.INT, "r")
    cond = and_(le(intlit(ty.itype.min_value), v),
                le(v, intlit(ty.itype.max_value)))
    return GWand(HPure(cond), f.cont(v, IntT(ty.itype, v)))


@REGISTRY.rule("READ-BOOL", ("read_at", "bool"))
def rule_read_bool(f: ReadAtJ, state) -> Goal:
    """Reading a boolean copies it; the location keeps its type."""
    ty: BoolT = f.ty
    if ty.phi is not None:
        from ...pure.terms import ite
        return f.cont(ite(ty.phi, intlit(1), intlit(0)), ty)
    v = state.fresh_var(Sort.INT, "b")
    return f.cont(v, BoolT(ty.itype, ne(v, intlit(0))))


@REGISTRY.rule("READ-VALUE", ("read_at", "value"))
def rule_read_value(f: ReadAtJ, state) -> Goal:
    """Re-reading a moved-from location yields the tracked value; its
    ownership is wherever the first read put it."""
    ty: ValueT = f.ty
    return f.cont(ty.v, ValueT(ty.v, f.layout))


def _array_index(sigma, state, atom: LocType, arr: ArrayT, loc: Term,
                 elem_size: int):
    """Recover the cell index from the byte offset of ``loc`` within the
    array atom: the front end emits ``base + size*i``, so the offset is
    matched syntactically (RefinedC's syntactic location normal forms)."""
    a_base, a_off = split_loc(state.subst.resolve(atom.loc))
    base, off = split_loc(state.subst.resolve(loc))
    if a_base != base:
        return None
    rel = state.subst.resolve(sub(off, a_off))
    from ...pure.terms import Lit as _Lit
    rel = __import__("repro.pure.simplify", fromlist=["simplify"]).simplify(rel)
    if isinstance(rel, _Lit):
        if rel.value % elem_size != 0:
            return None
        return intlit(rel.value // elem_size)
    if isinstance(rel, App) and rel.op == "mul":
        lits = [a for a in rel.args if isinstance(a, _Lit)]
        rest = [a for a in rel.args if not isinstance(a, _Lit)]
        if len(lits) == 1 and lits[0].value == elem_size and len(rest) == 1:
            return rest[0]
    return None


@REGISTRY.rule("READ-ARRAY", ("read_at", "array"))
def rule_read_array(f: ReadAtJ, state) -> Goal:
    """Read cell i of an integer array refined by the list xs: the value is
    ``xs[i]``, guarded by the bounds side condition 0 ≤ i < length."""
    arr: ArrayT = f.ty
    found = locate(f.sigma, state, f.loc, intlit(f.layout.size))
    if found is None:
        state.fail(f"no ownership for array read at {f.loc!r}")
    atom, _off = found
    i = _array_index(f.sigma, state, atom, arr, f.loc, arr.itype.size)
    if i is None:
        state.fail(f"cannot determine the array index of {f.loc!r} "
                   f"(expected base + {arr.itype.size}*i)")
    bounds = and_(le(intlit(0), i), app("lt", i, arr.length))
    v = app("index", arr.xs, i)
    return GSep(HPure(bounds, origin="array bounds"),
                f.cont(v, IntT(arr.itype, v)))


@REGISTRY.rule("WRITE-ARRAY", ("write_at", "array"))
def rule_write_array(f: WriteAtJ, state) -> Goal:
    """Store into cell i of an array: the list refinement becomes
    ``store(xs, i, v)``."""
    if f.atomic:
        state.fail("atomic store into a plain array")
    found = locate(f.sigma, state, f.loc, intlit(f.layout.size))
    if found is None:
        state.fail(f"no ownership for array write at {f.loc!r}")
    atom, _off = found
    arr: ArrayT = atom.ty.resolve(state.subst)
    assert isinstance(arr, ArrayT)
    i = _array_index(f.sigma, state, atom, arr, f.loc, arr.itype.size)
    if i is None:
        state.fail(f"cannot determine the array index of {f.loc!r}")
    if not isinstance(f.vty, IntT) or f.vty.itype != arr.itype:
        state.fail(f"array of {arr.itype.name} cannot store {f.vty!r}")
    v = f.vty.refinement if f.vty.refinement is not None else f.v
    bounds = and_(le(intlit(0), i), app("lt", i, arr.length))
    state.delta.remove(atom)
    state.delta.add(LocType(atom.loc,
                            ArrayT(arr.itype, app("store", arr.xs, i, v),
                                   arr.length)), state.subst)
    return GSep(HPure(bounds, origin="array bounds"), f.cont)


@REGISTRY.rule("READ-NULL", ("read_at", "null"))
def rule_read_null(f: ReadAtJ, state) -> Goal:
    """NULL is duplicable: copy it, keep the location type."""
    from .expr import NULL_LOC
    return f.cont(NULL_LOC, NullT())


@REGISTRY.rule("READ-FN", ("read_at", "fn"))
def rule_read_fn(f: ReadAtJ, state) -> Goal:
    """Function pointers are duplicable: copy, keep the location type."""
    from .expr import fnptr_term
    return f.cont(fnptr_term(f.ty.spec.name), f.ty)


@REGISTRY.rule("READ-SHR", ("read_at", "shr"))
def rule_read_shr(f: ReadAtJ, state) -> Goal:
    """Shared pointers are persistent, hence duplicable: copy."""
    ty = f.ty
    v = ty.loc if ty.loc is not None else state.fresh_var(Sort.LOC, "sp")
    from ..spec import ShrPtr
    return f.cont(v, ShrPtr(ty.inner, v))


@REGISTRY.rule("READ-MOVE", ("read_at", "*"))
def rule_read_move(f: ReadAtJ, state) -> Goal:
    """Reading an ownership-carrying type *moves*: the ownership is parked
    in the context as ``v ◁ᵥ τ`` and the place keeps the singleton
    ``value(v)`` type.  This is what lets the two pieces of Figure 1's
    pointer split end up in different places (§6)."""
    ty = f.ty
    if ty.head == "uninit":
        state.fail(f"read of uninitialised memory at "
                   f"{state.subst.resolve(f.loc)!r}")
    if ty.head == "atomicbool":
        state.fail("non-atomic read of an atomic location")
    if ty.head not in _MOVABLE_HEADS:
        state.fail(f"cannot read a value of type {ty!r} at layout "
                   f"{f.layout!r}")
    # Owned pointers know their value (the location refinement).
    if isinstance(ty, OwnPtr) and ty.loc is not None:
        v = ty.loc
    else:
        v = state.fresh_var(Sort.LOC, "v")
        if isinstance(ty, OwnPtr):
            ty = OwnPtr(ty.inner, v)
    atom = state.delta.find_related(f.loc, state.subst)
    if atom is None:
        state.fail(f"no ownership for read at {f.loc!r}")
    state.delta.remove(atom)
    state.delta.add(LocType(f.loc, ValueT(v, f.layout)), state.subst)
    return GWand(HAtom(ValType(v, ty)),
                 f.cont(v, ValueT(v, f.layout)))


# ---------------------------------------------------------------------
# Writes.
# ---------------------------------------------------------------------

@REGISTRY.rule("T-WRITE", ("write",))
def rule_write(f: WriteJ, state) -> Goal:
    """Locate the ownership covering the store and dispatch on its type."""
    found = locate(f.sigma, state, f.loc, intlit(f.layout.size))
    if found is None:
        state.fail(f"write to {state.subst.resolve(f.loc)!r}: no ownership "
                   f"of this location is available")
    atom, _off = found
    return GBasic(WriteAtJ(f.sigma, f.loc, atom.ty, f.v, f.vty, f.layout,
                           f.atomic, f.cont))


def _stored_type(state, v: Term, vty: RType, layout: Layout) -> RType:
    """The location type after storing ``v : vty``.

    Scalar and duplicable types are stored directly.  Ownership-carrying
    types are *parked* in the context as ``v ◁ᵥ τ`` and the location gets
    the singleton ``value(v)`` type — ownership is keyed by the value, not
    the place, so it can later be recombined wherever the value flows."""
    if isinstance(vty, IntT):
        return IntT(vty.itype, vty.refinement if vty.refinement is not None
                    else v)
    if isinstance(vty, BoolT):
        return vty if vty.phi is not None else BoolT(vty.itype, ne(v, intlit(0)))
    if isinstance(vty, ValueT):
        return ValueT(v, layout)
    if vty.head in ("null", "fn", "shr"):
        return vty
    state.delta.add(ValType(v, vty), state.subst)
    return ValueT(v, layout)


def _same_size(state, old_ty: RType, layout: Layout) -> bool:
    sz = old_ty.layout_size()
    if sz is None:
        return False
    return quiet_entails(state, eq(sz, intlit(layout.size)))


@REGISTRY.rule("WRITE-SCALAR", ("write_at", "*"))
def rule_write_scalar(f: WriteAtJ, state) -> Goal:
    """Overwrite a location whose current type has exactly the stored
    layout's size.  The old contents (and for affine Iris, any ownership
    it carried) are dropped; the new type is the stored value's."""
    if f.atomic:
        state.fail("atomic write to a non-atomic location type "
                   f"{f.old_ty!r}")
    if not _same_size(state, f.old_ty, f.layout):
        state.fail(f"write at {f.loc!r}: cannot overwrite {f.old_ty!r} "
                   f"with a {f.layout.size}-byte store")
    atom = state.delta.find_related(f.loc, state.subst)
    if atom is None:
        state.fail(f"lost ownership of {f.loc!r} during write")
    state.delta.remove(atom)
    new_ty = _stored_type(state, f.v, f.vty, f.layout)
    state.delta.add(LocType(f.loc, new_ty), state.subst)
    return f.cont


@REGISTRY.rule("WRITE-UNINIT", ("write_at", "uninit"))
def rule_write_uninit(f: WriteAtJ, state) -> Goal:
    """Write into an uninitialised block: carve out the written slot,
    leaving uninit prefix/suffix blocks.  Side conditions check that the
    store is within bounds (cf. the rc::size overlay of §2.2)."""
    if f.atomic:
        state.fail("atomic write into an uninit block")
    found = locate(f.sigma, state, f.loc, intlit(f.layout.size))
    if found is None:
        state.fail(f"lost ownership of {f.loc!r} during write")
    atom, start = found
    old: UninitT = atom.ty.resolve(state.subst)
    assert isinstance(old, UninitT)
    size = intlit(f.layout.size)
    state.delta.remove(atom)
    base_loc = state.subst.resolve(atom.loc)
    # Bounds: 0 ≤ start and start + size ≤ old.size.
    bounds = and_(le(intlit(0), start),
                  le(add(start, size), old.size))
    goal: Goal = f.cont
    # Suffix uninit block (may be empty; keep it only if provably nonempty
    # is not required — a 0-byte uninit atom is harmless but noisy).
    suffix_size = sub(old.size, add(start, size))
    if not quiet_entails(state, eq(suffix_size, intlit(0))):
        goal = GWand(HAtom(LocType(loc_offset(base_loc, add(start, size)),
                                   UninitT(suffix_size))), goal)
    if not quiet_entails(state, eq(start, intlit(0))):
        goal = GWand(HAtom(LocType(base_loc, UninitT(start))), goal)
    new_ty = _stored_type(state, f.v, f.vty, f.layout)
    goal = GWand(HAtom(LocType(f.loc, new_ty)), goal)
    return GSep(HPure(bounds, origin="store into uninit block"), goal)


# ---------------------------------------------------------------------
# Pointer-to-place conversion.
# ---------------------------------------------------------------------

@REGISTRY.rule("PLACE-VALUE", ("to_place", "value"))
def rule_place_value(f: ToPlaceJ, state) -> Goal:
    """A raw pointer value: if its ownership is parked as a value atom,
    unfold it; otherwise the target memory is already in the context."""
    atom = state.delta.find_related(ValType(f.v, f.ty).subject, state.subst)
    if isinstance(atom, ValType):
        state.delta.remove(atom)
        return GBasic(ToPlaceJ(f.sigma, f.v, atom.ty, f.cont))
    return f.cont(f.v)


@REGISTRY.rule("PLACE-OWN", ("to_place", "own"))
def rule_place_own(f: ToPlaceJ, state) -> Goal:
    """Dereference an owned pointer: materialise its target's ownership
    (unfolding structs into per-field atoms)."""
    ty: OwnPtr = f.ty
    loc = ty.loc if ty.loc is not None else f.v
    return intro_loc_goal(f.sigma, state, loc, ty.inner, f.cont(loc))


@REGISTRY.rule("PLACE-SHR", ("to_place", "shr"))
def rule_place_shr(f: ToPlaceJ, state) -> Goal:
    """Dereference a shared pointer: its target is persistent."""
    ty = f.ty
    loc = ty.loc if ty.loc is not None else f.v
    return intro_loc_goal(f.sigma, state, loc, ty.inner, f.cont(loc),
                          shared=True)


@REGISTRY.rule("PLACE-NAMED", ("to_place", "named"))
def rule_place_named(f: ToPlaceJ, state) -> Goal:
    """A named pointer type unfolds before being used as a place."""
    return GBasic(ToPlaceJ(f.sigma, f.v, f.sigma.types.unfold(f.ty), f.cont))


@REGISTRY.rule("PLACE-OPTIONAL", ("to_place", "optional"))
def rule_place_optional(f: ToPlaceJ, state) -> Goal:
    """Dereferencing an optional pointer requires its condition to hold —
    otherwise this is a potential NULL dereference, reported as such."""
    ty: OptionalT = f.ty
    return GSep(HPure(ty.phi, origin="dereference of optional pointer "
                      "(must be provably non-NULL)"),
                GBasic(ToPlaceJ(f.sigma, f.v, ty.then_type, f.cont)))


@REGISTRY.rule("PLACE-NULL", ("to_place", "null"))
def rule_place_null(f: ToPlaceJ, state) -> Goal:
    """Dereferencing NULL is always an error."""
    state.fail("dereference of NULL pointer")


@REGISTRY.rule("PLACE-EXISTS", ("to_place", "exists"))
def rule_place_exists(f: ToPlaceJ, state) -> Goal:
    """A type-level existential is skolemised when used as a place."""
    from ...lithium.goals import GForall
    body = f.ty.body
    return GForall(f.ty.sort, f.ty.hint, lambda x: GBasic(
        ToPlaceJ(f.sigma, f.v, body(x), f.cont)))


@REGISTRY.rule("PLACE-CONSTRAINED", ("to_place", "constrained"))
def rule_place_constrained(f: ToPlaceJ, state) -> Goal:
    """A constraint on a place type becomes a context fact."""
    return GWand(HPure(f.ty.phi), GBasic(
        ToPlaceJ(f.sigma, f.v, f.ty.inner, f.cont)))


# ---------------------------------------------------------------------
# Establishing location ownership as a goal (used by subsumption).
# ---------------------------------------------------------------------

@REGISTRY.rule("PROVE-PLACE", ("prove_place", "*"))
def rule_prove_place(f: ProvePlaceJ, state) -> Goal:
    """Default: consume the related context atom via subsumption.

    If no atom for the location exists, *focus*: an ``&own`` pointer whose
    target is this location may still be folded somewhere in the context
    (e.g. the untouched argument slot when ``rc::ensures`` demands
    ``own p : τ``); unfold it in place."""
    loc = state.subst.resolve(f.loc)
    from ...pure.terms import EVar as _EVar
    if isinstance(loc, _EVar) and isinstance(f.want.resolve(state.subst),
                                             UninitT):
        # An existentially quantified region (``rc::exists q`` with
        # ``own q : uninit<n>``): pick the context region that covers the
        # requested byte count (deterministic: first in context order).
        want_size = f.want.resolve(state.subst).size
        candidate = _pick_region(f.sigma, state, want_size)
        if candidate is not None:
            from ...pure.unify import unify as _unify
            if _unify(loc, candidate, state.subst):
                state.stats.evars_instantiated += 1
                loc = candidate
    if state.delta.find_related(loc, state.subst) is None:
        unfolded = _focus_own(f.sigma, state, loc)
        if unfolded is not None:
            return unfolded(GSep(HAtom(LocType(f.loc, f.want)), f.cont))
    return GSep(HAtom(LocType(f.loc, f.want)), f.cont)


def _pick_region(sigma, state, want_size) -> Optional[Term]:
    """Find a context location from which ``want_size`` bytes of owned,
    reclaimable memory extend (a quiet check; the actual consumption emits
    the recorded side conditions)."""
    from ...pure.simplify import simplify as _simp
    from ...pure.terms import add as _add
    starts = []
    for atom in state.delta:
        if isinstance(atom, LocType) and not atom.persistent:
            starts.append(state.subst.resolve(atom.loc))
    for start in starts:
        covered: Term = intlit(0)
        for _ in range(64):
            if quiet_entails(state, eq(covered, want_size)):
                return start
            cur = state.subst.resolve(
                _simp(app("loc_offset", start, covered)))
            atom = state.delta.find_related(cur, state.subst)
            if not isinstance(atom, LocType) or atom.persistent:
                break
            size = atom.ty.resolve(state.subst).layout_size()
            if size is None:
                break
            covered = _simp(_add(covered, size))
    return None


def _focus_own(sigma, state, loc: Term):
    """Find and unfold a folded ``&own`` (in a location or parked value
    atom) whose target is ``loc``.  Returns a goal transformer or None."""
    from ...caesium.layout import PtrLayout
    for atom in list(state.delta):
        ty = atom.ty.resolve(state.subst) if isinstance(atom, (LocType,
                                                               ValType)) \
            else None
        if not isinstance(ty, OwnPtr):
            continue
        target = state.subst.resolve(ty.loc) if ty.loc is not None else None
        if target != loc:
            continue
        state.delta.remove(atom)
        if isinstance(atom, LocType):
            state.delta.add(LocType(atom.loc, ValueT(loc, PtrLayout())),
                            state.subst)
        return lambda cont: intro_loc_goal(sigma, state, loc, ty.inner, cont)
    return None


@REGISTRY.rule("PROVE-PLACE-WAND", ("prove_place", "wand"))
def rule_prove_place_wand(f: ProvePlaceJ, state) -> Goal:
    """Establish a wand: assume the hole, then produce the conclusion
    (τ ∗ H ⊢ τ₂ — the standard magic-wand introduction, specialised to
    RefinedC's wand type, §2.2)."""
    goal: Goal = GSep(HAtom(LocType(f.loc, f.want.inner)), f.cont)
    for hole_atom in reversed(f.want.hole):
        goal = GWand(HAtom(hole_atom), goal)
    return goal


@REGISTRY.rule("HOOK", ("hook",))
def rule_hook(f: HookJ, state) -> Goal:
    """Run an internal bookkeeping callback (e.g. loop-frame recording)."""
    return f.callback(state)
