"""Statement and control-flow typing rules (⊢stmt; T-IF, IF-BOOL, IF-INT of
Figure 6; goto/loop-invariant handling of §2.2; the return rule).
"""

from __future__ import annotations

from ...caesium.syntax import Assign, CondGoto, ExprS, Goto, Ret, Switch
from ...lithium.goals import GBasic, GConj, Goal, GTrue, GWand, HPure, conj
from ...pure.terms import TRUE, Term, eq, intlit, ne, not_
from ..judgments import (ExprJ, GotoJ, IfJ, StmtsJ, SubsumeValJ, ToPlaceJ,
                         WriteJ)
from ..substitution import subst_assertion, subst_type
from ..types import IntT, RType
from . import REGISTRY


def _rest(f: StmtsJ) -> Goal:
    return GBasic(StmtsJ(f.sigma, f.stmts[1:], f.term))


@REGISTRY.rule("T-ASSIGN", ("stmts", "Assign"))
def rule_assign(f: StmtsJ, state) -> Goal:
    """``*lhs = rhs``: type the place, the value, then dispatch ⊢write."""
    s: Assign = f.stmts[0]
    sigma = f.sigma

    def with_lhs(vl: Term, tl: RType) -> Goal:
        return GBasic(ToPlaceJ(sigma, vl, tl, lambda loc: GBasic(
            ExprJ(sigma, s.rhs, lambda v, vty: GBasic(
                WriteJ(sigma, loc, v, vty, s.layout, s.atomic,
                       _rest(f)))))))

    return GBasic(ExprJ(sigma, s.lhs, with_lhs))


@REGISTRY.rule("T-EXPRS", ("stmts", "ExprS"))
def rule_exprs(f: StmtsJ, state) -> Goal:
    """An expression statement (e.g. a call for effects)."""
    s: ExprS = f.stmts[0]
    return GBasic(ExprJ(f.sigma, s.e, lambda v, ty: _rest(f)))


@REGISTRY.rule("T-GOTO", ("stmts", "term:Goto"))
def rule_term_goto(f: StmtsJ, state) -> Goal:
    """A direct jump dispatches the ⊢goto judgment."""
    return GBasic(GotoJ(f.sigma, f.term.target))


@REGISTRY.rule("T-IF", ("stmts", "term:CondGoto"))
def rule_term_condgoto(f: StmtsJ, state) -> Goal:
    """Figure 6, T-IF: type the condition, then dispatch ⊢if on its type."""
    t: CondGoto = f.term
    return GBasic(ExprJ(f.sigma, t.cond, lambda v, ty: GBasic(
        IfJ(f.sigma, v, ty, t.then_target, t.else_target))))


@REGISTRY.rule("T-SWITCH", ("stmts", "term:Switch"))
def rule_term_switch(f: StmtsJ, state) -> Goal:
    """An unstructured switch: fork per case with the scrutinee pinned."""
    t: Switch = f.term
    sigma = f.sigma

    def with_scrut(v: Term, ty: RType) -> Goal:
        if not isinstance(ty, IntT):
            state.fail(f"switch on non-integer type {ty!r}")
        branches = []
        labels = []
        others = []
        for case_val, target in t.cases:
            branches.append(GWand(HPure(eq(v, intlit(case_val))),
                                  GBasic(GotoJ(sigma, target))))
            labels.append(f"switch case {case_val}")
            others.append(ne(v, intlit(case_val)))
        default_hyp = HPure(TRUE) if not others else \
            HPure(others[0] if len(others) == 1 else
                  __and(others))
        branches.append(GWand(default_hyp, GBasic(GotoJ(sigma, t.default))))
        labels.append("switch default")
        return conj(*branches, labels=labels)

    return GBasic(ExprJ(sigma, t.scrutinee, with_scrut))


def __and(ts):
    from ...pure.terms import and_
    return and_(*ts)


@REGISTRY.rule("IF-BOOL", ("if", "bool"))
def rule_if_bool(f: IfJ, state) -> Goal:
    """Figure 6, IF-BOOL: fork on the boolean's refinement.  When the
    refinement is a literal (as produced by O-OPTIONAL-EQ), one branch is
    vacuous (⌜False⌝ −∗ …)."""
    phi = f.ty.phi if f.ty.phi is not None else ne(f.v, intlit(0))
    return GConj((
        GWand(HPure(phi), GBasic(GotoJ(f.sigma, f.then_label))),
        GWand(HPure(not_(phi)), GBasic(GotoJ(f.sigma, f.else_label))),
    ), ("if branch: then", "if branch: else"))


@REGISTRY.rule("IF-INT", ("if", "int"))
def rule_if_int(f: IfJ, state) -> Goal:
    """Figure 6, IF-INT: n ≠ 0 selects the then branch."""
    n = f.ty.refinement if f.ty.refinement is not None else f.v
    return GConj((
        GWand(HPure(ne(n, intlit(0))), GBasic(GotoJ(f.sigma, f.then_label))),
        GWand(HPure(eq(n, intlit(0))), GBasic(GotoJ(f.sigma, f.else_label))),
    ), ("if branch: then", "if branch: else"))


@REGISTRY.rule("T-GOTO-BLOCK", ("goto",))
def rule_goto(f: GotoJ, state) -> Goal:
    """Jump to a block.  If the target carries a loop-invariant annotation,
    consume the invariant (and schedule the block to be checked once under
    it); otherwise inline the target block."""
    sigma, target = f.sigma, f.target
    block = sigma.fn.block(target)
    if block.annot is not None:
        return sigma.invariant_entry_goal(state, target)
    sigma.visits[target] = sigma.visits.get(target, 0) + 1
    if sigma.visits[target] > sigma.max_inline_visits:
        state.fail(
            f"block {target!r} is visited repeatedly without a loop "
            f"invariant — annotate the loop with rc::inv_vars")
    return GBasic(StmtsJ(sigma, tuple(block.stmts), block.term))


@REGISTRY.rule("T-RETURN", ("stmts", "term:Ret"))
def rule_return(f: StmtsJ, state) -> Goal:
    """Check the returned value against the spec's return type, then the
    postcondition (rc::ensures).  Postcondition existentials (rc::exists)
    become evars, instantiated while checking the return type first — the
    left-to-right discipline of §5."""
    t: Ret = f.term
    sigma = f.sigma
    spec = sigma.spec

    def finish(v, vty) -> Goal:
        def with_exists(emap: dict) -> Goal:
            goal: Goal = GTrue()
            for a in reversed(spec.ensures):
                goal = sigma.consume_assertion_goal(
                    subst_assertion(a, emap), goal, origin="rc::ensures")
            if spec.returns is not None:
                want = subst_type(spec.returns, emap)
                if v is None:
                    state.fail("void return but the spec declares a "
                               "return type")
                goal = GBasic(SubsumeValJ(sigma, v, vty, want, goal))
            elif v is not None:
                state.fail("value returned but the spec is void")
            return goal

        def bind(idx: int, emap: dict) -> Goal:
            if idx == len(spec.exists):
                return with_exists(emap)
            y = spec.exists[idx]
            from ...lithium.goals import GExists
            return GExists(y.sort, y.name,
                           lambda ev: bind(idx + 1, {**emap, y: ev}))

        return bind(0, {})

    if t.value is None:
        return finish(None, None)
    return GBasic(ExprJ(sigma, t.value, finish))
