"""Binary/unary operator typing rules (⊢binop, ⊢unop): integer arithmetic
with in-range side conditions, comparisons producing refined booleans, the
pointer-arithmetic rule O-ADD-UNINIT, and the NULL-comparison rule
O-OPTIONAL-EQ (both from Figure 6).
"""

from __future__ import annotations

from ...caesium.layout import INT
from ...lithium.goals import GBasic, GConj, Goal, GSep, GWand, HAtom, HPure
from ...lithium.rules import Rule as _Rule
from ...pure.terms import (Term, add, and_, app, eq, ge, gt, intlit, ite, le,
                           loc_offset, lt, mul, ne, not_, sub)
from ..judgments import BinOpJ, UnOpJ, ValType
from ..types import BoolT, IntT, OptionalT, OwnPtr, RType, UninitT, ValueT
from . import REGISTRY

_BOOL_RESULT_ITYPE = INT   # C comparisons produce int


def _as_int_term(v: Term, ty: IntT) -> Term:
    return ty.refinement if ty.refinement is not None else v


def _arith_term(op: str, a: Term, b: Term) -> Term:
    if op == "+":
        return add(a, b)
    if op == "-":
        return sub(a, b)
    if op == "*":
        return mul(a, b)
    if op == "/":
        return app("div", a, b)
    if op == "%":
        return app("mod", a, b)
    raise AssertionError(op)


def _make_arith_rule(op: str):
    def rule(f: BinOpJ, state) -> Goal:
        """Integer arithmetic on mathematical refinements: the result is
        the exact mathematical value, guarded by an in-range side
        condition (RefinedC types rule out wrap-around)."""
        t1, t2 = f.t1, f.t2
        assert isinstance(t1, IntT) and isinstance(t2, IntT)
        a = _as_int_term(f.v1, t1)
        b = _as_int_term(f.v2, t2)
        r = _arith_term(op, a, b)
        ity = t1.itype
        conds = [le(intlit(ity.min_value), r), le(r, intlit(ity.max_value))]
        if op in ("/", "%"):
            conds.insert(0, ne(b, intlit(0)))
        return GSep(HPure(and_(*conds), origin=f"integer {op}"),
                    f.cont(r, IntT(ity, r)))
    return rule


def _make_cmp_rule(op: str):
    cmp_builders = {"==": eq, "!=": ne, "<": lt, "<=": le, ">": gt, ">=": ge}

    def rule(f: BinOpJ, state) -> Goal:
        """Integer comparison: the result is a boolean refined by the exact
        comparison proposition (always defined; no side conditions)."""
        a = _as_int_term(f.v1, f.t1)
        b = _as_int_term(f.v2, f.t2)
        phi = cmp_builders[op](a, b)
        return f.cont(ite(phi, intlit(1), intlit(0)),
                      BoolT(_BOOL_RESULT_ITYPE, phi))
    return rule


for _op in ("+", "-", "*", "/", "%"):
    REGISTRY.register(_Rule(
        f"O-ARITH-{_op}", ("binop", _op, "int", "int"),
        _make_arith_rule(_op),
        doc=f"integer {_op} on refinements, with in-range side condition"))
for _op in ("==", "!=", "<", "<=", ">", ">="):
    REGISTRY.register(_Rule(
        f"O-CMP-INT-{_op}", ("binop", _op, "int", "int"),
        _make_cmp_rule(_op),
        doc=f"integer {_op}: boolean refined by the exact proposition"))


# Comparisons where one side is already a refined boolean (e.g. comparing a
# comparison result with an int constant).
@REGISTRY.rule("O-CMP-BOOL-EQ-INT", ("binop", "==", "bool", "int"))
def rule_bool_eq_int(f: BinOpJ, state) -> Goal:
    """Comparing a refined boolean with an integer constant."""
    b = _as_int_term(f.v2, f.t2)
    phi = eq(ite(f.t1.phi, intlit(1), intlit(0)), b) \
        if f.t1.phi is not None else eq(f.v1, b)
    return f.cont(ite(phi, intlit(1), intlit(0)),
                  BoolT(_BOOL_RESULT_ITYPE, phi))


# ---------------------------------------------------------------------
# O-ADD-UNINIT (Figure 6): pointer + integer splits uninit ownership.
# ---------------------------------------------------------------------

@REGISTRY.rule("O-ADD-UNINIT", ("binop", "ptr_offset", "own", "int"))
def rule_add_uninit(f: BinOpJ, state) -> Goal:
    """Adding n₂ to a pointer to ``uninit<n₁>`` splits the ownership into
    ``uninit<n₂>`` (kept with the original pointer, parked as a value atom)
    and ``uninit<n₁ − n₂>`` (attached to the offset pointer).  This single
    rule covers both the allocate-from-the-end and allocate-from-the-start
    variants of Figure 1 (§6)."""
    t1: OwnPtr = f.t1
    inner = t1.inner
    if not isinstance(inner, UninitT):
        state.fail(f"pointer arithmetic on &own<{inner!r}> "
                   "(only uninit blocks can be split)")
    n1 = inner.size
    assert isinstance(f.t2, IntT)
    n2 = _as_int_term(f.v2, f.t2)
    v1 = t1.loc if t1.loc is not None else f.v1
    v_res = loc_offset(v1, n2)
    side = and_(le(intlit(0), n2), le(n2, n1))
    return GSep(
        HPure(side, origin="pointer arithmetic on uninit block"),
        GWand(HAtom(ValType(v1, OwnPtr(UninitT(n2), v1))),
              f.cont(v_res, OwnPtr(UninitT(sub(n1, n2)), v_res))))


@REGISTRY.rule("O-ADD-VALUE-PTR", ("binop", "ptr_offset", "value", "int"))
def rule_add_value_ptr(f: BinOpJ, state) -> Goal:
    """Offsetting a pointer value: if its ownership is parked in the
    context (it came from a moving read), fetch it so the type-directed
    rules (O-ADD-UNINIT) can split it; otherwise (e.g. ``&arr[i]`` where
    the ownership is materialised at the target) this is pure address
    arithmetic."""
    assert isinstance(f.t2, IntT)
    off = _as_int_term(f.v2, f.t2)
    v_res = loc_offset(f.v1, off)
    from ...caesium.layout import PtrLayout
    raw = f.cont(v_res, ValueT(v_res, PtrLayout()))
    parked = state.delta.find_related(ValType(f.v1, f.t1).subject,
                                      state.subst)
    if isinstance(parked, ValType):
        parked_ty = parked.ty.resolve(state.subst)
        if isinstance(parked_ty, OwnPtr) and \
                isinstance(parked_ty.inner, UninitT):
            # The split case: re-dispatch so O-ADD-UNINIT can fire.
            state.delta.remove(parked)
            return GBasic(BinOpJ(f.sigma, f.op, f.v1, parked.ty, f.v2,
                                 f.t2, f.cont))
        if isinstance(parked_ty, OwnPtr):
            # Indexing into a structured block (e.g. &a[i]): materialise
            # the target's ownership and do raw address arithmetic.
            from ..ownership import intro_loc_goal
            state.delta.remove(parked)
            target = parked_ty.loc if parked_ty.loc is not None else f.v1
            return intro_loc_goal(f.sigma, state, target, parked_ty.inner,
                                  raw)
    return raw


# ---------------------------------------------------------------------
# O-OPTIONAL-EQ (Figure 6) and friends: NULL comparisons.
# ---------------------------------------------------------------------

def _optional_null_cases(f: BinOpJ, state, phi: Term, then_ty: RType,
                         else_ty: RType, v_opt: Term, negated: bool) -> Goal:
    """The two premises of O-OPTIONAL-EQ: when φ holds, the value is an
    owned pointer (≠ NULL) and the comparison is False; when ¬φ, the value
    is NULL and the comparison is True.  ``negated`` flips for ``!=``."""
    eq_result = lambda is_null: (is_null != negated)

    def case(cond: Term, ty: RType, result: bool) -> Goal:
        lit = intlit(1) if result else intlit(0)
        from ...pure.terms import Lit
        res_ty = BoolT(_BOOL_RESULT_ITYPE, Lit(result))
        return GWand(HPure(cond),
                     GWand(HAtom(ValType(v_opt, ty)),
                           f.cont(lit, res_ty)))

    return GConj((
        case(phi, then_ty, eq_result(False)),
        case(not_(phi), else_ty, eq_result(True)),
    ), ("optional is a pointer", "optional is NULL"))


def _make_optional_null_rule(negated: bool, flipped: bool):
    def rule(f: BinOpJ, state) -> Goal:
        """O-OPTIONAL-EQ (Figure 6): comparing an optional against NULL
        performs the type-level case distinction."""
        if flipped:
            opt_ty, v_opt = f.t2, f.v2
        else:
            opt_ty, v_opt = f.t1, f.v1
        assert isinstance(opt_ty, OptionalT)
        return _optional_null_cases(f, state, opt_ty.phi, opt_ty.then_type,
                                    opt_ty.else_type, v_opt, negated)
    return rule


for _neg, _op in ((False, "=="), (True, "!=")):
    REGISTRY.register(_Rule(
        f"O-OPTIONAL-EQ{_op}", ("binop", _op, "optional", "null"),
        _make_optional_null_rule(_neg, flipped=False),
        doc="Figure 6 O-OPTIONAL-EQ: NULL comparison case-splits the "
            "optional"))
    REGISTRY.register(_Rule(
        f"O-OPTIONAL-EQ{_op}-FLIP", ("binop", _op, "null", "optional"),
        _make_optional_null_rule(_neg, flipped=True),
        doc="O-OPTIONAL-EQ, operands flipped"))


def _make_own_null_rule(negated: bool, flipped: bool):
    def rule(f: BinOpJ, state) -> Goal:
        """An owned pointer is never NULL: the comparison is decided."""
        own_ty, v_own = (f.t2, f.v2) if flipped else (f.t1, f.v1)
        result = negated  # own == NULL is False; own != NULL is True
        from ...pure.terms import Lit
        return GWand(HAtom(ValType(v_own, own_ty)),
                     f.cont(intlit(1 if result else 0),
                            BoolT(_BOOL_RESULT_ITYPE, Lit(result))))
    return rule


for _neg, _op in ((False, "=="), (True, "!=")):
    REGISTRY.register(_Rule(
        f"O-OWN-NULL{_op}", ("binop", _op, "own", "null"),
        _make_own_null_rule(_neg, flipped=False),
        doc="an owned pointer is never NULL: the comparison is decided"))
    REGISTRY.register(_Rule(
        f"O-NULL-OWN{_op}", ("binop", _op, "null", "own"),
        _make_own_null_rule(_neg, flipped=True),
        doc="an owned pointer is never NULL (flipped)"))


def _make_null_null_rule(negated: bool):
    def rule(f: BinOpJ, state) -> Goal:
        from ...pure.terms import Lit
        result = not negated
        return f.cont(intlit(1 if result else 0),
                      BoolT(_BOOL_RESULT_ITYPE, Lit(result)))
    return rule


REGISTRY.register(_Rule("O-NULL-NULL==", ("binop", "==", "null", "null"),
                        _make_null_null_rule(False),
                        doc="NULL == NULL is True"))
REGISTRY.register(_Rule("O-NULL-NULL!=", ("binop", "!=", "null", "null"),
                        _make_null_null_rule(True),
                        doc="NULL != NULL is False"))


# Named types in operand position unfold automatically (§2.2).
@REGISTRY.rule("O-UNFOLD-NAMED-L", ("binop", "*", "named", "*"))
def rule_binop_unfold_left(f: BinOpJ, state) -> Goal:
    """Named types in operand position unfold automatically (§2.2)."""
    t1 = f.sigma.types.unfold(f.t1)
    return GBasic(BinOpJ(f.sigma, f.op, f.v1, t1, f.v2, f.t2, f.cont))


@REGISTRY.rule("O-UNFOLD-NAMED-R", ("binop", "*", "*", "named"))
def rule_binop_unfold_right(f: BinOpJ, state) -> Goal:
    """Named types in operand position unfold automatically (§2.2)."""
    t2 = f.sigma.types.unfold(f.t2)
    return GBasic(BinOpJ(f.sigma, f.op, f.v1, f.t1, f.v2, t2, f.cont))


@REGISTRY.rule("O-BINOP-VALUE-L", ("binop", "*", "value", "*"))
def rule_binop_value_left(f: BinOpJ, state) -> Goal:
    """A moved value in operand position: fetch its parked type."""
    atom = state.delta.find_related(ValType(f.v1, f.t1).subject, state.subst)
    if not isinstance(atom, ValType):
        state.fail(f"value {f.v1!r} has no available type for {f.op}")
    state.delta.remove(atom)
    return GBasic(BinOpJ(f.sigma, f.op, f.v1, atom.ty, f.v2, f.t2, f.cont))


@REGISTRY.rule("O-BINOP-VALUE-R", ("binop", "*", "*", "value"))
def rule_binop_value_right(f: BinOpJ, state) -> Goal:
    """A moved value in operand position: fetch its parked type."""
    atom = state.delta.find_related(ValType(f.v2, f.t2).subject, state.subst)
    if not isinstance(atom, ValType):
        state.fail(f"value {f.v2!r} has no available type for {f.op}")
    state.delta.remove(atom)
    return GBasic(BinOpJ(f.sigma, f.op, f.v1, f.t1, f.v2, atom.ty, f.cont))


# ---------------------------------------------------------------------
# Unary operators.
# ---------------------------------------------------------------------

@REGISTRY.rule("O-NOT-BOOL", ("unop", "!", "bool"))
def rule_not_bool(f: UnOpJ, state) -> Goal:
    """``!`` on a boolean negates its proposition."""
    phi = f.t.phi if f.t.phi is not None else ne(f.v, intlit(0))
    return f.cont(ite(not_(phi), intlit(1), intlit(0)),
                  BoolT(_BOOL_RESULT_ITYPE, not_(phi)))


@REGISTRY.rule("O-NOT-INT", ("unop", "!", "int"))
def rule_not_int(f: UnOpJ, state) -> Goal:
    """``!n`` is the boolean ``n = 0``."""
    n = _as_int_term(f.v, f.t)
    phi = eq(n, intlit(0))
    return f.cont(ite(phi, intlit(1), intlit(0)),
                  BoolT(_BOOL_RESULT_ITYPE, phi))


@REGISTRY.rule("O-NEG-INT", ("unop", "-", "int"))
def rule_neg_int(f: UnOpJ, state) -> Goal:
    """Integer negation, guarded by the in-range side condition."""
    n = _as_int_term(f.v, f.t)
    r = sub(intlit(0), n)
    ity = f.t.itype
    cond = and_(le(intlit(ity.min_value), r), le(r, intlit(ity.max_value)))
    return GSep(HPure(cond, origin="integer negation"),
                f.cont(r, IntT(ity, r)))


@REGISTRY.rule("O-NOT-OPTIONAL", ("unop", "!", "optional"))
def rule_not_optional(f: UnOpJ, state) -> Goal:
    """``!p`` on an optional pointer: the NULL test, as O-OPTIONAL-EQ."""
    ty: OptionalT = f.t
    from ...pure.terms import Lit

    def case(cond: Term, branch_ty: RType, result: bool) -> Goal:
        return GWand(HPure(cond),
                     GWand(HAtom(ValType(f.v, branch_ty)),
                           f.cont(intlit(1 if result else 0),
                                  BoolT(_BOOL_RESULT_ITYPE, Lit(result)))))

    return GConj((
        case(ty.phi, ty.then_type, False),
        case(not_(ty.phi), ty.else_type, True),
    ), ("optional is a pointer", "optional is NULL"))
