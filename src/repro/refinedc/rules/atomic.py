"""Fine-grained concurrency rules (§6): CAS-BOOL on the atomic boolean
type, atomic stores (release), and atomic loads.

The ``atomicbool<H⊤, H⊥>`` type "holds the ownership of H⊤ if the Boolean
is true, and of H⊥ if the Boolean is false"; these rules are the only place
that ownership crosses threads.  Their soundness burden (invariants + ghost
state in Iris) is carried by the semantic model and the concurrent adequacy
tests, mirroring how the paper proves CAS-BOOL "once and for all in Coq".
"""

from __future__ import annotations

from typing import Optional

from ...caesium.layout import INT
from ...lithium.goals import GBasic, GConj, Goal, GSep, GWand, HAtom, HPure
from ...pure.terms import Lit, Term, intlit
from ..judgments import CASJ, HookJ, LocType, ReadAtJ, WriteAtJ
from ..types import AtomicBoolT, BoolT, IntT, RType
from . import REGISTRY


def _as_bool_literal(ty: RType, state) -> Optional[bool]:
    """Read a compile-time boolean out of a scalar type refinement."""
    if isinstance(ty, IntT) and isinstance(ty.refinement, Lit):
        return ty.refinement.value != 0
    if isinstance(ty, BoolT) and isinstance(ty.phi, Lit):
        return bool(ty.phi.value)
    return None


def _hold_atoms(ab: AtomicBoolT, b: bool) -> tuple:
    return ab.h_true if b else ab.h_false


@REGISTRY.rule("CAS-BOOL", ("cas", "atomicbool", "int", "int"))
def rule_cas_bool(f: CASJ, state) -> Goal:
    """Figure 6, CAS-BOOL.  The expected and desired operands must be
    compile-time booleans (b₁, b₂); the two conjuncts cover CAS failure
    (expected flips to ¬b₁) and success (receive H_{b₁}, provide H_{b₂})."""
    ab: AtomicBoolT = f.atom_ty
    b1 = _as_bool_literal(f.exp_ty, state)
    b2 = _as_bool_literal(f.des_ty, state)
    if b1 is None or b2 is None:
        state.fail("CAS on an atomic boolean requires compile-time boolean "
                   f"operands (got {f.exp_ty!r} and {f.des_ty!r})")

    def fail_branch(st) -> Goal:
        # The expected location is updated to the value actually read: ¬b₁.
        atom = st.delta.find_related(f.exp_loc, st.subst)
        if atom is None:
            st.fail(f"lost ownership of CAS expected operand {f.exp_loc!r}")
        st.delta.remove(atom)
        st.delta.add(LocType(f.exp_loc,
                             IntT(INT, intlit(0 if b1 else 1))), st.subst)
        return f.cont(intlit(0), BoolT(INT, Lit(False)))

    # Success: receive the resources held at b₁, provide those for b₂.
    success: Goal = f.cont(intlit(1), BoolT(INT, Lit(True)))
    for a in reversed(_hold_atoms(ab, b2)):
        success = GSep(HAtom(a) if not isinstance(a, Term) else HPure(a),
                       success)
    for a in reversed(_hold_atoms(ab, b1)):
        if isinstance(a, Term):
            success = GWand(HPure(a), success)
        else:
            # Decomposing introduction (structs unfold into field atoms).
            success = f.sigma.intro_assertion_goal(state, a, success)

    return GConj((
        GBasic(HookJ("cas-fail", fail_branch)),
        success,
    ), ("CAS fails", "CAS succeeds"))


@REGISTRY.rule("WRITE-ATOMICBOOL", ("write_at", "atomicbool"))
def rule_write_atomicbool(f: WriteAtJ, state) -> Goal:
    """An atomic store to an atomic boolean (e.g. a spinlock release):
    provide the resources the invariant holds at the stored value.  The
    location keeps its (persistent) atomicbool type."""
    if not f.atomic:
        state.fail("non-atomic store to an atomic boolean")
    ab: AtomicBoolT = f.old_ty
    b = _as_bool_literal(f.vty, state)
    if b is None:
        state.fail("atomic store to an atomic boolean requires a "
                   f"compile-time boolean operand (got {f.vty!r})")
    goal = f.cont
    for a in reversed(_hold_atoms(ab, b)):
        goal = GSep(HAtom(a) if not isinstance(a, Term) else HPure(a), goal)
    return goal


@REGISTRY.rule("READ-ATOMICBOOL", ("read_at", "atomicbool"))
def rule_read_atomicbool(f: ReadAtJ, state) -> Goal:
    """An atomic load of an atomic boolean.  The invariant is only opened
    for the duration of the access, so resources can be extracted only if
    they are *persistent* (the one-time barrier pattern, §7 #6)."""
    if not f.atomic:
        state.fail("non-atomic read of an atomic location")
    ab: AtomicBoolT = f.ty

    def branch(b: bool) -> Goal:
        goal: Goal = f.cont(intlit(1 if b else 0), BoolT(INT, Lit(b)))
        for a in reversed(_hold_atoms(ab, b)):
            if isinstance(a, Term):
                goal = GWand(HPure(a), goal)
            elif a.persistent:
                goal = f.sigma.intro_assertion_goal(state, a, goal)
            # Non-persistent resources stay inside the invariant.
        return goal

    return GConj((branch(True), branch(False)),
                 ("atomic load reads true", "atomic load reads false"))
