"""RefinedC atoms and typing judgments (§4–§6, Figure 6).

Atoms:

* ``LocType(ℓ, τ)`` — the location ℓ stores bytes satisfying τ (``ℓ ◁ₗ τ``).
* ``ValType(v, τ)`` — the value v satisfies τ (``v ◁ᵥ τ``); used when a
  rule *parks* ownership that travels with a value (e.g. O-ADD-UNINIT).
* ``TokenAtom`` — a named abstract resource (ghost tokens for the
  spinlock/one-time-barrier case studies, §7 #6).

Judgments (Lithium basic goals ``F``) are continuation-passing, exactly as
in the paper: "the expression judgment ⊢expr e {v, τ. G(v, τ)} ... is
parameterized by a continuation G" (§6).  Each judgment's ``dispatch_key``
encodes the syntax-directedness: the program construct plus the heads of
the types it operates on uniquely select a typing rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from ..caesium.layout import Layout
from ..caesium.syntax import Expr, Stmt, Terminator
from ..lithium.goals import Atom, BasicGoal, Goal
from ..pure.compiled import COMPILE
from ..pure.terms import Subst, Term
from .types import RType

if TYPE_CHECKING:  # pragma: no cover
    from .checker import FnCtx
    from .spec import FunctionSpec

# Continuation taking the inferred (symbolic value, type) of an expression.
ExprCont = Callable[[Term, RType], Goal]
# Continuation taking a location term.
LocCont = Callable[[Term], Goal]


# ---------------------------------------------------------------------
# Atoms.
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class LocType(Atom):
    """``ℓ ◁ₗ τ`` — ownership of the memory at location ℓ at type τ.

    ``shared=True`` marks an invariant-governed (duplicable) location, the
    target of an ``&shr`` pointer — e.g. the spinlock's atomic boolean.
    """

    loc: Term
    ty: RType
    shared: bool = False

    @property
    def subject(self) -> Term:
        return self.loc

    @property
    def persistent(self) -> bool:
        return self.shared

    def resolve(self, subst: Subst) -> "LocType":
        loc = subst.resolve(self.loc)
        ty = self.ty.resolve(subst)
        if COMPILE.enabled and loc is self.loc and ty is self.ty:
            return self
        return LocType(loc, ty, self.shared)

    def __repr__(self) -> str:
        mark = "◁ₛ" if self.shared else "◁ₗ"
        return f"{self.loc!r} {mark} {self.ty!r}"


@dataclass(frozen=True)
class ValType(Atom):
    """``v ◁ᵥ τ`` — the value v has type τ (carrying ownership).

    The subject is namespaced so that a value atom for a location-sorted
    value never shadows the ``LocType`` atom of the same location.
    """

    val: Term
    ty: RType

    @property
    def subject(self) -> Term:
        from ..pure.terms import Sort, fn_app
        return fn_app("val$", [self.val], Sort.BOOL)

    def resolve(self, subst: Subst) -> "ValType":
        val = subst.resolve(self.val)
        ty = self.ty.resolve(subst)
        if COMPILE.enabled and val is self.val and ty is self.ty:
            return self
        return ValType(val, ty)

    def __repr__(self) -> str:
        return f"{self.val!r} ◁ᵥ {self.ty!r}"


@dataclass(frozen=True)
class TokenAtom(Atom):
    """A named abstract resource (ghost token), identified by a name and an
    index term (the γ of ``spinlock<γ>``).  ``dup=True`` makes it
    persistent (e.g. the one-time barrier's "initialised" witness)."""

    name: str
    index: Term
    dup: bool = False

    @property
    def subject(self) -> Term:
        from ..pure.terms import Sort, fn_app
        return fn_app(f"tok${self.name}", [self.index], Sort.BOOL)

    @property
    def persistent(self) -> bool:
        return self.dup

    def resolve(self, subst: Subst) -> "TokenAtom":
        index = subst.resolve(self.index)
        return self if COMPILE.enabled and index is self.index \
            else TokenAtom(self.name, index, self.dup)

    def __repr__(self) -> str:
        kind = "ptok" if self.dup else "tok"
        return f"{kind}:{self.name}({self.index!r})"


# ---------------------------------------------------------------------
# Judgments.
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class StmtsJ(BasicGoal):
    """``⊢stmt`` — type a statement sequence + terminator of a block."""

    sigma: "FnCtx"
    stmts: tuple[Stmt, ...]
    term: Terminator

    def dispatch_key(self) -> tuple:
        if self.stmts:
            return ("stmts", type(self.stmts[0]).__name__)
        return ("stmts", "term:" + type(self.term).__name__)

    def describe(self) -> str:
        if self.stmts:
            return f"statement {self.stmts[0]!r}"
        return f"terminator {self.term!r}"

    def location_label(self) -> Optional[str]:
        node = self.stmts[0] if self.stmts else self.term
        kind = {"Assign": "assignment", "ExprS": "expression statement",
                "Ret": "return statement", "CondGoto": "if condition",
                "Goto": "goto", "Switch": "switch"}.get(
                    type(node).__name__, type(node).__name__)
        line = getattr(node, "line", 0)
        return f"{kind} (line {line})" if line else kind


@dataclass(frozen=True)
class ExprJ(BasicGoal):
    """``⊢expr e {v, τ. G(v, τ)}`` — infer a value and type for ``e``."""

    sigma: "FnCtx"
    expr: Expr
    cont: ExprCont

    def dispatch_key(self) -> tuple:
        return ("expr", type(self.expr).__name__)

    def describe(self) -> str:
        return f"expression {self.expr!r}"


@dataclass(frozen=True)
class BinOpJ(BasicGoal):
    """``⊢binop (v₁ : τ₁) ⊙ (v₂ : τ₂) {v, τ. G}`` (Figure 6, T-BINOP)."""

    sigma: "FnCtx"
    op: str
    v1: Term
    t1: RType
    v2: Term
    t2: RType
    cont: ExprCont

    def dispatch_key(self) -> tuple:
        return ("binop", self.op, self.t1.head, self.t2.head)

    def resolve(self, subst: Subst) -> "BinOpJ":
        v1 = subst.resolve(self.v1)
        t1 = self.t1.resolve(subst)
        v2 = subst.resolve(self.v2)
        t2 = self.t2.resolve(subst)
        if COMPILE.enabled and v1 is self.v1 and t1 is self.t1 and v2 is self.v2 \
                and t2 is self.t2:
            return self
        return BinOpJ(self.sigma, self.op, v1, t1, v2, t2, self.cont)

    def describe(self) -> str:
        return f"({self.v1!r} : {self.t1!r}) {self.op} ({self.v2!r} : {self.t2!r})"


@dataclass(frozen=True)
class UnOpJ(BasicGoal):
    sigma: "FnCtx"
    op: str
    v: Term
    t: RType
    cont: ExprCont

    def dispatch_key(self) -> tuple:
        return ("unop", self.op, self.t.head)

    def resolve(self, subst: Subst) -> "UnOpJ":
        v = subst.resolve(self.v)
        t = self.t.resolve(subst)
        if COMPILE.enabled and v is self.v and t is self.t:
            return self
        return UnOpJ(self.sigma, self.op, v, t, self.cont)

    def describe(self) -> str:
        return f"{self.op}({self.v!r} : {self.t!r})"


@dataclass(frozen=True)
class IfJ(BasicGoal):
    """``⊢if τ then s₁ else s₂`` — dispatch on the condition's type
    (IF-BOOL vs IF-INT, Figure 6)."""

    sigma: "FnCtx"
    v: Term
    ty: RType
    then_label: str
    else_label: str

    def dispatch_key(self) -> tuple:
        return ("if", self.ty.head)

    def resolve(self, subst: Subst) -> "IfJ":
        v = subst.resolve(self.v)
        ty = self.ty.resolve(subst)
        if COMPILE.enabled and v is self.v and ty is self.ty:
            return self
        return IfJ(self.sigma, v, ty, self.then_label, self.else_label)

    def describe(self) -> str:
        return f"if ({self.v!r} : {self.ty!r})"


@dataclass(frozen=True)
class GotoJ(BasicGoal):
    """``⊢goto`` — jump to a block; consumes the loop invariant if the
    target block carries one."""

    sigma: "FnCtx"
    target: str

    def dispatch_key(self) -> tuple:
        return ("goto",)

    def describe(self) -> str:
        return f"goto {self.target}"


@dataclass(frozen=True)
class ReadJ(BasicGoal):
    """``⊢read`` — locate the ownership covering ``loc`` and dispatch to a
    ``read_at`` rule on the type found."""

    sigma: "FnCtx"
    loc: Term
    layout: Layout
    atomic: bool
    cont: ExprCont

    def dispatch_key(self) -> tuple:
        return ("read",)

    def resolve(self, subst: Subst) -> "ReadJ":
        loc = subst.resolve(self.loc)
        return self if COMPILE.enabled and loc is self.loc \
            else ReadJ(self.sigma, loc, self.layout, self.atomic, self.cont)

    def describe(self) -> str:
        return f"read {self.layout!r} at {self.loc!r}"


@dataclass(frozen=True)
class ReadAtJ(BasicGoal):
    """``⊢read_at`` — read from a location whose type is known."""

    sigma: "FnCtx"
    loc: Term
    ty: RType
    layout: Layout
    atomic: bool
    cont: ExprCont

    def dispatch_key(self) -> tuple:
        return ("read_at", self.ty.head)

    def resolve(self, subst: Subst) -> "ReadAtJ":
        loc = subst.resolve(self.loc)
        ty = self.ty.resolve(subst)
        if COMPILE.enabled and loc is self.loc and ty is self.ty:
            return self
        return ReadAtJ(self.sigma, loc, ty, self.layout, self.atomic,
                       self.cont)

    def describe(self) -> str:
        return f"read at {self.loc!r} : {self.ty!r}"


@dataclass(frozen=True)
class WriteJ(BasicGoal):
    """``⊢write`` — locate ownership covering ``loc`` for a store."""

    sigma: "FnCtx"
    loc: Term
    v: Term
    vty: RType
    layout: Layout
    atomic: bool
    cont: Goal

    def dispatch_key(self) -> tuple:
        return ("write",)

    def resolve(self, subst: Subst) -> "WriteJ":
        loc = subst.resolve(self.loc)
        v = subst.resolve(self.v)
        vty = self.vty.resolve(subst)
        if COMPILE.enabled and loc is self.loc and v is self.v and vty is self.vty:
            return self
        return WriteJ(self.sigma, loc, v, vty, self.layout, self.atomic,
                      self.cont)

    def describe(self) -> str:
        return f"write {self.v!r} : {self.vty!r} to {self.loc!r}"


@dataclass(frozen=True)
class WriteAtJ(BasicGoal):
    """``⊢write_at`` — store into a location whose current type is known."""

    sigma: "FnCtx"
    loc: Term
    old_ty: RType
    v: Term
    vty: RType
    layout: Layout
    atomic: bool
    cont: Goal

    def dispatch_key(self) -> tuple:
        return ("write_at", self.old_ty.head)

    def resolve(self, subst: Subst) -> "WriteAtJ":
        loc = subst.resolve(self.loc)
        old_ty = self.old_ty.resolve(subst)
        v = subst.resolve(self.v)
        vty = self.vty.resolve(subst)
        if COMPILE.enabled and loc is self.loc and old_ty is self.old_ty and v is self.v \
                and vty is self.vty:
            return self
        return WriteAtJ(self.sigma, loc, old_ty, v, vty, self.layout,
                        self.atomic, self.cont)

    def describe(self) -> str:
        return f"write {self.v!r} over {self.old_ty!r} at {self.loc!r}"


@dataclass(frozen=True)
class ToPlaceJ(BasicGoal):
    """``⊢to_place`` — use a pointer value as a place (l-value): ensure the
    pointed-to memory's ownership is available in Δ as a ``LocType``."""

    sigma: "FnCtx"
    v: Term
    ty: RType
    cont: LocCont

    def dispatch_key(self) -> tuple:
        return ("to_place", self.ty.head)

    def resolve(self, subst: Subst) -> "ToPlaceJ":
        v = subst.resolve(self.v)
        ty = self.ty.resolve(subst)
        if COMPILE.enabled and v is self.v and ty is self.ty:
            return self
        return ToPlaceJ(self.sigma, v, ty, self.cont)

    def describe(self) -> str:
        return f"place of ({self.v!r} : {self.ty!r})"


@dataclass(frozen=True)
class SubsumeLocJ(BasicGoal):
    """``ℓ ◁ₗ τ₁ <: ℓ ◁ₗ τ₂ {G}`` — location subsumption (§5)."""

    sigma: "FnCtx"
    loc: Term
    have: RType
    want: RType
    cont: Goal

    def dispatch_key(self) -> tuple:
        return ("subsume_loc", self.have.head, self.want.head)

    def resolve(self, subst: Subst) -> "SubsumeLocJ":
        loc = subst.resolve(self.loc)
        have = self.have.resolve(subst)
        want = self.want.resolve(subst)
        if COMPILE.enabled and loc is self.loc and have is self.have and want is self.want:
            return self
        return SubsumeLocJ(self.sigma, loc, have, want, self.cont)

    def describe(self) -> str:
        return f"{self.loc!r} ◁ₗ {self.have!r} <: {self.want!r}"


@dataclass(frozen=True)
class SubsumeValJ(BasicGoal):
    """``v ◁ᵥ τ₁ <: v ◁ᵥ τ₂ {G}`` — value subsumption (S-NULL/S-OWN live
    here, Figure 6)."""

    sigma: "FnCtx"
    v: Term
    have: RType
    want: RType
    cont: Goal

    def dispatch_key(self) -> tuple:
        return ("subsume_val", self.have.head, self.want.head)

    def resolve(self, subst: Subst) -> "SubsumeValJ":
        v = subst.resolve(self.v)
        have = self.have.resolve(subst)
        want = self.want.resolve(subst)
        if COMPILE.enabled and v is self.v and have is self.have and want is self.want:
            return self
        return SubsumeValJ(self.sigma, v, have, want, self.cont)

    def describe(self) -> str:
        return f"{self.v!r} ◁ᵥ {self.have!r} <: {self.want!r}"


@dataclass(frozen=True)
class ProvePlaceJ(BasicGoal):
    """``⊢prove_place`` — establish ``loc ◁ₗ τ`` as a *goal*.

    The default rule consumes a related context atom (engine case 6d); the
    ``wand`` rule instead *introduces* the hole and consumes the wand's
    conclusion — this is how magic-wand types are (re-)established at loop
    heads (§2.2)."""

    sigma: "FnCtx"
    loc: Term
    want: RType
    cont: Goal

    def dispatch_key(self) -> tuple:
        return ("prove_place", self.want.head)

    def resolve(self, subst: Subst) -> "ProvePlaceJ":
        loc = subst.resolve(self.loc)
        want = self.want.resolve(subst)
        if COMPILE.enabled and loc is self.loc and want is self.want:
            return self
        return ProvePlaceJ(self.sigma, loc, want, self.cont)

    def describe(self) -> str:
        return f"establish {self.loc!r} ◁ₗ {self.want!r}"


@dataclass(frozen=True)
class HookJ(BasicGoal):
    """An internal judgment that runs a Python callback against the search
    state and continues with the goal it returns.  Used for bookkeeping
    that must observe the context (e.g. recording loop-head frames)."""

    label: str
    callback: Callable[..., Goal]

    def dispatch_key(self) -> tuple:
        return ("hook",)

    def describe(self) -> str:
        return f"hook:{self.label}"


@dataclass(frozen=True)
class CallJ(BasicGoal):
    """``⊢call`` — call a function against its RefinedC function type."""

    sigma: "FnCtx"
    spec: "FunctionSpec"
    args: tuple[tuple[Term, RType], ...]
    cont: ExprCont

    def dispatch_key(self) -> tuple:
        return ("call",)

    def describe(self) -> str:
        return f"call {self.spec.name}"


@dataclass(frozen=True)
class CASJ(BasicGoal):
    """``⊢cas`` — compare-and-swap; CAS-BOOL (Figure 6) dispatches on the
    type of the atomically accessed location."""

    sigma: "FnCtx"
    atom_loc: Term
    atom_ty: RType
    exp_loc: Term
    exp_ty: RType
    des_v: Term
    des_ty: RType
    layout: Layout
    cont: ExprCont

    def dispatch_key(self) -> tuple:
        return ("cas", self.atom_ty.head, self.exp_ty.head, self.des_ty.head)

    def resolve(self, subst: Subst) -> "CASJ":
        atom_loc = subst.resolve(self.atom_loc)
        atom_ty = self.atom_ty.resolve(subst)
        exp_loc = subst.resolve(self.exp_loc)
        exp_ty = self.exp_ty.resolve(subst)
        des_v = subst.resolve(self.des_v)
        des_ty = self.des_ty.resolve(subst)
        if COMPILE.enabled and atom_loc is self.atom_loc and atom_ty is self.atom_ty \
                and exp_loc is self.exp_loc and exp_ty is self.exp_ty \
                and des_v is self.des_v and des_ty is self.des_ty:
            return self
        return CASJ(self.sigma, atom_loc, atom_ty, exp_loc, exp_ty, des_v,
                    des_ty, self.layout, self.cont)

    def describe(self) -> str:
        return (f"CAS({self.atom_loc!r} : {self.atom_ty!r}, "
                f"{self.exp_loc!r}, {self.des_v!r})")
