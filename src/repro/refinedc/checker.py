"""The RefinedC checker: drives Lithium over Caesium functions (step (B)
of Figure 2).

For every annotated function we set up the initial Lithium judgment — the
argument slots typed at the spec's argument types, the ``rc::requires``
resources, the local slots as uninitialised blocks — and run the goal
``⊢stmt`` on the entry block.  Loop-head blocks carrying invariant
annotations are verified once each, under the invariant (plus the *frame*
of untouched variables recorded at the loop's first entry).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..caesium.layout import Layout
from ..caesium.syntax import Function, LoopAnnotation, Program
from ..lithium.goals import (Atom, BasicGoal, GBasic, GExists, Goal, GSep,
                             GTrue, GWand, HAtom, HPure)
from ..lithium.search import SearchState, Stats, VerificationError
from ..pure.solver import PureSolver
from ..pure.compiled import compiled_count
from ..pure.terms import Sort, Subst, Term, Var, eq, intern_count, intlit, var
from .judgments import (CASJ, HookJ, LocType, StmtsJ, SubsumeLocJ, SubsumeValJ,
                        TokenAtom, ValType)
from .ownership import intro_loc_goal, locate
from .rules import REGISTRY
from .spec import FunctionSpec, SpecContext, parse_type
from .types import RType, TypeTable, UninitT


@dataclass
class GlobalSpec:
    """An annotated global variable.  Only *shared* (invariant-governed)
    globals are supported: their ownership is duplicable, so every function
    may assume it (the pattern used by the thread-safe allocator, §7 #2)."""

    name: str
    layout: Layout
    type_text: Optional[str] = None


@dataclass
class TypedProgram:
    """A Caesium program together with its RefinedC specifications."""

    program: Program
    ctx: SpecContext
    specs: dict[str, FunctionSpec] = field(default_factory=dict)
    globals: dict[str, GlobalSpec] = field(default_factory=dict)
    source_lines: dict[str, int] = field(default_factory=dict)  # impl LoC
    # Raw annotation text, kept for the driver's content-addressed result
    # cache: per-function spec text plus the shared unit context (struct
    # annotations, globals) every verification depends on.
    spec_texts: dict[str, str] = field(default_factory=dict)
    context_text: str = ""
    # The same context, itemised per struct / global for the incremental
    # driver's dependency graph (repro.driver.depgraph): each entry is one
    # fingerprintable input node instead of one monolithic blob.
    struct_texts: dict[str, str] = field(default_factory=dict)
    global_texts: dict[str, str] = field(default_factory=dict)


@dataclass
class FunctionResult:
    """The outcome of verifying one function."""

    name: str
    ok: bool
    stats: Stats
    error: Optional[VerificationError] = None
    derivations: list = field(default_factory=list)

    def format_error(self) -> str:
        return self.error.format() if self.error else ""


@dataclass
class ProgramResult:
    functions: dict[str, FunctionResult] = field(default_factory=dict)
    # Merged proof-search trace (repro.trace.tracer.UnitTrace), attached
    # by the driver when tracing is enabled; None otherwise.
    trace: Optional[object] = None

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.functions.values())

    def failures(self) -> list[FunctionResult]:
        return [r for r in self.functions.values() if not r.ok]


class FnCtx:
    """The function state Σ: everything typing rules need to know about the
    function being verified and the program around it."""

    _slot_counter = itertools.count(1)

    def __init__(self, tp: TypedProgram, fn: Function,
                 spec: FunctionSpec) -> None:
        self.tp = tp
        self.fn = fn
        self.spec = spec
        self.types: TypeTable = tp.ctx.types
        self.visits: dict[str, int] = {}
        self.max_inline_visits = 64
        self.frames: dict[str, list[Atom]] = {}
        self.frame_facts: dict[str, list[Term]] = {}
        self.pending_blocks: list[str] = []
        self.scheduled: set[str] = set()
        uid = next(FnCtx._slot_counter)
        self.slots: dict[str, Var] = {}
        for name, _layout in list(fn.params) + list(fn.locals):
            self.slots[name] = var(f"l_{fn.name}{uid}_{name}", Sort.LOC)
        self.global_locs: dict[str, Var] = {
            g: var(f"g_{g}", Sort.LOC) for g in tp.globals}

    # ------------------------------------------------------------
    def slot(self, name: str) -> Var:
        if name not in self.slots:
            raise KeyError(f"{self.fn.name}: unknown variable {name!r}")
        return self.slots[name]

    def global_loc(self, name: str) -> Var:
        if name not in self.global_locs:
            raise KeyError(f"unknown global {name!r}")
        return self.global_locs[name]

    def fn_spec(self, name: str) -> Optional[FunctionSpec]:
        return self.tp.specs.get(name)

    def spec_env(self) -> dict[str, Term]:
        env: dict[str, Term] = {p.name: p for p in self.spec.params}
        env.update(self.global_locs)
        return env

    # ------------------------------------------------------------
    def consume_assertion_goal(self, assertion, goal_after: Goal,
                               origin: str = "") -> Goal:
        """The goal consuming one requires/ensures assertion."""
        if isinstance(assertion, LocType) and not assertion.shared:
            from .judgments import ProvePlaceJ
            return GBasic(ProvePlaceJ(self, assertion.loc, assertion.ty,
                                      goal_after))
        if isinstance(assertion, (LocType, ValType, TokenAtom)):
            return GSep(HAtom(assertion), goal_after)
        return GSep(HPure(assertion, origin=origin), goal_after)

    def intro_assertion_goal(self, state: SearchState, assertion,
                             goal_after: Goal) -> Goal:
        """The goal introducing one requires/ensures assertion."""
        if isinstance(assertion, LocType):
            return intro_loc_goal(self, state, assertion.loc, assertion.ty,
                                  goal_after, shared=assertion.shared)
        if isinstance(assertion, (ValType, TokenAtom)):
            return GWand(HAtom(assertion), goal_after)
        return GWand(HPure(assertion), goal_after)

    # ------------------------------------------------------------
    def make_cas(self, state: SearchState, atom_loc: Term, exp_loc: Term,
                 v_des: Term, t_des: RType, layout, cont) -> Goal:
        found_atom = locate(self, state, atom_loc, intlit(layout.size))
        if found_atom is None:
            state.fail(f"CAS target {atom_loc!r} is not owned")
        found_exp = locate(self, state, exp_loc, intlit(layout.size))
        if found_exp is None:
            state.fail(f"CAS expected operand {exp_loc!r} is not owned")
        return GBasic(CASJ(self, atom_loc, found_atom[0].ty, exp_loc,
                           found_exp[0].ty, v_des, t_des, layout, cont))

    # ------------------------------------------------------------
    # Loop invariants (§2.2).
    # ------------------------------------------------------------
    def invariant_entry_goal(self, state: SearchState, target: str) -> Goal:
        """The goal proved at each jump *to* an invariant-annotated block:
        consume the invariant (instantiating its rc::exists with evars),
        prove its constraints, and subsume the frame."""
        ann = self.fn.block(target).annot
        assert ann is not None
        if target not in self.scheduled:
            self.scheduled.add(target)
            self.pending_blocks.append(target)
        env0 = self.spec_env()

        def bind(idx: int, env: dict[str, Term]) -> Goal:
            if idx < len(ann.exists):
                name, sort_text = _parse_inv_binder(ann.exists[idx])
                from ..pure.parser import parse_sort
                sort, _is_nat = parse_sort(sort_text)
                return GExists(sort, name,
                               lambda ev: bind(idx + 1, {**env, name: ev}))
            return body(env)

        def body(env: dict[str, Term]) -> Goal:
            goal: Goal = GBasic(HookJ(f"frame:{target}",
                                      lambda st: self._frame_goal(st, target,
                                                                  ann)))
            from ..pure.parser import parse_term
            for c in reversed(ann.constraints):
                goal = GSep(HPure(parse_term(c, env, self.tp.ctx.constants),
                                  origin="rc::constraints (loop)"), goal)
            for vname, ty_text in reversed(ann.inv_vars):
                want = parse_type(ty_text, env, self.tp.ctx)
                goal = GSep(HAtom(LocType(self.slot(vname), want)), goal)
            return goal

        return bind(0, env0)

    def _frame_goal(self, state: SearchState, target: str,
                    ann: LoopAnnotation) -> Goal:
        """Record (first entry) or subsume (later entries) the loop frame:
        the atoms for everything the invariant does not mention."""
        remaining = [a.resolve(state.subst) for a in state.delta
                     if not a.persistent]
        if target not in self.frames:
            self.frames[target] = remaining
            self.frame_facts[target] = list(
                state.gamma.resolved_facts(state.subst))
            return GTrue()
        goal: Goal = GTrue()
        for atom in reversed(self.frames[target]):
            goal = GSep(HAtom(atom), goal)
        return goal

    def invariant_block_goal(self, state: SearchState, target: str) -> Goal:
        """The goal checking the invariant-annotated block itself, under a
        skolemised copy of the invariant plus the recorded frame."""
        block = self.fn.block(target)
        ann = block.annot
        assert ann is not None
        env = self.spec_env()
        skolems: dict[str, Term] = {}
        for decl in ann.exists:
            name, sort_text = _parse_inv_binder(decl)
            from ..pure.parser import parse_sort
            sort, is_nat = parse_sort(sort_text)
            skolems[name] = state.fresh_var(sort, name)
        env.update(skolems)
        goal: Goal = GBasic(StmtsJ(self, tuple(block.stmts), block.term))
        for atom in reversed(self.frames.get(target, [])):
            goal = GWand(HAtom(atom), goal)
        from ..pure.parser import parse_term
        for c in reversed(ann.constraints):
            goal = GWand(HPure(parse_term(c, env, self.tp.ctx.constants)),
                         goal)
        for vname, ty_text in reversed(ann.inv_vars):
            want = parse_type(ty_text, env, self.tp.ctx)
            goal = intro_loc_goal(self, state, self.slot(vname), want, goal)
        for phi in reversed(self.frame_facts.get(target, [])):
            goal = GWand(HPure(phi), goal)
        # nat binders in the invariant are non-negative.
        from ..pure.terms import le
        for decl in ann.exists:
            name, sort_text = _parse_inv_binder(decl)
            if "nat" in sort_text and skolems[name].sort is Sort.INT:
                goal = GWand(HPure(le(intlit(0), skolems[name])), goal)
        return goal


def _parse_inv_binder(decl) -> tuple[str, str]:
    if isinstance(decl, tuple):
        return decl
    name, _, sort_text = decl.partition(":")
    return name.strip(), sort_text.strip()


# ---------------------------------------------------------------------
# Subsumption dispatch for atom consumption (Lithium case 6d).
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class SubsumeTokJ(BasicGoal):
    have: TokenAtom
    want: TokenAtom
    cont: Goal

    def dispatch_key(self) -> tuple:
        return ("subsume_tok",)

    def describe(self) -> str:
        return f"{self.have!r} <: {self.want!r}"


@REGISTRY.rule("S-TOK", ("subsume_tok",))
def rule_subsume_tok(f: SubsumeTokJ, state) -> Goal:
    """Ghost tokens subsume when names match and indices are equal."""
    if f.have.name != f.want.name or f.have.dup != f.want.dup:
        state.fail(f"token mismatch: {f.have!r} vs {f.want!r}")
    return GSep(HPure(eq(f.have.index, f.want.index), origin="ghost token"),
                f.cont)


def _make_subsume_factory(sigma: FnCtx):
    def make_subsume(have: Atom, want: Atom, cont: Goal) -> BasicGoal:
        if isinstance(have, LocType) and isinstance(want, LocType):
            return SubsumeLocJ(sigma, want.loc, have.ty, want.ty, cont)
        if isinstance(have, ValType) and isinstance(want, ValType):
            return SubsumeValJ(sigma, want.val, have.ty, want.ty, cont)
        if isinstance(have, TokenAtom) and isinstance(want, TokenAtom):
            return SubsumeTokJ(have, want, cont)
        raise VerificationError(
            f"cannot relate resources {have!r} and {want!r}",
            function=sigma.fn.name)
    return make_subsume


# ---------------------------------------------------------------------
# Top-level checking.
# ---------------------------------------------------------------------

def check_function(tp: TypedProgram, name: str) -> FunctionResult:
    """Verify one function against its spec.  Returns statistics and the
    derivations (one per sub-proof: entry + each invariant block)."""
    fn = tp.program.functions[name]
    spec = tp.specs[name]
    sigma = FnCtx(tp, fn, spec)
    stats = Stats()
    subst = Subst()
    solver = PureSolver(tactics=spec.tactics, lemmas=spec.lemmas)
    derivations = []

    def new_state() -> SearchState:
        return SearchState(REGISTRY, solver, _make_subsume_factory(sigma),
                           function=name, stats=stats, subst=subst)

    interned0 = intern_count()
    compiled0 = compiled_count()
    dispatch0 = REGISTRY.dispatch_hits
    try:
        state = new_state()
        goal = _entry_goal(tp, sigma, state)
        derivations.append(state.run(goal))
        while sigma.pending_blocks:
            target = sigma.pending_blocks.pop(0)
            st2 = new_state()
            goal2 = _with_globals(tp, sigma, st2,
                                  sigma.invariant_block_goal(st2, target))
            goal2 = _with_param_facts(sigma, goal2)
            derivations.append(st2.run(goal2))
    except VerificationError as exc:
        _record_cache_stats(stats, solver, interned0, compiled0, dispatch0)
        return FunctionResult(name, False, stats, exc, derivations)
    _record_cache_stats(stats, solver, interned0, compiled0, dispatch0)
    return FunctionResult(name, True, stats, None, derivations)


def _record_cache_stats(stats: Stats, solver: PureSolver, interned0: int,
                        compiled0: int, dispatch0: int) -> None:
    """Engine telemetry (not Stats counters — see Stats.counters()).

    The solver instance lives for the whole function, so its cache_hits
    total also covers prove calls made outside ``_prove_timed`` (e.g. the
    ownership layer's direct side-condition checks).  ``terms_compiled``
    and ``dispatch_table_hits`` are deltas of the process-wide compile
    counters over this check, mirroring ``terms_interned``."""
    stats.solver_cache_hits = solver.cache_hits
    stats.terms_interned = intern_count() - interned0
    stats.terms_compiled = compiled_count() - compiled0
    stats.dispatch_table_hits = REGISTRY.dispatch_hits - dispatch0


def _entry_goal(tp: TypedProgram, sigma: FnCtx, state: SearchState) -> Goal:
    fn, spec = sigma.fn, sigma.spec
    entry = fn.block(fn.entry)
    goal: Goal = GBasic(StmtsJ(sigma, tuple(entry.stmts), entry.term))
    for name, layout in reversed(fn.locals):
        goal = GWand(HAtom(LocType(sigma.slot(name),
                                   UninitT(intlit(layout.size)))), goal)
    for a in reversed(spec.requires):
        goal = sigma.intro_assertion_goal(state, a, goal)
    if len(spec.arg_types) != len(fn.params):
        raise VerificationError(
            f"spec declares {len(spec.arg_types)} arguments but the "
            f"function has {len(fn.params)}", function=fn.name)
    for (pname, _layout), ty in reversed(list(zip(fn.params,
                                                  spec.arg_types))):
        goal = intro_loc_goal(sigma, state, sigma.slot(pname), ty, goal)
    goal = _with_globals(tp, sigma, state, goal)
    goal = _with_param_facts(sigma, goal)
    return goal


def _with_param_facts(sigma: FnCtx, goal: Goal) -> Goal:
    for phi in reversed(sigma.spec.param_facts):
        goal = GWand(HPure(phi), goal)
    return goal


def _with_globals(tp: TypedProgram, sigma: FnCtx, state: SearchState,
                  goal: Goal) -> Goal:
    """Introduce the (shared, hence duplicable) global resources."""
    env = {g: loc for g, loc in sigma.global_locs.items()}
    for gname, gspec in tp.globals.items():
        if gspec.type_text is None:
            continue
        ty = parse_type(gspec.type_text, env, tp.ctx)
        goal = intro_loc_goal(sigma, state, sigma.global_loc(gname), ty,
                              goal, shared=True)
    return goal


def verification_targets(tp: TypedProgram) -> tuple[list[str], list[str]]:
    """Split the spec'd functions into work items, in spec order.

    Returns ``(to_check, missing_body)``: functions with a spec and a body
    to verify, and functions with a spec but *no* body that are not marked
    ``rc::trusted``.  The latter are verification failures — silently
    skipping them would let an unproved spec be assumed by every caller.
    Trusted specs (axiomatised externals) belong to neither list."""
    to_check: list[str] = []
    missing: list[str] = []
    for name, spec in tp.specs.items():
        if spec.trusted:
            continue
        if name in tp.program.functions:
            to_check.append(name)
        else:
            missing.append(name)
    return to_check, missing


# ---------------------------------------------------------------------
# Verification-input recording (for the incremental driver).
# ---------------------------------------------------------------------

def _layout_structs(layout, out: set) -> None:
    from ..caesium.layout import ArrayLayout, StructLayout
    if isinstance(layout, StructLayout):
        out.add(("struct", layout.name))
        for _fname, flayout in layout.fields:
            _layout_structs(flayout, out)
    elif isinstance(layout, ArrayLayout):
        _layout_structs(layout.elem, out)


def _expr_inputs(e, tp: TypedProgram, deps: set) -> None:
    from ..caesium import syntax as cae
    if isinstance(e, cae.FnPtrE):
        if e.name in tp.specs:
            deps.add(("fnspec", e.name))
        return
    if isinstance(e, cae.GlobalAddr):
        deps.add(("global", e.name))
        return
    if isinstance(e, cae.FieldOffset):
        _layout_structs(e.struct, deps)
        _expr_inputs(e.e, tp, deps)
        return
    if isinstance(e, cae.SizeOfE):
        _layout_structs(e.layout, deps)
        return
    if isinstance(e, cae.Use):
        _layout_structs(e.layout, deps)
        _expr_inputs(e.e, tp, deps)
        return
    if isinstance(e, cae.UnOpE):
        _expr_inputs(e.e, tp, deps)
        return
    if isinstance(e, cae.CastE):
        _expr_inputs(e.e, tp, deps)
        return
    if isinstance(e, cae.BinOpE):
        _expr_inputs(e.e1, tp, deps)
        _expr_inputs(e.e2, tp, deps)
        return
    if isinstance(e, cae.CallE):
        _expr_inputs(e.fn, tp, deps)
        for a in e.args:
            _expr_inputs(a, tp, deps)
        return
    if isinstance(e, cae.CASE):
        _layout_structs(e.layout, deps)
        for sub in (e.atom, e.expected, e.desired):
            _expr_inputs(sub, tp, deps)
        return
    # Leaves (IntConst, NullE, VarAddr, ValE) consume no shared inputs.


def function_inputs(tp: TypedProgram, name: str
                    ) -> tuple[set, list[str]]:
    """The verification inputs function ``name`` actually consumes.

    Returns ``(deps, texts)``:

    * ``deps`` — ``(kind, name)`` pairs with kind in {"fnspec", "struct",
      "global"}: the callee specs its body calls (directly or as function
      pointers), the struct layouts its body and locals touch, and the
      globals it addresses.  Every check also introduces *every* shared
      global resource (see :func:`_with_globals`), so all globals are
      included unconditionally.  The spec-side inputs recorded during
      elaboration (``FunctionSpec.spec_deps``) are merged in.
    * ``texts`` — annotation strings attached to the function (its raw
      spec text plus loop-invariant annotations) whose free identifiers
      the dependency graph additionally resolves against the unit's named
      types / functions / globals, as a conservative over-approximation.
    """
    deps: set = set()
    texts: list[str] = [tp.spec_texts.get(name, "")]
    spec = tp.specs.get(name)
    if spec is not None:
        deps |= set(spec.spec_deps)
    for g in tp.globals:
        deps.add(("global", g))
    fn = tp.program.functions.get(name)
    if fn is None:
        return deps, texts
    from ..caesium import syntax as cae
    for _pname, layout in list(fn.params) + list(fn.locals):
        _layout_structs(layout, deps)
    if fn.ret_layout is not None:
        _layout_structs(fn.ret_layout, deps)
    for block in fn.blocks.values():
        for stmt in block.stmts:
            if isinstance(stmt, cae.Assign):
                _layout_structs(stmt.layout, deps)
                _expr_inputs(stmt.lhs, tp, deps)
                _expr_inputs(stmt.rhs, tp, deps)
            elif isinstance(stmt, cae.ExprS):
                _expr_inputs(stmt.e, tp, deps)
        term = block.term
        if isinstance(term, cae.CondGoto):
            _expr_inputs(term.cond, tp, deps)
        elif isinstance(term, cae.Switch):
            _expr_inputs(term.scrutinee, tp, deps)
        elif isinstance(term, cae.Ret) and term.value is not None:
            _expr_inputs(term.value, tp, deps)
        if block.annot is not None:
            ann = block.annot
            texts.extend(s for _n, s in ann.exists)
            texts.extend(t for _v, t in ann.inv_vars)
            texts.extend(ann.constraints)
    return deps, texts


def missing_body_result(name: str) -> FunctionResult:
    """The explicit failure reported for a spec'd function without a body
    (and without ``rc::trusted``)."""
    error = VerificationError(
        f"function has a specification but no body; its spec would be "
        f"assumed unproven by every caller.  Provide a definition or mark "
        f"it [[rc::trusted]] to axiomatise it",
        function=name)
    return FunctionResult(name, False, Stats(), error)


def check_program(tp: TypedProgram) -> ProgramResult:
    """Verify every function that has a spec and a body.  Functions marked
    ``rc::trusted`` (specs without verified bodies) are skipped, like
    axiomatised externals; spec'd functions with *no* body and no
    ``rc::trusted`` marker are reported as explicit failures."""
    result = ProgramResult()
    to_check, missing = verification_targets(tp)
    check_set, missing_set = set(to_check), set(missing)
    for name in tp.specs:
        if name in missing_set:
            result.functions[name] = missing_body_result(name)
        elif name in check_set:
            result.functions[name] = check_function(tp, name)
    return result
