"""Ownership manipulation helpers shared by the typing rules.

These build Lithium *goals* (so every step is recorded in the derivation):

* :func:`intro_loc_goal` — introduce ``ℓ ◁ₗ τ`` into the context,
  decomposing structs into per-field atoms (plus padding), skolemising
  type-level existentials, and splitting ``padded``/``constrained``
  wrappers.  This is RefinedC's "unfolding" direction.
* :func:`locate` — find the context atom covering a byte range, using the
  syntactic normal form of locations (``base +ₗ offset``); candidate checks
  for carving out of ``uninit`` blocks use quiet entailment checks on the
  offset arithmetic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..lithium.goals import GForall, Goal, GWand, HAtom, HPure
from ..lithium.search import SearchState
from ..pure.solver import Outcome
from ..pure.terms import (App, Lit, Sort, Term, add, and_, eq, ge, intlit, le,
                          loc_offset, sub)
from .judgments import LocType, ValType
from .spec import ShrPtr
from .types import (ArrayT, ConstrainedT, ExistsT, IntT, NamedT, OwnPtr,
                    PaddedT, RType, StructT, UninitT)

if TYPE_CHECKING:  # pragma: no cover
    from .checker import FnCtx


def split_loc(loc: Term) -> tuple[Term, Term]:
    """Decompose a location into (base, byte offset)."""
    if isinstance(loc, App) and loc.op == "loc_offset":
        base, off = split_loc(loc.args[0])
        return base, add(off, loc.args[1])
    return loc, intlit(0)


def range_facts(ty: RType) -> list[Term]:
    """Pure facts implied by owning a location at a scalar type — e.g. a
    refined ``n @ int<α>`` guarantees ``min(α) ≤ n ≤ max(α)``."""
    if isinstance(ty, IntT) and ty.refinement is not None:
        return [le(intlit(ty.itype.min_value), ty.refinement),
                le(ty.refinement, intlit(ty.itype.max_value))]
    if isinstance(ty, UninitT):
        return [le(intlit(0), ty.size)]
    if isinstance(ty, ArrayT):
        return [le(intlit(0), ty.length),
                eq(App("len", (ty.xs,), Sort.INT), ty.length)]
    return []


def intro_loc_goal(sigma: "FnCtx", state: SearchState, loc: Term, ty: RType,
                   cont: Goal, shared: bool = False) -> Goal:
    """Build the goal introducing ``ℓ ◁ₗ τ`` (decomposed) then ``cont``."""
    ty = ty.resolve(state.subst)
    if isinstance(ty, NamedT):
        unfolded = sigma.types.unfold(ty)
        return intro_loc_goal(sigma, state, loc, unfolded, cont, shared)
    if isinstance(ty, ExistsT):
        body = ty.body
        return GForall(ty.sort, ty.hint, lambda x: intro_loc_goal(
            sigma, state, loc, body(x), cont, shared))
    if isinstance(ty, ConstrainedT):
        return GWand(HPure(ty.phi),
                     intro_loc_goal(sigma, state, loc, ty.inner, cont, shared))
    if isinstance(ty, PaddedT):
        inner_size = ty.inner.layout_size()
        if inner_size is None:
            raise TypeError(f"padded inner type has unknown size: {ty!r}")
        pad = UninitT(sub(ty.size, inner_size))
        return intro_loc_goal(
            sigma, state, loc, ty.inner,
            intro_loc_goal(sigma, state, loc_offset(loc, inner_size), pad,
                           cont, shared),
            shared)
    if isinstance(ty, StructT):
        goal = cont
        pieces = struct_pieces(ty)
        for off, piece_ty in reversed(pieces):
            goal = intro_loc_goal(sigma, state,
                                  loc_offset(loc, intlit(off)), piece_ty,
                                  goal, shared)
        return goal
    if isinstance(ty, OwnPtr) and ty.loc is None:
        # Skolemise the pointer value so every owned pointer has a concrete
        # location refinement internally.
        v = state.fresh_var(Sort.LOC, "ptr")
        ty = OwnPtr(ty.inner, v)
    if isinstance(ty, OwnPtr):
        # Surface the *pure shell* of the pointee: constraints that sit
        # above any binder are implied by ownership, so they may enter Γ
        # without unfolding the pointer (needed e.g. when a loop invariant
        # mentions them before the first dereference).
        for phi in shell_facts(sigma, ty.inner):
            cont = GWand(HPure(phi), cont)
    if isinstance(ty, ShrPtr) and ty.loc is None:
        v = state.fresh_var(Sort.LOC, "sptr")
        ty = ShrPtr(ty.inner, v)
    goal: Goal = GWand(HAtom(LocType(loc, ty, shared)), cont)
    facts = range_facts(ty)
    for phi in reversed(facts):
        goal = GWand(HPure(phi), goal)
    return goal


def shell_facts(sigma: "FnCtx", ty: RType, depth: int = 0) -> list[Term]:
    """Pure constraints of a type that sit above any existential binder —
    facts implied by owning a value of the type."""
    if depth > 3:
        return []
    if isinstance(ty, NamedT):
        try:
            return shell_facts(sigma, sigma.types.unfold(ty), depth + 1)
        except Exception:
            return []
    if isinstance(ty, ConstrainedT):
        from ..pure.simplify import simplify_hyp
        return (simplify_hyp(ty.phi)
                + shell_facts(sigma, ty.inner, depth + 1))
    if isinstance(ty, PaddedT):
        return shell_facts(sigma, ty.inner, depth + 1)
    return []


def struct_pieces(ty: StructT) -> list[tuple[int, RType]]:
    """The (offset, type) pieces of a struct: fields plus padding holes."""
    layout = ty.layout
    pieces: list[tuple[int, RType]] = []
    pos = 0
    for fname, flayout in layout.fields:
        off = layout.offset_of(fname)
        if off > pos:
            pieces.append((pos, UninitT(intlit(off - pos))))
        pieces.append((off, ty.field_type(fname)))
        pos = off + flayout.size
    if layout.size > pos:
        pieces.append((pos, UninitT(intlit(layout.size - pos))))
    return pieces


def intro_val_goal(sigma: "FnCtx", state: SearchState, v: Term, ty: RType,
                   cont: Goal) -> Goal:
    """Introduce ``v ◁ᵥ τ`` (with scalar range facts)."""
    goal: Goal = GWand(HAtom(ValType(v, ty)), cont)
    for phi in reversed(range_facts(ty)):
        goal = GWand(HPure(phi), goal)
    return goal


# ---------------------------------------------------------------------
# Locating ownership.
# ---------------------------------------------------------------------

def quiet_entails(state: SearchState, phi: Term) -> bool:
    """Check a pure fact without recording a side condition — used only to
    *select* among candidate atoms (the choice itself is then justified by
    recorded side conditions emitted by the rule that uses it)."""
    phi = state.subst.resolve(phi)
    if phi.has_evars():
        return False
    facts = state.gamma.resolved_facts(state.subst)
    return state.solver.prove(facts, phi).outcome is not Outcome.FAILED


def locate(sigma: "FnCtx", state: SearchState, loc: Term,
           size: Optional[Term]) -> Optional[tuple[LocType, Term]]:
    """Find the Δ atom covering ``[loc, loc+size)``.

    Returns ``(atom, start_offset_within_atom)``; exact-location matches are
    preferred, then ``uninit`` blocks at the same base whose bounds provably
    cover the range.
    """
    loc = state.subst.resolve(loc)
    exact = state.delta.find_related(loc, state.subst)
    if isinstance(exact, LocType):
        return exact, intlit(0)
    base, off = split_loc(loc)
    for atom in list(state.delta):
        if not isinstance(atom, LocType):
            continue
        a_base, a_off = split_loc(state.subst.resolve(atom.loc))
        if a_base != base:
            continue
        a_ty = atom.ty.resolve(state.subst)
        if size is None:
            continue
        if isinstance(a_ty, UninitT):
            total = a_ty.size
        elif isinstance(a_ty, ArrayT):
            total = a_ty.layout_size()
        else:
            continue
        # Need: a_off ≤ off and off + size ≤ a_off + atom_size.
        fits = and_(le(a_off, off), le(add(off, size), add(a_off, total)))
        if quiet_entails(state, fits):
            return atom, sub(off, a_off)
    return None
