"""RefinedC (PLDI 2021), reproduced in Python.

The public API mirrors the paper's toolchain (Figure 2):

* :func:`repro.verify_source` / :func:`repro.verify_file` — the whole
  pipeline: annotated C in, verification outcome (with per-function
  statistics and derivations) out.
* :mod:`repro.lang` — the front end (C subset + ``[[rc::...]]``
  annotations → Caesium).
* :mod:`repro.caesium` — the core language: layouts, byte-level memory
  with poison/provenance, interpreter, interleaving scheduler with
  data-race detection.
* :mod:`repro.lithium` — separation-logic programming: the
  non-backtracking, goal-directed proof-search engine.
* :mod:`repro.refinedc` — the refinement/ownership type system and its
  rule library.
* :mod:`repro.pure` — refinement terms and the pure side-condition
  solvers.
* :mod:`repro.proofs` — the foundational substitute: semantic model,
  certificate checking, adequacy testing, manual lemma tables.
* :mod:`repro.report` — the Figure 7 evaluation reporting.
"""

from .frontend import VerificationOutcome, verify_file, verify_source

__version__ = "0.1.0"

__all__ = ["VerificationOutcome", "verify_file", "verify_source",
           "__version__"]
