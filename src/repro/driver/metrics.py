"""Per-phase metrics for the verification driver.

The driver times each phase of Figure 2's pipeline — **parse** (text →
CST), **elaborate** (CST → Caesium + specs), **search** (Lithium rule
application) and **solver** (pure side-condition discharge, measured
inside :class:`~repro.lithium.search.SearchState`) — and records the
deterministic :meth:`~repro.lithium.search.Stats.counters` per function,
plus cache hit/miss accounting.

Everything is exportable as JSON (``DriverMetrics.to_json``) with the
schema documented in README.md, and rendered in
``VerificationOutcome.report()`` and the Figure 7 tables of
:mod:`repro.report`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Optional

from ..lithium.search import TELEMETRY_KEYS

# Schema history:
#   1 — initial per-phase metrics.
#   2 — adds per-function and per-unit ``solver_cache_hits`` (pure-solver
#       memoization hits) and ``terms_interned`` (hash-consed term nodes
#       allocated during the check).
#   3 — adds the per-unit ``units`` list (the unit names a merged record
#       aggregates; empty for a single-unit record) and the *optional*
#       ``trace`` summary block (per-rule counts/time, solver/memo
#       roll-ups — see ``repro.trace.profile.trace_summary``).  The
#       ``trace`` key is **absent** when tracing is off, so v2 consumers
#       that ignore unknown keys keep working byte-for-byte.
#   4 — incremental re-verification (repro.driver.incremental): the
#       per-function ``cache`` state gains "clean" (transitive input key
#       unchanged, cached outcome reused without re-checking) and "dirty"
#       (an input changed — or a callee's spec rippled — so the function
#       was re-checked), and the per-unit record gains the counters
#       ``functions_clean`` / ``functions_dirty`` / ``results_reused``.
#       All three are 0 for non-incremental runs, so v3 consumers keep
#       working unchanged.
#   5 — compiled hot path (repro.pure.compiled): the per-function and
#       per-unit records gain ``dispatch_table_hits`` (flat-table rule
#       dispatch hits) and ``terms_compiled`` (closure forms stamped onto
#       interned nodes).  Like ``solver_cache_hits``, both are telemetry —
#       excluded from ``counters`` so outcomes stay byte-identical across
#       RC_COMPILE settings; both are 0 with the compiler off.
#   6 — observability (repro.obs): the per-unit record gains
#       ``elab_memo_hits`` / ``elab_memo_misses`` (per-worker elaborated-
#       program cache effectiveness on the parallel paths; both 0 for
#       serial runs, where the front end elaborates exactly once) and the
#       derived ``cache_effectiveness`` block — one hits/total/ratio
#       entry per caching layer (result cache, solver memo, dispatch
#       table, elaboration memo, depgraph reuse) — consumed by the run
#       ledger (``repro.obs.ledger``) and the regression sentinel.  v5
#       records still load through ``DriverMetrics.from_dict`` (the new
#       fields default to 0; derived blocks are always recomputed).
METRICS_SCHEMA_VERSION = 6


@dataclass
class PhaseTimings:
    """Wall seconds per pipeline phase.  ``search_s`` is the time spent in
    Lithium proof search *excluding* the pure solver; ``solver_s`` is the
    time inside ``PureSolver.prove``.  For parallel runs the search/solver
    entries are summed per-function wall times (CPU-like), not elapsed
    time — elapsed time is ``DriverMetrics.wall_s``."""

    parse_s: float = 0.0
    elaborate_s: float = 0.0
    search_s: float = 0.0
    solver_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.parse_s + self.elaborate_s + self.search_s \
            + self.solver_s


@dataclass
class FunctionMetrics:
    """Driver-level accounting for one verified function."""

    name: str
    ok: bool
    cache: str = "off"    # "off" | "hit" | "miss" | "clean" | "dirty"
    wall_s: float = 0.0           # check wall time (original, if cached)
    solver_s: float = 0.0
    counters: dict = field(default_factory=dict)  # Stats.counters()
    # Engine telemetry (schema v2).  Not part of ``counters`` — these vary
    # with the cache configuration while counters stay byte-identical.
    solver_cache_hits: int = 0
    terms_interned: int = 0
    # Compiled hot path telemetry (schema v5) — same exclusion rationale.
    dispatch_table_hits: int = 0
    terms_compiled: int = 0


@dataclass
class DriverMetrics:
    """Everything the driver measured for one translation unit."""

    study: str = ""
    jobs: int = 1
    cache_enabled: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    wall_s: float = 0.0           # elapsed checking time (excl. front end)
    solver_cache_hits: int = 0    # summed over live (non-"hit") functions
    terms_interned: int = 0
    dispatch_table_hits: int = 0  # schema v5, summed like the two above
    terms_compiled: int = 0
    # Schema v4: incremental re-verification accounting.  ``clean`` =
    # transitive input key unchanged; ``dirty`` = re-checked; ``reused``
    # = cached outcomes restored for clean functions.
    functions_clean: int = 0
    functions_dirty: int = 0
    results_reused: int = 0
    # Schema v6: per-worker elaborated-program cache accounting (the
    # parallel paths re-elaborate sources in the workers; the counters
    # say how often a worker's memo already held the unit).
    elab_memo_hits: int = 0
    elab_memo_misses: int = 0
    phases: PhaseTimings = field(default_factory=PhaseTimings)
    functions: list[FunctionMetrics] = field(default_factory=list)
    # Schema v3: the unit names aggregated by ``merge_metrics`` (empty for
    # a single-unit record) and the optional tracing summary — ``None``
    # whenever the run was not traced (the JSON key is then omitted).
    units: list[str] = field(default_factory=list)
    trace: Optional[dict] = None

    # ------------------------------------------------------------
    def add_function(self, name: str, ok: bool, cache: str, wall_s: float,
                     solver_s: float, counters: dict,
                     solver_cache_hits: int = 0,
                     terms_interned: int = 0,
                     dispatch_table_hits: int = 0,
                     terms_compiled: int = 0) -> None:
        self.functions.append(
            FunctionMetrics(name, ok, cache, wall_s, solver_s, counters,
                            solver_cache_hits, terms_interned,
                            dispatch_table_hits, terms_compiled))
        if cache == "clean":
            self.functions_clean += 1
            self.results_reused += 1
        elif cache == "dirty":
            self.functions_dirty += 1
        if cache not in ("hit", "clean"):
            # Cached entries report the *original* run's times; only live
            # checks contribute to this unit's phase totals.
            self.phases.search_s += max(0.0, wall_s - solver_s)
            self.phases.solver_s += solver_s
            self.solver_cache_hits += solver_cache_hits
            self.terms_interned += terms_interned
            self.dispatch_table_hits += dispatch_table_hits
            self.terms_compiled += terms_compiled

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    # ------------------------------------------------------------
    def cache_effectiveness(self) -> dict:
        """Schema v6: one ``{hits, total, ratio}`` entry per caching
        layer of the stack.  ``ratio`` is ``None`` when a layer never ran
        (zero denominator) — "unused" and "0% effective" are different
        facts, and the regression sentinel must not confuse them.  The
        dispatch-table entry reports hits *per rule application* (a rate,
        not a hit ratio: the flat table is consulted on every lookup and
        several lookups may serve one application)."""
        def ratio_block(hits: int, total: int) -> dict:
            return {"hits": hits, "total": total,
                    "ratio": round(hits / total, 4) if total else None}

        live = [f for f in self.functions if f.cache not in ("hit", "clean")]
        solver_calls = sum(f.counters.get("solver_calls", 0) for f in live)
        rule_apps = sum(f.counters.get("rule_applications", 0)
                        for f in live)
        return {
            "result_cache": ratio_block(
                self.cache_hits, self.cache_hits + self.cache_misses),
            "solver_memo": ratio_block(self.solver_cache_hits,
                                       solver_calls),
            "dispatch_table": {
                "hits": self.dispatch_table_hits,
                "rule_applications": rule_apps,
                "per_application": (round(self.dispatch_table_hits
                                          / rule_apps, 4)
                                    if rule_apps else None),
            },
            "elaboration_memo": ratio_block(
                self.elab_memo_hits,
                self.elab_memo_hits + self.elab_memo_misses),
            "depgraph": ratio_block(self.results_reused,
                                    len(self.functions)),
        }

    # ------------------------------------------------------------
    def to_dict(self) -> dict:
        d = asdict(self)
        d["schema_version"] = METRICS_SCHEMA_VERSION
        d["cache_hit_rate"] = round(self.cache_hit_rate, 4)
        d["cache_effectiveness"] = self.cache_effectiveness()
        if d.get("trace") is None:
            # Absent, not null: an untraced v3 record differs from v2 only
            # by the version number and the ``units`` list.
            d.pop("trace", None)
        return d

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "DriverMetrics":
        """Rehydrate a serialized record of any schema version up to the
        current one.  Fields a v<6 record lacks default (the v6 additions
        are all zero for older runs by construction); derived keys
        (``schema_version``, ``cache_hit_rate``, ``cache_effectiveness``)
        are recomputed by :meth:`to_dict`, so ``from_dict(to_dict(m))``
        round-trips byte-identically.  Raises ``ValueError`` for records
        written by a *newer* schema."""
        version = int(data.get("schema_version", 1))
        if version > METRICS_SCHEMA_VERSION:
            raise ValueError(
                f"metrics schema {version} is newer than this build's "
                f"v{METRICS_SCHEMA_VERSION}")
        m = cls(study=str(data.get("study", "")),
                jobs=int(data.get("jobs", 1)),
                cache_enabled=bool(data.get("cache_enabled", False)),
                cache_hits=int(data.get("cache_hits", 0)),
                cache_misses=int(data.get("cache_misses", 0)),
                wall_s=float(data.get("wall_s", 0.0)),
                functions_clean=int(data.get("functions_clean", 0)),
                functions_dirty=int(data.get("functions_dirty", 0)),
                results_reused=int(data.get("results_reused", 0)),
                elab_memo_hits=int(data.get("elab_memo_hits", 0)),
                elab_memo_misses=int(data.get("elab_memo_misses", 0)),
                units=[str(u) for u in data.get("units", [])],
                trace=data.get("trace"))
        for key in TELEMETRY_KEYS:
            setattr(m, key, int(data.get(key, 0)))
        phases = data.get("phases", {})
        m.phases = PhaseTimings(
            parse_s=float(phases.get("parse_s", 0.0)),
            elaborate_s=float(phases.get("elaborate_s", 0.0)),
            search_s=float(phases.get("search_s", 0.0)),
            solver_s=float(phases.get("solver_s", 0.0)))
        for fn in data.get("functions", []):
            fm = FunctionMetrics(
                name=str(fn.get("name", "")),
                ok=bool(fn.get("ok", False)),
                cache=str(fn.get("cache", "off")),
                wall_s=float(fn.get("wall_s", 0.0)),
                solver_s=float(fn.get("solver_s", 0.0)),
                counters=dict(fn.get("counters", {})))
            for key in TELEMETRY_KEYS:
                setattr(fm, key, int(fn.get(key, 0)))
            m.functions.append(fm)
        return m

    # ------------------------------------------------------------
    def summary(self) -> str:
        """The two human-readable lines appended to
        ``VerificationOutcome.report()``."""
        p = self.phases
        lines = [
            f"driver: jobs={self.jobs}, "
            f"{len(self.functions)} function(s), "
            f"wall {self.wall_s * 1e3:.1f}ms"
            + (f", cache {self.cache_hits} hit / {self.cache_misses} miss"
               if self.cache_enabled else ", cache off"),
            f"phases: parse {p.parse_s * 1e3:.1f}ms, "
            f"elaborate {p.elaborate_s * 1e3:.1f}ms, "
            f"search {p.search_s * 1e3:.1f}ms, "
            f"solver {p.solver_s * 1e3:.1f}ms",
        ]
        if self.functions_clean or self.functions_dirty:
            lines.append(
                f"incremental: {self.functions_clean} clean / "
                f"{self.functions_dirty} dirty, "
                f"{self.results_reused} result(s) reused")
        if self.solver_cache_hits or self.terms_interned:
            lines.append(
                f"engine: {self.solver_cache_hits} solver-cache hit(s), "
                f"{self.terms_interned} term(s) interned")
        if self.dispatch_table_hits or self.terms_compiled:
            lines.append(
                f"compiled: {self.dispatch_table_hits} dispatch-table "
                f"hit(s), {self.terms_compiled} term(s) compiled")
        if self.trace is not None:
            solver = self.trace.get("solver", {})
            lines.append(
                f"trace: {self.trace.get('events', 0)} event(s), "
                f"{len(self.trace.get('rules', {}))} rule kind(s), "
                f"{solver.get('prove_calls', 0)} solver call(s)"
                + (f", {self.trace.get('dropped', 0)} dropped"
                   if self.trace.get("dropped") else ""))
        return "\n".join(lines)


def merge_metrics(per_unit: list[DriverMetrics]) -> DriverMetrics:
    """Aggregate the metrics of several translation units (e.g. the whole
    Figure 7 evaluation) into one summary record.

    The per-unit ``study`` names are preserved in ``units`` (in input
    order), so a merged record still identifies what it aggregates;
    ``cache_hit_rate`` needs no recomputation — it derives from the summed
    hit/miss counters.  Trace summary blocks, when present, are merged
    (counts and times summed per rule, slowest solver calls re-ranked)."""
    total = DriverMetrics(study="<all>")
    for m in per_unit:
        total.units.append(m.study)
        total.jobs = max(total.jobs, m.jobs)
        total.cache_enabled = total.cache_enabled or m.cache_enabled
        total.cache_hits += m.cache_hits
        total.cache_misses += m.cache_misses
        total.wall_s += m.wall_s
        total.solver_cache_hits += m.solver_cache_hits
        total.terms_interned += m.terms_interned
        total.dispatch_table_hits += m.dispatch_table_hits
        total.terms_compiled += m.terms_compiled
        total.functions_clean += m.functions_clean
        total.functions_dirty += m.functions_dirty
        total.results_reused += m.results_reused
        total.elab_memo_hits += m.elab_memo_hits
        total.elab_memo_misses += m.elab_memo_misses
        total.phases.parse_s += m.phases.parse_s
        total.phases.elaborate_s += m.phases.elaborate_s
        total.phases.search_s += m.phases.search_s
        total.phases.solver_s += m.phases.solver_s
        total.functions.extend(m.functions)
        if m.trace is not None:
            total.trace = _merge_trace_blocks(total.trace, m.trace)
    return total


def _merge_trace_blocks(into: Optional[dict], block: dict) -> dict:
    """Merge one unit's ``trace`` summary block into the accumulator."""
    if into is None:
        into = {"events": 0, "dropped": 0, "rules": {},
                "solver": {"prove_calls": 0, "prove_total_s": 0.0,
                           "memo_hits": 0, "memo_misses": 0},
                "slowest_prove": []}
    into["events"] += block.get("events", 0)
    into["dropped"] += block.get("dropped", 0)
    for name, agg in block.get("rules", {}).items():
        tot = into["rules"].setdefault(
            name, {"count": 0, "total_s": 0.0, "self_s": 0.0})
        tot["count"] += agg.get("count", 0)
        tot["total_s"] = round(tot["total_s"] + agg.get("total_s", 0.0), 6)
        tot["self_s"] = round(tot["self_s"] + agg.get("self_s", 0.0), 6)
    solver = block.get("solver", {})
    for key in ("prove_calls", "memo_hits", "memo_misses"):
        into["solver"][key] += solver.get(key, 0)
    into["solver"]["prove_total_s"] = round(
        into["solver"]["prove_total_s"] + solver.get("prove_total_s", 0.0),
        6)
    merged = into["slowest_prove"] + list(block.get("slowest_prove", []))
    merged.sort(key=lambda c: -c.get("dur_s", 0.0))
    into["slowest_prove"] = merged[:5]
    return into
