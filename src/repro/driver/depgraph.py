"""Per-function verification-input dependency graph.

RefinedC checking is modular by construction: a function is verified
against its own ``rc::`` spec, the *specs* (never the bodies) of its
callees, the layouts and invariants of the structs it touches, the
shared globals, and the solver configuration (tactics + lemma table)
— PAPER §2, §6.  That makes function-granular incremental
re-verification sound: a change can only affect functions whose
fingerprinted inputs changed.

This module turns one elaborated :class:`TypedProgram` into an explicit
graph over those inputs:

==================  ====================================================
node id             content fingerprinted
==================  ====================================================
``spec:<fn>``       the function's raw annotation text
``body:<fn>``       ``repr`` of the elaborated Caesium body (layouts
                    of everything it touches are embedded)
``solver:<fn>``     ``rc::tactics`` list + the ``rc::lemmas`` the spec
                    pulls in (stable ``repr`` of the parsed lemmas)
``struct:<name>``   the struct's layout + ``rc::`` annotation text
``global:<name>``   the global's layout + ``rc::global`` annotation
``lemmas:``         the whole unit lemma table (``ctx.fn_sorts`` — and
                    therefore the parse of *any* spec term — derives
                    from it, so every function depends on it)
``fn:<fn>``         nothing (task node; exists so reachability is
                    rooted per function)
==================  ====================================================

Edges are a sound over-approximation of "consumed during verification":

* ``fn:F`` → its own spec/body/solver nodes, the unit lemma node, and
  **every** global node — the entry goal introduces every shared global
  resource into every proof (:func:`repro.refinedc.checker._with_globals`);
* ``fn:F`` → ``spec:G`` / ``struct:S`` / ``global:G`` for every callee,
  struct layout and global its body mentions
  (:func:`repro.refinedc.checker.function_inputs`);
* ``spec:F`` → the structs / callee specs its annotation text resolves
  (recorded by the spec parser while elaborating, plus a word-boundary
  scan of the raw text against the unit's named types, functions and
  globals as belt and braces);
* ``struct:A`` → ``struct:B`` when A's invariant mentions B's named
  types (invariants unfold at check time).

A function's **transitive key** is a SHA-256 over every node reachable
from its task node together with an *engine fingerprint* (a hash of the
checker's own sources): any reachable input change — or any change to
the checker itself — changes the key.  The incremental driver
(:mod:`repro.driver.incremental`) diffs stored keys against fresh ones
to find the dirty set.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..refinedc.checker import TypedProgram, function_inputs

DEPGRAPH_FORMAT_VERSION = 1

_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _fp(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass
class DepGraph:
    """``nodes`` maps node id → content fingerprint; ``deps`` maps node
    id → sorted tuple of dependency node ids."""

    nodes: dict[str, str] = field(default_factory=dict)
    deps: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def reachable(self, root: str) -> set[str]:
        seen: set[str] = set()
        frontier = [root]
        while frontier:
            nid = frontier.pop()
            if nid in seen:
                continue
            seen.add(nid)
            frontier.extend(self.deps.get(nid, ()))
        return seen

    def functions(self) -> list[str]:
        return [nid[3:] for nid in self.nodes if nid.startswith("fn:")]

    def callees(self, fn: str) -> set[str]:
        """Functions whose *specs* ``fn``'s task node depends on
        directly (the call-graph edge used for spec-ripple)."""
        return {d[5:] for d in self.deps.get(f"fn:{fn}", ())
                if d.startswith("spec:") and d[5:] != fn}

    def to_dict(self) -> dict:
        return {"nodes": dict(self.nodes),
                "deps": {k: list(v) for k, v in self.deps.items()}}

    @classmethod
    def from_dict(cls, data: dict) -> "DepGraph":
        nodes = {str(k): str(v) for k, v in data["nodes"].items()}
        deps = {str(k): tuple(str(d) for d in v)
                for k, v in data["deps"].items()}
        return cls(nodes=nodes, deps=deps)


def _resolve_kind(kind: str, name: str, tp: TypedProgram) -> Optional[str]:
    """Map one recorded ``(kind, name)`` input to a node id (None when
    the name has no graph node — e.g. a builtin type, whose meaning is
    part of the engine fingerprint instead)."""
    if kind == "fnspec":
        return f"spec:{name}" if name in tp.specs else None
    if kind == "struct":
        return f"struct:{name}" if name in tp.struct_texts else None
    if kind == "global":
        return f"global:{name}" if name in tp.global_texts else None
    if kind == "type":
        src = tp.ctx.type_sources.get(name)
        return f"struct:{src}" if src in tp.struct_texts else None
    return None


def build_depgraph(tp: TypedProgram, lemmas=None) -> DepGraph:
    """Build the input graph for one translation unit."""
    g = DepGraph()
    # Word → node table for the textual over-approximation.  Priority on
    # collision: struct > named type > global > function.
    resolve: dict[str, str] = {}
    for sname in tp.struct_texts:
        resolve[sname] = f"struct:{sname}"
    for tname, sname in tp.ctx.type_sources.items():
        if sname in tp.struct_texts:
            resolve.setdefault(tname, f"struct:{sname}")
    for gname in tp.global_texts:
        resolve.setdefault(gname, f"global:{gname}")
    for fname in tp.specs:
        resolve.setdefault(fname, f"spec:{fname}")

    def scan(texts) -> set[str]:
        out: set[str] = set()
        for text in texts:
            for word in _WORD.findall(text):
                node = resolve.get(word)
                if node is not None:
                    out.add(node)
        return out

    for sname, stext in tp.struct_texts.items():
        nid = f"struct:{sname}"
        g.nodes[nid] = _fp(stext)
        g.deps[nid] = tuple(sorted(scan([stext]) - {nid}))
    for gname, gtext in tp.global_texts.items():
        nid = f"global:{gname}"
        g.nodes[nid] = _fp(gtext)
        g.deps[nid] = tuple(sorted(scan([gtext]) - {nid}))

    lemma_table = lemmas or {}
    g.nodes["lemmas:"] = _fp("\n".join(
        repr(lemma_table[k]) for k in sorted(lemma_table)))
    g.deps["lemmas:"] = ()

    all_globals = [f"global:{n}" for n in tp.global_texts]
    for fname, spec in tp.specs.items():
        sid, bid = f"spec:{fname}", f"body:{fname}"
        vid, fid = f"solver:{fname}", f"fn:{fname}"

        stext = tp.spec_texts.get(fname, "")
        g.nodes[sid] = _fp(stext)
        sdeps = scan([stext])
        for kind, name in spec.spec_deps:
            node = _resolve_kind(kind, name, tp)
            if node is not None:
                sdeps.add(node)
        g.deps[sid] = tuple(sorted(sdeps - {sid}))

        fn = tp.program.functions.get(fname)
        g.nodes[bid] = _fp(repr(fn) if fn is not None else "<no body>")
        g.deps[bid] = ()

        g.nodes[vid] = _fp(repr(list(spec.tactics)) + "\n" + "\n".join(
            repr(lm) for lm in sorted(spec.lemmas, key=lambda lm: lm.name)))
        g.deps[vid] = ()

        body_deps, texts = function_inputs(tp, fname)
        fdeps = {sid, bid, vid, "lemmas:"}
        fdeps.update(all_globals)
        fdeps.update(scan(texts))
        for kind, name in body_deps:
            node = _resolve_kind(kind, name, tp)
            if node is not None:
                fdeps.add(node)
        g.nodes[fid] = ""
        g.deps[fid] = tuple(sorted(fdeps - {fid}))
    return g


def transitive_key(graph: DepGraph, fn: str, engine: str = "") -> str:
    """SHA-256 over every (node, fingerprint) pair reachable from
    ``fn:<fn>`` plus the engine fingerprint — the incremental result
    cache key, and the dirtiness test (stored key ≠ fresh key)."""
    h = hashlib.sha256()
    h.update(f"rc-incr-v{DEPGRAPH_FORMAT_VERSION}\n".encode())
    h.update(engine.encode())
    h.update(b"\n")
    for nid in sorted(graph.reachable(f"fn:{fn}")):
        h.update(nid.encode())
        h.update(b"\x00")
        h.update(graph.nodes.get(nid, "").encode())
        h.update(b"\n")
    return h.hexdigest()


def changed_nodes(old_nodes: dict[str, str], new: DepGraph) -> set[str]:
    """Node ids whose fingerprint differs from (or is absent in) the
    previously stored graph."""
    return {nid for nid, fp in new.nodes.items()
            if old_nodes.get(nid) != fp}


_ENGINE_FP: Optional[str] = None


def engine_fingerprint() -> str:
    """A hash of the checker's own sources (every ``.py`` under the
    ``repro`` package).  Mixed into every transitive key and stored in
    the depgraph header: a checker change invalidates all incremental
    state, which protects against stale CI caches restored via
    ``restore-keys`` after the engine itself changed."""
    global _ENGINE_FP
    if _ENGINE_FP is None:
        import repro
        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\x00")
            h.update(path.read_bytes())
            h.update(b"\n")
        _ENGINE_FP = h.hexdigest()
    return _ENGINE_FP
