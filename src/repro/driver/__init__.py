"""The verification driver subsystem: parallel scheduling, content-
addressed result caching, and per-phase metrics for RefinedC checking.

See DESIGN.md ("The verification driver") for why per-function
parallelism is sound, and README.md for the user-facing flags, the cache
layout and the metrics JSON schema.
"""

from .cache import (CACHE_FORMAT_VERSION, DEFAULT_CACHE_DIR, ResultCache,
                    function_cache_key)
from .metrics import (DriverMetrics, FunctionMetrics, PhaseTimings,
                      merge_metrics)
from .pool import (DriverConfig, Unit, reset_fresh_counters, run_program,
                   run_units)

__all__ = [
    "CACHE_FORMAT_VERSION", "DEFAULT_CACHE_DIR", "DriverConfig",
    "DriverMetrics", "FunctionMetrics", "PhaseTimings", "ResultCache",
    "Unit", "function_cache_key", "merge_metrics", "reset_fresh_counters",
    "run_program", "run_units",
]
