"""The verification driver subsystem: parallel scheduling, content-
addressed result caching, per-phase metrics, and dependency-aware
incremental re-verification for RefinedC checking.

See DESIGN.md ("The verification driver") for why per-function
parallelism — and function-granular incremental re-verification — is
sound, and README.md for the user-facing flags, the cache layout and
the metrics JSON schema.
"""

from .cache import (CACHE_FORMAT_VERSION, DEFAULT_CACHE_DIR, ResultCache,
                    atomic_write_json, function_cache_key)
from .depgraph import (DepGraph, build_depgraph, engine_fingerprint,
                       transitive_key)
from .incremental import (IncrementalState, plan_unit,
                          run_units_incremental)
from .metrics import (DriverMetrics, FunctionMetrics, PhaseTimings,
                      merge_metrics)
from .pool import (DriverConfig, FunctionPlan, PoolSession, Unit, UnitPlan,
                   reset_fresh_counters, run_program, run_units)

__all__ = [
    "CACHE_FORMAT_VERSION", "DEFAULT_CACHE_DIR", "DepGraph",
    "DriverConfig", "DriverMetrics", "FunctionMetrics", "FunctionPlan",
    "IncrementalState", "PhaseTimings", "PoolSession", "ResultCache",
    "Unit", "UnitPlan", "atomic_write_json", "build_depgraph",
    "engine_fingerprint", "function_cache_key", "merge_metrics",
    "plan_unit", "reset_fresh_counters", "run_program", "run_units",
    "run_units_incremental", "transitive_key",
]
