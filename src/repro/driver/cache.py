"""Content-addressed verification result cache (persisted under
``.rc-cache/``).

A cached entry is keyed by a SHA-256 over everything the verification of
one function depends on:

* the **elaborated Caesium body** (``repr`` of the
  :class:`~repro.caesium.syntax.Function` — layouts included, so a struct
  layout change invalidates);
* the function's **raw spec text** (``repr(RawFunctionAnnotations)``,
  recorded by the front end in ``TypedProgram.spec_texts``);
* the **unit context text**: struct annotations and globals
  (``TypedProgram.context_text``) — data-structure invariants are part of
  every proof;
* the **lemma table** and ``rc::tactics`` solvers the spec pulls in
  (stable ``repr`` of the parsed :class:`~repro.pure.solver.Lemma`
  values);
* a cache **format version**, so layout changes of the entry format
  invalidate old caches wholesale.

Entries store the outcome, the deterministic ``Stats.counters()`` and the
error text — **not** the derivation tree.  A cache hit therefore returns a
:class:`FunctionResult` with ``derivations=[]``; re-run with the cache
disabled to regenerate certificates for ``proofs.certcheck``.

Corrupted, truncated, stale-version or otherwise unreadable entries are
treated as misses, never as errors.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from dataclasses import fields as _dc_fields

from ..lithium.search import (TELEMETRY_KEYS, WALL_CLOCK_KEYS, Stats,
                              VerificationError)
from ..refinedc.checker import FunctionResult, TypedProgram

CACHE_FORMAT_VERSION = 1

DEFAULT_CACHE_DIR = Path(".rc-cache")


def atomic_write_json(path: Path, obj) -> None:
    """Write ``obj`` as JSON via tempfile + rename.  Concurrent writers
    race benignly (last rename wins, never a torn file); write failures
    (read-only FS) are swallowed — cache files are accelerators, not
    stores of record."""
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(obj, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        pass

# The plain integer counters persisted per cache entry: every Stats
# field except the telemetry/wall-clock exclusions (shared with
# Stats.counters() via TELEMETRY_KEYS) and the two structured fields
# serialized separately below.
_COUNTER_FIELDS = tuple(
    f.name for f in _dc_fields(Stats)
    if f.name not in TELEMETRY_KEYS + WALL_CLOCK_KEYS
    + ("rules_used", "manual_conditions"))


def function_cache_key(tp: TypedProgram, name: str) -> str:
    """The content hash for one function's verification result."""
    spec = tp.specs[name]
    h = hashlib.sha256()
    h.update(f"rc-cache-v{CACHE_FORMAT_VERSION}\n".encode())
    h.update(tp.context_text.encode())
    h.update(b"\x00spec\x00")
    h.update(tp.spec_texts.get(name, "").encode())
    h.update(b"\x00body\x00")
    fn = tp.program.functions.get(name)
    h.update(repr(fn).encode() if fn is not None else b"<no body>")
    h.update(b"\x00tactics\x00")
    h.update(repr(list(spec.tactics)).encode())
    h.update(b"\x00lemmas\x00")
    for lemma in sorted(spec.lemmas, key=lambda l: l.name):
        h.update(repr(lemma).encode())
        h.update(b"\n")
    return h.hexdigest()


class CachedVerificationError(VerificationError):
    """A verification error rehydrated from the cache.  The structured
    side-condition terms are not persisted, so ``format()`` replays the
    recorded text verbatim instead of re-rendering."""

    def __init__(self, reason: str, function: str, location: list,
                 text: str) -> None:
        self._cached_text = text
        super().__init__(reason, location, None, (), function)

    def format(self) -> str:
        # During super().__init__ the cached text is not set yet.
        return getattr(self, "_cached_text", "") or super().format()

    def __reduce__(self):
        return (CachedVerificationError,
                (self.reason, self.function, self.location,
                 self._cached_text))


class ResultCache:
    """A directory of JSON entries, one per (function, content-key).

    Layout: ``<root>/<key[:2]>/<key>.json`` — two-level fan-out keeps
    directories small for large programs.  Writes are atomic (tempfile +
    rename), so a crashed writer leaves no truncated entry behind."""

    def __init__(self, root: Path | str = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------
    def get(self, key: str) -> Optional[tuple[FunctionResult, float]]:
        """Return ``(result, original_wall_s)`` on a hit, None on a miss.
        Any malformed entry is silently a miss."""
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError, UnicodeDecodeError):
            self.misses += 1
            return None
        try:
            result, wall = self._rehydrate(key, data)
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return result, wall

    @staticmethod
    def _rehydrate(key: str, data: dict) -> tuple[FunctionResult, float]:
        if data["format_version"] != CACHE_FORMAT_VERSION \
                or data["key"] != key:
            raise ValueError("stale or mismatched cache entry")
        raw = data["stats"]
        stats = Stats(**{f: int(raw[f]) for f in _COUNTER_FIELDS})
        stats.rules_used = set(raw["rules_used"])
        stats.manual_conditions = [tuple(m) for m in
                                   raw["manual_conditions"]]
        stats.solver_time = float(raw.get("solver_time", 0.0))
        error = None
        if data["error"] is not None:
            e = data["error"]
            error = CachedVerificationError(
                e["reason"], e["function"], list(e["location"]), e["text"])
        ok = bool(data["ok"])
        if not ok and error is None:
            raise ValueError("failed entry without an error record")
        return (FunctionResult(data["name"], ok, stats, error, []),
                float(data.get("wall_s", 0.0)))

    # ------------------------------------------------------------
    def put(self, key: str, result: FunctionResult, wall_s: float) -> None:
        """Persist one result.  Failures to write (read-only FS, races)
        are ignored — the cache is an accelerator, not a store of record."""
        entry = {
            "format_version": CACHE_FORMAT_VERSION,
            "key": key,
            "name": result.name,
            "ok": result.ok,
            "wall_s": wall_s,
            "stats": {
                **{f: getattr(result.stats, f) for f in _COUNTER_FIELDS},
                "rules_used": sorted(result.stats.rules_used),
                "manual_conditions": [list(m) for m in
                                      result.stats.manual_conditions],
                "solver_time": result.stats.solver_time,
            },
            "error": None if result.error is None else {
                "reason": result.error.reason,
                "function": result.error.function,
                "location": list(result.error.location),
                "text": result.error.format(),
            },
        }
        atomic_write_json(self._path(key), entry)
