"""Incremental dependency-aware re-verification.

The planner persists, per translation unit, the dependency graph built
by :mod:`.depgraph` plus one **transitive key** per function in
``<cache-dir>/depgraph.json``.  On the next run it rebuilds the graph
from the fresh sources and compares:

* a function whose stored transitive key equals the fresh one is
  **clean** — its cached outcome is reused verbatim (never re-checked);
* a function whose key differs (an input node's fingerprint changed, a
  dependency edge moved, the engine changed, or the function is new) is
  **dirty** — it is re-checked, in dependency (callee-before-caller)
  order, through the ordinary pool;
* additionally, when a function's *own spec* changed, every transitive
  caller is conservatively marked dirty too (**spec-ripple**), even
  though spec-modularity says an unchanged caller's proof cannot change.
  Re-checking those callers revalidates that modularity argument inside
  the run — their fresh outcomes must (and are asserted by the tests
  to) equal the cached ones.

Degradation is always towards a *full* re-verification, never towards a
wrong or missing outcome: a corrupted / truncated / version-mismatched
/ foreign-engine ``depgraph.json`` loads as empty state, which marks
everything dirty; an evicted result-cache entry for a clean function
forces that function dirty.  Concurrent writers race benignly (atomic
tempfile + rename, last writer wins).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional, Sequence

from ..refinedc.checker import verification_targets
from ..trace.tracer import Tracer
from .cache import atomic_write_json
from .depgraph import (DepGraph, build_depgraph, changed_nodes,
                       engine_fingerprint, transitive_key)
from .metrics import DriverMetrics
from .pool import (DriverConfig, FunctionPlan, PoolSession, Unit, UnitPlan,
                   run_units)

STATE_FORMAT_VERSION = 1
STATE_FILE = "depgraph.json"


def source_sha(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()


@dataclass
class UnitState:
    """What the previous run knew about one translation unit."""

    source_sha: str
    graph: DepGraph
    # function name -> {"key": transitive key, "ok": outcome}
    functions: dict[str, dict] = field(default_factory=dict)


@dataclass
class IncrementalState:
    """The persisted planner state (``<cache-dir>/depgraph.json``)."""

    engine: str
    units: dict[str, UnitState] = field(default_factory=dict)

    # ------------------------------------------------------------
    @classmethod
    def load(cls, cache_dir: Path, engine: str) -> "IncrementalState":
        """Load tolerantly: *any* defect — unreadable file, malformed
        JSON, stale format version, state written by a different engine
        — yields empty state, i.e. a full re-verification."""
        path = Path(cache_dir) / STATE_FILE
        try:
            data = json.loads(path.read_text())
            if data["format_version"] != STATE_FORMAT_VERSION:
                raise ValueError("stale depgraph format")
            if data["engine"] != engine:
                raise ValueError("state from a different engine build")
            units: dict[str, UnitState] = {}
            for key, u in data["units"].items():
                units[str(key)] = UnitState(
                    source_sha=str(u["source_sha"]),
                    graph=DepGraph.from_dict(u["graph"]),
                    functions={
                        str(n): {"key": str(f["key"]), "ok": bool(f["ok"])}
                        for n, f in u["functions"].items()})
            return cls(engine=engine, units=units)
        except (OSError, ValueError, KeyError, TypeError,
                UnicodeDecodeError, AttributeError):
            return cls(engine=engine, units={})

    def save(self, cache_dir: Path) -> None:
        data = {
            "format_version": STATE_FORMAT_VERSION,
            "engine": self.engine,
            "units": {
                key: {
                    "source_sha": u.source_sha,
                    "graph": u.graph.to_dict(),
                    "functions": u.functions,
                } for key, u in self.units.items()
            },
        }
        atomic_write_json(Path(cache_dir) / STATE_FILE, data)


# ---------------------------------------------------------------------
# Planning.
# ---------------------------------------------------------------------

def _topo_order(dirty: Sequence[str], graph: DepGraph,
                spec_order: Sequence[str]) -> tuple[str, ...]:
    """Callee-before-caller order over the dirty set, spec order as the
    tiebreak; (mutual) recursion cycles are broken in spec order."""
    remaining = [n for n in spec_order if n in set(dirty)]
    deps = {n: {c for c in graph.callees(n) if c in set(dirty) and c != n}
            for n in remaining}
    order: list[str] = []
    placed: set[str] = set()
    while remaining:
        ready = [n for n in remaining if deps[n] <= placed]
        pick = ready[0] if ready else remaining[0]
        order.append(pick)
        placed.add(pick)
        remaining.remove(pick)
    return tuple(order)


def plan_unit(unit: Unit, state: IncrementalState, store,
              engine: str) -> tuple[UnitPlan, DepGraph, dict[str, str]]:
    """Classify one unit's functions as clean/dirty and build the pool
    schedule.  Returns ``(plan, fresh graph, fresh transitive keys)``."""
    graph = build_depgraph(unit.tp, unit.lemmas)
    old = state.units.get(unit.key)
    old_nodes = old.graph.nodes if old is not None else {}
    changed = changed_nodes(old_nodes, graph)
    to_check, _missing = verification_targets(unit.tp)
    keys = {fn: transitive_key(graph, fn, engine) for fn in to_check}

    dirty: dict[str, set[str]] = {}
    for fn in to_check:
        stored = old.functions.get(fn) if old is not None else None
        if stored is None:
            dirty[fn] = {f"fn:{fn}"} | (graph.reachable(f"fn:{fn}")
                                        & changed)
        elif stored["key"] != keys[fn]:
            roots = graph.reachable(f"fn:{fn}") & changed
            dirty[fn] = roots or {"deps-changed"}

    # Spec-ripple: when F's own spec text changed, conservatively
    # re-check every transitive caller of F — spec-modularity (PAPER §2,
    # §6) says their proofs cannot change, and re-running them under
    # their unchanged keys revalidates exactly that.
    callers: dict[str, set[str]] = {}
    for fn in to_check:
        for callee in graph.callees(fn):
            callers.setdefault(callee, set()).add(fn)
    for src in [fn for fn in to_check if f"spec:{fn}" in changed
                and old is not None and fn in old.functions]:
        seen: set[str] = set()
        stack = [src]
        while stack:
            for caller in callers.get(stack.pop(), ()):
                if caller in seen:
                    continue
                seen.add(caller)
                stack.append(caller)
                dirty.setdefault(caller, set()).add(f"ripple:{src}")

    plan = UnitPlan()
    for fn in to_check:
        if fn in dirty:
            plan.functions[fn] = FunctionPlan(
                action="check", label="dirty", store_key=keys[fn],
                roots=tuple(sorted(dirty[fn])))
            continue
        hit = store.get(keys[fn]) if store is not None else None
        if hit is None:
            # Clean but evicted from the result cache: degrade to a
            # re-check, never to a missing outcome.
            plan.functions[fn] = FunctionPlan(
                action="check", label="dirty", store_key=keys[fn],
                roots=("cache-evicted",))
        else:
            plan.functions[fn] = FunctionPlan(
                action="reuse", label="clean", store_key=keys[fn],
                result=hit)
    plan.order = _topo_order(
        [fn for fn, fp in plan.functions.items() if fp.action == "check"],
        graph, list(unit.tp.specs))
    return plan, graph, keys


def _trace_plan(unit: Unit, plan: UnitPlan) -> None:
    """Append invalidation / reuse instants to the unit's front-end
    trace buffer (continuing its seq numbering)."""
    front = unit.front_trace
    if front is None:
        return
    start = front.events[-1].seq + 1 if front.events else 0
    tracer = Tracer(scope=unit.key, start_seq=start)
    for fn, fp in plan.functions.items():
        if fp.action == "check":
            tracer.instant("driver", "invalidate", function=fn,
                           roots=list(fp.roots))
        else:
            tracer.instant("driver", "reuse", function=fn)
    front.events.extend(tracer.events)
    front.dropped += tracer.dropped


# ---------------------------------------------------------------------
# Session-scoped state reuse.
# ---------------------------------------------------------------------

def _state_stat(cache_dir: Path):
    """A cheap change signature for the persisted planner state: the
    ``(mtime_ns, size)`` of ``depgraph.json``, ``None`` when absent."""
    try:
        st = (Path(cache_dir) / STATE_FILE).stat()
    except OSError:
        return None
    return (st.st_mtime_ns, st.st_size)


def load_state_cached(cache_dir: Path, engine: str,
                      state_cache: Optional[dict]) -> "IncrementalState":
    """Load planner state, reusing a long-lived caller's parsed copy.

    ``state_cache`` (cache-dir string → ``(stat signature, state)``) is
    the serve daemon's per-namespace memo: a warm request skips the JSON
    parse entirely when the on-disk file still matches what this process
    last read or wrote.  A foreign writer (batch CLI run, concurrent
    daemon) moves the stat signature and forces a clean reload, so the
    memo can serve stale state only while the file itself is unchanged.
    """
    if state_cache is None:
        return IncrementalState.load(cache_dir, engine)
    key = str(Path(cache_dir).resolve())
    cached = state_cache.get(key)
    stat = _state_stat(cache_dir)
    if cached is not None and stat is not None and cached[0] == stat \
            and cached[1].engine == engine:
        return cached[1]
    state = IncrementalState.load(cache_dir, engine)
    state_cache[key] = (stat, state)
    return state


# ---------------------------------------------------------------------
# The incremental entry point.
# ---------------------------------------------------------------------

def run_units_incremental(units: Sequence[Unit],
                          config: Optional[DriverConfig] = None,
                          session: Optional[PoolSession] = None,
                          state_cache: Optional[dict] = None
                          ) -> dict[str, tuple[object, DriverMetrics]]:
    """Drive ``run_units`` through the incremental planner.

    Same signature and result shape as :func:`repro.driver.run_units`;
    the persistent result cache is implied (``cache=True`` when no cache
    directory was named).  After the run the fresh graph, per-function
    transitive keys and outcomes are persisted for the next invocation.

    ``session`` reuses a caller-owned warm :class:`PoolSession` for the
    dirty subset; ``state_cache`` lets a long-lived caller (the serve
    daemon) skip re-parsing an unchanged ``depgraph.json`` per request.
    """
    config = config or DriverConfig()
    if not config.cache and config.cache_dir is None:
        config = replace(config, cache=True)
    store = config.open_cache()
    cache_dir = store.root
    engine = engine_fingerprint()
    state = load_state_cached(cache_dir, engine, state_cache)

    plans: dict[str, UnitPlan] = {}
    graphs: dict[str, DepGraph] = {}
    keys: dict[str, dict[str, str]] = {}
    for unit in units:
        plan, graph, unit_keys = plan_unit(unit, state, store, engine)
        plans[unit.key] = plan
        graphs[unit.key] = graph
        keys[unit.key] = unit_keys
        if config.resolved_trace():
            _trace_plan(unit, plan)

    out = run_units(units, config, plans, session=session)

    for unit in units:
        result, _metrics = out[unit.key]
        functions = {
            fn: {"key": unit_keys_fn, "ok": result.functions[fn].ok}
            for fn, unit_keys_fn in keys[unit.key].items()
            if fn in result.functions}
        state.units[unit.key] = UnitState(
            source_sha=source_sha(unit.source),
            graph=graphs[unit.key],
            functions=functions)
    state.save(cache_dir)
    if state_cache is not None:
        state_cache[str(Path(cache_dir).resolve())] = \
            (_state_stat(cache_dir), state)
    return out
