"""Shared JSON schema for the benchmark scripts.

``scripts/bench_solver.py`` and ``scripts/bench_driver.py`` both emit a
``BENCH_*.json`` artifact with the same envelope, so downstream tooling
(CI trend plots, the README performance table) can parse either file with
one reader:

.. code-block:: json

    {
      "bench_schema_version": 1,
      "bench": "solver",                 // which script produced it
      "python": "3.11.7",
      "platform": "Linux-...",
      "suite": ["alloc", "..."],         // case-study stems measured
      "repetitions": 5,
      "configs": { "<name>": { "total_wall_s": {"samples": [...],
                                                "min": ..., "median": ...,
                                                "mean": ...}, ... } },
      "speedup": { "...": ... },         // script-specific ratios
      "checks": { "...": true }          // the assertions the run made
    }

Timing fields are :func:`sample_stats` dicts — raw samples plus the
derived statistics, with ``min`` (the least scheduler-contaminated
estimate, used for every asserted ratio) first.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Sequence

BENCH_SCHEMA_VERSION = 1


def sample_stats(samples: Sequence[float]) -> dict:
    """Raw timing samples plus min/median/mean, seconds."""
    ordered = sorted(samples)
    n = len(ordered)
    median = (ordered[n // 2] if n % 2
              else (ordered[n // 2 - 1] + ordered[n // 2]) / 2)
    return {
        "samples": [round(s, 6) for s in samples],
        "min": round(ordered[0], 6),
        "median": round(median, 6),
        "mean": round(sum(ordered) / n, 6),
    }


def bench_envelope(bench: str, suite: Sequence[str],
                   repetitions: int) -> dict:
    """The common header every ``BENCH_*.json`` starts from."""
    return {
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "bench": bench,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "suite": list(suite),
        "repetitions": repetitions,
        "configs": {},
        "speedup": {},
        "checks": {},
    }


def write_bench_json(path: str | Path, payload: dict) -> Path:
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path
