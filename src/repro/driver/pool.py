"""The verification driver: parallel, cached, metered checking.

Replaces the serial loop of ``check_program`` for the toolchain entry
points.  Spec-modular checking (§4) makes functions *independent* proof
obligations — each function is verified against the *specs* of its
callees, never their bodies — so the work list is embarrassingly
parallel.  The driver:

1. schedules independent functions onto a **process pool** (``jobs > 1``),
   with a deterministic in-process serial path as the ``jobs = 1``
   fallback and reference semantics;
2. consults a **content-addressed result cache** (:mod:`.cache`) before
   scheduling anything;
3. records **per-phase metrics** (:mod:`.metrics`).

Determinism: before every function check the driver resets the global
fresh-name counters (skolem variables, evars, slot uids), making each
function's proof — its statistics, its derivation, and its error text —
a pure function of (body, spec, context, lemmas).  This is what makes
parallel results byte-identical to serial ones: a worker process and the
parent produce the very same names.

Workers never receive the elaborated program (specs close over Python
functions and do not pickle); each worker re-elaborates the source text
once and keeps it for the lifetime of the pool, so the per-task payload
is just a function name.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from dataclasses import field as dataclass_field
from pathlib import Path
from typing import Optional, Sequence

from ..lithium import search as _search
from ..pure import terms as _terms
from ..pure.memo import clear_pure_caches
from ..refinedc import checker as _checker
from ..refinedc.checker import (FunctionResult, ProgramResult, TypedProgram,
                                check_function, missing_body_result,
                                verification_targets)
from ..trace.profile import trace_summary
from ..trace.tracer import (FunctionTrace, Tracer, merge_function_traces,
                            set_current, trace_env_enabled)
from .cache import DEFAULT_CACHE_DIR, ResultCache, function_cache_key
from .metrics import DriverMetrics, PhaseTimings


def reset_fresh_counters() -> None:
    """Reset every global fresh-name counter the proof search draws from.

    Called before each function check (serial and parallel alike) so a
    function's verification is deterministic and independent of what was
    checked before it — in this process or any other."""
    _search._FRESH_VAR_COUNTER = itertools.count(1)
    _terms._EVAR_COUNTER = itertools.count()
    _checker.FnCtx._slot_counter = itertools.count(1)
    # Drop the term intern tables so the per-function terms_interned
    # metric only counts this function's constructions.  The semantic
    # memo caches (simplify/linarith/lists/sets) deliberately survive:
    # they map term structure to term structure, equality is structural,
    # and the checked conditions repeat heavily across the functions of a
    # unit — cross-function hits are where most of the cached-mode
    # speedup comes from.  Verification results are unaffected either
    # way; only hit-rate telemetry varies with schedule.  (Compiled-mode
    # node slots die with the tables; the dict-level compiled caches
    # re-stamp them on first reuse, so this costs one lookup per node.)
    _terms.clear_term_caches()


@dataclass
class DriverConfig:
    """Driver knobs, shared by ``verify_source``/``verify_file`` and the
    multi-unit entry point."""

    jobs: int = 1                 # <=0 means "one per CPU"
    cache: bool = False
    cache_dir: Optional[Path] = None
    trace: Optional[bool] = None  # None: defer to the RC_TRACE env var

    def resolved_jobs(self) -> int:
        if self.jobs > 0:
            return self.jobs
        return max(1, multiprocessing.cpu_count())

    def resolved_trace(self) -> bool:
        if self.trace is not None:
            return bool(self.trace)
        return trace_env_enabled()

    def open_cache(self) -> Optional[ResultCache]:
        if not self.cache and self.cache_dir is None:
            return None
        root = Path(self.cache_dir) if self.cache_dir is not None \
            else DEFAULT_CACHE_DIR
        return ResultCache(root)


@dataclass
class Unit:
    """One translation unit of work for the driver."""

    key: str                      # stable id (study name / path stem)
    source: str
    tp: TypedProgram
    lemmas: Optional[dict] = None
    timings: Optional[PhaseTimings] = None   # parse/elaborate, if measured
    front_trace: Optional[FunctionTrace] = None  # parse/elaborate events


@dataclass
class FunctionPlan:
    """What the incremental planner decided for one function.

    ``action`` is ``"check"`` (re-verify; ``label`` says why it is dirty)
    or ``"reuse"`` (``result`` holds the cached ``(FunctionResult, wall)``
    to restore verbatim).  ``store_key`` is the incremental result-cache
    key — re-checked outcomes are stored under it; ``roots`` lists the
    changed input nodes that dirtied the function (for telemetry)."""

    action: str                        # "check" | "reuse"
    label: str = "dirty"               # "dirty" | "clean"
    store_key: Optional[str] = None
    result: Optional[tuple] = None     # (FunctionResult, wall_s)
    roots: tuple[str, ...] = ()


@dataclass
class UnitPlan:
    """Per-unit schedule from :mod:`repro.driver.incremental`: one
    :class:`FunctionPlan` per checkable function, plus the dependency
    (callee-before-caller) order for the dirty subset."""

    functions: dict[str, FunctionPlan] = dataclass_field(
        default_factory=dict)
    order: tuple[str, ...] = ()


# ---------------------------------------------------------------------
# Worker side.  Module-level so both fork and spawn start methods can
# import them; state lives in a per-process dict filled lazily.
# ---------------------------------------------------------------------

_WORKER_STATE: dict = {}

#: cap on the per-worker elaborated-program cache in session mode; fuzz
#: campaigns stream thousands of distinct one-shot units through one pool
_SESSION_PROGRAM_CAP = 64


def _worker_init(units_blob: bytes, tracing: bool = False) -> None:
    _WORKER_STATE["units"] = pickle.loads(units_blob)
    _WORKER_STATE["programs"] = {}
    _WORKER_STATE["tracing"] = tracing


def _worker_check(unit_key: str, fn_name: str):
    from ..lang.elaborate import elaborate_source
    tp = _WORKER_STATE["programs"].get(unit_key)
    elab_hit = tp is not None
    if tp is None:
        source, lemmas = _WORKER_STATE["units"][unit_key]
        tp = elaborate_source(source, lemmas)
        _WORKER_STATE["programs"][unit_key] = tp
    fr, wall, trace = _traced_check(tp, fn_name,
                                    _WORKER_STATE.get("tracing", False))
    return unit_key, fn_name, fr, wall, trace, elab_hit


def _session_worker_init() -> None:
    _WORKER_STATE["session_programs"] = {}


def session_unit_key(unit_key: str, source: str) -> str:
    """The per-worker elaboration-memo key for session-mode tasks.

    Mixing the source digest into the key makes the memo *content
    addressed*: a long-lived session serving several tenants (the serve
    daemon's namespaces, a fuzz campaign recycling stems) can never
    replay a stale elaboration for a same-named unit whose text differs
    — the colliding name simply maps to a different entry."""
    digest = hashlib.sha256(source.encode()).hexdigest()[:16]
    return f"{unit_key}@{digest}"


def _session_worker_check(unit_key: str, memo_key: str, fn_name: str,
                          source: str, lemmas, tracing: bool):
    """Session-mode task: the source rides on every task (sources are
    tiny in the workloads that use sessions) and each worker memoises its
    elaboration, so the functions of one unit share the front-end work
    whichever worker they land on."""
    from ..lang.elaborate import elaborate_source
    cache = _WORKER_STATE.setdefault("session_programs", {})
    tp = cache.get(memo_key)
    elab_hit = tp is not None
    if tp is None:
        tp = elaborate_source(source, lemmas)
        if len(cache) >= _SESSION_PROGRAM_CAP:
            cache.clear()
        cache[memo_key] = tp
    fr, wall, trace = _traced_check(tp, fn_name, tracing)
    return unit_key, fn_name, fr, wall, trace, elab_hit


class PoolSession:
    """A worker pool that outlives a single :func:`run_units` call.

    ``run_units`` normally builds a fresh process pool per call, which is
    right for one big batch but pays pool cold-start (fork + imports) on
    *every* call when a caller streams many small batches — exactly the
    fuzz campaign's shape: thousands of tiny units over hundreds of
    rounds.  A session keeps one pool warm across calls:

        with PoolSession(jobs=4) as session:
            for batch in rounds:
                run_units(batch, DriverConfig(jobs=4), session=session)

    Results are byte-identical to sessionless runs: workers reset the
    fresh-name counters before every check (the same determinism contract
    as the per-call pool), and the per-worker elaboration cache is keyed
    by unit, never shared across units.  If the pool breaks (a worker
    died mid-task), :meth:`reset` discards it; the next call lazily
    builds a new one."""

    def __init__(self, jobs: int = 0, mp_context=None) -> None:
        self.jobs = jobs if jobs > 0 else max(1, multiprocessing.cpu_count())
        self._pool: Optional[ProcessPoolExecutor] = None
        self._mp_context = mp_context
        self.batches = 0      # telemetry: run_units calls served
        self.tasks = 0        # telemetry: function checks dispatched
        self.resets = 0
        self.created_at = time.time()

    def executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=self._mp_context or _pool_context(),
                initializer=_session_worker_init)
        return self._pool

    def reset(self) -> None:
        """Tear the pool down (it is rebuilt lazily on next use).  Call
        after a pool-level failure — e.g. the fuzz oracle's crash
        fallback — so one poisoned worker does not fail every later
        batch."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self.resets += 1

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "PoolSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _check_one(tp: TypedProgram, name: str, tracing: bool = False
               ) -> tuple[FunctionResult, float, Optional[tuple]]:
    """The in-process reference path: reset counters, check, time it."""
    return _traced_check(tp, name, tracing)


def _traced_check(tp: TypedProgram, name: str, tracing: bool
                  ) -> tuple[FunctionResult, float, Optional[tuple]]:
    """Check one function, optionally under a fresh per-function tracer.

    With tracing on, the *semantic* memo caches are also dropped before
    the check: cross-function cache warmth depends on the schedule (which
    worker checked what, in which order), and clearing it per function is
    what makes the memo hit/miss event stream — and hence the whole trace
    — byte-identical between serial and parallel runs.  Results never
    depend on the caches either way; tracing trades some cross-function
    speedup for a reproducible event stream.

    Returns ``(result, wall, (events, dropped) | None)``."""
    reset_fresh_counters()
    if not tracing:
        t0 = time.perf_counter()
        fr = check_function(tp, name)
        return fr, time.perf_counter() - t0, None
    clear_pure_caches()
    tracer = Tracer(scope=name)
    previous = set_current(tracer)
    t0 = time.perf_counter()
    try:
        tracer.begin("check", name)
        try:
            fr = check_function(tp, name)
        finally:
            tracer.end()
    finally:
        wall = time.perf_counter() - t0
        tracer.close()
        set_current(previous)
    if tracer.events:
        # The check span's outcome is known only after the fact.
        tracer.events[0].args["ok"] = fr.ok
    return fr, wall, (tracer.events, tracer.dropped)


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


# ---------------------------------------------------------------------
# The driver proper.
# ---------------------------------------------------------------------

def run_units(units: Sequence[Unit], config: Optional[DriverConfig] = None,
              plans: Optional[dict] = None,
              session: Optional[PoolSession] = None
              ) -> dict[str, tuple[ProgramResult, DriverMetrics]]:
    """Verify several translation units under one scheduler.

    Sharing the pool across units is what makes whole-evaluation runs
    scale: pool startup is paid once and the per-function tasks of all
    units load-balance together.

    ``plans`` (unit key → :class:`UnitPlan`) is the incremental path:
    planned units reuse cached results for clean functions and schedule
    only the dirty subset, in the plan's dependency order.  Functions a
    plan does not mention fall back to the legacy whole-key cache path.

    ``session`` reuses a caller-owned warm :class:`PoolSession` instead
    of starting (and paying for) a fresh pool for this call."""
    config = config or DriverConfig()
    plans = plans or {}
    jobs = config.resolved_jobs()
    store = config.open_cache()
    tracing = config.resolved_trace()

    t_start = time.perf_counter()
    results: dict[str, ProgramResult] = {}
    metrics: dict[str, DriverMetrics] = {}
    # (unit_key, fn_name) -> bookkeeping for assembly.
    cache_keys: dict[tuple[str, str], str] = {}
    collected: dict[tuple[str, str], tuple[FunctionResult, float, str]] = {}
    traces: dict[tuple[str, str], FunctionTrace] = {}
    pending: list[tuple[str, str]] = []
    units_by_key = {u.key: u for u in units}

    for unit in units:
        m = DriverMetrics(study=unit.key, jobs=jobs,
                          cache_enabled=store is not None)
        if unit.timings is not None:
            m.phases.parse_s = unit.timings.parse_s
            m.phases.elaborate_s = unit.timings.elaborate_s
        metrics[unit.key] = m
        to_check, missing = verification_targets(unit.tp)
        for name in missing:
            collected[(unit.key, name)] = \
                (missing_body_result(name), 0.0, "off")
        plan = plans.get(unit.key)
        unit_pending: list[str] = []
        for name in to_check:
            fplan = plan.functions.get(name) if plan is not None else None
            if fplan is not None:
                if fplan.action == "reuse" and fplan.result is not None:
                    fr, wall = fplan.result
                    collected[(unit.key, name)] = (fr, wall, "clean")
                    m.cache_hits += 1
                    continue
                if store is not None and fplan.store_key is not None:
                    cache_keys[(unit.key, name)] = fplan.store_key
                m.cache_misses += 1
                unit_pending.append(name)
                continue
            if store is not None:
                ckey = function_cache_key(unit.tp, name)
                cache_keys[(unit.key, name)] = ckey
                hit = store.get(ckey)
                if hit is not None:
                    fr, wall = hit
                    collected[(unit.key, name)] = (fr, wall, "hit")
                    m.cache_hits += 1
                    continue
                m.cache_misses += 1
            unit_pending.append(name)
        if plan is not None and plan.order:
            # Dependency (callee-before-caller) order: at jobs=1 a
            # caller's re-check always sees already re-validated callee
            # specs; unordered stragglers keep their spec order.
            rank = {n: i for i, n in enumerate(plan.order)}
            unit_pending.sort(key=lambda n: (rank.get(n, len(rank)),))
        pending.extend((unit.key, name) for name in unit_pending)

    if pending:
        live = _run_pending(pending, units_by_key, jobs, tracing, session)
        for (ukey, name), (fr, wall, trace, elab_hit) in live.items():
            # Schema v6 telemetry: did the worker's elaborated-program
            # memo already hold the unit?  ``None`` on the serial path
            # (the front end elaborated exactly once, no memo involved).
            if elab_hit is not None:
                if elab_hit:
                    metrics[ukey].elab_memo_hits += 1
                else:
                    metrics[ukey].elab_memo_misses += 1
            plan = plans.get(ukey)
            fplan = plan.functions.get(name) if plan is not None else None
            if fplan is not None:
                state = fplan.label
            else:
                state = "miss" if store is not None else "off"
            collected[(ukey, name)] = (fr, wall, state)
            if trace is not None:
                events, dropped = trace
                traces[(ukey, name)] = FunctionTrace(ukey, name, events,
                                                     dropped)
            if store is not None and (ukey, name) in cache_keys:
                store.put(cache_keys[(ukey, name)], fr, wall)

    elapsed = time.perf_counter() - t_start
    out: dict[str, tuple[ProgramResult, DriverMetrics]] = {}
    for unit in units:
        result = ProgramResult()
        m = metrics[unit.key]
        # Assemble in spec order, so dict iteration (and therefore
        # reports) is byte-identical to the serial reference path.
        for name in unit.tp.specs:
            item = collected.get((unit.key, name))
            if item is None:
                continue
            fr, wall, state = item
            result.functions[name] = fr
            m.add_function(name, fr.ok, state, wall, fr.stats.solver_time,
                           fr.stats.counters(),
                           solver_cache_hits=fr.stats.solver_cache_hits,
                           terms_interned=fr.stats.terms_interned,
                           dispatch_table_hits=fr.stats.dispatch_table_hits,
                           terms_compiled=fr.stats.terms_compiled)
        # Elapsed time is shared by every unit on the pool; a unit's own
        # checking cost is the sum of its live function walls.  "hit" and
        # "clean" entries carry the *original* run's wall time.
        m.wall_s = elapsed if len(units) == 1 else \
            sum(f.wall_s for f in m.functions
                if f.cache not in ("hit", "clean"))
        if tracing:
            # Deterministic merge: front end first, then the live-checked
            # functions in spec order — independent of the schedule that
            # produced the buffers.  Cache hits have no buffer (the
            # function was not re-checked).
            by_fn = {name: buf for (ukey, name), buf in traces.items()
                     if ukey == unit.key}
            unit_trace = merge_function_traces(
                unit.key, unit.front_trace, by_fn, iter(unit.tp.specs))
            result.trace = unit_trace
            m.trace = trace_summary(unit_trace)
        out[unit.key] = (result, m)
    return out


def _run_pending(pending: list[tuple[str, str]],
                 units_by_key: dict[str, Unit], jobs: int, tracing: bool,
                 session: Optional[PoolSession] = None
                 ) -> dict[tuple[str, str],
                           tuple[FunctionResult, float, Optional[tuple],
                                 Optional[bool]]]:
    if session is not None and session.jobs > 1 and len(pending) > 1:
        try:
            return _run_parallel_session(pending, units_by_key, session,
                                         tracing)
        except (pickle.PicklingError, AttributeError, TypeError):
            pass
    if jobs > 1 and len(pending) > 1:
        try:
            return _run_parallel(pending, units_by_key, jobs, tracing)
        except (pickle.PicklingError, AttributeError, TypeError):
            # Unpicklable user-supplied lemmas or results: fall back to
            # the deterministic serial path rather than failing the run.
            pass
    return _run_serial(pending, units_by_key, tracing)


def _run_serial(pending, units_by_key, tracing):
    out = {}
    for ukey, name in pending:
        fr, wall, trace = _check_one(units_by_key[ukey].tp, name, tracing)
        out[(ukey, name)] = (fr, wall, trace, None)
    return out


def _run_parallel_session(pending, units_by_key, session, tracing):
    pool = session.executor()
    session.batches += 1
    session.tasks += len(pending)
    memo_keys = {ukey: session_unit_key(ukey, units_by_key[ukey].source)
                 for ukey in {u for u, _ in pending}}
    futures = [pool.submit(_session_worker_check, ukey, memo_keys[ukey],
                           name, units_by_key[ukey].source,
                           units_by_key[ukey].lemmas, tracing)
               for ukey, name in pending]
    out = {}
    for fut in as_completed(futures):
        ukey, name, fr, wall, trace, elab_hit = fut.result()
        out[(ukey, name)] = (fr, wall, trace, elab_hit)
    return out


def _run_parallel(pending, units_by_key, jobs, tracing):
    needed = {ukey for ukey, _ in pending}
    blob = pickle.dumps({k: (units_by_key[k].source, units_by_key[k].lemmas)
                         for k in needed})
    workers = min(jobs, len(pending))
    out = {}
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=_pool_context(),
                             initializer=_worker_init,
                             initargs=(blob, tracing)) as pool:
        futures = [pool.submit(_worker_check, ukey, name)
                   for ukey, name in pending]
        for fut in as_completed(futures):
            ukey, name, fr, wall, trace, elab_hit = fut.result()
            out[(ukey, name)] = (fr, wall, trace, elab_hit)
    return out


def run_program(tp: TypedProgram, *, source: Optional[str] = None,
                lemmas: Optional[dict] = None, study: str = "",
                config: Optional[DriverConfig] = None,
                timings: Optional[PhaseTimings] = None
                ) -> tuple[ProgramResult, DriverMetrics]:
    """Drive verification of one elaborated program.

    ``source`` enables the parallel path (workers re-elaborate it); with
    ``source=None`` the driver always runs serially in-process."""
    config = config or DriverConfig()
    if source is None:
        config = DriverConfig(jobs=1, cache=config.cache,
                              cache_dir=config.cache_dir,
                              trace=config.trace)
    unit = Unit(key=study or "<unit>", source=source or "", tp=tp,
                lemmas=lemmas, timings=timings)
    return run_units([unit], config)[unit.key]
