"""The serve wire protocol: JSON-RPC-ish requests, NDJSON event streams.

One HTTP ``POST /rpc`` per request.  The body is a single JSON object::

    {"protocol": 1, "method": "verify", "params": {...}, "id": "..."}

The response is a stream of newline-delimited JSON events
(``application/x-ndjson``), written as the daemon produces them and
terminated by connection close — so a client sees ``queued``/``start``
immediately, per-function results as each unit finishes, and a final
``done`` (or ``error``) event.  Every event carries an ``event`` key;
errors are structured (``code`` + ``message``) and never tear down the
daemon or its warm pool.

Validation is strict and bounded: an unknown method, a non-object
``params``, or a body over :data:`MAX_BODY_BYTES` yields a structured
error *before* any work is queued.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

PROTOCOL_VERSION = 1

#: reject request bodies larger than this before reading them fully —
#: a verify request is a few hundred bytes of stems, never megabytes
MAX_BODY_BYTES = 1 << 20

#: the methods the daemon dispatches
METHODS = ("status", "verify", "reset", "shutdown")

# Structured error codes (the ``code`` field of ``error`` events).
E_HTTP = "bad-http"                  # malformed HTTP envelope
E_TOO_LARGE = "request-too-large"    # body over MAX_BODY_BYTES
E_PARSE = "parse-error"              # body is not valid JSON
E_REQUEST = "bad-request"            # JSON but not a valid request object
E_METHOD = "unknown-method"
E_PARAMS = "bad-params"              # method-specific parameter defect
E_DRAINING = "draining"              # daemon is shutting down
E_INTERNAL = "internal-error"        # unexpected failure serving a request


class ProtocolError(Exception):
    """A request defect with a structured (code, message) identity."""

    def __init__(self, code: str, message: str,
                 http_status: int = 400) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.http_status = http_status

    def to_event(self) -> dict:
        return event("error", code=self.code, message=self.message)


@dataclass
class Request:
    """A validated request: what the queue and the worker loop see."""

    method: str
    params: dict = field(default_factory=dict)
    id: str = ""


def event(name: str, /, **fields) -> dict:
    """Build one response event; ``event`` is the discriminator key.
    The discriminator is positional-only so payload fields may freely
    use ``name`` (the ``function`` events do)."""
    ev = {"event": name}
    ev.update(fields)
    return ev


def encode_event(ev: dict) -> bytes:
    """One NDJSON line.  Sorted keys keep streams byte-deterministic for
    the same payload, which the serve tests and CI comparisons rely on."""
    return (json.dumps(ev, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


def parse_request(body: bytes) -> Request:
    """Validate a request body into a :class:`Request`.

    Raises :class:`ProtocolError` — never a bare exception — so the
    server can always answer with a structured error event."""
    if len(body) > MAX_BODY_BYTES:
        raise ProtocolError(E_TOO_LARGE,
                            f"request body {len(body)} bytes exceeds "
                            f"limit {MAX_BODY_BYTES}", http_status=413)
    try:
        data = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(E_PARSE, f"request body is not JSON: {exc}")
    if not isinstance(data, dict):
        raise ProtocolError(E_REQUEST, "request must be a JSON object")
    proto = data.get("protocol", PROTOCOL_VERSION)
    if proto != PROTOCOL_VERSION:
        raise ProtocolError(E_REQUEST,
                            f"unsupported protocol version {proto!r} "
                            f"(daemon speaks {PROTOCOL_VERSION})")
    method = data.get("method")
    if not isinstance(method, str) or method not in METHODS:
        raise ProtocolError(E_METHOD,
                            f"unknown method {method!r} "
                            f"(expected one of {', '.join(METHODS)})")
    params = data.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(E_REQUEST, "params must be a JSON object")
    req_id = data.get("id", "")
    if not isinstance(req_id, str):
        raise ProtocolError(E_REQUEST, "id must be a string")
    if method == "verify":
        _validate_verify_params(params)
    return Request(method=method, params=params, id=req_id)


def _validate_verify_params(params: dict) -> None:
    paths = params.get("paths")
    if paths is not None and (
            not isinstance(paths, list)
            or not all(isinstance(p, str) and p for p in paths)):
        raise ProtocolError(E_PARAMS,
                            "paths must be a list of non-empty strings")
    root = params.get("root")
    if root is not None and not isinstance(root, str):
        raise ProtocolError(E_PARAMS, "root must be a string path")
    jobs = params.get("jobs")
    if jobs is not None and (not isinstance(jobs, int)
                             or isinstance(jobs, bool) or jobs < 1):
        raise ProtocolError(E_PARAMS, "jobs must be a positive integer")
    full = params.get("full")
    if full is not None and not isinstance(full, bool):
        raise ProtocolError(E_PARAMS, "full must be a boolean")
