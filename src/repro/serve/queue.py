"""The multi-tenant request queue: FIFO admission with wait telemetry.

Verification requests are *serialized* through one worker loop: the warm
:class:`~repro.driver.PoolSession` is a single shared resource, and
running two requests' process-pool batches concurrently would interleave
their worker memos nondeterministically.  FIFO order keeps multi-tenant
results deterministic (two clients racing the same namespace see the
first request's writes, then the second's — never a torn interleaving)
and makes the *queue wait* a meaningful, reportable number: it is
exactly the head-of-line blocking a request experienced, recorded per
request and rolled into the daemon's ledger records.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Optional

from .protocol import Request


@dataclass
class Ticket:
    """One admitted request travelling from the queue to its stream.

    ``events`` is the per-ticket stream the connection handler reads:
    the worker loop puts response events on it as they are produced and
    ``None`` as the end-of-stream sentinel."""

    seq: int
    request: Request
    enqueued_at: float = field(default_factory=time.monotonic)
    events: asyncio.Queue = field(default_factory=asyncio.Queue)
    queue_wait_s: Optional[float] = None

    def start(self) -> float:
        """Mark dequeue time; returns (and records) the queue wait."""
        self.queue_wait_s = time.monotonic() - self.enqueued_at
        return self.queue_wait_s


class RequestQueue:
    """An asyncio FIFO of :class:`Ticket` with admission telemetry."""

    def __init__(self) -> None:
        self._queue: asyncio.Queue = asyncio.Queue()
        self._seq = 0
        self.enqueued = 0          # tickets ever admitted
        self.served = 0            # tickets fully processed
        self.total_wait_s = 0.0    # summed queue waits of served tickets
        self.max_wait_s = 0.0

    @property
    def depth(self) -> int:
        """Requests admitted but not yet finished (incl. the in-flight
        one) — what ``status`` reports as the backlog."""
        return self.enqueued - self.served

    def admit(self, request: Request) -> Ticket:
        """Admit one request; returns its ticket.  The ticket's queue
        position (0 = next to run) is ``depth`` at admission time."""
        self._seq += 1
        ticket = Ticket(seq=self._seq, request=request)
        self.enqueued += 1
        self._queue.put_nowait(ticket)
        return ticket

    async def get(self) -> Ticket:
        return await self._queue.get()

    def done(self, ticket: Ticket) -> None:
        """Account one finished ticket (its wait must have been taken
        via :meth:`Ticket.start`)."""
        self.served += 1
        wait = ticket.queue_wait_s or 0.0
        self.total_wait_s += wait
        self.max_wait_s = max(self.max_wait_s, wait)
        self._queue.task_done()

    async def join(self) -> None:
        """Drain: resolves when every admitted ticket has been served."""
        await self._queue.join()

    def stats(self) -> dict:
        return {
            "depth": self.depth,
            "enqueued": self.enqueued,
            "served": self.served,
            "total_wait_s": round(self.total_wait_s, 6),
            "max_wait_s": round(self.max_wait_s, 6),
        }
