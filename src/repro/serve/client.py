"""The daemon client: stdlib HTTP, streamed NDJSON events.

``scripts/rcd.py`` is a thin shell over this module.  A request is one
``POST /rpc``; the response body is consumed line by line as the daemon
streams it, so ``verify`` callers can print per-function results while
later units are still checking.  The daemon's address comes from its
state file (``.rc-serve.json`` under the serve root), written at bind
time — ephemeral ports (``--port 0``) therefore need no out-of-band
coordination.
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from .protocol import PROTOCOL_VERSION
from .server import STATE_FILE_NAME

#: generous: a cold verify of every case study plus queueing
DEFAULT_TIMEOUT_S = 600.0


class DaemonError(Exception):
    """A structured error event from the daemon (or a dead daemon)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


@dataclass
class DaemonState:
    """The daemon's published coordinates (its state file)."""

    host: str
    port: int
    pid: int
    root: str
    started: float


def default_state_path(root: Path | str = ".") -> Path:
    return Path(root) / STATE_FILE_NAME


def read_state(path: Path | str) -> Optional[DaemonState]:
    """Load a state file; ``None`` when absent or unreadable (the
    daemon is simply not running)."""
    try:
        data = json.loads(Path(path).read_text())
        return DaemonState(host=str(data["host"]), port=int(data["port"]),
                           pid=int(data["pid"]), root=str(data["root"]),
                           started=float(data["started"]))
    except (OSError, ValueError, KeyError, TypeError):
        return None


class DaemonClient:
    """Issue requests against one daemon address."""

    def __init__(self, host: str, port: int,
                 timeout: float = DEFAULT_TIMEOUT_S) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    @classmethod
    def from_state(cls, state: DaemonState,
                   timeout: float = DEFAULT_TIMEOUT_S) -> "DaemonClient":
        return cls(state.host, state.port, timeout=timeout)

    # ------------------------------------------------------------
    def request(self, method: str,
                params: Optional[dict] = None) -> Iterator[dict]:
        """Stream the daemon's response events for one request.

        Raises :class:`DaemonError` on connection failure; *error
        events* are yielded like any other so callers that stream can
        render them in place (the convenience wrappers below raise)."""
        body = json.dumps({"protocol": PROTOCOL_VERSION,
                           "method": method,
                           "params": params or {}})
        try:
            conn = http.client.HTTPConnection(self.host, self.port,
                                              timeout=self.timeout)
            conn.request("POST", "/rpc", body,
                         {"Content-Type": "application/json"})
            resp = conn.getresponse()
        except (OSError, http.client.HTTPException) as exc:
            raise DaemonError("unreachable",
                              f"no daemon at {self.host}:{self.port} "
                              f"({exc})") from exc
        try:
            for raw in resp:
                line = raw.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    raise DaemonError("bad-stream",
                                      f"unparseable event line "
                                      f"{line[:120]!r}")
        finally:
            conn.close()

    def collect(self, method: str,
                params: Optional[dict] = None) -> list[dict]:
        """All events of one request; raises on an ``error`` event."""
        events = []
        for ev in self.request(method, params):
            if ev.get("event") == "error":
                raise DaemonError(ev.get("code", "error"),
                                  ev.get("message", ""))
            events.append(ev)
        return events

    # ------------------------------------------------------------
    def status(self) -> dict:
        events = self.collect("status")
        if not events or events[0].get("event") != "status":
            raise DaemonError("bad-stream", "no status event in reply")
        return events[0]

    def ping(self) -> bool:
        try:
            self.status()
            return True
        except DaemonError:
            return False

    def verify(self, paths: Optional[list[str]] = None, *,
               root: Optional[str] = None, jobs: Optional[int] = None,
               full: bool = False) -> list[dict]:
        params: dict = {}
        if paths:
            params["paths"] = list(paths)
        if root is not None:
            params["root"] = str(root)
        if jobs is not None:
            params["jobs"] = int(jobs)
        if full:
            params["full"] = True
        return self.collect("verify", params)

    def reset(self) -> dict:
        return self.collect("reset")[-1]

    def shutdown(self) -> dict:
        return self.collect("shutdown")[-1]
