"""The verification daemon: a warm driver behind an asyncio HTTP front.

One long-lived process holds everything the batch CLI re-builds per
invocation: the worker :class:`~repro.driver.PoolSession` (process pool
+ per-worker, content-addressed elaboration memos), the interned-term
and pure-solver caches those workers accumulate, and the parsed
incremental planner state per project namespace.  Requests then pay
only for what actually changed — the paper's edit-annotate-recheck loop
at interactive latency.

Architecture (see DESIGN.md "Verification as a service"):

* the **accept loop** parses one ``POST /rpc`` per connection and
  answers with a streamed NDJSON event body (:mod:`.protocol`);
* ``verify`` requests are admitted to the FIFO :class:`~.queue
  .RequestQueue` and executed one at a time by the **worker loop** —
  the warm pool is a single shared resource, and serialization is what
  keeps multi-tenant results deterministic;
* each project root is a :class:`Namespace` with its own ``.rc-cache``
  result cache, ``depgraph.json`` planner state, and an in-memory
  parsed-state memo, so tenants never read each other's caches;
* a pool-level failure mid-request triggers **poisoned-pool recovery**:
  ``session.reset()`` plus a serial in-process retry of the failed unit
  (the same fallback the fuzz oracle uses), so one crashed worker never
  fails the request, let alone the daemon;
* ``shutdown`` **drains**: new verify requests are refused with a
  structured ``draining`` error, queued ones finish, then the server
  stops and removes its state file.

Observability: every served verify request appends one ``kind=serve``
ledger record (:mod:`repro.obs.ledger`) carrying queue wait, warm-pool
telemetry (session batches/resets, elaboration-memo hits, clean/dirty
splits) and per-function walls — ``rcstat --kind serve`` then shows the
daemon-vs-batch trajectory next to every other run kind.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from ..driver.pool import PoolSession
from ..frontend import verify_files
from ..obs.ledger import ledger_env_path, record_run
from .protocol import (E_DRAINING, E_HTTP, E_INTERNAL, E_PARAMS,
                       E_TOO_LARGE, MAX_BODY_BYTES, PROTOCOL_VERSION,
                       ProtocolError, Request, encode_event, event,
                       parse_request)
from .queue import RequestQueue, Ticket

#: wall-clock budget for reading one request off a connection
REQUEST_READ_TIMEOUT_S = 30.0

#: default daemon state-file name, written under the serve root
STATE_FILE_NAME = ".rc-serve.json"

_RECHECKED_STATES = ("dirty", "miss", "off")


@dataclass
class ServeConfig:
    """Daemon knobs, resolved once at startup."""

    root: Path = Path(".")
    host: str = "127.0.0.1"
    port: int = 0                  # 0 = ephemeral, resolved on bind
    jobs: int = 1                  # worker-pool width; 1 = in-process
    cache_name: str = ".rc-cache"  # per-namespace cache dir name
    ledger_path: Optional[Path] = None   # None: defer to RC_LEDGER
    state_file: Optional[Path] = None    # None: <root>/.rc-serve.json

    def resolved_state_file(self) -> Path:
        if self.state_file is not None:
            return Path(self.state_file)
        return Path(self.root) / STATE_FILE_NAME


@dataclass
class Namespace:
    """One tenant: a project root with isolated caches and telemetry.

    ``state_cache`` memoises the parsed incremental planner state
    (:func:`repro.driver.incremental.load_state_cached`), so a warm
    request re-reads ``depgraph.json`` only when some other process
    moved it."""

    root: Path
    cache_dir: Path
    state_cache: dict = field(default_factory=dict)
    served: int = 0
    functions_checked: int = 0

    @property
    def default_dir(self) -> Path:
        """Where bare stems resolve: the Figure-7 case-study directory
        when the root carries one, else the root itself."""
        cand = self.root / "examples" / "casestudies"
        return cand if cand.is_dir() else self.root


class VerifyDaemon:
    """The serve daemon.  ``asyncio.run(daemon.serve_forever())`` in the
    CLI; tests drive :meth:`start`/:meth:`request_stop` directly."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.config.root = Path(self.config.root).resolve()
        self.queue = RequestQueue()
        self.namespaces: dict[str, Namespace] = {}
        self.draining = False
        self.requests_served = 0
        self.pool_recoveries = 0
        self.host = self.config.host
        self.port = self.config.port
        self.ledger_target = (Path(self.config.ledger_path)
                              if self.config.ledger_path is not None
                              else ledger_env_path())
        self._session: Optional[PoolSession] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker_task: Optional[asyncio.Task] = None
        self._stopped: Optional[asyncio.Event] = None
        self._t0 = time.monotonic()
        self._started_at = time.time()

    # ------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------

    @staticmethod
    def _pool_context():
        """The multiprocessing context for the daemon's pool.

        Plain ``fork`` (the batch driver's default) is wrong here:
        workers forked mid-request would inherit the accepted
        connection's file descriptor, and the client would never see
        EOF on its event stream — the parent's close leaves the socket
        open in every worker.  ``forkserver`` forks workers from a
        helper process started *before* the listening socket exists,
        so no worker ever holds a connection fd."""
        if "forkserver" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("forkserver")
        return None   # driver default (Windows/macOS spawn: no fd leak)

    def session(self) -> Optional[PoolSession]:
        """The warm worker pool, created lazily; ``None`` at jobs=1
        (the serial in-process path needs no pool to keep warm)."""
        if self.config.jobs <= 1:
            return None
        if self._session is None:
            self._session = PoolSession(self.config.jobs,
                                        mp_context=self._pool_context())
        return self._session

    async def start(self) -> tuple[str, int]:
        if self._pool_context() is not None:
            # Fork the helper process now, while the only open fds are
            # inherited std streams — see _pool_context.  Preload the
            # worker module instead of the default __main__: re-running
            # the daemon entry script inside the helper is never wanted.
            from multiprocessing import forkserver
            multiprocessing.set_forkserver_preload(["repro.driver.pool"])
            forkserver.ensure_running()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_conn, host=self.config.host,
            port=self.config.port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._worker_task = asyncio.create_task(self._worker_loop())
        self._write_state_file()
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._stopped is not None
        try:
            await self._stopped.wait()
        finally:
            await self._shutdown_now()

    def request_stop(self) -> None:
        """Stop the daemon (idempotent; safe from handler tasks)."""
        if self._stopped is not None:
            self._stopped.set()

    async def _shutdown_now(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._worker_task is not None:
            self._worker_task.cancel()
            try:
                await self._worker_task
            except (asyncio.CancelledError, Exception):
                pass
            self._worker_task = None
        if self._session is not None:
            self._session.close()
            self._session = None
        try:
            self.config.resolved_state_file().unlink()
        except OSError:
            pass

    def _write_state_file(self) -> None:
        payload = {
            "protocol": PROTOCOL_VERSION,
            "host": self.host,
            "port": self.port,
            "pid": os.getpid(),
            "root": str(self.config.root),
            "started": self._started_at,
        }
        path = self.config.resolved_state_file()
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n")

    # ------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            try:
                body = await asyncio.wait_for(
                    self._read_http(reader),
                    timeout=REQUEST_READ_TIMEOUT_S)
                request = parse_request(body)
            except ProtocolError as exc:
                await self._respond(writer, [exc.to_event()],
                                    status=exc.http_status)
                # Drain whatever the client is still sending (e.g. the
                # rest of an oversized body) before closing, so it can
                # read the structured error instead of seeing a reset.
                await self._discard(reader)
                return
            except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                    ConnectionError):
                return
            await self._dispatch(request, writer)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_http(self, reader: asyncio.StreamReader) -> bytes:
        line = await reader.readline()
        if not line:
            raise ProtocolError(E_HTTP, "empty request")
        parts = line.decode("latin-1", "replace").split()
        if len(parts) != 3 or parts[0] != "POST":
            raise ProtocolError(E_HTTP,
                                "expected 'POST /rpc HTTP/1.1', got "
                                f"{line.decode('latin-1', 'replace')!r}",
                                http_status=405)
        length: Optional[int] = None
        for _ in range(100):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1", "replace").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise ProtocolError(E_HTTP, "bad Content-Length")
        else:
            raise ProtocolError(E_HTTP, "too many headers")
        if length is None:
            raise ProtocolError(E_HTTP, "Content-Length required",
                                http_status=411)
        if length > MAX_BODY_BYTES:
            # Refuse before reading: an oversized body never reaches the
            # JSON parser, let alone the queue.
            raise ProtocolError(E_TOO_LARGE,
                                f"request body {length} bytes exceeds "
                                f"limit {MAX_BODY_BYTES}", http_status=413)
        return await reader.readexactly(length)

    @staticmethod
    async def _discard(reader: asyncio.StreamReader,
                       limit: int = 64 << 20) -> None:
        try:
            while limit > 0:
                chunk = await asyncio.wait_for(
                    reader.read(min(1 << 16, limit)), timeout=5.0)
                if not chunk:
                    return
                limit -= len(chunk)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            return

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, ev: dict) -> None:
        writer.write(encode_event(ev))
        await writer.drain()

    @staticmethod
    def _response_head(status: int) -> bytes:
        reasons = {200: "OK", 400: "Bad Request", 405: "Method Not "
                   "Allowed", 411: "Length Required",
                   413: "Payload Too Large"}
        return (f"HTTP/1.1 {status} {reasons.get(status, 'Error')}\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Connection: close\r\n\r\n").encode()

    async def _respond(self, writer: asyncio.StreamWriter,
                       events: list[dict], status: int = 200) -> None:
        writer.write(self._response_head(status))
        for ev in events:
            await self._send(writer, ev)

    async def _dispatch(self, request: Request,
                        writer: asyncio.StreamWriter) -> None:
        if request.method == "status":
            await self._respond(writer, [self.status_payload()])
            return
        if request.method == "reset":
            await self._respond(writer, [self._do_reset()])
            return
        if request.method == "shutdown":
            pending = self.queue.depth
            self.draining = True
            asyncio.create_task(self._drain_then_stop())
            await self._respond(writer, [event("shutting-down",
                                               pending=pending)])
            return
        # verify
        if self.draining:
            err = ProtocolError(E_DRAINING,
                                "daemon is draining; request refused",
                                http_status=200)
            await self._respond(writer, [err.to_event()])
            return
        position = self.queue.depth
        ticket = self.queue.admit(request)
        writer.write(self._response_head(200))
        sendable = True
        try:
            await self._send(writer, event("queued", position=position,
                                           request=ticket.seq))
        except (ConnectionError, OSError):
            sendable = False
        while True:
            ev = await ticket.events.get()
            if ev is None:
                break
            if not sendable:
                continue          # client went away; drain silently
            try:
                await self._send(writer, ev)
            except (ConnectionError, OSError):
                sendable = False

    async def _drain_then_stop(self) -> None:
        await self.queue.join()
        self.request_stop()

    def _do_reset(self) -> dict:
        """Drop every warm layer: the pool and the per-namespace parsed
        planner state.  On-disk caches survive (they are content-
        addressed); the next request rebuilds warmth from them."""
        if self._session is not None:
            self._session.reset()
        for ns in self.namespaces.values():
            ns.state_cache.clear()
        return event("reset-done")

    # ------------------------------------------------------------
    # The worker loop: one verify request at a time.
    # ------------------------------------------------------------

    async def _worker_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            ticket = await self.queue.get()
            wait = ticket.start()

            def emit(ev: dict, _t: Ticket = ticket) -> None:
                loop.call_soon_threadsafe(_t.events.put_nowait, ev)

            emit(event("start", queue_wait_s=round(wait, 6)))
            try:
                await loop.run_in_executor(
                    None, self._execute_verify, ticket.request.params,
                    wait, emit)
            except ProtocolError as exc:
                emit(exc.to_event())
            except Exception as exc:   # noqa: BLE001 — daemon must live
                emit(event("error", code=E_INTERNAL,
                           message=f"{type(exc).__name__}: {exc}"))
            finally:
                # Through the same call_soon_threadsafe FIFO as emit():
                # the sentinel must sort *after* every event the executor
                # thread scheduled, or trailing events would be lost.
                loop.call_soon_threadsafe(ticket.events.put_nowait, None)
                self.queue.done(ticket)
                self.requests_served += 1

    # ------------------------------------------------------------
    # Verification proper (executor thread).
    # ------------------------------------------------------------

    def _namespace(self, root_param: Optional[str]) -> Namespace:
        root = (Path(root_param) if root_param
                else self.config.root).resolve()
        if not root.is_dir():
            raise ProtocolError(E_PARAMS,
                                f"namespace root {root} is not a "
                                "directory")
        key = str(root)
        ns = self.namespaces.get(key)
        if ns is None:
            ns = Namespace(root=root,
                           cache_dir=root / self.config.cache_name)
            self.namespaces[key] = ns
        return ns

    def _resolve_targets(self, ns: Namespace,
                         paths_param) -> list[Path]:
        if not paths_param:
            targets = sorted(ns.default_dir.glob("*.c"))
            if not targets:
                raise ProtocolError(E_PARAMS,
                                    f"no .c files under "
                                    f"{ns.default_dir}")
            return targets
        out: list[Path] = []
        for raw in paths_param:
            p = Path(raw)
            if p.suffix != ".c":
                p = p.with_suffix(".c")
            if p.is_absolute():
                cand = p
            else:
                direct = ns.root / p
                cand = direct if direct.exists() else ns.default_dir / p.name
            cand = cand.resolve()
            if not cand.is_relative_to(ns.root):
                raise ProtocolError(E_PARAMS,
                                    f"{raw!r} resolves outside the "
                                    f"namespace root {ns.root}")
            if not cand.is_file():
                raise ProtocolError(E_PARAMS, f"no such file: {cand}")
            out.append(cand)
        return out

    def _run_verify(self, paths: list[Path], ns: Namespace, jobs: int,
                    session: Optional[PoolSession], full: bool) -> dict:
        """One driver call — split out so tests can inject pool
        failures and observe the recovery path."""
        return verify_files(
            paths, jobs=jobs,
            cache_dir=None if full else ns.cache_dir,
            incremental=not full, session=session,
            state_cache=None if full else ns.state_cache,
            ledger=False)

    def _execute_verify(self, params: dict, queue_wait_s: float,
                        emit: Callable[[dict], None]) -> None:
        ns = self._namespace(params.get("root"))
        targets = self._resolve_targets(ns, params.get("paths"))
        jobs = int(params.get("jobs") or self.config.jobs)
        full = bool(params.get("full", False))
        session = self.session() if jobs > 1 else None

        t0 = time.perf_counter()
        totals = {"files": 0, "functions": 0, "clean": 0, "dirty": 0,
                  "reused": 0, "rechecked": 0, "failed": 0}
        elab_hits = elab_misses = 0
        recovered = 0
        all_metrics = []
        suite: list[str] = []
        ok = True
        # One driver call per file, streamed in request order: the
        # client sees each unit's functions as soon as that unit is
        # done, and a pool failure costs one unit's serial retry, not
        # the whole request.  Per-function outcomes are byte-identical
        # to one batched call — function checks are independent proof
        # obligations (spec modularity, §4).
        for path in targets:
            try:
                outcomes = self._run_verify([path], ns, jobs, session,
                                            full)
            except Exception as exc:   # noqa: BLE001 — poisoned pool
                recovered += 1
                self.pool_recoveries += 1
                if session is not None:
                    session.reset()
                emit(event("recovered", unit=path.stem,
                           message=f"{type(exc).__name__}: {exc}",
                           retry="serial"))
                outcomes = self._run_verify([path], ns, 1, None, full)
            for stem, out in outcomes.items():
                m = out.metrics
                all_metrics.append(m)
                suite.append(stem)
                by_name = {f.name: f for f in m.functions}
                for name, fr in out.result.functions.items():
                    fm = by_name.get(name)
                    ev = event("function", unit=stem, name=name,
                               ok=fr.ok,
                               cache=fm.cache if fm else "off",
                               wall_s=round(fm.wall_s, 6) if fm else 0.0,
                               counters=fr.stats.counters())
                    if not fr.ok:
                        ev["error"] = fr.format_error()
                        stuck = getattr(fr.error, "stuck", None)
                        if stuck is not None:
                            ev["stuck"] = stuck.render()
                    emit(ev)
                rechecked = sum(1 for f in m.functions
                                if f.cache in _RECHECKED_STATES)
                emit(event("unit", unit=stem, ok=out.ok,
                           functions=len(m.functions),
                           clean=m.functions_clean,
                           dirty=m.functions_dirty,
                           reused=m.results_reused,
                           rechecked=rechecked,
                           wall_s=round(m.wall_s, 6)))
                ok = ok and out.ok
                totals["files"] += 1
                totals["functions"] += len(m.functions)
                totals["clean"] += m.functions_clean
                totals["dirty"] += m.functions_dirty
                totals["reused"] += m.results_reused
                totals["rechecked"] += rechecked
                totals["failed"] += sum(1 for f in m.functions
                                        if not f.ok)
                elab_hits += m.elab_memo_hits
                elab_misses += m.elab_memo_misses
                ns.served += 1
                ns.functions_checked += len(m.functions)
        wall = time.perf_counter() - t0
        warm = totals["functions"] > 0 and totals["rechecked"] == 0
        summary = dict(ok=ok, wall_s=round(wall, 6),
                       queue_wait_s=round(queue_wait_s, 6), warm=warm,
                       namespace=str(ns.root), jobs=jobs,
                       recovered=recovered,
                       elab_memo_hits=elab_hits,
                       elab_memo_misses=elab_misses, **totals)
        if session is not None:
            summary["session"] = {"jobs": session.jobs,
                                  "batches": session.batches,
                                  "tasks": session.tasks,
                                  "resets": session.resets}
        emit(event("done", **summary))
        self._ledger_record(summary, all_metrics, suite, jobs, wall,
                            full)

    def _ledger_record(self, summary: dict, metrics: list,
                       suite: list[str], jobs: int, wall: float,
                       full: bool) -> None:
        if self.ledger_target is None:
            return
        extra = {k: summary[k] for k in
                 ("queue_wait_s", "warm", "clean", "dirty", "rechecked",
                  "recovered", "namespace")}
        extra["session_batches"] = (summary.get("session") or {}) \
            .get("batches", 0)
        extra["session_resets"] = (summary.get("session") or {}) \
            .get("resets", 0)
        record_run("serve", wall_s=wall, jobs=jobs,
                   metrics=[m for m in metrics if m is not None],
                   suite=suite,
                   extra=extra,
                   config_extra={"result_cache": not full,
                                 "incremental": not full},
                   path=self.ledger_target)

    # ------------------------------------------------------------
    # Status.
    # ------------------------------------------------------------

    def status_payload(self) -> dict:
        session_block = None
        if self._session is not None:
            session_block = {"jobs": self._session.jobs,
                             "batches": self._session.batches,
                             "tasks": self._session.tasks,
                             "resets": self._session.resets}
        return event(
            "status", protocol=PROTOCOL_VERSION, pid=os.getpid(),
            root=str(self.config.root), jobs=self.config.jobs,
            uptime_s=round(time.monotonic() - self._t0, 3),
            draining=self.draining, queue=self.queue.stats(),
            requests_served=self.requests_served,
            pool_recoveries=self.pool_recoveries,
            namespaces={key: {"served": ns.served,
                              "functions_checked": ns.functions_checked,
                              "cache_dir": str(ns.cache_dir)}
                        for key, ns in sorted(self.namespaces.items())},
            session=session_block,
            ledger=str(self.ledger_target)
            if self.ledger_target is not None else None)
