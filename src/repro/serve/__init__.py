"""Verification as a service (README "Verification as a service").

The serve subsystem wraps the verification driver in a long-lived
daemon so the edit-annotate-recheck loop the paper promises (§1, §8:
*interactive-speed* foundational verification) never pays pool
cold-start, re-interning, or planner-state re-parsing between requests:

* :mod:`.protocol` — the JSON-RPC-over-HTTP request schema and the
  NDJSON response event stream, with structured errors;
* :mod:`.queue` — the multi-tenant FIFO request queue with queue-wait
  telemetry;
* :mod:`.server` — the asyncio daemon: a warm
  :class:`repro.driver.PoolSession` shared across requests, per-project
  cache/depgraph namespaces, streamed per-function results, graceful
  drain/shutdown and poisoned-pool recovery;
* :mod:`.watcher` — mtime/sha polling that turns file edits into dirty
  sets for ``rcd watch``;
* :mod:`.client` — the stdlib HTTP client behind ``scripts/rcd.py``.
"""

from .client import DaemonClient, DaemonError, default_state_path, read_state
from .protocol import (MAX_BODY_BYTES, PROTOCOL_VERSION, ProtocolError,
                       Request, encode_event, event, parse_request)
from .queue import RequestQueue, Ticket
from .server import Namespace, ServeConfig, VerifyDaemon
from .watcher import FileWatcher

__all__ = [
    "DaemonClient", "DaemonError", "default_state_path", "read_state",
    "MAX_BODY_BYTES", "PROTOCOL_VERSION", "ProtocolError", "Request",
    "encode_event", "event", "parse_request",
    "RequestQueue", "Ticket",
    "Namespace", "ServeConfig", "VerifyDaemon",
    "FileWatcher",
]
