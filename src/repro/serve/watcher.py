"""Filesystem polling for ``rcd watch``: edits become dirty sets.

The watcher snapshots each watched file's ``(mtime_ns, size)`` and only
hashes content when the cheap stat signature moved — editors that touch
without changing (format-on-save no-ops, ``git checkout`` of an
identical blob) therefore do *not* trigger re-verification, because the
incremental engine would re-check nothing anyway and the round trip to
the daemon is the only cost.  Deletions are reported separately so the
caller can drop them instead of asking the daemon to verify a missing
path (the same defect ``scripts/verify.py --changed-since`` guards
against).

Polling (not inotify) is deliberate: it is portable, dependency-free,
and at editor timescales (hundreds of milliseconds) indistinguishable
from event-driven watching for a handful of translation units.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional


@dataclass(frozen=True)
class FileState:
    """One watched file's change signature."""

    mtime_ns: int
    size: int
    sha: str


def _stat_sig(path: Path) -> Optional[tuple[int, int]]:
    try:
        st = path.stat()
    except OSError:
        return None
    return (st.st_mtime_ns, st.st_size)


def _sha(path: Path) -> Optional[str]:
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError:
        return None


@dataclass
class PollResult:
    """What one poll observed."""

    changed: list[Path]
    deleted: list[Path]

    @property
    def dirty(self) -> bool:
        return bool(self.changed or self.deleted)


class FileWatcher:
    """Track a fixed set of files; :meth:`poll` returns what moved."""

    def __init__(self, paths: Iterable[Path | str]) -> None:
        self.paths = [Path(p) for p in paths]
        self._states: dict[Path, Optional[FileState]] = {}
        for p in self.paths:
            self._states[p] = self._observe(p)

    @staticmethod
    def _observe(path: Path) -> Optional[FileState]:
        sig = _stat_sig(path)
        if sig is None:
            return None
        sha = _sha(path)
        if sha is None:
            return None
        return FileState(mtime_ns=sig[0], size=sig[1], sha=sha)

    def poll(self) -> PollResult:
        """Compare the current filesystem against the last snapshot and
        advance the snapshot.  A file counts as *changed* only when its
        content hash moved (a bare mtime touch is absorbed here);
        *deleted* when it existed at the last poll and is now gone.  A
        file that reappears after deletion is changed again."""
        changed: list[Path] = []
        deleted: list[Path] = []
        for p in self.paths:
            old = self._states[p]
            sig = _stat_sig(p)
            if sig is None:
                if old is not None:
                    deleted.append(p)
                    self._states[p] = None
                continue
            if old is not None and (sig[0], sig[1]) == (old.mtime_ns,
                                                        old.size):
                continue          # cheap path: stat signature unchanged
            new = self._observe(p)
            if new is None:       # raced a deletion mid-poll
                if old is not None:
                    deleted.append(p)
                self._states[p] = None
                continue
            if old is None or new.sha != old.sha:
                changed.append(p)
            self._states[p] = new
        return PollResult(changed=changed, deleted=deleted)
