"""The Lithium rule registry.

RefinedC typing rules are "an open set of Lithium rules" (§1): each rule has
the form ``G / F`` — premise goal over conclusion basic-goal — and is
selected purely syntactically by the *dispatch key* of ``F`` ("types and
code inside F uniquely determine the applicable typing rule", §5).  The
registry is the analogue of the paper's use of Coq typeclasses for rule
lookup.

Rules carry a ``priority`` because "Lithium also offers a way to specify
priority among RefinedC rules in case [uniqueness] fails to hold.  But once
a rule is chosen, RefinedC does not backtrack on the choice" (§5, fn. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import product
from typing import TYPE_CHECKING, Callable, Optional

from ..pure.compiled import COMPILE
from .goals import BasicGoal, Goal

if TYPE_CHECKING:  # pragma: no cover
    from .search import SearchState

RuleFn = Callable[[BasicGoal, "SearchState"], Goal]


@lru_cache(maxsize=None)
def _wildcard_masks(arity: int) -> tuple[tuple[bool, ...], ...]:
    """The wildcard substitution masks for a key of ``arity`` trailing
    components, in precedence order: fewer wildcards first, later
    positions generalised first.  There are only a handful of arities
    across all dispatch keys, so the sorted product is computed once
    per arity instead of on every lookup."""
    return tuple(sorted(product((False, True), repeat=arity),
                        key=lambda m: (sum(m), tuple(reversed(m)))))


class RuleError(Exception):
    """Raised when rule lookup fails or is ambiguous at equal priority."""


@dataclass(frozen=True)
class Rule:
    """A certified typing rule: premise-producing function + metadata.

    In the paper each rule is a lemma proven sound in Iris; here the
    semantic counterpart is checked by :mod:`repro.proofs` (the executable
    model + adequacy testing).
    """

    name: str
    key: tuple
    apply: RuleFn
    priority: int = 0
    doc: str = ""


class RuleRegistry:
    """Maps dispatch keys to rules.  User-extensible (§5, "Extensibility")."""

    def __init__(self) -> None:
        self._rules: dict[tuple, list[Rule]] = {}
        # Flat dispatch table (RC_COMPILE): concrete dispatch key ->
        # selected rule, lazily filled through the slow path so the
        # precedence order is _candidates' by construction.  Registering
        # a rule bumps the generation, which invalidates the table.
        self._generation = 0
        self._dispatch: dict[tuple, Rule] = {}
        self._dispatch_generation = -1
        self.dispatch_hits = 0  # telemetry only; never in counters()

    def register(self, rule: Rule) -> None:
        bucket = self._rules.setdefault(rule.key, [])
        if any(r.name == rule.name for r in bucket):
            raise RuleError(f"duplicate rule name {rule.name!r} for {rule.key}")
        bucket.append(rule)
        bucket.sort(key=lambda r: -r.priority)
        self._generation += 1

    def rule(self, name: str, key: tuple, priority: int = 0,
             doc: str = "") -> Callable[[RuleFn], RuleFn]:
        """Decorator form of :meth:`register`."""
        def deco(fn: RuleFn) -> RuleFn:
            self.register(Rule(name, key, fn, priority, doc or (fn.__doc__ or "")))
            return fn
        return deco

    @staticmethod
    def _candidates(key: tuple) -> list[tuple]:
        """Lookup order for a dispatch key: the exact key first, then keys
        with components generalised to the wildcard ``"*"`` (fewer wildcards
        preferred; later positions generalised first), then prefixes.

        This gives rules like "unfold a named type wherever it appears" a
        home (e.g. ``("subsume_loc", "*", "named")``) while keeping lookup
        deterministic — the cornerstone of no-backtracking search.
        """
        head, rest = key[0], key[1:]
        out = []
        for mask in _wildcard_masks(len(rest)):
            out.append((head,) + tuple("*" if star else comp
                                       for comp, star in zip(rest, mask)))
        for klen in range(len(key) - 1, 0, -1):
            out.append(key[:klen])
        return out

    def _dispatch_table(self) -> dict[tuple, Rule]:
        """The flat table for the current generation, dropped whenever a
        rule registration changes what any key could resolve to."""
        if self._dispatch_generation != self._generation:
            self._dispatch = {}
            self._dispatch_generation = self._generation
        return self._dispatch

    def lookup(self, f: BasicGoal) -> Rule:
        """Select the unique applicable rule for ``F`` — case (5) of proof
        search.  No backtracking: exactly one rule is chosen.

        With ``RC_COMPILE`` on, resolved keys are remembered in a flat
        per-generation table so the steady-state lookup is one dict hit;
        misses (including every erroring key) take the interpreted path,
        which keeps rule choice and error text identical by construction.
        """
        key = f.dispatch_key()
        if COMPILE.enabled:
            table = self._dispatch_table()
            rule = table.get(key)
            if rule is not None:
                self.dispatch_hits += 1
                return rule
            rule = self._lookup_slow(key, f)
            table[key] = rule
            return rule
        return self._lookup_slow(key, f)

    def _lookup_slow(self, key: tuple, f: BasicGoal) -> Rule:
        bucket: Optional[list[Rule]] = None
        for candidate in self._candidates(key):
            bucket = self._rules.get(candidate)
            if bucket:
                break
        if not bucket:
            raise RuleError(
                f"no typing rule applies to {f.describe()} "
                f"(dispatch key {key})")
        top = [r for r in bucket if r.priority == bucket[0].priority]
        if len(top) > 1:
            raise RuleError(
                f"ambiguous typing rules for {key}: "
                f"{[r.name for r in top]} (assign priorities)")
        return bucket[0]

    def all_rules(self) -> list[Rule]:
        return [r for bucket in self._rules.values() for r in bucket]

    def __len__(self) -> int:
        return len(self.all_rules())
