"""Lithium proof contexts: the unrestricted context Γ and the resource
context Δ (§5).

Γ holds universally quantified variables and pure facts — duplicable.
Δ holds atoms — non-duplicable, used at most once.  By construction Δ never
contains two typing assumptions for the same location/value subject, which
is what makes atom lookup (case 6d) deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..pure.memo import MEMO
from ..pure.terms import Subst, Term, Var
from ..trace import tracer as _trace
from .goals import Atom


class ContextError(Exception):
    """Raised on context-discipline violations (e.g. duplicate subjects)."""


@dataclass
class Gamma:
    """The unrestricted context: parameters and pure facts."""

    variables: list[Var] = field(default_factory=list)
    facts: list[Term] = field(default_factory=list)
    # Incremental resolved_facts cache: (subst, subst.generation,
    # resolved list, number of facts resolved).  ``facts`` is append-only
    # (see add_fact) and a Subst's resolutions only change when its
    # generation bumps, so the cached prefix stays valid and only the
    # tail of new facts needs resolving.
    _rf_state: Optional[tuple] = field(default=None, init=False,
                                       repr=False, compare=False)

    def copy(self) -> "Gamma":
        return Gamma(list(self.variables), list(self.facts))

    def add_var(self, v: Var) -> None:
        self.variables.append(v)

    def add_fact(self, phi: Term) -> None:
        if phi not in self.facts:
            self.facts.append(phi)
            tr = _trace.CURRENT
            if tr is not None:
                tr.instant("context", "fact_add", fact=repr(phi))

    def resolved_facts(self, subst: Subst) -> list[Term]:
        if not MEMO.enabled:
            return [subst.resolve(f) for f in self.facts]
        state = self._rf_state
        if state is not None and state[0] is subst \
                and state[1] == subst.generation:
            resolved, n = state[2], state[3]
            if n < len(self.facts):
                resolved.extend(subst.resolve(f) for f in self.facts[n:])
                self._rf_state = (subst, subst.generation, resolved,
                                  len(self.facts))
        else:
            resolved = [subst.resolve(f) for f in self.facts]
            self._rf_state = (subst, subst.generation, resolved,
                              len(self.facts))
        return list(resolved)


@dataclass
class Delta:
    """The resource context: a list of atoms, each usable at most once."""

    atoms: list[Atom] = field(default_factory=list)

    def copy(self) -> "Delta":
        return Delta(list(self.atoms))

    def add(self, a: Atom, subst: Subst) -> None:
        """Add an atom.  Two typing atoms for the same subject would make
        lookup ambiguous — the RefinedC discipline prevents this, so we
        check it.  Persistent atoms are deduplicated instead (they are
        duplicable, so a second copy is simply dropped)."""
        subj = subst.resolve(a.subject)
        for existing in self.atoms:
            if subst.resolve(existing.subject) == subj and not subj.has_evars():
                if a.persistent and existing.persistent:
                    return  # duplicable: keep the one we have
                raise ContextError(
                    f"duplicate resource for subject {subj!r}: "
                    f"{existing!r} and {a!r}")
        self.atoms.append(a)
        tr = _trace.CURRENT
        if tr is not None:
            tr.instant("context", "atom_add", atom=repr(a),
                       persistent=a.persistent)

    def find_related(self, subject: Term, subst: Subst) -> Optional[Atom]:
        """Find the unique atom whose subject matches ``subject``
        syntactically (after evar resolution)."""
        subject = subst.resolve(subject)
        for a in self.atoms:
            if subst.resolve(a.subject) == subject:
                return a
        return None

    def remove(self, a: Atom) -> None:
        self.atoms.remove(a)
        tr = _trace.CURRENT
        if tr is not None:
            tr.instant("context", "atom_consume", atom=repr(a))

    def __iter__(self):
        return iter(self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)
