"""Lithium: separation logic programming with goal-directed,
non-backtracking proof search (paper §5).

The RefinedC type system is expressed as an open set of rules over this
engine; the engine itself knows nothing about C or types — it interprets
goals, manages the Γ/Δ contexts and sealed evars, and dispatches basic
goals to registered rules.
"""

from .context import ContextError, Delta, Gamma
from .derivation import DerivationBuilder, DNode
from .goals import (Atom, BasicGoal, GBasic, GConj, GExists, GForall, Goal,
                    GSep, GTrue, GWand, HAtom, HExists, HPure, HSep, LeftGoal,
                    conj, hseps, seps, wands)
from .rules import Rule, RuleError, RuleRegistry
from .search import SearchState, Stats, VerificationError

__all__ = [
    "Atom", "BasicGoal", "ContextError", "DNode", "Delta",
    "DerivationBuilder", "GBasic", "GConj", "GExists", "GForall", "Gamma",
    "Goal", "GSep", "GTrue", "GWand", "HAtom", "HExists", "HPure", "HSep",
    "LeftGoal", "Rule", "RuleError", "RuleRegistry", "SearchState", "Stats",
    "VerificationError", "conj", "hseps", "seps", "wands",
]
