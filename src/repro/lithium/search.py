"""The Lithium proof-search interpreter (§5).

Implements the seven-case, goal-directed, **non-backtracking** search::

    1. G = True                — succeed
    2. G = G₁ ∧ G₂             — fork (contexts copied, evar store shared)
    3. G = ∀x. G'(x)           — introduce a fresh universal variable
    4. G = ∃x. G'(x)           — introduce a fresh *sealed* evar
    5. G = F                   — select the unique typing rule for F
    6. G = H ∗ G'              — reduce H in place:
       a. (H₁ ∗ H₂) ∗ G'       — reassociate
       b. (∃x. H) ∗ G'         — hoist to case 4
       c. ⌜φ⌝ ∗ G'             — discharge the pure side condition
       d. A ∗ G'               — consume the related context atom, emitting
                                  a subsumption judgment
    7. G = H −∗ G'             — introduce H:
       a./b. reassociate/hoist to case 3
       c. ⌜φ⌝ −∗ G'            — normalise φ and add it to Γ
       d. A −∗ G'              — add the atom to Δ

No case ever tries more than one alternative — the absence of backtracking
is *structural*.  The ``Stats`` object records enough to verify this claim
(and to regenerate the Rules/∃/⌜φ⌝ columns of Figure 7).

Evar handling follows the paper: evars created by case 4 are *sealed*;
they are only instantiated when a side condition is an equality (unseal and
unify) or via user-extensible simplification rules (e.g. ``?xs ≠ []``
becomes ``?xs := ?y :: ?ys``).
"""

from __future__ import annotations

import itertools as _itertools
import sys
import time
from dataclasses import dataclass, field, fields as _dc_fields
from typing import Callable, Optional, Sequence

from ..pure.simplify import simplify, simplify_hyp
from ..pure.solver import Outcome, PureSolver
from ..pure.terms import (App, EVar, Lit, Sort, Subst, Term, Var, cons,
                          fresh_evar, msingle, munion)
from ..pure.unify import unify
from ..trace import tracer as _trace
from ..trace.stuck import build_stuck_report
from .context import ContextError, Delta, Gamma
from .derivation import DerivationBuilder, DNode
from .goals import (Atom, BasicGoal, GBasic, GConj, GExists, GForall, Goal,
                    GSep, GTrue, GWand, HAtom, HExists, HPure, HSep)
from .rules import RuleError, RuleRegistry

_RECURSION_LIMIT = 100_000

_FRESH_VAR_COUNTER = _itertools.count(1)


class VerificationError(Exception):
    """A failed verification, with RefinedC-style diagnostics (§2.1)."""

    def __init__(self, reason: str, location: Sequence[str] = (),
                 side_condition: Optional[Term] = None,
                 context_facts: Sequence[Term] = (),
                 function: str = "") -> None:
        self.reason = reason
        self.location = list(location)
        self.side_condition = side_condition
        self.context_facts = list(context_facts)
        self.function = function
        # Stuck-goal report (repro.trace.stuck.StuckGoalReport), attached
        # at the failure site when tracing is enabled.  Rendered by
        # ``VerificationOutcome.report()``, never by ``format()`` — the
        # formatted error text must stay byte-identical with and without
        # tracing (it feeds the determinism fingerprints).
        self.stuck = None
        super().__init__(self.format())

    def __reduce__(self):
        # Default exception pickling would round-trip only ``self.args``
        # (the formatted string) and mis-reconstruct it as ``reason``.
        # Rebuild from the structured fields so errors survive the process
        # pool of the parallel verification driver byte-identically.  The
        # third element restores extra state (the stuck-goal report).
        return (VerificationError,
                (self.reason, self.location, self.side_condition,
                 self.context_facts, self.function),
                {"stuck": self.stuck})

    def format(self) -> str:
        lines = []
        where = f' in function "{self.function}"' if self.function else ""
        if self.side_condition is not None:
            lines.append(f"Cannot prove side condition "
                         f"\"{self.side_condition!r}\"{where}.")
        else:
            lines.append(f"Verification failed{where}: {self.reason}")
        if self.location:
            lines.append(f"Location: {self.location[-1]}")
        if len(self.location) > 1:
            lines.append("up to: " + "; ".join(self.location[:-1]))
        if self.side_condition is not None and self.reason:
            lines.append(self.reason)
        return "\n".join(lines)


# An evar simplification rule: given a side condition containing evars,
# either make progress (bind evars through state.bind_evar / return a
# replacement proposition) or return None.
EvarRule = Callable[[Term, "SearchState"], Optional[Term]]


#: The cache/engine telemetry fields of :class:`Stats` — the single
#: source of truth for what ``counters()`` excludes.  Telemetry values
#: vary with the cache/compile configuration and the schedule, while
#: ``counters()`` must stay byte-identical across all of them (it feeds
#: the fuzz-corpus fingerprints and the driver's on-disk result cache).
#: The driver metrics, the observability ledger and the tests all import
#: this tuple instead of repeating the field names.
TELEMETRY_KEYS = ("solver_cache_hits", "terms_interned",
                  "dispatch_table_hits", "terms_compiled")

#: Wall-clock fields of :class:`Stats` — excluded from ``counters()``
#: for the same reason the trace exporters strip timestamps.
WALL_CLOCK_KEYS = ("solver_time",)


@dataclass
class Stats:
    """Search statistics — the raw material for Figure 7's columns."""

    rule_applications: int = 0
    rules_used: set = field(default_factory=set)
    evars_created: int = 0
    evars_instantiated: int = 0
    side_conditions_auto: int = 0
    side_conditions_manual: int = 0
    manual_conditions: list = field(default_factory=list)
    atom_matches: int = 0
    conj_forks: int = 0
    backtracks: int = 0   # must stay 0 — asserted by the benchmarks
    solver_calls: int = 0
    solver_time: float = 0.0   # wall seconds spent inside PureSolver.prove
    # Cache/engine telemetry (see TELEMETRY_KEYS above).  Deliberately
    # NOT part of counters().
    solver_cache_hits: int = 0
    terms_interned: int = 0
    dispatch_table_hits: int = 0
    terms_compiled: int = 0

    def counters(self) -> dict:
        """The deterministic portion of the statistics: every counter, but
        no wall-clock measurement (:data:`WALL_CLOCK_KEYS`) and no engine
        telemetry (:data:`TELEMETRY_KEYS`).  Two verifications of the same
        function must produce equal ``counters()`` regardless of machine
        load, process, scheduling, or cache/compile configuration — the
        determinism tests assert exactly this."""
        out = {}
        for f in _dc_fields(self):
            if f.name in TELEMETRY_KEYS or f.name in WALL_CLOCK_KEYS:
                continue
            value = getattr(self, f.name)
            if f.name == "rules_used":
                value = sorted(value)
            elif f.name == "manual_conditions":
                value = [list(m) for m in value]
            out[f.name] = value
        return out


class SearchState:
    """All mutable state of one Lithium proof search."""

    def __init__(self, registry: RuleRegistry, solver: PureSolver,
                 make_subsume: Callable[[Atom, Atom, Goal], BasicGoal],
                 function: str = "", stats: Optional[Stats] = None,
                 subst: Optional[Subst] = None) -> None:
        self.registry = registry
        self.solver = solver
        self.make_subsume = make_subsume
        self.function = function
        self.gamma = Gamma()
        self.delta = Delta()
        self.subst = subst if subst is not None else Subst()
        self.sealed: set[int] = set()
        self.stats = stats if stats is not None else Stats()
        self.derivation = DerivationBuilder()
        self.location: list[str] = []
        self.evar_rules: list[EvarRule] = list(_DEFAULT_EVAR_RULES)
        # Side conditions whose evars were not determined yet; re-checked
        # once the search completes (sound: nothing is assumed meanwhile).
        self.deferred: list[tuple] = []

    # ------------------------------------------------------------
    # Naming and context helpers.
    # ------------------------------------------------------------
    def fresh_var(self, sort: Sort, hint: str = "x") -> Var:
        # The counter is global so that skolem names stay unique across the
        # several sub-proofs of one function (entry + loop-invariant blocks).
        v = Var(f"{hint}${next(_FRESH_VAR_COUNTER)}", sort)
        self.gamma.add_var(v)
        return v

    def fresh_sealed_evar(self, sort: Sort, hint: str = "") -> EVar:
        ev = fresh_evar(sort, hint)
        self.sealed.add(ev.eid)
        self.stats.evars_created += 1
        tr = _trace.CURRENT
        if tr is not None:
            tr.instant("evar", "seal", evar=repr(ev))
        return ev

    def push_location(self, desc: str) -> None:
        self.location.append(desc)

    def pop_location(self) -> None:
        self.location.pop()

    def fail(self, reason: str, side_condition: Optional[Term] = None) -> None:
        raise self._error(reason, list(self.location), side_condition,
                          self.gamma.resolved_facts(self.subst))

    def _error(self, reason: str, location: list,
               side_condition: Optional[Term],
               facts: Sequence[Term]) -> VerificationError:
        """Build a VerificationError; with tracing on, attach the
        stuck-goal report (§2.1): the failing goal, the Γ/Δ snapshot and
        the last trace events leading here."""
        err = VerificationError(reason, location, side_condition,
                                facts, self.function)
        tr = _trace.CURRENT
        if tr is not None:
            tr.instant("search", "fail", reason=reason,
                       side_condition=(repr(side_condition)
                                       if side_condition is not None
                                       else None))
            err.stuck = build_stuck_report(
                tr, function=self.function, reason=reason,
                location=location,
                side_condition=(repr(side_condition)
                                if side_condition is not None else None),
                gamma=[repr(f) for f in facts],
                delta=[repr(a.resolve(self.subst)) for a in self.delta])
        return err

    def _prove_timed(self, facts, phi):
        """Call the pure solver, attributing its wall time to the solver
        phase of the driver metrics (the search/solver split of §7)."""
        t0 = time.perf_counter()
        hits0 = getattr(self.solver, "cache_hits", 0)
        try:
            return self.solver.prove(facts, phi)
        finally:
            self.stats.solver_time += time.perf_counter() - t0
            self.stats.solver_calls += 1
            self.stats.solver_cache_hits += \
                getattr(self.solver, "cache_hits", 0) - hits0

    # ------------------------------------------------------------
    # The interpreter.
    # ------------------------------------------------------------
    def run(self, goal: Goal) -> DNode:
        """Execute proof search for ``goal``; returns the derivation root.

        Raises :class:`VerificationError` on failure.  Never backtracks.
        """
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, _RECURSION_LIMIT))
        try:
            self._run(goal)
            self._check_deferred()
        finally:
            sys.setrecursionlimit(old_limit)
        return self.derivation.root

    def _check_deferred(self) -> None:
        """Re-check the side conditions deferred while their evars were
        undetermined.  By now everything must be resolved and provable."""
        pending = self.deferred
        self.deferred = []
        for phi, origin, location, gamma in pending:
            phi = simplify(self.subst.resolve(phi))
            if phi.has_evars():
                raise self._error(
                    f"side condition contains evars that were never "
                    f"instantiated" + (f" (from {origin})" if origin else ""),
                    location, phi, gamma.resolved_facts(self.subst))
            if isinstance(phi, Lit) and phi.value is True:
                self.stats.side_conditions_auto += 1
                continue
            result = self._prove_timed(gamma.resolved_facts(self.subst), phi)
            if result.outcome is Outcome.FAILED:
                raise self._error(
                    "the default solver and the registered tactics cannot "
                    f"discharge it" + (f" (from {origin})" if origin else ""),
                    location, phi, gamma.resolved_facts(self.subst))
            self.derivation.leaf("side_condition", repr(phi),
                                 solver=result.solver, origin=origin,
                                 outcome=result.outcome.value)
            if result.outcome is Outcome.DEFAULT:
                self.stats.side_conditions_auto += 1
            else:
                self.stats.side_conditions_manual += 1
                self.stats.manual_conditions.append(
                    (repr(phi), result.solver, origin))

    def _run(self, goal: Goal) -> None:
        tr = _trace.CURRENT
        if tr is not None:
            # The per-SearchState step event: one instant per interpreter
            # dispatch, carrying the goal kind (the case of §5 taken).
            tr.instant("search", "step", goal=type(goal).__name__)
        # Case 1: True.
        if isinstance(goal, GTrue):
            self.derivation.leaf("true")
            return
        # Case 2: conjunction — fork with copied contexts (evars shared,
        # exactly like Coq evars across conjuncts).
        if isinstance(goal, GConj):
            self.stats.conj_forks += 1
            saved_gamma, saved_delta = self.gamma, self.delta
            for i, sub in enumerate(goal.goals):
                label = goal.labels[i] if i < len(goal.labels) else f"case {i+1}"
                self.gamma = saved_gamma.copy()
                self.delta = saved_delta.copy()
                self.derivation.push("conj_branch", label)
                self.push_location(label)
                if tr is not None:
                    tr.begin("search", "conj_branch", label=label)
                try:
                    self._run(sub)
                finally:
                    if tr is not None:
                        tr.end()
                    self.pop_location()
                    self.derivation.pop()
            self.gamma, self.delta = saved_gamma, saved_delta
            return
        # Case 3: universal quantification.
        if isinstance(goal, GForall):
            v = self.fresh_var(goal.sort, goal.hint or "x")
            self.derivation.leaf("forall_intro", repr(v))
            self._run(goal.body(v))
            return
        # Case 4: existential quantification — fresh sealed evar.
        if isinstance(goal, GExists):
            ev = self.fresh_sealed_evar(goal.sort, goal.hint)
            self.derivation.leaf("exists_intro", repr(ev))
            self._run(goal.body(ev))
            return
        # Case 5: basic goal — unique rule selection.
        if isinstance(goal, GBasic):
            f = goal.f.resolve(self.subst)
            try:
                rule = self.registry.lookup(f)
            except RuleError as exc:
                self.fail(str(exc))
                raise AssertionError  # unreachable
            self.stats.rule_applications += 1
            self.stats.rules_used.add(rule.name)
            loc_label = f.location_label()
            if loc_label is not None:
                self.push_location(loc_label)
            self.derivation.push("rule", rule.name, judgment=f.describe())
            if tr is not None:
                # Rule spans live in the "rule" category and are *named*
                # after the typing rule, so the Chrome view and the
                # per-rule profile read directly in paper vocabulary.
                # ``key`` is the goal's full dispatch key — the (judgment,
                # type-constructor) pair coverage signatures are built on.
                tr.begin("rule", rule.name, judgment=f.describe(),
                         goal=type(f).__name__,
                         key=":".join(str(c) for c in f.dispatch_key()))
            try:
                premise = rule.apply(f, self)
                self._run(premise)
            finally:
                if tr is not None:
                    tr.end()
                self.derivation.pop()
                if loc_label is not None:
                    self.pop_location()
            return
        # Case 6: H ∗ G.
        if isinstance(goal, GSep):
            h, g = goal.h, goal.g
            if isinstance(h, HSep):                              # 6a
                self._run(GSep(h.h1, GSep(h.h2, g)))
                return
            if isinstance(h, HExists):                           # 6b
                self._run(GExists(h.sort, h.hint,
                                  lambda x: GSep(h.body(x), g)))
                return
            if isinstance(h, HPure):                             # 6c
                self._solve_side_condition(h.phi, h.origin)
                self._run(g)
                return
            if isinstance(h, HAtom):                             # 6d
                self._consume_atom(h.a, g)
                return
            raise TypeError(f"unknown left-goal {h!r}")
        # Case 7: H −∗ G.
        if isinstance(goal, GWand):
            h, g = goal.h, goal.g
            if isinstance(h, HSep):                              # 7a
                self._run(GWand(h.h1, GWand(h.h2, g)))
                return
            if isinstance(h, HExists):                           # 7b
                self._run(GForall(h.sort, h.hint,
                                  lambda x: GWand(h.body(x), g)))
                return
            if isinstance(h, HPure):                             # 7c
                facts = simplify_hyp(self.subst.resolve(h.phi))
                for fact in facts:
                    if isinstance(fact, Lit) and fact.value is False:
                        # Vacuously true branch (e.g. the dead arm of
                        # IF-BOOL after an optional case split).
                        self.derivation.leaf("vacuous", "False hypothesis")
                        return
                    self.gamma.add_fact(fact)
                    self.derivation.leaf("assume", repr(fact))
                self._run(g)
                return
            if isinstance(h, HAtom):                             # 7d
                atom = h.a.resolve(self.subst)
                try:
                    self.delta.add(atom, self.subst)
                except ContextError as exc:
                    self.fail(str(exc))
                self.derivation.leaf("intro_atom", repr(atom))
                self._run(g)
                return
            raise TypeError(f"unknown left-goal {h!r}")
        raise TypeError(f"unknown goal {goal!r}")

    # ------------------------------------------------------------
    # Case 6d: atom consumption via subsumption.
    # ------------------------------------------------------------
    def _consume_atom(self, want: Atom, cont: Goal) -> None:
        want = want.resolve(self.subst)
        subject = self.subst.resolve(want.subject)
        have = self.delta.find_related(subject, self.subst)
        if have is None:
            self.fail(
                f"no ownership available for {subject!r} "
                f"(required: {want!r}); the context owns: "
                f"{[repr(a) for a in self.delta]}")
            raise AssertionError  # unreachable
        if not have.persistent:
            self.delta.remove(have)
        self.stats.atom_matches += 1
        self.derivation.push("atom_match", repr(subject),
                             have=repr(have), want=repr(want))
        tr = _trace.CURRENT
        if tr is not None:
            tr.begin("search", "atom_match", subject=repr(subject),
                     have=repr(have), want=repr(want))
        try:
            self._run(GBasic(self.make_subsume(have, want, cont)))
        finally:
            if tr is not None:
                tr.end()
            self.derivation.pop()

    # ------------------------------------------------------------
    # Case 6c: pure side conditions and evar instantiation.
    # ------------------------------------------------------------
    def _solve_side_condition(self, phi: Term, origin: str = "") -> None:
        phi = simplify(self.subst.resolve(phi))
        guard = 0
        while phi.has_evars() and guard < 8:
            guard += 1
            progressed = self._try_instantiate_evars(phi)
            new_phi = simplify(self.subst.resolve(phi))
            if not progressed and new_phi == phi:
                # The heuristics cannot determine the evars now; defer the
                # condition — a later condition (processed left-to-right,
                # §5) may instantiate them, and the deferred queue is
                # re-checked at the end of the search.
                self.deferred.append(
                    (phi, origin, list(self.location),
                     self.gamma))
                self.derivation.leaf("side_condition_deferred", repr(phi),
                                     origin=origin)
                tr = _trace.CURRENT
                if tr is not None:
                    tr.instant("search", "side_condition_deferred",
                               phi=repr(phi), origin=origin)
                return
            phi = new_phi
        if isinstance(phi, Lit) and phi.value is True:
            self.derivation.leaf("side_condition", repr(phi),
                                 solver="trivial", origin=origin)
            self.stats.side_conditions_auto += 1
            return
        facts = self.gamma.resolved_facts(self.subst)
        result = self._prove_timed(facts, phi)
        if result.outcome is Outcome.FAILED:
            self.fail(
                f"the default solver and the registered tactics cannot "
                f"discharge it" + (f" (from {origin})" if origin else ""),
                side_condition=phi)
        self.derivation.leaf("side_condition", repr(phi),
                             solver=result.solver, origin=origin,
                             hypotheses=[repr(f) for f in facts],
                             outcome=result.outcome.value)
        if result.outcome is Outcome.DEFAULT:
            self.stats.side_conditions_auto += 1
        else:
            self.stats.side_conditions_manual += 1
            self.stats.manual_conditions.append(
                (repr(phi), result.solver, origin))

    def _try_instantiate_evars(self, phi: Term) -> bool:
        """The two heuristics of §5: (1) unseal-and-unify equalities;
        (2) user-extensible simplification rules."""
        before = len(self.subst.snapshot())
        tr = _trace.CURRENT
        if isinstance(phi, App) and phi.op == "eq":
            if unify(phi.args[0], phi.args[1], self.subst):
                gained = len(self.subst.snapshot()) - before
                self.stats.evars_instantiated += gained
                self.derivation.leaf("evar_unify", repr(phi), count=gained)
                if tr is not None:
                    tr.instant("evar", "instantiate", via="unify",
                               phi=repr(phi), count=gained)
                return True
        if isinstance(phi, App) and phi.op == "and":
            # Solve evar-free conjuncts later; try unification on the
            # equality conjuncts first (left-to-right, as Lithium does).
            progressed = False
            for part in phi.args:
                part = self.subst.resolve(part)
                if part.has_evars() and isinstance(part, App) and part.op == "eq":
                    if unify(part.args[0], part.args[1], self.subst):
                        progressed = True
            if progressed:
                gained = len(self.subst.snapshot()) - before
                self.stats.evars_instantiated += gained
                if tr is not None:
                    tr.instant("evar", "instantiate", via="unify-conj",
                               phi=repr(phi), count=gained)
                return True
        if isinstance(phi, App) and phi.op == "eq" \
                and phi.args[0].sort is Sort.INT:
            if self._solve_linear_evar(phi):
                gained = len(self.subst.snapshot()) - before
                self.stats.evars_instantiated += gained
                self.derivation.leaf("evar_linear_solve", repr(phi))
                if tr is not None:
                    tr.instant("evar", "instantiate", via="linear-solve",
                               phi=repr(phi), count=gained)
                return True
        for rule in self.evar_rules:
            replacement = rule(phi, self)
            if replacement is not None:
                gained = len(self.subst.snapshot()) - before
                self.stats.evars_instantiated += gained
                self.derivation.leaf("evar_simplify", repr(phi))
                if tr is not None:
                    tr.instant("evar", "instantiate", via="simplify-rule",
                               phi=repr(phi), count=gained)
                return True
        return False

    def _solve_linear_evar(self, phi: Term) -> bool:
        """Solve a linear integer equality for a single evar (sound: the
        binding is the unique solution), e.g. ``?n - 1 = m`` gives
        ``?n := m + 1``."""
        from ..pure.linarith import linearise
        from ..pure.terms import add, intlit, mul, neg
        atoms: set[Term] = set()
        try:
            diff = linearise(phi.args[0], atoms) - linearise(phi.args[1],
                                                             atoms)
        except Exception:
            return False
        evar_keys = [k for k in diff.coeffs if isinstance(k, EVar)]
        if len(evar_keys) != 1:
            return False
        ev = evar_keys[0]
        coeff = diff.coeffs[ev]
        if abs(coeff) != 1:
            return False
        # The evar must not occur inside any other (opaque) atom.
        for k in diff.coeffs:
            if k is not ev and any(s == ev for s in k.subterms()):
                return False
        # ev = -(rest + const) / coeff
        parts = []
        for k, v in diff.coeffs.items():
            if k is ev:
                continue
            c = int(v / (-coeff))
            if v / (-coeff) != c:
                return False
            parts.append(mul(intlit(c), k) if c != 1 else k)
        const = diff.const / (-coeff)
        if const != int(const):
            return False
        if int(const) != 0 or not parts:
            parts.append(intlit(int(const)))
        solution = add(*parts) if len(parts) > 1 else parts[0]
        if solution.sort is not Sort.INT or ev in solution.evars():
            return False
        try:
            self.subst.bind_evar(ev, solution)
        except Exception:
            return False
        return True


# ---------------------------------------------------------------------
# Default evar simplification rules (§5's examples).
# ---------------------------------------------------------------------

def _evar_rule_nonempty_list(phi: Term, state: SearchState) -> Optional[Term]:
    """``?xs ≠ []``  ~~>  ``?xs := ?y :: ?ys`` (the paper's example)."""
    if not (isinstance(phi, App) and phi.op == "not"):
        return None
    inner = phi.args[0]
    if not (isinstance(inner, App) and inner.op == "eq"):
        return None
    a, b = inner.args
    for x, y in ((a, b), (b, a)):
        if isinstance(x, EVar) and x.sort is Sort.LIST \
                and isinstance(y, App) and y.op == "nil":
            h = fresh_evar(Sort.INT, "y")
            t = fresh_evar(Sort.LIST, "ys")
            state.sealed.update({h.eid, t.eid})
            state.subst.bind_evar(x, cons(h, t))
            return phi
    return None


def _evar_rule_nonempty_mset(phi: Term, state: SearchState) -> Optional[Term]:
    """``?s ≠ ∅``  ~~>  ``?s := {[?k]} ⊎ ?rest`` (multiset analogue)."""
    if not (isinstance(phi, App) and phi.op == "not"):
        return None
    inner = phi.args[0]
    if not (isinstance(inner, App) and inner.op == "eq"):
        return None
    a, b = inner.args
    for x, y in ((a, b), (b, a)):
        if isinstance(x, EVar) and x.sort is Sort.MSET \
                and isinstance(y, App) and y.op == "mempty":
            k = fresh_evar(Sort.INT, "k")
            rest = fresh_evar(Sort.MSET, "rest")
            state.sealed.update({k.eid, rest.eid})
            state.subst.bind_evar(x, munion(msingle(k), rest))
            return phi
    return None


def _evar_rule_bool_decision(phi: Term, state: SearchState) -> Optional[Term]:
    """A side condition that is a bare boolean evar (or its negation) —
    e.g. an existentially quantified optional condition — is decided by
    the branch that generated it: commit to True (resp. False)."""
    if isinstance(phi, EVar) and phi.sort is Sort.BOOL:
        state.subst.bind_evar(phi, Lit(True))
        return phi
    if isinstance(phi, App) and phi.op == "not" \
            and isinstance(phi.args[0], EVar) \
            and phi.args[0].sort is Sort.BOOL:
        state.subst.bind_evar(phi.args[0], Lit(False))
        return phi
    return None


_DEFAULT_EVAR_RULES: list[EvarRule] = [
    _evar_rule_nonempty_list,
    _evar_rule_nonempty_mset,
    _evar_rule_bool_decision,
]
