"""Lithium goal syntax (§5 of the paper).

A Lithium judgment has the form ``Γ; Δ ⊩ G`` where::

    Atom       A ::= ℓ ◁ₗ τ | v ◁ᵥ τ | ...
    Basic goal F ::= ⊢stmt s | A₁ <: A₂ {G} | ...
    Goal       G ::= True | F | H ∗ G | H −∗ G | G₁ ∧ G₂ | ∀x. G | ∃x. G
    Left-goal  H ::= ⌜φ⌝ | A | H ∗ H | ∃x. H

The crucial restriction — left-goals ``H`` exclude ``∧``, ``∀`` and ``−∗`` —
is what eliminates backtracking: a left-goal can always be reduced in place
to atoms and pure facts (see :mod:`repro.lithium.search`).

Binders (∀/∃) are in higher-order abstract syntax: the body is a Python
function from a term to a goal, which makes fresh-variable introduction and
evar creation direct.

Basic goals ``F`` are *abstract* here: the RefinedC layer defines concrete
judgments (⊢stmt, ⊢expr, ⊢binop, subsumption, ...) as subclasses of
:class:`BasicGoal` and registers typing rules for them.  This is exactly the
paper's architecture: Lithium has "no built-in knowledge about atoms and
atomic formulas" (§8) and relies on registered rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..pure.terms import TRUE, Sort, Subst, Term


class Atom:
    """An atom ``A``: a non-duplicable resource assertion.

    Subclasses must provide:

    * ``subject`` — the location/value term the atom is *about*.  Case (6d)
      of proof search matches a goal atom against a context atom with the
      same subject ("Atoms A and A' are related if they both assign types
      to the same value or location").
    * ``resolve(subst)`` — apply an evar substitution.
    """

    @property
    def subject(self) -> Term:
        raise NotImplementedError

    @property
    def persistent(self) -> bool:
        """Persistent (duplicable) atoms — e.g. shared/invariant-governed
        resources like the spinlock's atomic boolean — are not consumed when
        matched and may be introduced repeatedly."""
        return False

    def resolve(self, subst: Subst) -> "Atom":
        raise NotImplementedError


class BasicGoal:
    """A basic goal ``F``: a RefinedC typing or subsumption judgment.

    ``dispatch_key`` determines which typing rules can apply — this encodes
    the paper's syntax-directedness: "types and code inside F uniquely
    determine the applicable typing rule".
    """

    def dispatch_key(self) -> tuple:
        raise NotImplementedError

    def resolve(self, subst: Subst) -> "BasicGoal":
        return self

    def describe(self) -> str:
        return repr(self)

    def location_label(self) -> Optional[str]:
        """A human-readable program location for error messages; the engine
        keeps it on the location stack while the premise is checked."""
        return None


# ---------------------------------------------------------------------
# Goals.
# ---------------------------------------------------------------------

class Goal:
    """Base class for goals ``G``."""


@dataclass
class GTrue(Goal):
    """The trivially provable goal."""


@dataclass
class GBasic(Goal):
    f: BasicGoal


@dataclass
class GSep(Goal):
    """``H ∗ G`` — prove/consume ``H``, then continue with ``G``."""

    h: "LeftGoal"
    g: Goal


@dataclass
class GWand(Goal):
    """``H −∗ G`` — introduce ``H`` into the context, then prove ``G``."""

    h: "LeftGoal"
    g: Goal


@dataclass
class GConj(Goal):
    """``G₁ ∧ G₂ ∧ ...`` — fork: prove every conjunct (same resources)."""

    goals: tuple[Goal, ...]
    labels: tuple[str, ...] = ()   # optional branch labels for diagnostics


@dataclass
class GForall(Goal):
    """``∀x. G(x)`` — introduce a fresh universal variable."""

    sort: Sort
    hint: str
    body: Callable[[Term], Goal]


@dataclass
class GExists(Goal):
    """``∃x. G(x)`` — introduce a fresh (sealed) evar."""

    sort: Sort
    hint: str
    body: Callable[[Term], Goal]


# ---------------------------------------------------------------------
# Left-goals.
# ---------------------------------------------------------------------

class LeftGoal:
    """Base class for left-goals ``H`` (no ∧, ∀, −∗ — by design)."""


@dataclass
class HPure(LeftGoal):
    """``⌜φ⌝`` — a pure proposition."""

    phi: Term
    # Free-form description used in error messages, e.g. the source
    # annotation this condition came from.
    origin: str = ""


@dataclass
class HAtom(LeftGoal):
    a: Atom


@dataclass
class HSep(LeftGoal):
    h1: LeftGoal
    h2: LeftGoal


@dataclass
class HExists(LeftGoal):
    sort: Sort
    hint: str
    body: Callable[[Term], LeftGoal]


# ---------------------------------------------------------------------
# Convenience builders.
# ---------------------------------------------------------------------

def seps(hs: Sequence[LeftGoal], g: Goal) -> Goal:
    """``h₁ ∗ h₂ ∗ ... ∗ g``."""
    out = g
    for h in reversed(list(hs)):
        out = GSep(h, out)
    return out


def wands(hs: Sequence[LeftGoal], g: Goal) -> Goal:
    """``h₁ −∗ h₂ −∗ ... −∗ g``."""
    out = g
    for h in reversed(list(hs)):
        out = GWand(h, out)
    return out


def hseps(hs: Sequence[LeftGoal]) -> LeftGoal:
    hs = list(hs)
    if not hs:
        return HPure(TRUE)
    out = hs[-1]
    for h in reversed(hs[:-1]):
        out = HSep(h, out)
    return out


def conj(*goals: Goal, labels: Sequence[str] = ()) -> Goal:
    flat = [g for g in goals if not isinstance(g, GTrue)]
    if not flat:
        return GTrue()
    if len(flat) == 1:
        return flat[0]
    return GConj(tuple(flat), tuple(labels))
