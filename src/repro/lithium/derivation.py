"""Derivation trees: the proof objects produced by Lithium search.

In the paper, Lithium runs inside Coq and the "proof object" is a genuine
Coq term checked by the Coq kernel.  Our foundational substitute (see
DESIGN.md) is an explicit *derivation tree*: every step of proof search is
recorded — which rule was applied to which judgment, which context atom was
consumed for which goal atom, which side condition was discharged by which
solver under which hypotheses, which evar was instantiated with what.

The independent checker in :mod:`repro.proofs.certcheck` re-validates a
derivation without trusting the search engine, which keeps the engine out
of the TCB exactly as in the paper ("the Lithium interpreter ... need not
be trusted since it generates proofs", §3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class DNode:
    """A node of the derivation tree."""

    kind: str                      # e.g. "rule", "side_condition", "atom_match"
    label: str = ""
    detail: dict[str, Any] = field(default_factory=dict)
    children: list["DNode"] = field(default_factory=list)

    def walk(self) -> Iterator["DNode"]:
        yield self
        for c in self.children:
            yield from c.walk()

    def count(self, kind: str) -> int:
        return sum(1 for n in self.walk() if n.kind == kind)

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        head = f"{pad}{self.kind}" + (f": {self.label}" if self.label else "")
        lines = [head]
        for c in self.children:
            lines.append(c.pretty(indent + 1))
        return "\n".join(lines)


class DerivationBuilder:
    """Builds the derivation tree as search progresses (no backtracking, so
    the tree only ever grows)."""

    def __init__(self) -> None:
        self.root = DNode("proof")
        self._stack: list[DNode] = [self.root]

    def leaf(self, kind: str, label: str = "", **detail: Any) -> DNode:
        node = DNode(kind, label, detail)
        self._stack[-1].children.append(node)
        return node

    def push(self, kind: str, label: str = "", **detail: Any) -> DNode:
        node = self.leaf(kind, label, **detail)
        self._stack.append(node)
        return node

    def pop(self) -> None:
        if len(self._stack) == 1:
            raise RuntimeError("derivation stack underflow")
        self._stack.pop()
