"""Soundness fuzzing: differential testing of the checker against Caesium.

RefinedC's headline theorem (§5, adequacy) says the type checker is
*sound*: an accepted program never exhibits undefined behaviour under the
Caesium operational semantics.  The original proves this once and for all
in Coq; a reproduction cannot inherit that proof, so this package *tests*
the property at scale instead — the validation stance of Flux and Verus:

* :mod:`.generator` emits well-formed annotated C programs over the
  supported subset (ints, pointers, structs, loops, calls, optional/own
  types, atomics), biased toward boundary values;
* :mod:`.oracle` checks each program with the real toolchain and executes
  the accepted ones on :class:`repro.caesium.Machine` over randomised
  inputs and (for atomics) interleavings — any ``UndefinedBehavior`` from
  an accepted program is a soundness bug, any non-``VerificationError``
  escape is a robustness bug;
* :mod:`.mutator` perturbs annotations into designed-unsound variants and
  measures how many the checker kills — mutation testing for a verifier;
* :mod:`.shrink` + :mod:`.corpus` minimise and persist counterexamples as
  deterministic regression tests under ``tests/fuzz/corpus/``;
* :mod:`.campaign` runs time- or count-budgeted campaigns on the
  verification driver's process pool and reports metrics-style JSON.
"""

from .campaign import (FUZZ_SCHEMA_VERSION, CampaignConfig, CampaignStats,
                       Finding, run_campaign)
from .corpus import CorpusEntry, load_corpus, replay_entry, write_entry
from .generator import (DEFAULT_TEMPLATES, TEMPLATES, GenProgram, Mutant,
                        SpecViolation, generate_program)
from .mutator import MutantResult, MutantVerdict, evaluate_mutants
from .oracle import (CheckResult, CheckVerdict, ExecResult, ExecStatus,
                     check_batch, check_program, execute_program, run_witness)
from .shrink import shrink_params

__all__ = [
    "CampaignConfig", "CampaignStats", "CheckResult", "CheckVerdict",
    "CorpusEntry", "DEFAULT_TEMPLATES", "ExecResult", "ExecStatus",
    "FUZZ_SCHEMA_VERSION", "Finding", "GenProgram", "Mutant",
    "MutantResult", "MutantVerdict", "SpecViolation", "TEMPLATES",
    "check_batch", "check_program", "evaluate_mutants", "execute_program",
    "generate_program", "load_corpus", "replay_entry", "run_campaign",
    "run_witness", "shrink_params", "write_entry",
]
