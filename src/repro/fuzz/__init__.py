"""Soundness fuzzing: differential testing of the checker against Caesium.

RefinedC's headline theorem (§5, adequacy) says the type checker is
*sound*: an accepted program never exhibits undefined behaviour under the
Caesium operational semantics.  The original proves this once and for all
in Coq; a reproduction cannot inherit that proof, so this package *tests*
the property at scale instead — the validation stance of Flux and Verus:

* :mod:`.generator` emits well-formed annotated C programs over the
  supported subset (ints, pointers, structs, loops, calls, optional/own
  types, atomics), biased toward boundary values;
* :mod:`.oracle` checks each program with the real toolchain and executes
  the accepted ones on :class:`repro.caesium.Machine` over randomised
  inputs and (for atomics) interleavings — any ``UndefinedBehavior`` from
  an accepted program is a soundness bug, any non-``VerificationError``
  escape is a robustness bug;
* :mod:`.mutator` perturbs annotations into designed-unsound variants and
  measures how many the checker kills — mutation testing for a verifier;
* :mod:`.shrink` + :mod:`.corpus` minimise and persist counterexamples as
  deterministic regression tests under ``tests/fuzz/corpus/``;
* :mod:`.campaign` runs time- or count-budgeted campaigns on the
  verification driver's process pool and reports metrics-style JSON.
"""

from .campaign import (FUZZ_SCHEMA_VERSION, CampaignConfig, CampaignStats,
                       Finding, finalize_findings, merge_shard_stats,
                       run_campaign, run_shard_campaign)
from .corpus import CorpusEntry, load_corpus, replay_entry, write_entry
from .coverage import (COVERAGE_SCHEMA_VERSION, CoverageMap, SteeringState,
                       oracle_keys, template_weights)
from .generator import (DEFAULT_TEMPLATES, TEMPLATES, GenProgram, Mutant,
                        SpecViolation, generate_program)
from .mutator import MutantResult, MutantVerdict, evaluate_mutants
from .oracle import (CheckResult, CheckVerdict, ExecResult, ExecStatus,
                     check_batch, check_program, execute_program, run_witness)
from .shrink import shrink_params

__all__ = [
    "COVERAGE_SCHEMA_VERSION", "CampaignConfig", "CampaignStats",
    "CheckResult", "CheckVerdict", "CorpusEntry", "CoverageMap",
    "DEFAULT_TEMPLATES", "ExecResult", "ExecStatus",
    "FUZZ_SCHEMA_VERSION", "Finding", "GenProgram", "Mutant",
    "MutantResult", "MutantVerdict", "SpecViolation", "SteeringState",
    "TEMPLATES", "check_batch", "check_program", "evaluate_mutants",
    "execute_program", "finalize_findings", "generate_program",
    "load_corpus", "merge_shard_stats", "oracle_keys", "replay_entry",
    "run_campaign", "run_shard_campaign", "run_witness", "shrink_params",
    "template_weights", "write_entry",
]
