"""Campaign coverage: the cumulative map and the steering policy.

:mod:`repro.trace.signature` distills one check into a signature (a set
of behaviour keys); this module accumulates signatures over a campaign
and turns the accumulated picture into *steering* — the greybox loop
that makes corpus-scale fuzzing beat blind sampling:

* :class:`CoverageMap` — per-key hit counts plus the program index that
  first exercised each key.  Maps merge associatively (shard → round →
  campaign) and serialise into the schema-versioned ``coverage`` block
  of the campaign stats JSON.
* :func:`template_weights` — the deterministic steering policy: boost
  generator templates that are under-sampled or recently produced *new*
  coverage keys, damp templates whose signatures have been saturated
  for several rounds.  Weights are a pure function of the merged
  coverage history of *completed* rounds, which is what keeps a sharded
  campaign byte-identical across shard counts: every shard derives the
  same weights from the same round barrier.

Beyond the trace-derived keys, campaigns record two oracle-side
dimensions in the same vocabulary: ``exec:<status>`` for the
differential-execution outcomes and ``ub:<class>`` for the UB classes
the Caesium machine actually demonstrated (via findings or mutant
witnesses) — "how much of the rule set and the UB taxonomy have we ever
exercised?" becomes one number per key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from ..trace.signature import RULE_PREFIX, SIGNATURE_SCHEMA_VERSION

COVERAGE_SCHEMA_VERSION = SIGNATURE_SCHEMA_VERSION

#: steering knobs (documented in DESIGN.md; changing them changes the
#: steered program stream, like changing a generator template does)
EXPLORE_BONUS = 4.0      # extra weight for an unexplored template decays ~1/runs
NOVELTY_BOOST = 2.0      # multiplier while a template keeps finding new keys
SATURATION_DAMP = 0.25   # multiplier once a template has gone stale
STALE_ROUNDS = 2         # rounds without new keys before a template is stale
SATURATED_MIN_RUNS = 8   # never damp a template sampled fewer times than this


@dataclass
class CoverageMap:
    """Cumulative coverage over a campaign (or one shard of one)."""

    counts: dict[str, int] = field(default_factory=dict)
    first_seen: dict[str, int] = field(default_factory=dict)

    def observe(self, keys: Iterable[str], index: int) -> list[str]:
        """Fold one signature in; returns the keys that are new to the
        map (the novelty signal steering feeds on)."""
        new: list[str] = []
        for key in keys:
            if key in self.counts:
                self.counts[key] += 1
                if index < self.first_seen[key]:
                    self.first_seen[key] = index
            else:
                self.counts[key] = 1
                self.first_seen[key] = index
                new.append(key)
        return new

    def merge(self, other: "CoverageMap") -> None:
        """Associative merge (used by the shard/merge protocol)."""
        for key, n in other.counts.items():
            if key in self.counts:
                self.counts[key] += n
                self.first_seen[key] = min(self.first_seen[key],
                                           other.first_seen[key])
            else:
                self.counts[key] = n
                self.first_seen[key] = other.first_seen[key]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.counts)

    def __contains__(self, key: str) -> bool:
        return key in self.counts

    def rule_keys(self) -> list[str]:
        return sorted(k for k in self.counts if k.startswith(RULE_PREFIX))

    def category_counts(self) -> dict[str, int]:
        """Distinct keys per category prefix (``rule``, ``step``, …)."""
        out: dict[str, int] = {}
        for key in self.counts:
            cat = key.split(":", 1)[0]
            out[cat] = out.get(cat, 0) + 1
        return dict(sorted(out.items()))

    def missing(self, baseline_keys: Iterable[str]) -> list[str]:
        """Baseline keys this map never exercised — the coverage-floor
        regression diff."""
        return sorted(k for k in baseline_keys if k not in self.counts)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "coverage_schema_version": COVERAGE_SCHEMA_VERSION,
            "keys": {k: {"count": self.counts[k],
                         "first_seen": self.first_seen[k]}
                     for k in sorted(self.counts)},
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "CoverageMap":
        got = d.get("coverage_schema_version")
        if got != COVERAGE_SCHEMA_VERSION:
            raise ValueError(
                f"coverage schema mismatch: file has {got!r}, "
                f"this build speaks {COVERAGE_SCHEMA_VERSION}")
        m = cls()
        for key, rec in d.get("keys", {}).items():
            m.counts[key] = int(rec["count"])
            m.first_seen[key] = int(rec["first_seen"])
        return m


# ---------------------------------------------------------------------
# Steering.
# ---------------------------------------------------------------------

@dataclass
class SteeringState:
    """Per-template novelty history, updated at round barriers only.

    ``programs`` counts how often each template was generated;
    ``last_new`` records the last round in which a template's programs
    (or their mutants) contributed at least one new coverage key."""

    programs: dict[str, int] = field(default_factory=dict)
    new_keys: dict[str, int] = field(default_factory=dict)
    last_new: dict[str, int] = field(default_factory=dict)

    def observe(self, template: str, n_new: int, round_no: int) -> None:
        self.programs[template] = self.programs.get(template, 0) + 1
        if n_new:
            self.new_keys[template] = self.new_keys.get(template, 0) + n_new
            self.last_new[template] = round_no


def template_weights(names: list[str], state: SteeringState,
                     round_no: int) -> dict[str, float]:
    """The steering policy, a pure function of the merged history.

    * never-sampled templates get the full exploration bonus;
    * templates that found new keys within :data:`STALE_ROUNDS` rounds
      keep a :data:`NOVELTY_BOOST`;
    * templates sampled at least :data:`SATURATED_MIN_RUNS` times with
      no new key for more than :data:`STALE_ROUNDS` rounds are damped to
      :data:`SATURATION_DAMP` — never to zero: a saturated template can
      still catch a regression, it just stops dominating the budget.
    """
    weights: dict[str, float] = {}
    for name in names:
        runs = state.programs.get(name, 0)
        weight = 1.0 + EXPLORE_BONUS / (1.0 + runs)
        last = state.last_new.get(name)
        if runs == 0 or (last is not None
                         and round_no - last <= STALE_ROUNDS):
            weight *= NOVELTY_BOOST
        elif runs >= SATURATED_MIN_RUNS:
            weight *= SATURATION_DAMP
        weights[name] = weight
    return weights


def oracle_keys(exec_status: Optional[str] = None,
                ub_class: Optional[str] = None) -> list[str]:
    """Coverage keys for the oracle-side dimensions (execution outcomes
    and demonstrated UB classes), in the shared key vocabulary."""
    keys = []
    if exec_status:
        keys.append(f"exec:{exec_status}")
    if ub_class:
        keys.append(f"ub:{ub_class}")
    return keys
