"""The soundness oracle: check with the toolchain, execute on Caesium.

The differential-testing contract (adequacy, §5):

* a program the checker **accepts** must never raise
  ``UndefinedBehavior`` when executed on the Caesium machine, for any
  input satisfying its precondition and any thread interleaving — a UB
  (or an observable result contradicting the spec) is a **soundness
  bug**;
* the checker itself must only ever fail by raising
  ``VerificationError`` (reported as a rejection) — any other exception
  escaping verification is a **robustness bug**;
* running out of fuel proves nothing: the run is **inconclusive**, not a
  pass and not a failure (:class:`repro.caesium.FuelExhausted`).
"""

from __future__ import annotations

import enum
import random
import traceback
from dataclasses import dataclass
from typing import Optional, Sequence

from ..caesium.eval import FuelExhausted
from ..caesium.values import UndefinedBehavior
from ..driver import DriverConfig, PoolSession, Unit, run_units
from ..lang.elaborate import elaborate_source
from ..lithium.search import VerificationError
from ..refinedc.checker import TypedProgram
from ..trace.signature import signature_of
from .generator import DEFAULT_FUEL, TEMPLATES, GenProgram, SpecViolation


class CheckVerdict(enum.Enum):
    ACCEPTED = "accepted"
    REJECTED = "rejected"
    CRASH = "crash"          # non-VerificationError escaped: robustness bug


class ExecStatus(enum.Enum):
    PASS = "pass"
    UB = "ub"                          # soundness bug
    SPEC_VIOLATION = "spec-violation"  # soundness bug (wrong result)
    INCONCLUSIVE = "inconclusive"      # fuel ran out: proves nothing
    EXEC_ERROR = "exec-error"          # harness/interpreter failure


@dataclass
class CheckResult:
    verdict: CheckVerdict
    detail: str = ""                   # first error / traceback summary
    tp: Optional[TypedProgram] = None  # present when elaboration succeeded
    #: coverage signature of the check (rule/search/solver keys distilled
    #: from the trace); only populated when checking with ``coverage=True``
    signature: Optional[frozenset] = None


@dataclass
class ExecResult:
    status: ExecStatus
    trials: int = 0
    passes: int = 0
    inconclusive: int = 0
    ub_class: Optional[str] = None
    detail: str = ""


# ---------------------------------------------------------------------
# Checking.
# ---------------------------------------------------------------------

def _first_failure(result) -> str:
    for name, fr in result.functions.items():
        if not fr.ok:
            return f"{name}: {fr.format_error()}"
    return ""


def check_program(prog: GenProgram, coverage: bool = False) -> CheckResult:
    """Serial reference path: verify one generated program.

    With ``coverage=True`` the check runs under tracing and the result
    carries the distilled coverage signature."""
    return _check_serial(prog, coverage=coverage)


def _signature(result) -> Optional[frozenset]:
    return signature_of(result.trace) if result.trace is not None else None


def _check_serial(prog: GenProgram, coverage: bool = False) -> CheckResult:
    try:
        tp = elaborate_source(prog.source)
    except Exception:
        # Generated sources are well-formed by construction, so a
        # front-end failure is a robustness bug, same as a checker crash.
        return CheckResult(CheckVerdict.CRASH,
                           traceback.format_exc(limit=4))
    try:
        result, _ = run_units(
            [Unit(key="fuzz", source=prog.source, tp=tp)],
            DriverConfig(jobs=1, trace=coverage))["fuzz"]
    except VerificationError as e:
        return CheckResult(CheckVerdict.REJECTED, str(e), tp)
    except Exception:
        return CheckResult(CheckVerdict.CRASH,
                           traceback.format_exc(limit=4), tp)
    if result.ok:
        return CheckResult(CheckVerdict.ACCEPTED, tp=tp,
                           signature=_signature(result))
    return CheckResult(CheckVerdict.REJECTED, _first_failure(result), tp,
                       signature=_signature(result))


def check_batch(progs: Sequence[tuple[str, GenProgram]], jobs: int = 1,
                coverage: bool = False,
                session: Optional[PoolSession] = None
                ) -> dict[str, CheckResult]:
    """Verify a batch of generated programs on the driver's process pool.

    ``progs`` is a sequence of ``(key, program)`` pairs with unique keys.
    With ``jobs > 1`` all functions of all programs load-balance on one
    pool — a warm caller-owned ``session`` skips pool cold-start per
    batch.  If the pooled run blows up (a checker crash takes the whole
    pool down), the session is reset and every program is retried
    serially so the crash is *attributed* to the program that caused it.

    With ``coverage=True`` checks run under tracing and every result
    carries its coverage signature; signatures are deterministic across
    ``jobs`` and across the serial fallback (the trace determinism
    contract)."""
    units, out = [], {}
    tps: dict[str, TypedProgram] = {}
    for key, prog in progs:
        try:
            tp = elaborate_source(prog.source)
        except Exception:
            out[key] = CheckResult(CheckVerdict.CRASH,
                                   traceback.format_exc(limit=4))
            continue
        tps[key] = tp
        units.append(Unit(key=key, source=prog.source, tp=tp))
    if units:
        try:
            results = run_units(units, DriverConfig(jobs=jobs,
                                                    trace=coverage),
                                session=session)
            for key, (result, _metrics) in results.items():
                if result.ok:
                    out[key] = CheckResult(CheckVerdict.ACCEPTED,
                                           tp=tps[key],
                                           signature=_signature(result))
                else:
                    out[key] = CheckResult(CheckVerdict.REJECTED,
                                           _first_failure(result), tps[key],
                                           signature=_signature(result))
        except Exception:
            # Pool-level failure: drop the poisoned pool, then attribute
            # per program on the serial reference path.
            if session is not None:
                session.reset()
            by_key = dict(progs)
            for unit in units:
                out[unit.key] = _check_serial(by_key[unit.key],
                                              coverage=coverage)
    return out


# ---------------------------------------------------------------------
# Execution.
# ---------------------------------------------------------------------

def execute_program(prog: GenProgram, tp: TypedProgram, rng: random.Random,
                    trials: int = 6, fuel: int = DEFAULT_FUEL) -> ExecResult:
    """Execute an *accepted* program over randomised inputs (and, for
    concurrent templates, interleavings), comparing behaviour against
    the spec.  Severity order: UB > spec violation > exec error >
    inconclusive > pass."""
    template = TEMPLATES[prog.template]
    passes = inconclusive = 0
    for i in range(trials):
        try:
            template.run_trial(prog.params, tp, rng, fuel=fuel)
            passes += 1
        except FuelExhausted:
            inconclusive += 1
        except UndefinedBehavior as ub:
            return ExecResult(ExecStatus.UB, trials=i + 1, passes=passes,
                              inconclusive=inconclusive,
                              ub_class=ub.category.value, detail=str(ub))
        except SpecViolation as sv:
            return ExecResult(ExecStatus.SPEC_VIOLATION, trials=i + 1,
                              passes=passes, inconclusive=inconclusive,
                              detail=str(sv))
        except Exception:
            return ExecResult(ExecStatus.EXEC_ERROR, trials=i + 1,
                              passes=passes, inconclusive=inconclusive,
                              detail=traceback.format_exc(limit=4))
    status = ExecStatus.INCONCLUSIVE if inconclusive and not passes \
        else ExecStatus.PASS
    return ExecResult(status, trials=trials, passes=passes,
                      inconclusive=inconclusive)


def run_witness(template_name: str, mutant_name: str, params: dict,
                tp: TypedProgram, fuel: int = DEFAULT_FUEL
                ) -> Optional[str]:
    """Run a surviving mutant's UB witness.  Returns the demonstrated UB
    class, or ``None`` if the demonstration did not trigger UB."""
    template = TEMPLATES[template_name]
    try:
        template.witness(mutant_name, params, tp, fuel=fuel)
    except FuelExhausted:
        return None
    except UndefinedBehavior as ub:
        return ub.category.value
    except Exception:
        return None
    return None
