"""Mutation testing for the type checker.

Each template ships *designed-unsound* annotation perturbations —
widened or narrowed refinements, dropped ownership/bounds, off-by-one
sizes.  A sound checker must reject them all; the fraction it rejects
(the **kill rate**) measures false acceptance the way mutation testing
measures test-suite strength.

A surviving mutant is graded by what the oracle can do with it:

* ``SURVIVED_DEMONSTRATED`` — the mutant carries a witness input and the
  Caesium machine really hits UB on it: a *proven* soundness bug;
* ``SURVIVED_UNDEMONSTRATED`` — accepted, but the oracle could not
  exhibit UB (the mutant's unsoundness is about functional contracts or
  needs inputs we cannot demonstrate); still reported, lower confidence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from ..driver import PoolSession
from .generator import GenProgram, Mutant
from .oracle import CheckResult, CheckVerdict, check_batch, run_witness


class MutantVerdict(enum.Enum):
    KILLED = "killed"
    SURVIVED_DEMONSTRATED = "survived-demonstrated"
    SURVIVED_UNDEMONSTRATED = "survived-undemonstrated"
    CRASH = "crash"


@dataclass
class MutantResult:
    template: str
    params: dict
    mutant: Mutant
    verdict: MutantVerdict
    index: int = 0            # campaign index of the parent program
    ub_class: Optional[str] = None
    detail: str = ""
    #: coverage signature of the mutant's *check* (rejection paths
    #: exercise rules the sound originals never reach)
    signature: Optional[frozenset] = None


def _as_program(prog: GenProgram, mutant: Mutant) -> GenProgram:
    """View a mutant as a program of the same template/params so the
    batch checker and the witness runner can treat it uniformly."""
    return GenProgram(template=prog.template, params=prog.params,
                      index=prog.index, source=mutant.source,
                      entry=prog.entry, concurrent=prog.concurrent)


def grade_mutant(prog: GenProgram, mutant: Mutant, check: CheckResult,
                 witness_killed: bool = False) -> MutantResult:
    """Turn a mutant's check result into a verdict, running the UB
    witness for accepted mutants that carry one.

    With ``witness_killed=True`` the witness also runs for *killed*
    mutants: the demonstrated UB class does not change the verdict, but
    it records which UB classes the differential oracle exercised — the
    ``ub:`` dimension of campaign coverage."""
    if check.verdict is CheckVerdict.CRASH:
        return MutantResult(prog.template, prog.params, mutant,
                            MutantVerdict.CRASH, index=prog.index,
                            detail=check.detail, signature=check.signature)
    if check.verdict is CheckVerdict.REJECTED:
        ub = None
        if witness_killed and mutant.has_witness and check.tp is not None:
            ub = run_witness(prog.template, mutant.name, prog.params,
                             check.tp)
        return MutantResult(prog.template, prog.params, mutant,
                            MutantVerdict.KILLED, index=prog.index,
                            ub_class=ub, detail=check.detail,
                            signature=check.signature)
    # Accepted: a designed-unsound annotation got through.
    if mutant.has_witness and check.tp is not None:
        ub = run_witness(prog.template, mutant.name, prog.params, check.tp)
        if ub is not None:
            return MutantResult(
                prog.template, prog.params, mutant,
                MutantVerdict.SURVIVED_DEMONSTRATED, index=prog.index,
                ub_class=ub,
                detail=f"accepted mutant exhibits {ub} at runtime",
                signature=check.signature)
    return MutantResult(prog.template, prog.params, mutant,
                        MutantVerdict.SURVIVED_UNDEMONSTRATED,
                        index=prog.index,
                        detail="accepted; no UB witness demonstrated",
                        signature=check.signature)


def evaluate_mutants(progs: Sequence[GenProgram], jobs: int = 1,
                     limit: Optional[int] = None, coverage: bool = False,
                     witness_killed: bool = False,
                     session: Optional[PoolSession] = None
                     ) -> list[MutantResult]:
    """Check every mutant of every program (up to ``limit`` per program)
    as one driver batch, then grade survivors with their witnesses."""
    work: list[tuple[str, GenProgram, Mutant]] = []
    for prog in progs:
        chosen = prog.mutants[:limit] if limit is not None else prog.mutants
        for mutant in chosen:
            # Key by the campaign-global program index, never the position
            # within this call: a warm PoolSession memoises elaborated
            # programs per unit key across batches, so a repeating key
            # would silently serve a stale elaboration to a later round.
            work.append((f"p{prog.index}:{mutant.name}", prog, mutant))
    checks = check_batch([(key, _as_program(prog, mutant))
                          for key, prog, mutant in work], jobs=jobs,
                         coverage=coverage, session=session)
    return [grade_mutant(prog, mutant, checks[key],
                         witness_killed=witness_killed)
            for key, prog, mutant in work]
