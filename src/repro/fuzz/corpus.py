"""The counterexample corpus: deterministic regression fixtures.

Corpus entries live in ``tests/fuzz/corpus/`` as small JSON files.  An
entry never stores generated source — it stores ``(template, params,
mutant?, seed)`` and *regenerates* the program on replay, so a fixture
is deterministic by construction and survives formatting churn.

Every entry's ``expect`` block states the **desired** behaviour:

* ``{"check": "accept", "exec": "pass"}`` — a designed-sound program the
  checker must accept and the machine must run UB-free;
* ``{"check": "reject", "witness_ub": "<class>"}`` — a designed-unsound
  mutant the checker must kill, whose witness inputs demonstrably reach
  that UB class on the machine (both sides of the differential);
* ``{"check": "no-crash"}`` — any verdict is fine as long as only
  ``VerificationError`` is ever raised.

Campaign findings are written in the same vocabulary, so a fresh finding
makes the replay suite red until the underlying bug is fixed — after
which the entry keeps guarding the fix.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from .generator import DEFAULT_FUEL, TEMPLATES
from .oracle import CheckVerdict, check_program, execute_program, run_witness

CORPUS_SCHEMA = 1

#: default location, next to the pytest module that replays it
DEFAULT_CORPUS_DIR = \
    Path(__file__).resolve().parents[3] / "tests" / "fuzz" / "corpus"


@dataclass
class CorpusEntry:
    template: str
    params: dict
    expect: dict
    mutant: Optional[str] = None
    exec_seed: str = "corpus"
    trials: int = 4
    fuel: int = DEFAULT_FUEL
    note: str = ""
    schema: int = CORPUS_SCHEMA

    def to_dict(self) -> dict:
        return {"schema": self.schema, "template": self.template,
                "params": self.params, "mutant": self.mutant,
                "expect": self.expect, "exec_seed": self.exec_seed,
                "trials": self.trials, "fuel": self.fuel, "note": self.note}

    @classmethod
    def from_dict(cls, d: dict) -> "CorpusEntry":
        return cls(template=d["template"], params=d["params"],
                   expect=d["expect"], mutant=d.get("mutant"),
                   exec_seed=d.get("exec_seed", "corpus"),
                   trials=d.get("trials", 4),
                   fuel=d.get("fuel", DEFAULT_FUEL),
                   note=d.get("note", ""), schema=d.get("schema", 1))


@dataclass
class ReplayResult:
    ok: bool
    detail: str = ""
    checks: list[str] = field(default_factory=list)


def entry_digest(entry: CorpusEntry) -> str:
    blob = json.dumps(entry.to_dict(), sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:10]


def write_entry(entry: CorpusEntry,
                corpus_dir: Optional[Path] = None) -> Path:
    corpus_dir = Path(corpus_dir) if corpus_dir else DEFAULT_CORPUS_DIR
    corpus_dir.mkdir(parents=True, exist_ok=True)
    name = "-".join(filter(None, [entry.template, entry.mutant,
                                  entry_digest(entry)])) + ".json"
    path = corpus_dir / name
    path.write_text(json.dumps(entry.to_dict(), indent=2,
                               sort_keys=True) + "\n")
    return path


def load_corpus(corpus_dir: Optional[Path] = None) -> list[tuple[Path,
                                                                 CorpusEntry]]:
    corpus_dir = Path(corpus_dir) if corpus_dir else DEFAULT_CORPUS_DIR
    out = []
    if corpus_dir.is_dir():
        for path in sorted(corpus_dir.glob("*.json")):
            out.append((path, CorpusEntry.from_dict(
                json.loads(path.read_text()))))
    return out


def replay_entry(entry: CorpusEntry) -> ReplayResult:
    """Regenerate the entry's program and assert its desired behaviour."""
    template = TEMPLATES.get(entry.template)
    if template is None:
        return ReplayResult(False, f"unknown template {entry.template!r}")
    prog = template.build(entry.params)
    if entry.mutant is not None:
        match = [m for m in prog.mutants if m.name == entry.mutant]
        if not match:
            return ReplayResult(
                False, f"mutant {entry.mutant!r} not generated for "
                f"params {entry.params}")
        prog = prog.__class__(template=prog.template, params=prog.params,
                              index=prog.index, source=match[0].source,
                              entry=prog.entry, concurrent=prog.concurrent)

    checks: list[str] = []
    check = check_program(prog)
    want = entry.expect.get("check")
    if want == "no-crash":
        if check.verdict is CheckVerdict.CRASH:
            return ReplayResult(False, f"checker crashed:\n{check.detail}",
                                checks)
        checks.append(f"check: {check.verdict.value} (no crash)")
    elif want == "accept":
        if check.verdict is not CheckVerdict.ACCEPTED:
            return ReplayResult(
                False, f"expected accept, got {check.verdict.value}: "
                f"{check.detail}", checks)
        checks.append("check: accepted")
    elif want == "reject":
        if check.verdict is not CheckVerdict.REJECTED:
            return ReplayResult(
                False, f"expected reject, got {check.verdict.value} "
                f"(a designed-unsound mutant was admitted)", checks)
        checks.append("check: rejected")
    elif want is not None:
        return ReplayResult(False, f"bad expectation {want!r}", checks)

    want_exec = entry.expect.get("exec")
    if want_exec is not None:
        if check.tp is None:
            return ReplayResult(False, "no elaborated program to execute",
                               checks)
        rng = random.Random(entry.exec_seed)
        res = execute_program(prog, check.tp, rng, trials=entry.trials,
                              fuel=entry.fuel)
        if res.status.value != want_exec:
            return ReplayResult(
                False, f"expected exec {want_exec}, got {res.status.value}"
                f" ({res.ub_class or res.detail})", checks)
        checks.append(f"exec: {res.status.value} ({res.trials} trials)")

    want_ub = entry.expect.get("witness_ub")
    if want_ub is not None:
        if check.tp is None:
            return ReplayResult(False, "no elaborated program for witness",
                               checks)
        got = run_witness(entry.template, entry.mutant, entry.params,
                          check.tp, fuel=entry.fuel)
        if got != want_ub:
            return ReplayResult(
                False, f"witness expected UB {want_ub!r}, got {got!r}",
                checks)
        checks.append(f"witness: {got}")

    return ReplayResult(True, "", checks)
