"""Counterexample shrinking.

A finding is a ``(template, params)`` pair (possibly plus a mutant name)
whose failure is re-checkable by regenerating the program.  Shrinking
walks the integer-valued parameters toward their template-declared
floors — halving the distance, then stepping — keeping every candidate
that still fails.  Because programs are pure functions of their params,
the shrunk finding replays forever.
"""

from __future__ import annotations

from typing import Callable

from .generator import TEMPLATES


def _candidates(value: int, floor: int) -> list[int]:
    """Smaller values to try, nearest-to-floor first."""
    out = []
    if value > floor:
        out.append(floor)
        mid = floor + (value - floor) // 2
        if mid not in (floor, value):
            out.append(mid)
        if value - 1 not in (floor, mid):
            out.append(value - 1)
    return out


def shrink_params(template_name: str, params: dict,
                  still_fails: Callable[[dict], bool],
                  max_checks: int = 48) -> tuple[dict, int]:
    """Greedily minimise ``params`` while ``still_fails`` holds.

    Only int-valued keys shrink; string parameters (type names, operator
    choices) are part of the failure's identity.  Returns the smallest
    failing params found and the number of candidate checks spent."""
    floors = TEMPLATES[template_name].param_floors
    current = dict(params)
    checks = 0
    progress = True
    while progress and checks < max_checks:
        progress = False
        for key in sorted(current):
            value = current[key]
            if not isinstance(value, int) or isinstance(value, bool):
                continue
            floor = floors.get(key, 0)
            for cand in _candidates(value, floor):
                if checks >= max_checks:
                    break
                trial = dict(current)
                trial[key] = cand
                checks += 1
                if still_fails(trial):
                    current = trial
                    progress = True
                    break
    return current, checks
