"""Budgeted fuzzing campaigns on the verification driver.

A campaign is a deterministic stream of generated programs: program
``i`` of campaign seed ``s`` depends only on ``(s, i)``, never on
batching or timing.  Rounds of programs are verified as one driver batch
(``run_units`` on the process pool), accepted programs are executed by
the oracle, and their mutants are batch-checked and graded.

Two budgets:

* ``count=N`` — exactly N programs; byte-identical stats on every run;
* ``budget_s=T`` — rounds run until the clock passes T.  The stats
  record how many programs were processed, so ``count=<that>`` replays
  the very same campaign byte-identically (wall-clock fields are
  excluded from the deterministic view).
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from .corpus import CorpusEntry, write_entry
from .generator import (DEFAULT_FUEL, DEFAULT_TEMPLATES, TEMPLATES, GenProgram,
                        generate_program)
from .mutator import MutantVerdict, evaluate_mutants
from .oracle import (CheckVerdict, ExecStatus, check_batch, check_program,
                     execute_program, run_witness)
from .shrink import shrink_params

FUZZ_SCHEMA_VERSION = 1


@dataclass
class CampaignConfig:
    seed: int = 0
    budget_s: Optional[float] = None   # time budget …
    count: Optional[int] = None        # … or exact program count
    jobs: int = 1
    trials: int = 6                    # execution trials per accepted program
    mutant_limit: Optional[int] = None  # per program; None = all
    shrink: bool = True
    write_corpus: bool = False
    corpus_dir: Optional[Path] = None
    templates: Optional[list[str]] = None
    fuel: int = DEFAULT_FUEL

    def template_names(self) -> list[str]:
        return list(self.templates) if self.templates \
            else list(DEFAULT_TEMPLATES)


@dataclass
class Finding:
    kind: str                    # soundness-ub | soundness-spec |
    #                              checker-crash | mutant-survivor |
    #                              exec-error
    template: str
    params: dict
    index: int
    mutant: Optional[str] = None
    ub_class: Optional[str] = None
    detail: str = ""
    shrunk_params: Optional[dict] = None
    shrink_checks: int = 0
    corpus_path: Optional[str] = None

    def to_dict(self) -> dict:
        return {"kind": self.kind, "template": self.template,
                "params": self.params, "index": self.index,
                "mutant": self.mutant, "ub_class": self.ub_class,
                "detail": self.detail, "shrunk_params": self.shrunk_params,
                "shrink_checks": self.shrink_checks,
                "corpus_path": self.corpus_path}


@dataclass
class CampaignStats:
    """Per-campaign statistics, in the metrics-JSON house style."""

    seed: int = 0
    mode: str = "count"
    jobs: int = 1
    trials: int = 0
    templates: list[str] = field(default_factory=list)
    mutant_limit: Optional[int] = None

    programs: int = 0
    accepted: int = 0
    rejected: int = 0
    checker_crashes: int = 0

    exec_trials: int = 0
    exec_passes: int = 0
    exec_inconclusive: int = 0
    exec_errors: int = 0
    ub_violations: int = 0
    spec_violations: int = 0

    mutants: int = 0
    mutants_killed: int = 0
    survivors_demonstrated: int = 0
    survivors_undemonstrated: int = 0
    mutant_crashes: int = 0

    shrink_checks: int = 0
    corpus_written: int = 0
    per_template: dict = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def accept_rate(self) -> float:
        return self.accepted / self.programs if self.programs else 0.0

    @property
    def kill_rate(self) -> float:
        return self.mutants_killed / self.mutants if self.mutants else 1.0

    @property
    def soundness_violations(self) -> int:
        return (self.ub_violations + self.spec_violations +
                self.survivors_demonstrated)

    @property
    def ok(self) -> bool:
        return (self.soundness_violations == 0
                and self.checker_crashes == 0 and self.mutant_crashes == 0)

    def to_dict(self, deterministic: bool = False) -> dict:
        d = {
            "schema_version": FUZZ_SCHEMA_VERSION,
            "seed": self.seed,
            "jobs": self.jobs,
            "trials": self.trials,
            "templates": list(self.templates),
            "mutant_limit": self.mutant_limit,
            "programs": self.programs,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "checker_crashes": self.checker_crashes,
            "accept_rate": round(self.accept_rate, 6),
            "exec_trials": self.exec_trials,
            "exec_passes": self.exec_passes,
            "exec_inconclusive": self.exec_inconclusive,
            "exec_errors": self.exec_errors,
            "ub_violations": self.ub_violations,
            "spec_violations": self.spec_violations,
            "mutants": self.mutants,
            "mutants_killed": self.mutants_killed,
            "kill_rate": round(self.kill_rate, 6),
            "survivors_demonstrated": self.survivors_demonstrated,
            "survivors_undemonstrated": self.survivors_undemonstrated,
            "mutant_crashes": self.mutant_crashes,
            "soundness_violations": self.soundness_violations,
            "shrink_checks": self.shrink_checks,
            "corpus_written": self.corpus_written,
            "per_template": {k: dict(sorted(v.items()))
                             for k, v in sorted(self.per_template.items())},
            "findings": [f.to_dict() for f in self.findings],
            "ok": self.ok,
        }
        if not deterministic:
            # How the budget was specified and how long it took are facts
            # about the run, not about the computed campaign — a budget
            # run and its count replay must agree on everything else.
            d["mode"] = self.mode
            d["wall_s"] = round(self.wall_s, 3)
        return d

    def to_json(self, deterministic: bool = False, indent: int = 2) -> str:
        return json.dumps(self.to_dict(deterministic), indent=indent)

    def summary(self) -> str:
        return (f"fuzz campaign seed={self.seed}: {self.programs} programs "
                f"({self.accepted} accepted, {self.rejected} rejected, "
                f"{self.checker_crashes} crashes), "
                f"{self.exec_trials} exec trials "
                f"({self.ub_violations} UB, {self.spec_violations} spec "
                f"violations, {self.exec_inconclusive} inconclusive), "
                f"{self.mutants} mutants "
                f"({self.mutants_killed} killed, "
                f"kill rate {self.kill_rate:.1%}), "
                f"{len(self.findings)} findings, {self.wall_s:.1f}s")


def _tally(per_template: dict, template: str, key: str, n: int = 1) -> None:
    per_template.setdefault(template, {})
    per_template[template][key] = per_template[template].get(key, 0) + n


# ---------------------------------------------------------------------
# Shrink predicates: does the failure still reproduce at these params?
# ---------------------------------------------------------------------

def _rebuild(template: str, params: dict,
             mutant: Optional[str]) -> Optional[GenProgram]:
    prog = TEMPLATES[template].build(params)
    if mutant is None:
        return prog
    match = [m for m in prog.mutants if m.name == mutant]
    if not match:
        return None
    return GenProgram(template=prog.template, params=prog.params,
                      index=prog.index, source=match[0].source,
                      entry=prog.entry, concurrent=prog.concurrent)


def _fail_predicate(kind: str, template: str, mutant: Optional[str],
                    exec_seed: str, trials: int,
                    fuel: int) -> Callable[[dict], bool]:
    def still_fails(params: dict) -> bool:
        prog = _rebuild(template, params, mutant)
        if prog is None:
            return False
        check = check_program(prog)
        if kind == "checker-crash":
            return check.verdict is CheckVerdict.CRASH
        if check.verdict is not CheckVerdict.ACCEPTED or check.tp is None:
            return False
        if kind == "mutant-survivor":
            return run_witness(template, mutant, params, check.tp,
                               fuel=fuel) is not None
        res = execute_program(prog, check.tp, random.Random(exec_seed),
                              trials=trials, fuel=fuel)
        if kind == "soundness-ub":
            return res.status is ExecStatus.UB
        if kind == "soundness-spec":
            return res.status is ExecStatus.SPEC_VIOLATION
        if kind == "exec-error":
            return res.status is ExecStatus.EXEC_ERROR
        return False
    return still_fails


_EXPECTED: dict[str, Callable[[Finding], dict]] = {
    # Corpus entries state the *desired* behaviour (see corpus.py): a
    # fresh finding keeps the replay suite red until the bug is fixed.
    "soundness-ub": lambda f: {"check": "accept", "exec": "pass"},
    "soundness-spec": lambda f: {"check": "accept", "exec": "pass"},
    "exec-error": lambda f: {"check": "accept", "exec": "pass"},
    "checker-crash": lambda f: {"check": "no-crash"},
    "mutant-survivor": lambda f: {"check": "reject"},
}


def _record_finding(stats: CampaignStats, cfg: CampaignConfig,
                    finding: Finding) -> None:
    exec_seed = f"{cfg.seed}:{finding.index}:exec"
    if cfg.shrink:
        pred = _fail_predicate(finding.kind, finding.template,
                               finding.mutant, exec_seed, cfg.trials,
                               cfg.fuel)
        shrunk, checks = shrink_params(finding.template, finding.params,
                                       pred)
        finding.shrunk_params = shrunk
        finding.shrink_checks = checks
        stats.shrink_checks += checks
    if cfg.write_corpus:
        entry = CorpusEntry(
            template=finding.template,
            params=finding.shrunk_params or finding.params,
            mutant=finding.mutant,
            expect=_EXPECTED[finding.kind](finding),
            exec_seed=exec_seed, trials=cfg.trials, fuel=cfg.fuel,
            note=f"campaign seed={cfg.seed} program={finding.index}: "
                 f"{finding.kind} — {finding.detail[:200]}")
        finding.corpus_path = str(write_entry(entry, cfg.corpus_dir))
        stats.corpus_written += 1
    stats.findings.append(finding)


# ---------------------------------------------------------------------
# The campaign driver.
# ---------------------------------------------------------------------

def run_campaign(cfg: Optional[CampaignConfig] = None) -> CampaignStats:
    cfg = cfg or CampaignConfig()
    if cfg.count is None and cfg.budget_s is None:
        cfg = CampaignConfig(**{**cfg.__dict__, "count": 32})
    names = cfg.template_names()
    stats = CampaignStats(
        seed=cfg.seed, mode="budget" if cfg.count is None else "count",
        jobs=cfg.jobs, trials=cfg.trials, templates=names,
        mutant_limit=cfg.mutant_limit)
    t0 = time.perf_counter()
    batch = max(8, 4 * cfg.jobs)
    idx = 0

    while True:
        if cfg.count is not None and idx >= cfg.count:
            break
        if cfg.count is None and time.perf_counter() - t0 >= cfg.budget_s:
            break
        k = batch if cfg.count is None else min(batch, cfg.count - idx)
        programs = [generate_program(cfg.seed, idx + i, names)
                    for i in range(k)]
        checks = check_batch([(f"g{p.index}", p) for p in programs],
                             jobs=cfg.jobs)

        accepted: list[GenProgram] = []
        for prog in programs:
            check = checks[f"g{prog.index}"]
            _tally(stats.per_template, prog.template, "programs")
            if check.verdict is CheckVerdict.CRASH:
                stats.checker_crashes += 1
                _tally(stats.per_template, prog.template, "crashes")
                _record_finding(stats, cfg, Finding(
                    "checker-crash", prog.template, prog.params,
                    prog.index, detail=check.detail))
                continue
            if check.verdict is CheckVerdict.REJECTED:
                stats.rejected += 1
                _tally(stats.per_template, prog.template, "rejected")
                continue
            stats.accepted += 1
            _tally(stats.per_template, prog.template, "accepted")
            accepted.append(prog)

            rng = random.Random(f"{cfg.seed}:{prog.index}:exec")
            res = execute_program(prog, check.tp, rng, trials=cfg.trials,
                                  fuel=cfg.fuel)
            stats.exec_trials += res.trials
            stats.exec_passes += res.passes
            stats.exec_inconclusive += res.inconclusive
            if res.status is ExecStatus.UB:
                stats.ub_violations += 1
                _record_finding(stats, cfg, Finding(
                    "soundness-ub", prog.template, prog.params, prog.index,
                    ub_class=res.ub_class, detail=res.detail))
            elif res.status is ExecStatus.SPEC_VIOLATION:
                stats.spec_violations += 1
                _record_finding(stats, cfg, Finding(
                    "soundness-spec", prog.template, prog.params,
                    prog.index, detail=res.detail))
            elif res.status is ExecStatus.EXEC_ERROR:
                stats.exec_errors += 1
                _record_finding(stats, cfg, Finding(
                    "exec-error", prog.template, prog.params, prog.index,
                    detail=res.detail))

        for mr in evaluate_mutants(accepted, jobs=cfg.jobs,
                                   limit=cfg.mutant_limit):
            stats.mutants += 1
            _tally(stats.per_template, mr.template, "mutants")
            if mr.verdict is MutantVerdict.KILLED:
                stats.mutants_killed += 1
                _tally(stats.per_template, mr.template, "killed")
            elif mr.verdict is MutantVerdict.CRASH:
                stats.mutant_crashes += 1
                _record_finding(stats, cfg, Finding(
                    "checker-crash", mr.template, mr.params, mr.index,
                    mutant=mr.mutant.name, detail=mr.detail))
            elif mr.verdict is MutantVerdict.SURVIVED_DEMONSTRATED:
                stats.survivors_demonstrated += 1
                _record_finding(stats, cfg, Finding(
                    "mutant-survivor", mr.template, mr.params, mr.index,
                    mutant=mr.mutant.name, ub_class=mr.ub_class,
                    detail=mr.detail))
            else:
                stats.survivors_undemonstrated += 1

        idx += k

    stats.programs = idx
    stats.wall_s = time.perf_counter() - t0
    return stats
