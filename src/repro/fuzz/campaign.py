"""Budgeted, sharded, coverage-guided fuzzing campaigns.

A campaign is a deterministic stream of generated programs processed in
fixed-size **rounds**.  Blind campaigns draw templates uniformly, so
program ``i`` of seed ``s`` depends only on ``(s, i)``.  Steered
campaigns additionally weight the template choice by the coverage
history of *completed* rounds (see :mod:`.coverage`): program ``i`` then
depends on ``(s, i, coverage of rounds before i's round)`` — still a
pure function of the seed, because rounds are a fixed partition of the
index space.

Sharding partitions each round's indices across ``shards`` shards by
``index % shards``.  Results are always assembled in global index
order, and shrinking plus corpus filing run centrally after the merge,
so a campaign is **byte-identical across shard and job counts** (the
deterministic stats view excludes the run-shape fields).  Two modes:

* in-process (:func:`run_campaign`) — shard batches fan out on one warm
  :class:`~repro.driver.PoolSession`;
* distributed (:func:`run_shard_campaign` + :func:`merge_shard_stats`)
  — each shard runs anywhere, writes mergeable schema-versioned stats
  JSON, and the merge reproduces the in-process blind campaign exactly.
  Distributed shards cannot see each other's coverage between rounds,
  so steering is forced off there.

Two budgets:

* ``count=N`` — exactly N programs; byte-identical stats on every run;
* ``budget_s=T`` — rounds run until the clock passes T.  The stats
  record how many programs were processed, so ``count=<that>`` replays
  the very same campaign byte-identically (wall-clock fields are
  excluded from the deterministic view).
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Optional, Sequence

from ..driver import PoolSession
from .corpus import CorpusEntry, write_entry
from .coverage import (CoverageMap, SteeringState, oracle_keys,
                       template_weights)
from .generator import (DEFAULT_FUEL, DEFAULT_TEMPLATES, TEMPLATES, GenProgram,
                        generate_program)
from .mutator import MutantVerdict, evaluate_mutants
from .oracle import (CheckVerdict, ExecStatus, check_batch, check_program,
                     execute_program, run_witness)
from .shrink import shrink_params

#: v2: ``fuzz_schema_version`` replaces v1's ``schema_version``; adds the
#: ``coverage`` block, round/steering fields and corpus dedup counters.
#: v3: records ``fuel`` (shard stats must carry every shrink-relevant
#: knob so a central ``--merge`` reproduces findings without repeating
#: the shard command line); the corpus-filing fields (``corpus_written``,
#: ``corpus_deduped``, per-finding ``corpus_path``) move out of the
#: deterministic view — whether findings were persisted is a fact about
#: the run, not the computed campaign.
FUZZ_SCHEMA_VERSION = 3

DEFAULT_ROUND_SIZE = 16


@dataclass
class CampaignConfig:
    seed: int = 0
    budget_s: Optional[float] = None   # time budget …
    count: Optional[int] = None        # … or exact program count
    jobs: int = 1
    shards: int = 1                    # seed-space partitions per round
    round_size: int = DEFAULT_ROUND_SIZE
    coverage: bool = True              # trace checks, record signatures
    steer: bool = True                 # coverage-guided template weights
    trials: int = 6                    # execution trials per accepted program
    mutant_limit: Optional[int] = None  # per program; None = all
    shrink: bool = True
    write_corpus: bool = False
    corpus_dir: Optional[Path] = None
    templates: Optional[list[str]] = None
    fuel: int = DEFAULT_FUEL

    def template_names(self) -> list[str]:
        return list(self.templates) if self.templates \
            else list(DEFAULT_TEMPLATES)

    def steering(self) -> bool:
        # Steering feeds on coverage signatures; without them it would
        # silently degenerate to blind sampling, so tie the two.
        return self.steer and self.coverage


@dataclass
class Finding:
    kind: str                    # soundness-ub | soundness-spec |
    #                              checker-crash | mutant-survivor |
    #                              exec-error
    template: str
    params: dict
    index: int
    mutant: Optional[str] = None
    ub_class: Optional[str] = None
    detail: str = ""
    shrunk_params: Optional[dict] = None
    shrink_checks: int = 0
    corpus_path: Optional[str] = None

    def to_dict(self, deterministic: bool = False) -> dict:
        d = {"kind": self.kind, "template": self.template,
             "params": self.params, "index": self.index,
             "mutant": self.mutant, "ub_class": self.ub_class,
             "detail": self.detail, "shrunk_params": self.shrunk_params,
             "shrink_checks": self.shrink_checks}
        if not deterministic:
            # Where (and whether) the finding was filed depends on the
            # run's --write-corpus/--corpus flags, not on the seed.
            d["corpus_path"] = self.corpus_path
        return d

    @classmethod
    def from_dict(cls, d: Mapping) -> "Finding":
        return cls(kind=d["kind"], template=d["template"],
                   params=dict(d["params"]), index=int(d["index"]),
                   mutant=d.get("mutant"), ub_class=d.get("ub_class"),
                   detail=d.get("detail", ""),
                   shrunk_params=d.get("shrunk_params"),
                   shrink_checks=int(d.get("shrink_checks", 0)),
                   corpus_path=d.get("corpus_path"))

    def sort_key(self) -> tuple:
        return (self.index, self.kind, self.mutant or "")

    def dedup_key(self, params: Optional[dict] = None) -> str:
        """Signature key for corpus dedup: two findings that reduce to
        the same (kind, template, mutant, UB class, shrunk params) are
        the same bug and file one corpus entry."""
        params = params if params is not None else (
            self.shrunk_params or self.params)
        return json.dumps(
            [self.kind, self.template, self.mutant, self.ub_class,
             dict(sorted(params.items()))], sort_keys=True)


@dataclass
class CampaignStats:
    """Per-campaign (or per-shard) statistics, metrics-JSON house style."""

    seed: int = 0
    mode: str = "count"
    jobs: int = 1
    shards: int = 1
    shard: Optional[int] = None        # set only on distributed shard runs
    round_size: int = DEFAULT_ROUND_SIZE
    steered: bool = False
    coverage_on: bool = True
    trials: int = 0
    templates: list[str] = field(default_factory=list)
    mutant_limit: Optional[int] = None
    fuel: int = DEFAULT_FUEL

    programs: int = 0
    rounds: int = 0
    accepted: int = 0
    rejected: int = 0
    checker_crashes: int = 0

    exec_trials: int = 0
    exec_passes: int = 0
    exec_inconclusive: int = 0
    exec_errors: int = 0
    ub_violations: int = 0
    spec_violations: int = 0

    mutants: int = 0
    mutants_killed: int = 0
    survivors_demonstrated: int = 0
    survivors_undemonstrated: int = 0
    mutant_crashes: int = 0

    shrink_checks: int = 0
    corpus_written: int = 0
    corpus_deduped: int = 0
    per_template: dict = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)
    coverage: CoverageMap = field(default_factory=CoverageMap)
    wall_s: float = 0.0
    pool_batches: int = 0
    pool_resets: int = 0

    @property
    def accept_rate(self) -> float:
        return self.accepted / self.programs if self.programs else 0.0

    @property
    def kill_rate(self) -> float:
        return self.mutants_killed / self.mutants if self.mutants else 1.0

    @property
    def soundness_violations(self) -> int:
        return (self.ub_violations + self.spec_violations +
                self.survivors_demonstrated)

    @property
    def ok(self) -> bool:
        return (self.soundness_violations == 0
                and self.checker_crashes == 0 and self.mutant_crashes == 0)

    def to_dict(self, deterministic: bool = False) -> dict:
        d = {
            "fuzz_schema_version": FUZZ_SCHEMA_VERSION,
            "seed": self.seed,
            "round_size": self.round_size,
            "steered": self.steered,
            "coverage_on": self.coverage_on,
            "trials": self.trials,
            "templates": list(self.templates),
            "mutant_limit": self.mutant_limit,
            "fuel": self.fuel,
            "programs": self.programs,
            "rounds": self.rounds,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "checker_crashes": self.checker_crashes,
            "accept_rate": round(self.accept_rate, 6),
            "exec_trials": self.exec_trials,
            "exec_passes": self.exec_passes,
            "exec_inconclusive": self.exec_inconclusive,
            "exec_errors": self.exec_errors,
            "ub_violations": self.ub_violations,
            "spec_violations": self.spec_violations,
            "mutants": self.mutants,
            "mutants_killed": self.mutants_killed,
            "kill_rate": round(self.kill_rate, 6),
            "survivors_demonstrated": self.survivors_demonstrated,
            "survivors_undemonstrated": self.survivors_undemonstrated,
            "mutant_crashes": self.mutant_crashes,
            "soundness_violations": self.soundness_violations,
            "shrink_checks": self.shrink_checks,
            "per_template": {k: dict(sorted(v.items()))
                             for k, v in sorted(self.per_template.items())},
            "findings": [f.to_dict(deterministic) for f in self.findings],
            "coverage": self.coverage.to_dict() if self.coverage_on
            else None,
            "ok": self.ok,
        }
        if not deterministic:
            # How the budget was specified, how the work was spread over
            # processes/shards, how long it took, and whether findings
            # were persisted to a corpus are facts about the *run*, not
            # the computed campaign — a budget run and its count replay,
            # a 1-shard and a 4-shard run, and a --write-corpus run and
            # its corpus-less --verify-replay, must agree on everything
            # else.
            d["mode"] = self.mode
            d["jobs"] = self.jobs
            d["shards"] = self.shards
            if self.shard is not None:
                d["shard"] = self.shard
            d["corpus_written"] = self.corpus_written
            d["corpus_deduped"] = self.corpus_deduped
            d["wall_s"] = round(self.wall_s, 3)
            d["pool_batches"] = self.pool_batches
            d["pool_resets"] = self.pool_resets
        return d

    def to_json(self, deterministic: bool = False, indent: int = 2) -> str:
        return json.dumps(self.to_dict(deterministic), indent=indent)

    @classmethod
    def from_dict(cls, d: Mapping) -> "CampaignStats":
        got = d.get("fuzz_schema_version", d.get("schema_version"))
        if got != FUZZ_SCHEMA_VERSION:
            raise ValueError(
                f"fuzz stats schema mismatch: file has {got!r}, this "
                f"build speaks {FUZZ_SCHEMA_VERSION}")
        s = cls(seed=d["seed"], mode=d.get("mode", "count"),
                jobs=d.get("jobs", 1), shards=d.get("shards", 1),
                shard=d.get("shard"),
                round_size=d.get("round_size", DEFAULT_ROUND_SIZE),
                steered=d.get("steered", False),
                coverage_on=d.get("coverage_on", True),
                trials=d.get("trials", 0),
                templates=list(d.get("templates", [])),
                mutant_limit=d.get("mutant_limit"),
                fuel=int(d.get("fuel", DEFAULT_FUEL)))
        for name in ("programs", "rounds", "accepted", "rejected",
                     "checker_crashes", "exec_trials", "exec_passes",
                     "exec_inconclusive", "exec_errors", "ub_violations",
                     "spec_violations", "mutants", "mutants_killed",
                     "survivors_demonstrated", "survivors_undemonstrated",
                     "mutant_crashes", "shrink_checks", "corpus_written",
                     "corpus_deduped"):
            setattr(s, name, int(d.get(name, 0)))
        s.per_template = {k: dict(v)
                          for k, v in d.get("per_template", {}).items()}
        s.findings = [Finding.from_dict(f) for f in d.get("findings", [])]
        if d.get("coverage"):
            s.coverage = CoverageMap.from_dict(d["coverage"])
        s.wall_s = float(d.get("wall_s", 0.0))
        return s

    def summary(self) -> str:
        cov = f", {len(self.coverage)} coverage keys" if self.coverage_on \
            else ""
        return (f"fuzz campaign seed={self.seed}: {self.programs} programs "
                f"({self.accepted} accepted, {self.rejected} rejected, "
                f"{self.checker_crashes} crashes), "
                f"{self.exec_trials} exec trials "
                f"({self.ub_violations} UB, {self.spec_violations} spec "
                f"violations, {self.exec_inconclusive} inconclusive), "
                f"{self.mutants} mutants "
                f"({self.mutants_killed} killed, "
                f"kill rate {self.kill_rate:.1%}), "
                f"{len(self.findings)} findings{cov}, {self.wall_s:.1f}s")


def _tally(per_template: dict, template: str, key: str, n: int = 1) -> None:
    per_template.setdefault(template, {})
    per_template[template][key] = per_template[template].get(key, 0) + n


# ---------------------------------------------------------------------
# Shrink predicates: does the failure still reproduce at these params?
# ---------------------------------------------------------------------

def _rebuild(template: str, params: dict,
             mutant: Optional[str]) -> Optional[GenProgram]:
    prog = TEMPLATES[template].build(params)
    if mutant is None:
        return prog
    match = [m for m in prog.mutants if m.name == mutant]
    if not match:
        return None
    return GenProgram(template=prog.template, params=prog.params,
                      index=prog.index, source=match[0].source,
                      entry=prog.entry, concurrent=prog.concurrent)


def _fail_predicate(kind: str, template: str, mutant: Optional[str],
                    exec_seed: str, trials: int,
                    fuel: int) -> Callable[[dict], bool]:
    def still_fails(params: dict) -> bool:
        prog = _rebuild(template, params, mutant)
        if prog is None:
            return False
        check = check_program(prog)
        if kind == "checker-crash":
            return check.verdict is CheckVerdict.CRASH
        if check.verdict is not CheckVerdict.ACCEPTED or check.tp is None:
            return False
        if kind == "mutant-survivor":
            return run_witness(template, mutant, params, check.tp,
                               fuel=fuel) is not None
        res = execute_program(prog, check.tp, random.Random(exec_seed),
                              trials=trials, fuel=fuel)
        if kind == "soundness-ub":
            return res.status is ExecStatus.UB
        if kind == "soundness-spec":
            return res.status is ExecStatus.SPEC_VIOLATION
        if kind == "exec-error":
            return res.status is ExecStatus.EXEC_ERROR
        return False
    return still_fails


_EXPECTED: dict[str, Callable[[Finding], dict]] = {
    # Corpus entries state the *desired* behaviour (see corpus.py): a
    # fresh finding keeps the replay suite red until the bug is fixed.
    "soundness-ub": lambda f: {"check": "accept", "exec": "pass"},
    "soundness-spec": lambda f: {"check": "accept", "exec": "pass"},
    "exec-error": lambda f: {"check": "accept", "exec": "pass"},
    "checker-crash": lambda f: {"check": "no-crash"},
    "mutant-survivor": lambda f: {"check": "reject"},
}


def finalize_findings(stats: CampaignStats, cfg: CampaignConfig) -> None:
    """Centralised post-processing: order findings deterministically,
    shrink each, and auto-file deduped corpus entries.

    Runs once per campaign — after the in-process round loop, or after
    :func:`merge_shard_stats` in the distributed flow — so shard count
    never changes which corpus entries exist or what they contain."""
    stats.findings.sort(key=Finding.sort_key)
    seen: set[str] = set()
    for finding in stats.findings:
        exec_seed = f"{cfg.seed}:{finding.index}:exec"
        if cfg.shrink and finding.shrunk_params is None:
            pred = _fail_predicate(finding.kind, finding.template,
                                   finding.mutant, exec_seed, cfg.trials,
                                   cfg.fuel)
            shrunk, checks = shrink_params(finding.template, finding.params,
                                           pred)
            finding.shrunk_params = shrunk
            finding.shrink_checks = checks
            stats.shrink_checks += checks
        if not cfg.write_corpus:
            continue
        key = finding.dedup_key()
        if key in seen:
            stats.corpus_deduped += 1
            continue
        seen.add(key)
        entry = CorpusEntry(
            template=finding.template,
            params=finding.shrunk_params or finding.params,
            mutant=finding.mutant,
            expect=_EXPECTED[finding.kind](finding),
            exec_seed=exec_seed, trials=cfg.trials, fuel=cfg.fuel,
            note=f"campaign seed={cfg.seed} program={finding.index}: "
                 f"{finding.kind} — {finding.detail[:200]}")
        finding.corpus_path = str(write_entry(entry, cfg.corpus_dir))
        stats.corpus_written += 1


# ---------------------------------------------------------------------
# One round: generate → shard → check → execute → mutate → observe.
# ---------------------------------------------------------------------

def _shard_indices(start: int, k: int, shards: int,
                   shard: Optional[int]) -> list[list[int]]:
    """Partition round indices ``start..start+k`` by ``index % shards``.
    With ``shard`` set (distributed mode), only that slice is returned."""
    parts = [[] for _ in range(shards)]
    for i in range(start, start + k):
        parts[i % shards].append(i)
    if shard is not None:
        return [parts[shard]]
    return parts


def _run_round(cfg: CampaignConfig, stats: CampaignStats,
               programs: list[GenProgram], round_no: int,
               steering: Optional[SteeringState],
               session: Optional[PoolSession],
               checks: Optional[dict] = None) -> None:
    """Process one round's programs (already generated, any shard
    subset) and fold the results into ``stats`` in global index order.

    ``checks`` carries pre-computed shard-batch results; without it the
    round is checked as one batch."""
    if checks is None:
        checks = check_batch([(f"g{p.index}", p) for p in programs],
                             jobs=cfg.jobs, coverage=cfg.coverage,
                             session=session)

    new_by_index: dict[int, int] = {p.index: 0 for p in programs}

    def observe(keys, index: int) -> int:
        if not cfg.coverage or keys is None:
            return 0
        fresh = stats.coverage.observe(keys, index)
        new_by_index[index] = new_by_index.get(index, 0) + len(fresh)
        return len(fresh)

    accepted: list[GenProgram] = []
    for prog in programs:
        check = checks[f"g{prog.index}"]
        _tally(stats.per_template, prog.template, "programs")
        observe(check.signature, prog.index)
        if check.verdict is CheckVerdict.CRASH:
            stats.checker_crashes += 1
            _tally(stats.per_template, prog.template, "crashes")
            stats.findings.append(Finding(
                "checker-crash", prog.template, prog.params,
                prog.index, detail=check.detail))
            continue
        if check.verdict is CheckVerdict.REJECTED:
            stats.rejected += 1
            _tally(stats.per_template, prog.template, "rejected")
            continue
        stats.accepted += 1
        _tally(stats.per_template, prog.template, "accepted")
        accepted.append(prog)

        rng = random.Random(f"{cfg.seed}:{prog.index}:exec")
        res = execute_program(prog, check.tp, rng, trials=cfg.trials,
                              fuel=cfg.fuel)
        stats.exec_trials += res.trials
        stats.exec_passes += res.passes
        stats.exec_inconclusive += res.inconclusive
        observe(oracle_keys(res.status.value, res.ub_class), prog.index)
        if res.status is ExecStatus.UB:
            stats.ub_violations += 1
            stats.findings.append(Finding(
                "soundness-ub", prog.template, prog.params, prog.index,
                ub_class=res.ub_class, detail=res.detail))
        elif res.status is ExecStatus.SPEC_VIOLATION:
            stats.spec_violations += 1
            stats.findings.append(Finding(
                "soundness-spec", prog.template, prog.params,
                prog.index, detail=res.detail))
        elif res.status is ExecStatus.EXEC_ERROR:
            stats.exec_errors += 1
            stats.findings.append(Finding(
                "exec-error", prog.template, prog.params, prog.index,
                detail=res.detail))

    for mr in evaluate_mutants(accepted, jobs=cfg.jobs,
                               limit=cfg.mutant_limit,
                               coverage=cfg.coverage,
                               witness_killed=cfg.coverage,
                               session=session):
        stats.mutants += 1
        _tally(stats.per_template, mr.template, "mutants")
        observe(mr.signature, mr.index)
        observe(oracle_keys(None, mr.ub_class), mr.index)
        if mr.verdict is MutantVerdict.KILLED:
            stats.mutants_killed += 1
            _tally(stats.per_template, mr.template, "killed")
        elif mr.verdict is MutantVerdict.CRASH:
            stats.mutant_crashes += 1
            stats.findings.append(Finding(
                "checker-crash", mr.template, mr.params, mr.index,
                mutant=mr.mutant.name, detail=mr.detail))
        elif mr.verdict is MutantVerdict.SURVIVED_DEMONSTRATED:
            stats.survivors_demonstrated += 1
            stats.findings.append(Finding(
                "mutant-survivor", mr.template, mr.params, mr.index,
                mutant=mr.mutant.name, ub_class=mr.ub_class,
                detail=mr.detail))
        else:
            stats.survivors_undemonstrated += 1

    # new_keys is steered-only bookkeeping: "new to the local map" is
    # not a shard-mergeable notion, so blind (shardable) campaigns skip
    # it and merged stats stay byte-identical to in-process ones.
    if steering is not None:
        for prog in programs:
            n_new = new_by_index.get(prog.index, 0)
            steering.observe(prog.template, n_new, round_no)
            if n_new:
                _tally(stats.per_template, prog.template, "new_keys",
                       n_new)


# ---------------------------------------------------------------------
# The campaign drivers.
# ---------------------------------------------------------------------

def _round_plan(cfg: CampaignConfig, idx: int) -> int:
    """Programs in the round starting at ``idx`` under a count budget
    (full ``round_size`` under a time budget)."""
    if cfg.count is None:
        return cfg.round_size
    return min(cfg.round_size, cfg.count - idx)


def run_campaign(cfg: Optional[CampaignConfig] = None) -> CampaignStats:
    """The in-process engine: rounds of ``round_size`` programs, each
    round partitioned into ``shards`` shard batches fanned out on one
    warm pool session, with steering weights recomputed at every round
    barrier from the merged coverage so far."""
    cfg = cfg or CampaignConfig()
    if cfg.count is None and cfg.budget_s is None:
        cfg = CampaignConfig(**{**cfg.__dict__, "count": 32})
    names = cfg.template_names()
    steered = cfg.steering()
    stats = CampaignStats(
        seed=cfg.seed, mode="budget" if cfg.count is None else "count",
        jobs=cfg.jobs, shards=cfg.shards, round_size=cfg.round_size,
        steered=steered, coverage_on=cfg.coverage,
        trials=cfg.trials, templates=names, mutant_limit=cfg.mutant_limit,
        fuel=cfg.fuel)
    steering = SteeringState() if steered else None
    session = PoolSession(cfg.jobs) if cfg.jobs > 1 else None
    t0 = time.perf_counter()
    idx = round_no = 0

    try:
        while True:
            if cfg.count is not None and idx >= cfg.count:
                break
            if cfg.count is None \
                    and time.perf_counter() - t0 >= cfg.budget_s:
                break
            k = _round_plan(cfg, idx)
            weights = template_weights(names, steering, round_no) \
                if steering is not None else None
            programs: dict[int, GenProgram] = {}
            checks: dict = {}
            for part in _shard_indices(idx, k, cfg.shards, None):
                # Each shard's slice is checked as its own batch on the
                # shared warm pool — the in-process analogue of the
                # distributed fan-out.
                batch = [generate_program(cfg.seed, i, names,
                                          weights=weights) for i in part]
                programs.update({p.index: p for p in batch})
                checks.update(check_batch(
                    [(f"g{p.index}", p) for p in batch], jobs=cfg.jobs,
                    coverage=cfg.coverage, session=session))
            # Centralised assembly: whatever the shard partition, the
            # round is processed in global index order.
            _run_round(cfg, stats,
                       [programs[i] for i in sorted(programs)],
                       round_no, steering, session, checks=checks)
            idx += k
            round_no += 1
    finally:
        if session is not None:
            stats.pool_batches = session.batches
            stats.pool_resets = session.resets
            session.close()

    stats.programs = idx
    stats.rounds = round_no
    finalize_findings(stats, cfg)
    stats.wall_s = time.perf_counter() - t0
    return stats


def run_shard_campaign(cfg: CampaignConfig, shard: int) -> CampaignStats:
    """Distributed mode: run shard ``shard`` of ``cfg.shards`` — only
    the indices with ``index % shards == shard`` — and return mergeable
    per-shard stats.  Shards cannot see each other's coverage between
    rounds, so steering is forced off; findings stay raw (unshrunk,
    unfiled) for the central merge to finalise."""
    if not 0 <= shard < cfg.shards:
        raise ValueError(f"shard {shard} outside 0..{cfg.shards - 1}")
    if cfg.count is None:
        raise ValueError("distributed shards need a count budget: a time "
                         "budget would give each shard a different slice")
    names = cfg.template_names()
    stats = CampaignStats(
        seed=cfg.seed, mode="shard", jobs=cfg.jobs, shards=cfg.shards,
        shard=shard, round_size=cfg.round_size, steered=False,
        coverage_on=cfg.coverage, trials=cfg.trials, templates=names,
        mutant_limit=cfg.mutant_limit, fuel=cfg.fuel)
    session = PoolSession(cfg.jobs) if cfg.jobs > 1 else None
    t0 = time.perf_counter()
    idx = round_no = 0
    try:
        while idx < cfg.count:
            k = _round_plan(cfg, idx)
            [part] = _shard_indices(idx, k, cfg.shards, shard)
            _run_round(cfg, stats,
                       [generate_program(cfg.seed, i, names) for i in part],
                       round_no, None, session)
            stats.programs += len(part)
            idx += k
            round_no += 1
    finally:
        if session is not None:
            stats.pool_batches = session.batches
            stats.pool_resets = session.resets
            session.close()
    stats.rounds = round_no
    stats.wall_s = time.perf_counter() - t0
    return stats


def merge_shard_stats(shard_stats: Sequence[CampaignStats],
                      cfg: Optional[CampaignConfig] = None) -> CampaignStats:
    """Merge per-shard stats (the shard/merge protocol) back into one
    campaign.  Validates that the shards agree on the campaign identity
    and cover every shard exactly once; with ``cfg``, finalisation
    (deterministic ordering, shrinking, corpus filing) runs centrally so
    the merged result is byte-identical to the in-process campaign."""
    if not shard_stats:
        raise ValueError("nothing to merge")
    first = shard_stats[0]
    seen_shards: set[int] = set()
    merged = CampaignStats(
        seed=first.seed, mode="merged", jobs=first.jobs,
        shards=first.shards, round_size=first.round_size, steered=False,
        coverage_on=first.coverage_on, trials=first.trials,
        templates=list(first.templates), mutant_limit=first.mutant_limit,
        fuel=first.fuel)
    for s in shard_stats:
        ident = (s.seed, s.shards, s.round_size, tuple(s.templates),
                 s.trials, s.mutant_limit, s.coverage_on, s.fuel)
        want = (first.seed, first.shards, first.round_size,
                tuple(first.templates), first.trials, first.mutant_limit,
                first.coverage_on, first.fuel)
        if ident != want:
            raise ValueError(f"shard {s.shard} belongs to a different "
                             f"campaign: {ident} != {want}")
        if s.shard is None or s.shard in seen_shards:
            raise ValueError(f"duplicate or missing shard id: {s.shard}")
        if s.steered:
            raise ValueError(f"shard {s.shard} was steered: distributed "
                             "shards must run blind")
        seen_shards.add(s.shard)
        for name in ("programs", "rounds", "accepted", "rejected",
                     "checker_crashes", "exec_trials", "exec_passes",
                     "exec_inconclusive", "exec_errors", "ub_violations",
                     "spec_violations", "mutants", "mutants_killed",
                     "survivors_demonstrated", "survivors_undemonstrated",
                     "mutant_crashes"):
            setattr(merged, name, getattr(merged, name) + getattr(s, name))
        for template, tallies in s.per_template.items():
            for key, n in tallies.items():
                _tally(merged.per_template, template, key, n)
        merged.findings.extend(s.findings)
        merged.coverage.merge(s.coverage)
        merged.wall_s = max(merged.wall_s, s.wall_s)
    if seen_shards != set(range(first.shards)):
        missing = sorted(set(range(first.shards)) - seen_shards)
        raise ValueError(f"incomplete merge: missing shards {missing}")
    # Every shard ran the same number of rounds over the same index
    # space; the campaign's round count is theirs, not the sum.
    merged.rounds = first.rounds
    if cfg is not None:
        finalize_findings(merged, cfg)
    else:
        merged.findings.sort(key=Finding.sort_key)
    return merged
