"""Generation of well-formed annotated C programs for the soundness fuzzer.

Each :class:`Template` is a family of programs over the supported subset
(ints, pointers, structs, loops, calls, optional/own types, atomics),
parameterised by a JSON-serialisable ``params`` dict of ints and strings.
Everything is *regenerable*: given ``(template, params)`` the same source,
the same mutants and the same execution trials come back — which is what
makes corpus replay and shrinking deterministic.

A template provides four things:

* ``sample_params(rng)`` — draw structural parameters, biased toward
  boundary values (type extremes, zero-length buffers);
* ``source(params)`` — render annotated C that the checker *should*
  accept (templates are designed-sound);
* ``mutants(params)`` — designed-*unsound* annotation perturbations
  (widened/narrowed refinements, dropped bounds, off-by-one sizes,
  dropped ownership tokens) the checker must reject.  A mutant with
  ``has_witness`` also knows concrete inputs that drive the mutated
  program into UB, so a false acceptance is *demonstrated*, not argued;
* ``run_trial(params, tp, rng)`` — execute one randomised trial of the
  verified program on the Caesium machine and compare the observable
  behaviour against the specification (raises :class:`SpecViolation`
  on disagreement, propagates ``UndefinedBehavior``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..caesium.concurrency import Scheduler
from ..caesium.eval import Machine
from ..caesium.layout import INT_TYPES_BY_NAME, SIZE_T, IntType
from ..caesium.memory import Memory
from ..caesium.values import NULL, VInt, VPtr, decode_int, encode_int
from ..refinedc.checker import TypedProgram

DEFAULT_FUEL = 1_000_000


class SpecViolation(Exception):
    """An accepted program's observable behaviour contradicts its spec.

    Under adequacy this is just as much a soundness bug as UB: the
    refinement in ``rc::returns``/``rc::ensures`` is a theorem about the
    machine's result, so a mismatch means the checker proved something
    false."""


@dataclass(frozen=True)
class Mutant:
    """One designed-unsound annotation perturbation of a template."""

    name: str            # stable id within the template
    descr: str           # which annotation was perturbed, and how
    source: str          # full mutated translation unit
    has_witness: bool    # the template can demonstrate UB if accepted


@dataclass(frozen=True)
class GenProgram:
    """A generated program: source plus everything needed to replay it."""

    template: str
    params: dict
    index: int
    source: str
    entry: str
    concurrent: bool = False
    mutants: tuple[Mutant, ...] = field(default_factory=tuple)


# ---------------------------------------------------------------------
# Drawing helpers: boundary-value bias.
# ---------------------------------------------------------------------

def biased_int(rng: random.Random, lo: int, hi: int) -> int:
    """Draw from ``[lo, hi]`` with extra mass on the endpoints and zero —
    the values that break verifiers (INT_MIN/MAX, empty buffers)."""
    if lo >= hi:
        return lo
    r = rng.random()
    if r < 0.15:
        return lo
    if r < 0.30:
        return hi
    if r < 0.40 and lo <= 0 <= hi:
        return 0
    if r < 0.45:
        return lo + 1
    if r < 0.50:
        return hi - 1
    return rng.randint(lo, hi)


def _itype(name: str) -> IntType:
    return INT_TYPES_BY_NAME[name]


def _machine(tp: TypedProgram, mem: Optional[Memory] = None,
             fuel: int = DEFAULT_FUEL) -> tuple[Machine, Memory]:
    mem = mem if mem is not None else Memory()
    return Machine(tp.program, memory=mem, fuel=fuel), mem


def _expect(cond: bool, msg: str) -> None:
    if not cond:
        raise SpecViolation(msg)


def _fn(spec_lines: list[str], signature: str, body: str) -> str:
    annots = "\n".join(f"[[rc::{line}]]" for line in spec_lines)
    return f"{annots}\n{signature} {body}\n"


def _requires(conds: list[str]) -> str:
    return "requires(" + ", ".join(f'"{c}"' for c in conds) + ")"


# ---------------------------------------------------------------------
# The template base class.
# ---------------------------------------------------------------------

class Template:
    name: str = ""
    concurrent: bool = False
    #: smallest legal value per (shrinkable, int-valued) param — the
    #: shrinker never goes below these.
    param_floors: dict[str, int] = {}

    def sample_params(self, rng: random.Random) -> dict:
        raise NotImplementedError

    def source(self, params: dict) -> str:
        raise NotImplementedError

    def mutants(self, params: dict) -> list[Mutant]:
        return []

    def run_trial(self, params: dict, tp: TypedProgram, rng: random.Random,
                  fuel: int = DEFAULT_FUEL) -> None:
        raise NotImplementedError

    def witness(self, mutant_name: str, params: dict, tp: TypedProgram,
                fuel: int = DEFAULT_FUEL) -> None:
        """Run the *mutated* program on inputs that satisfy the mutated
        spec but drive execution into UB.  Raises ``UndefinedBehavior``
        when the demonstration succeeds; returns normally otherwise."""
        raise NotImplementedError(
            f"{self.name}: no witness for mutant {mutant_name}")

    def build(self, params: dict, index: int = 0) -> GenProgram:
        return GenProgram(template=self.name, params=dict(params),
                          index=index, source=self.source(params),
                          entry=self.entry(params),
                          concurrent=self.concurrent,
                          mutants=tuple(self.mutants(params)))

    def entry(self, params: dict) -> str:
        return "f"


# ---------------------------------------------------------------------
# T1: guarded integer arithmetic (O-ARITH side conditions).
# ---------------------------------------------------------------------

_SIGNED = ("int16_t", "int32_t", "int64_t")

_PYOP = {"add": lambda a, b: a + b, "sub": lambda a, b: a - b}
_COP = {"add": "+", "sub": "-"}


class ArithTemplate(Template):
    """``f(a, b) = a OP b`` with ``rc::requires`` bounds tight enough that
    the result provably fits the type.  Dropping or widening a bound makes
    the O-ARITH in-range side condition unprovable — and, at run time,
    lets the caller feed operands that really do overflow.

    Ops stay linear (``+``/``-``): bounding ``a * b`` from interval
    hypotheses is nonlinear, beyond the Fourier-Motzkin solver, so a
    designed-sound multiplication would be rejected for *incompleteness*
    and pollute the accept-rate signal."""

    name = "arith"
    param_floors = {"m": 2}

    def sample_params(self, rng: random.Random) -> dict:
        it = rng.choice(_SIGNED)
        op = rng.choice(("add", "sub"))
        t = _itype(it)
        m_max = t.max_value // 2
        m = m_max if rng.random() < 0.5 else rng.randint(2, m_max)
        return {"it": it, "op": op, "m": m}

    def _render(self, params: dict, requires: Optional[list[str]] = None,
                ret: Optional[str] = None) -> str:
        it, op, m = params["it"], params["op"], params["m"]
        c = _COP[op]
        if requires is None:
            requires = [f"{{{-m} <= a}}", f"{{a <= {m}}}",
                        f"{{{-m} <= b}}", f"{{b <= {m}}}"]
        if ret is None:
            ret = f"{{a {c} b}}"
        return _fn(
            ['parameters("a: int", "b: int")',
             f'args("a @ int<{it}>", "b @ int<{it}>")',
             _requires(requires),
             f'returns("{ret} @ int<{it}>")'],
            f"{it} f({it} a, {it} b)",
            f"{{ return a {c} b; }}")

    def source(self, params: dict) -> str:
        return self._render(params)

    def mutants(self, params: dict) -> list[Mutant]:
        it, op, m = params["it"], params["op"], params["m"]
        t = _itype(it)
        base_req = [f"{{{-m} <= a}}", f"{{a <= {m}}}",
                    f"{{{-m} <= b}}", f"{{b <= {m}}}"]
        dropped = [base_req[0]] + base_req[2:]
        widened = [base_req[0], f"{{a <= {t.max_value}}}"] + base_req[2:]
        c = _COP[op]
        return [
            Mutant("drop-req-hi", "drop the upper bound on a",
                   self._render(params, requires=dropped), True),
            Mutant("widen-req-hi", f"widen a's upper bound to {it} max",
                   self._render(params, requires=widened), True),
            Mutant("ret-off-by-one", "claim a result one larger",
                   self._render(params, ret=f"{{a {c} b + 1}}"), False),
        ]

    def run_trial(self, params, tp, rng, fuel=DEFAULT_FUEL):
        it, op, m = params["it"], params["op"], params["m"]
        t = _itype(it)
        a, b = biased_int(rng, -m, m), biased_int(rng, -m, m)
        machine, _ = _machine(tp, fuel=fuel)
        r = machine.call("f", [VInt(a, t), VInt(b, t)])
        want = _PYOP[op](a, b)
        _expect(isinstance(r, VInt) and r.value == want,
                f"f({a}, {b}) = {r!r}, spec says {want}")

    def witness(self, mutant_name, params, tp, fuel=DEFAULT_FUEL):
        it, op, m = params["it"], params["op"], params["m"]
        t = _itype(it)
        # a at the type maximum (allowed once its bound is gone), b at
        # the surviving bound, chosen so the operation must overflow.
        b = -m if op == "sub" else m
        machine, _ = _machine(tp, fuel=fuel)
        machine.call("f", [VInt(t.max_value, t), VInt(b, t)])


# ---------------------------------------------------------------------
# T2: guarded division/modulo (div-by-zero side condition).
# ---------------------------------------------------------------------

class DivTemplate(Template):
    """``f(a, b) = a / b`` over non-negative ``a`` and positive ``b`` —
    non-negative so C truncation and the pure ``div`` agree.  Dropping
    ``1 <= b`` makes the ``b != 0`` side condition of O-ARITH
    unprovable, and ``b = 0`` is a runtime div-by-zero.  (``%`` is out:
    the solver cannot bound ``mod(a, b)``, so sound uses would be
    rejected for incompleteness.)"""

    name = "div"
    param_floors = {"ha": 1, "hb": 1}

    def sample_params(self, rng: random.Random) -> dict:
        it = rng.choice(_SIGNED)
        t = _itype(it)
        ha = t.max_value if rng.random() < 0.5 \
            else rng.randint(1, t.max_value)
        hb = t.max_value if rng.random() < 0.3 \
            else rng.randint(1, min(t.max_value, 1 << 16))
        return {"it": it, "op": "div", "ha": ha, "hb": hb}

    def _render(self, params: dict,
                requires: Optional[list[str]] = None) -> str:
        it, op, ha, hb = params["it"], params["op"], params["ha"], params["hb"]
        c = "/" if op == "div" else "%"
        if requires is None:
            requires = ["{0 <= a}", f"{{a <= {ha}}}",
                        "{1 <= b}", f"{{b <= {hb}}}"]
        return _fn(
            ['parameters("a: int", "b: int")',
             f'args("a @ int<{it}>", "b @ int<{it}>")',
             _requires(requires),
             f'returns("{{a {c} b}} @ int<{it}>")'],
            f"{it} f({it} a, {it} b)",
            f"{{ return a {c} b; }}")

    def source(self, params: dict) -> str:
        return self._render(params)

    def mutants(self, params: dict) -> list[Mutant]:
        ha, hb = params["ha"], params["hb"]
        keep = ["{0 <= a}", f"{{a <= {ha}}}"]
        return [
            Mutant("drop-req-bpos", "drop the positivity bound on b",
                   self._render(params, requires=keep + [f"{{b <= {hb}}}"]),
                   True),
            Mutant("zero-req-bpos", "weaken 1 <= b to 0 <= b",
                   self._render(params, requires=keep +
                                ["{0 <= b}", f"{{b <= {hb}}}"]), True),
        ]

    def run_trial(self, params, tp, rng, fuel=DEFAULT_FUEL):
        it, op, ha, hb = params["it"], params["op"], params["ha"], params["hb"]
        t = _itype(it)
        a, b = biased_int(rng, 0, ha), biased_int(rng, 1, hb)
        machine, _ = _machine(tp, fuel=fuel)
        r = machine.call("f", [VInt(a, t), VInt(b, t)])
        want = a // b if op == "div" else a % b
        _expect(isinstance(r, VInt) and r.value == want,
                f"f({a}, {b}) = {r!r}, spec says {want}")

    def witness(self, mutant_name, params, tp, fuel=DEFAULT_FUEL):
        t = _itype(params["it"])
        machine, _ = _machine(tp, fuel=fuel)
        machine.call("f", [VInt(1, t), VInt(0, t)])


# ---------------------------------------------------------------------
# T3: branching on sign (ternary refinement, INT_MIN boundary).
# ---------------------------------------------------------------------

class AbsTemplate(Template):
    """``abs`` via if/else with a ternary refinement.  The one illegal
    input is INT_MIN (``0 - INT_MIN`` overflows), excluded by
    ``rc::requires`` — the classic boundary-value soundness trap."""

    name = "abs"
    param_floors = {}

    def sample_params(self, rng: random.Random) -> dict:
        return {"it": rng.choice(_SIGNED)}

    def _render(self, params: dict, requires: Optional[list[str]] = None,
                ret: Optional[str] = None) -> str:
        it = params["it"]
        t = _itype(it)
        if requires is None:
            requires = [f"{{{t.min_value + 1} <= a}}",
                        f"{{a <= {t.max_value}}}"]
        if ret is None:
            ret = "{(a < 0 ? 0 - a : a)}"
        return _fn(
            ['parameters("a: int")', f'args("a @ int<{it}>")',
             _requires(requires), f'returns("{ret} @ int<{it}>")'],
            f"{it} f({it} a)",
            "{ if (a < 0) { return 0 - a; } return a; }")

    def source(self, params: dict) -> str:
        return self._render(params)

    def mutants(self, params: dict) -> list[Mutant]:
        t = _itype(params["it"])
        hi = f"{{a <= {t.max_value}}}"
        return [
            Mutant("drop-req-lo", "drop the INT_MIN exclusion",
                   self._render(params, requires=[hi]), True),
            Mutant("widen-req-lo", "re-admit INT_MIN",
                   self._render(params,
                                requires=[f"{{{t.min_value} <= a}}", hi]),
                   True),
            Mutant("ret-flip", "swap the ternary branches",
                   self._render(params, ret="{(a < 0 ? a : 0 - a)}"), False),
        ]

    def run_trial(self, params, tp, rng, fuel=DEFAULT_FUEL):
        t = _itype(params["it"])
        a = biased_int(rng, t.min_value + 1, t.max_value)
        machine, _ = _machine(tp, fuel=fuel)
        r = machine.call("f", [VInt(a, t)])
        _expect(isinstance(r, VInt) and r.value == abs(a),
                f"f({a}) = {r!r}, spec says {abs(a)}")

    def witness(self, mutant_name, params, tp, fuel=DEFAULT_FUEL):
        t = _itype(params["it"])
        machine, _ = _machine(tp, fuel=fuel)
        machine.call("f", [VInt(t.min_value, t)])


# ---------------------------------------------------------------------
# T4: a counting loop with invariant annotations.
# ---------------------------------------------------------------------

class LoopSumTemplate(Template):
    """``s = k * n`` by repeated addition, verified through
    ``rc::exists``/``rc::inv_vars``/``rc::constraints`` loop annotations —
    the binary_search idiom.  Mutating the invariant or the contract
    breaks either the entry check or the exit proof."""

    name = "loop_sum"
    param_floors = {"k": 1, "h": 1}

    def sample_params(self, rng: random.Random) -> dict:
        return {"k": rng.randint(1, 9), "h": biased_int(rng, 1, 4096)}

    def _render(self, params: dict, requires: Optional[list[str]] = None,
                ret: Optional[str] = None, inv_s: Optional[str] = None) -> str:
        k, h = params["k"], params["h"]
        if requires is None:
            requires = [f"{{n <= {h}}}"]
        if ret is None:
            ret = f"{{{k} * n}}"
        if inv_s is None:
            inv_s = f"{{{k} * (n - i)}}"
        body = (
            "{\n"
            "  size_t s = 0;\n"
            '  [[rc::exists("i: nat")]]\n'
            f'  [[rc::inv_vars("n: i @ int<size_t>", "s: {inv_s} @ '
            'int<size_t>")]]\n'
            '  [[rc::constraints("{i <= n}")]]\n'
            "  while (n > 0) {\n"
            f"    s += {k};\n"
            "    n -= 1;\n"
            "  }\n"
            "  return s;\n"
            "}")
        return _fn(
            ['parameters("n: nat")', 'args("n @ int<size_t>")',
             _requires(requires), f'returns("{ret} @ int<size_t>")'],
            "size_t f(size_t n)", body)

    def source(self, params: dict) -> str:
        return self._render(params)

    def mutants(self, params: dict) -> list[Mutant]:
        k = params["k"]
        t = _itype("size_t")
        muts = [
            Mutant("ret-off-by-one", "claim one more than the sum",
                   self._render(params, ret=f"{{{k} * n + 1}}"), False),
            Mutant("inv-off-by-one", "offset the accumulator invariant",
                   self._render(params, inv_s=f"{{{k} * (n - i) + 1}}"),
                   False),
        ]
        if k >= 2:
            # For k = 1 the sum s = n fits size_t for every n, so a
            # dropped bound is still sound and the checker rightly
            # accepts it; only k >= 2 makes this a real mutant.
            muts.insert(1, Mutant(
                "drop-req", "drop the iteration bound",
                self._render(params,
                             requires=[f"{{n <= {t.max_value}}}"]), False))
        return muts

    def run_trial(self, params, tp, rng, fuel=DEFAULT_FUEL):
        k, h = params["k"], params["h"]
        n = biased_int(rng, 0, min(h, 512))
        machine, _ = _machine(tp, fuel=fuel)
        r = machine.call("f", [VInt(n, SIZE_T)])
        _expect(isinstance(r, VInt) and r.value == k * n,
                f"f({n}) = {r!r}, spec says {k * n}")


# ---------------------------------------------------------------------
# T5: read-modify-write through an owned pointer.
# ---------------------------------------------------------------------

class PtrIncTemplate(Template):
    """``*p += d`` under ``&own`` — exercises ownership threading and the
    ``rc::ensures("own p : ...")`` postcondition on the heap."""

    name = "ptr_inc"
    param_floors = {"d": 1, "hi": 0}

    def sample_params(self, rng: random.Random) -> dict:
        it = rng.choice(_SIGNED)
        t = _itype(it)
        d = rng.randint(1, 100)
        hi = t.max_value - d if rng.random() < 0.5 \
            else rng.randint(0, t.max_value - d)
        return {"it": it, "d": d, "hi": hi}

    def _render(self, params: dict, requires: Optional[list[str]] = None,
                ens: Optional[str] = None) -> str:
        it, d, hi = params["it"], params["d"], params["hi"]
        t = _itype(it)
        if requires is None:
            requires = [f"{{{t.min_value} <= v}}", f"{{v <= {hi}}}"]
        if ens is None:
            ens = f"{{v + {d}}}"
        return _fn(
            ['parameters("v: int", "p: loc")',
             f'args("p @ &own<v @ int<{it}>>")',
             _requires(requires),
             f'returns("{{v + {d}}} @ int<{it}>")',
             f'ensures("own p : {ens} @ int<{it}>")'],
            f"{it} f({it}* p)",
            f"{{ *p = *p + {d}; return *p; }}")

    def source(self, params: dict) -> str:
        return self._render(params)

    def mutants(self, params: dict) -> list[Mutant]:
        it, hi = params["it"], params["hi"]
        t = _itype(it)
        lo = f"{{{t.min_value} <= v}}"
        return [
            Mutant("drop-req-hi", "drop the headroom bound on *p",
                   self._render(params, requires=[lo]), True),
            Mutant("widen-req-hi", f"widen *p's bound to {it} max",
                   self._render(params,
                                requires=[lo, f"{{v <= {t.max_value}}}"]),
                   True),
            Mutant("ens-stale", "claim the cell still holds the old value",
                   self._render(params, ens="{v}"), False),
        ]

    def run_trial(self, params, tp, rng, fuel=DEFAULT_FUEL):
        it, d, hi = params["it"], params["d"], params["hi"]
        t = _itype(it)
        v = biased_int(rng, t.min_value, hi)
        machine, mem = _machine(tp, fuel=fuel)
        cell = mem.allocate(t.size, init=encode_int(v, t))
        r = machine.call("f", [VPtr(cell)])
        _expect(isinstance(r, VInt) and r.value == v + d,
                f"f(&{v}) = {r!r}, spec says {v + d}")
        got = decode_int(mem.load(cell, t.size), t)
        _expect(got is not None and got.value == v + d,
                f"ensures says *p = {v + d}, memory holds {got!r}")

    def witness(self, mutant_name, params, tp, fuel=DEFAULT_FUEL):
        t = _itype(params["it"])
        machine, mem = _machine(tp, fuel=fuel)
        cell = mem.allocate(t.size, init=encode_int(t.max_value, t))
        machine.call("f", [VPtr(cell)])


# ---------------------------------------------------------------------
# T6: splitting an uninitialised buffer (O-ADD-UNINIT).
# ---------------------------------------------------------------------

class SplitTemplate(Template):
    """Return the ``n``-byte tail of an ``uninit<N>`` buffer.  The
    returned ``&own<uninit<n>>`` licenses the *caller* to write ``n``
    bytes, so off-by-one size mutants become out-of-bounds writes the
    oracle performs itself — soundness of the interface, not the body."""

    name = "split"
    param_floors = {"nbytes": 0}

    def sample_params(self, rng: random.Random) -> dict:
        return {"nbytes": biased_int(rng, 0, 64)}

    def _render(self, params: dict, arg_n: Optional[int] = None,
                ret_sz: str = "n",
                requires: Optional[list[str]] = None) -> str:
        nb = params["nbytes"]
        if arg_n is None:
            arg_n = nb
        if requires is None:
            requires = [f"{{n <= {nb}}}"]
        return _fn(
            ['parameters("n: nat", "p: loc")',
             f'args("p @ &own<uninit<{arg_n}>>", "n @ int<size_t>")',
             _requires(requires),
             f'returns("&own<uninit<{ret_sz}>>")'],
            "unsigned char* f(unsigned char* p, size_t n)",
            f"{{\n  unsigned char* q = p + ({nb} - n);\n  return q;\n}}")

    def source(self, params: dict) -> str:
        return self._render(params)

    def mutants(self, params: dict) -> list[Mutant]:
        nb = params["nbytes"]
        t = _itype("size_t")
        out = [
            Mutant("widen-ret", "claim one byte more than remains",
                   self._render(params, ret_sz="{n + 1}"), True),
            Mutant("drop-req", "drop the n <= N bound",
                   self._render(params,
                                requires=[f"{{n <= {t.max_value}}}"]), True),
        ]
        if nb >= 1:
            out.append(
                Mutant("narrow-arg", "demand one byte less than used",
                       self._render(params, arg_n=nb - 1), True))
        return out

    def run_trial(self, params, tp, rng, fuel=DEFAULT_FUEL):
        nb = params["nbytes"]
        n = biased_int(rng, 0, nb)
        machine, mem = _machine(tp, fuel=fuel)
        buf = mem.allocate(nb)
        r = machine.call("f", [VPtr(buf), VInt(n, SIZE_T)])
        _expect(isinstance(r, VPtr), f"expected a pointer, got {r!r}")
        # The returned &own<uninit<n>> entitles us to write n bytes.
        mem.store(r.ptr, [0xA5] * n)

    def witness(self, mutant_name, params, tp, fuel=DEFAULT_FUEL):
        nb = params["nbytes"]
        machine, mem = _machine(tp, fuel=fuel)
        if mutant_name == "narrow-arg":
            # Provide exactly what the narrowed spec demands, then use
            # the full returns-claim: an n-byte write into n-1 bytes.
            buf = mem.allocate(nb - 1)
            r = machine.call("f", [VPtr(buf), VInt(nb, SIZE_T)])
            mem.store(r.ptr, [0xA5] * nb)
        elif mutant_name == "widen-ret":
            buf = mem.allocate(nb)
            r = machine.call("f", [VPtr(buf), VInt(nb, SIZE_T)])
            mem.store(r.ptr, [0xA5] * (nb + 1))
        else:  # drop-req: n > N wraps the size_t offset computation
            buf = mem.allocate(nb)
            r = machine.call("f", [VPtr(buf), VInt(nb + 1, SIZE_T)])
            mem.store(r.ptr, [0xA5] * (nb + 1))


# ---------------------------------------------------------------------
# T7: a refined struct (rc::refined_by / rc::field).
# ---------------------------------------------------------------------

class StructSwapTemplate(Template):
    """Swap the fields of a two-field refined struct and return their
    sum.  The ``rc::ensures`` names the *swapped* refinement, so a stale
    postcondition or an off-by-one sum must be rejected."""

    name = "struct_swap"
    param_floors = {"hi": 1}

    def sample_params(self, rng: random.Random) -> dict:
        ft = rng.choice(("size_t", "int32_t", "int64_t"))
        t = _itype(ft)
        hi = t.max_value // 2 if rng.random() < 0.5 \
            else rng.randint(1, t.max_value // 2)
        return {"ft": ft, "hi": hi}

    def _render(self, params: dict, requires: Optional[list[str]] = None,
                ens: str = "(b, a)", ret: str = "{a + b}") -> str:
        ft, hi = params["ft"], params["hi"]
        sort = "nat" if ft == "size_t" else "int"
        if requires is None:
            requires = ["{0 <= a}", f"{{a <= {hi}}}",
                        "{0 <= b}", f"{{b <= {hi}}}"]
        struct = (
            f'struct [[rc::refined_by("a: {sort}", "b: {sort}")]] pair_t '
            "{\n"
            f'  [[rc::field("a @ int<{ft}>")]] {ft} x;\n'
            f'  [[rc::field("b @ int<{ft}>")]] {ft} y;\n'
            "};\n\n")
        return struct + _fn(
            [f'parameters("a: {sort}", "b: {sort}", "p: loc")',
             'args("p @ &own<(a, b) @ pair_t>")',
             _requires(requires),
             f'returns("{ret} @ int<{ft}>")',
             f'ensures("own p : {ens} @ pair_t")'],
            f"{ft} f(struct pair_t* p)",
            f"{{\n  {ft} t = p->x;\n  p->x = p->y;\n  p->y = t;\n"
            "  return p->x + p->y;\n}")

    def source(self, params: dict) -> str:
        return self._render(params)

    def mutants(self, params: dict) -> list[Mutant]:
        ft, hi = params["ft"], params["hi"]
        signed = ft != "size_t"
        return [
            Mutant("ens-noswap", "claim the fields were not swapped",
                   self._render(params, ens="(a, b)"), False),
            Mutant("ret-off-by-one", "claim one more than the sum",
                   self._render(params, ret="{a + b + 1}"), False),
            Mutant("drop-req-a-hi", "drop the overflow guard on a",
                   self._render(params,
                                requires=["{0 <= a}", "{0 <= b}",
                                          f"{{b <= {hi}}}"]), signed),
        ]

    def run_trial(self, params, tp, rng, fuel=DEFAULT_FUEL):
        ft, hi = params["ft"], params["hi"]
        t = _itype(ft)
        a, b = biased_int(rng, 0, hi), biased_int(rng, 0, hi)
        machine, mem = _machine(tp, fuel=fuel)
        cell = mem.allocate(2 * t.size,
                            init=encode_int(a, t) + encode_int(b, t))
        r = machine.call("f", [VPtr(cell)])
        _expect(isinstance(r, VInt) and r.value == a + b,
                f"f(({a}, {b})) = {r!r}, spec says {a + b}")
        x = decode_int(mem.load(cell, t.size), t)
        y = decode_int(mem.load(cell + t.size, t.size), t)
        _expect(x is not None and x.value == b
                and y is not None and y.value == a,
                f"ensures says ({b}, {a}), memory holds ({x!r}, {y!r})")

    def witness(self, mutant_name, params, tp, fuel=DEFAULT_FUEL):
        t = _itype(params["ft"])
        machine, mem = _machine(tp, fuel=fuel)
        cell = mem.allocate(2 * t.size,
                            init=encode_int(t.max_value, t) +
                            encode_int(1, t))
        machine.call("f", [VPtr(cell)])


# ---------------------------------------------------------------------
# T8: conditional ownership transfer via optional<…, null>.
# ---------------------------------------------------------------------

class OptionalTakeTemplate(Template):
    """Subtract ``n`` from a cell if it is large enough and hand the cell
    back, else return NULL — the Figure 1 ``alloc`` shape: the return
    refinement ``{n <= v} @ optional<…, null>`` ties pointer validity to
    a pure condition."""

    name = "optional_take"
    param_floors = {"hi": 0}
    _IT = "int64_t"

    def sample_params(self, rng: random.Random) -> dict:
        t = _itype(self._IT)
        hi = t.max_value // 2 if rng.random() < 0.5 \
            else rng.randint(0, t.max_value // 2)
        return {"hi": hi}

    def _render(self, params: dict, requires: Optional[list[str]] = None,
                cond: str = "{n <= v}", rest: str = "{v - n}") -> str:
        it = self._IT
        hi = params["hi"]
        if requires is None:
            requires = ["{0 <= v}", f"{{v <= {hi}}}",
                        "{0 <= n}", f"{{n <= {hi}}}"]
        return _fn(
            ['parameters("v: int", "n: int", "p: loc")',
             f'args("p @ &own<v @ int<{it}>>", "n @ int<{it}>")',
             _requires(requires),
             f'returns("{cond} @ optional<&own<{rest} @ int<{it}>>, '
             'null>")'],
            f"{it}* f({it}* p, {it} n)",
            "{\n  if (n <= *p) {\n    *p -= n;\n    return p;\n  }\n"
            "  return NULL;\n}")

    def source(self, params: dict) -> str:
        return self._render(params)

    def mutants(self, params: dict) -> list[Mutant]:
        hi = params["hi"]
        return [
            Mutant("flip-cond", "invert the optional's condition",
                   self._render(params, cond="{v <= n}"), False),
            Mutant("ret-stale", "claim the cell is undiminished",
                   self._render(params, rest="{v}"), False),
            Mutant("drop-req-n-lo", "allow negative n",
                   self._render(params,
                                requires=["{0 <= v}", f"{{v <= {hi}}}",
                                          f"{{n <= {hi}}}"]), True),
        ]

    def run_trial(self, params, tp, rng, fuel=DEFAULT_FUEL):
        it = _itype(self._IT)
        hi = params["hi"]
        v, n = biased_int(rng, 0, hi), biased_int(rng, 0, hi)
        machine, mem = _machine(tp, fuel=fuel)
        cell = mem.allocate(it.size, init=encode_int(v, it))
        r = machine.call("f", [VPtr(cell), VInt(n, it)])
        _expect(isinstance(r, VPtr), f"expected a pointer, got {r!r}")
        if n <= v:
            _expect(not r.ptr.is_null,
                    f"spec says non-null for n={n} <= v={v}")
            got = decode_int(mem.load(r.ptr, it.size), it)
            _expect(got is not None and got.value == v - n,
                    f"returned cell holds {got!r}, spec says {v - n}")
        else:
            _expect(r.ptr.is_null, f"spec says NULL for n={n} > v={v}")

    def witness(self, mutant_name, params, tp, fuel=DEFAULT_FUEL):
        it = _itype(self._IT)
        machine, mem = _machine(tp, fuel=fuel)
        cell = mem.allocate(it.size, init=encode_int(0, it))
        machine.call("f", [VPtr(cell), VInt(it.min_value, it)])


# ---------------------------------------------------------------------
# T9: modular checking through call chains.
# ---------------------------------------------------------------------

class CallChainTemplate(Template):
    """``f(a) = g(g(a))`` where each call is checked against ``g``'s
    *spec* (spec-modular checking, §4).  The caller's bounds must leave
    headroom for both increments; weakening them is only caught through
    the callee's precondition."""

    name = "call_chain"
    param_floors = {"k": 1, "h": 3}

    def sample_params(self, rng: random.Random) -> dict:
        it = rng.choice(_SIGNED)
        t = _itype(it)
        k = rng.randint(1, min(1000, t.max_value // 4))
        h = t.max_value - k if rng.random() < 0.5 \
            else rng.randint(k + 2, t.max_value - k)
        return {"it": it, "k": k, "h": h}

    def _render(self, params: dict,
                f_requires: Optional[list[str]] = None,
                g_ret: Optional[str] = None) -> str:
        it, k, h = params["it"], params["k"], params["h"]
        if f_requires is None:
            f_requires = [f"{{{-h} <= a}}", f"{{a <= {h - k}}}"]
        if g_ret is None:
            g_ret = f"{{a + {k}}}"
        g = _fn(
            ['parameters("a: int")', f'args("a @ int<{it}>")',
             _requires([f"{{{-h} <= a}}", f"{{a <= {h}}}"]),
             f'returns("{g_ret} @ int<{it}>")'],
            f"{it} g({it} a)", f"{{ return a + {k}; }}")
        f = _fn(
            ['parameters("a: int")', f'args("a @ int<{it}>")',
             _requires(f_requires),
             f'returns("{{a + {2 * k}}} @ int<{it}>")'],
            f"{it} f({it} a)", "{ return g(g(a)); }")
        return g + "\n" + f

    def source(self, params: dict) -> str:
        return self._render(params)

    def mutants(self, params: dict) -> list[Mutant]:
        it, k, h = params["it"], params["k"], params["h"]
        t = _itype(it)
        return [
            Mutant("drop-caller-req", "drop the caller's bounds entirely",
                   self._render(params,
                                f_requires=[f"{{{t.min_value} <= a}}",
                                            f"{{a <= {t.max_value}}}"]),
                   True),
            # With a <= h admitted, the largest reachable intermediate
            # is h + 2k; UB is only demonstrable when that overflows
            # (otherwise the mutant merely violates g's precondition).
            Mutant("widen-caller-hi", "no headroom for the second call",
                   self._render(params,
                                f_requires=[f"{{{-h} <= a}}",
                                            f"{{a <= {h}}}"]),
                   h + 2 * k > t.max_value),
            Mutant("helper-ret-off", "helper claims one less",
                   self._render(params, g_ret=f"{{a + {k - 1}}}"), False),
        ]

    def run_trial(self, params, tp, rng, fuel=DEFAULT_FUEL):
        it, k, h = params["it"], params["k"], params["h"]
        t = _itype(it)
        a = biased_int(rng, -h, h - k)
        machine, _ = _machine(tp, fuel=fuel)
        r = machine.call("f", [VInt(a, t)])
        _expect(isinstance(r, VInt) and r.value == a + 2 * k,
                f"f({a}) = {r!r}, spec says {a + 2 * k}")

    def witness(self, mutant_name, params, tp, fuel=DEFAULT_FUEL):
        it, k, h = params["it"], params["k"], params["h"]
        t = _itype(it)
        # drop-caller-req admits the type max; widen-caller-hi admits h,
        # for which the second call's increment reaches max + k.
        a = t.max_value if mutant_name == "drop-caller-req" else h
        machine, _ = _machine(tp, fuel=fuel)
        machine.call("f", [VInt(a, t)])


# ---------------------------------------------------------------------
# T10: a spinlock-protected counter (atomics + interleavings).
# ---------------------------------------------------------------------

_SPINLOCK_SRC = """
struct [[rc::refined_by()]] spinlock {
  [[rc::field("atomicbool<int; ; tok(lockres, 0)>")]] _Atomic int locked;
};

[[rc::parameters("l: loc")]]
[[rc::args("l @ &shr<spinlock>")]]
[[rc::ensures("tok(lockres, 0)")]]
void spin_lock(struct spinlock* l) {
  int expected = 0;
  [[rc::inv_vars("expected: {0} @ int<int>")]]
  while (!atomic_compare_exchange_strong(&l->locked, &expected, 1)) {
    expected = 0;
  }
}

[[rc::parameters("l: loc")]]
[[rc::args("l @ &shr<spinlock>")]]
[[rc::requires("tok(lockres, 0)")]]
void spin_unlock(struct spinlock* l) {
  atomic_store(&l->locked, 0);
}

void worker(struct spinlock* l, size_t* counter, size_t rounds) {
  size_t i = 0;
  while (i < rounds) {
    spin_lock(l);
    *counter = *counter + 1;
    spin_unlock(l);
    i += 1;
  }
}
"""

_INT_T = INT_TYPES_BY_NAME["int"]


class SpinlockTemplate(Template):
    """Concurrent workers bump a lock-protected counter under randomised
    interleavings with the race detector armed.  The interesting mutants
    break the lock protocol: the checker must reject them, and the
    non-atomic-store variant actually races under the scheduler."""

    name = "spinlock"
    concurrent = True
    param_floors = {"threads": 2, "rounds": 1}

    def sample_params(self, rng: random.Random) -> dict:
        return {"threads": rng.randint(2, 3), "rounds": rng.randint(1, 4)}

    def source(self, params: dict) -> str:
        return _SPINLOCK_SRC

    def entry(self, params: dict) -> str:
        return "worker"

    def mutants(self, params: dict) -> list[Mutant]:
        return [
            Mutant("drop-tok-req", "unlock without holding the token",
                   _SPINLOCK_SRC.replace(
                       '[[rc::requires("tok(lockres, 0)")]]\n', ""), False),
            Mutant("plain-store", "non-atomic store releases the lock",
                   _SPINLOCK_SRC.replace("atomic_store(&l->locked, 0);",
                                         "l->locked = 0;"), True),
        ]

    def _run_sched(self, tp: TypedProgram, seed: int, threads: int,
                   rounds: int, fuel: int) -> int:
        sched = Scheduler(tp.program, seed=seed, fuel=fuel)
        mem = sched.memory
        lock = mem.allocate(_INT_T.size)
        mem.store(lock, encode_int(0, _INT_T), tid=0)
        counter = mem.allocate(SIZE_T.size)
        mem.store(counter, encode_int(0, SIZE_T), tid=0)
        for _ in range(threads):
            sched.spawn("worker", [VPtr(lock), VPtr(counter),
                                   VInt(rounds, SIZE_T)])
        sched.run()
        final = decode_int(mem.load(counter, SIZE_T.size), SIZE_T)
        return -1 if final is None else final.value

    def run_trial(self, params, tp, rng, fuel=DEFAULT_FUEL):
        threads, rounds = params["threads"], params["rounds"]
        seed = rng.randrange(1 << 16)
        got = self._run_sched(tp, seed, threads, rounds, fuel)
        _expect(got == threads * rounds,
                f"lost updates under seed {seed}: counter = {got}, "
                f"spec says {threads * rounds}")

    def witness(self, mutant_name, params, tp, fuel=DEFAULT_FUEL):
        # A data race needs an unlucky interleaving: try a fixed fan of
        # scheduler seeds; UndefinedBehavior propagates on the first hit.
        for seed in range(8):
            self._run_sched(tp, seed, 2, 2, fuel)


# ---------------------------------------------------------------------
# The registry and the generation entry point.
# ---------------------------------------------------------------------

TEMPLATES: dict[str, Template] = {
    t.name: t for t in (
        ArithTemplate(), DivTemplate(), AbsTemplate(), LoopSumTemplate(),
        PtrIncTemplate(), SplitTemplate(), StructSwapTemplate(),
        OptionalTakeTemplate(), CallChainTemplate(), SpinlockTemplate(),
    )
}

DEFAULT_TEMPLATES: tuple[str, ...] = tuple(TEMPLATES)


def generate_program(seed: int, index: int,
                     templates: Optional[list[str]] = None,
                     weights: Optional[dict[str, float]] = None
                     ) -> GenProgram:
    """Generate the ``index``-th program of campaign ``seed``.

    Deterministic and batching-independent: program ``(seed, index)`` is
    the same whatever came before it, because each draws from its own
    ``Random(f"{seed}:{index}")`` stream.

    ``weights`` (steered campaigns) biases the template choice; the
    draw stays a pure function of ``(seed, index, templates, weights)``,
    so two campaigns that compute the same weights for the same index
    generate the same program regardless of sharding."""
    names = list(templates) if templates else list(DEFAULT_TEMPLATES)
    rng = random.Random(f"{seed}:{index}")
    if weights is None:
        chosen = names[rng.randrange(len(names))]
    else:
        chosen = _weighted_choice(names, weights, rng)
    template = TEMPLATES[chosen]
    params = template.sample_params(rng)
    return template.build(params, index)


def _weighted_choice(names: list[str], weights: dict[str, float],
                     rng: random.Random) -> str:
    """Cumulative-sum weighted draw (no ``random.choices`` so the stream
    consumes exactly one ``rng.random()`` and stays reproducible)."""
    acc = sum(max(weights.get(name, 1.0), 0.0) for name in names)
    if acc <= 0.0:
        return names[rng.randrange(len(names))]
    target = rng.random() * acc
    run = 0.0
    for name in names:
        run += max(weights.get(name, 1.0), 0.0)
        if target < run:
            return name
    return names[-1]
