"""The noise-aware perf-regression sentinel.

Benchmark noise is the reason perf regressions rot: a single slow sample
is indistinguishable from a loaded CI runner, so one-shot comparisons
either cry wolf or get their thresholds widened until they catch
nothing.  The sentinel compares a candidate ledger record against the
**median of its comparable history** with per-metric threshold bands:

* **wall time** regresses when the candidate exceeds the median by both
  a *relative* tolerance (default +25%) and an *absolute* floor
  (default 50ms) — the floor keeps microsecond-scale suites from
  flagging scheduler jitter, the relative band scales with the suite;
* **cache-effectiveness ratios** regress on an *absolute* drop (default
  −0.10) below the median — a ratio is already normalized, so a relative
  band would over-trigger near zero and under-trigger near one.  Layers
  whose ratio is ``None`` ("never ran") are skipped on either side:
  "unused" is not "0% effective".

History is *comparable* records only — same kind, platform, python
minor, jobs, tracked ``RC_*`` flags, in-process switch config, and unit
suite (:func:`pool_key`) — so an interpreted run is never judged against
compiled history.  Fewer than ``min_history`` comparable records means
**skip, not pass-or-fail**: the sentinel refuses to guess from thin
evidence.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Sequence

#: candidate wall must exceed the history median by this fraction...
WALL_REL_TOL = 0.25
#: ...and by at least this many seconds, to count as a regression
WALL_ABS_FLOOR_S = 0.05
#: absolute drop below the median ratio that counts as a regression
RATIO_ABS_TOL = 0.10
#: fewer comparable history records than this → skip (refuse to judge)
MIN_HISTORY = 3

#: the cache-effectiveness layers the sentinel watches, with the field
#: holding each layer's ratio (the dispatch table reports a rate, not a
#: hit ratio — see DriverMetrics.cache_effectiveness)
RATIO_FIELDS = (
    ("result_cache", "ratio"),
    ("solver_memo", "ratio"),
    ("dispatch_table", "per_application"),
    ("elaboration_memo", "ratio"),
    ("depgraph", "ratio"),
)


def pool_key(record: dict) -> str:
    """The comparability pool of one ledger record.  Records in the same
    pool ran the same workload the same way; only they may be compared.
    Python is pinned to ``major.minor`` (patch releases do not move
    performance the way 3.11→3.12 did)."""
    platform_block = record.get("platform", {})
    python = ".".join(str(platform_block.get("python", "")).split(".")[:2])
    return json.dumps({
        "kind": record.get("kind", ""),
        "machine": platform_block.get("machine", ""),
        "system": platform_block.get("system", ""),
        "python": python,
        "jobs": record.get("jobs", 1),
        "env": record.get("env", {}),
        "config": record.get("config", {}),
        "suite": record.get("suite", []),
    }, sort_keys=True)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    return ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2


@dataclass
class Regression:
    """One flagged metric: the candidate fell outside its band."""

    metric: str
    baseline: float      # the history median
    current: float
    limit: float         # the band edge that was crossed

    def describe(self) -> str:
        if self.metric == "wall_s":
            return (f"wall_s: {self.current:.4f}s vs median "
                    f"{self.baseline:.4f}s (limit {self.limit:.4f}s)")
        return (f"{self.metric}: {self.current:.4f} vs median "
                f"{self.baseline:.4f} (floor {self.limit:.4f})")


@dataclass
class SentinelReport:
    """The verdict on one candidate record.  ``status`` is ``"ok"``,
    ``"regression"`` (see ``regressions``) or ``"skipped"`` (not enough
    comparable history — ``reason`` says so)."""

    status: str
    history_size: int = 0
    regressions: list[Regression] = field(default_factory=list)
    reason: str = ""

    @property
    def ok(self) -> bool:
        return self.status != "regression"

    def describe(self) -> str:
        if self.status == "skipped":
            return f"sentinel: skipped ({self.reason})"
        head = (f"sentinel: {self.status} against median of "
                f"{self.history_size} comparable run(s)")
        return "\n".join([head] + [f"  REGRESSION {r.describe()}"
                                   for r in self.regressions])


def comparable_history(candidate: dict, records: Sequence[dict]
                       ) -> list[dict]:
    """The records sharing the candidate's comparability pool, candidate
    itself excluded (by identity, so re-checking an already-appended
    record works)."""
    key = pool_key(candidate)
    return [r for r in records
            if r is not candidate and pool_key(r) == key]


def check_record(candidate: dict, history: Sequence[dict], *,
                 min_history: int = MIN_HISTORY,
                 wall_tol: float = WALL_REL_TOL,
                 wall_floor_s: float = WALL_ABS_FLOOR_S,
                 ratio_tol: float = RATIO_ABS_TOL) -> SentinelReport:
    """Judge one candidate against its (already-filtered) history."""
    if len(history) < min_history:
        return SentinelReport(
            "skipped", len(history),
            reason=f"{len(history)} comparable record(s), "
                   f"need {min_history}")
    report = SentinelReport("ok", len(history))

    walls = [float(r.get("wall_s", 0.0)) for r in history]
    wall_median = _median(walls)
    wall = float(candidate.get("wall_s", 0.0))
    wall_limit = max(wall_median * (1.0 + wall_tol),
                     wall_median + wall_floor_s)
    if wall > wall_limit:
        report.regressions.append(
            Regression("wall_s", wall_median, wall, wall_limit))

    eff = candidate.get("cache_effectiveness")
    if eff is not None:
        for layer, ratio_field in RATIO_FIELDS:
            current = (eff.get(layer) or {}).get(ratio_field)
            if current is None:
                continue
            past = [
                (r.get("cache_effectiveness", {}).get(layer) or {})
                .get(ratio_field)
                for r in history]
            past = [p for p in past if p is not None]
            if len(past) < min_history:
                continue
            floor = _median(past) - ratio_tol
            if float(current) < floor:
                report.regressions.append(
                    Regression(f"cache_effectiveness.{layer}"
                               f".{ratio_field}",
                               _median(past), float(current), floor))

    if report.regressions:
        report.status = "regression"
    return report


def check_latest(records: Sequence[dict], *,
                 kind: Optional[str] = None,
                 min_history: int = MIN_HISTORY,
                 wall_tol: float = WALL_REL_TOL,
                 wall_floor_s: float = WALL_ABS_FLOOR_S,
                 ratio_tol: float = RATIO_ABS_TOL) -> SentinelReport:
    """The CI shape: judge the newest record (optionally of one kind)
    against every earlier comparable record."""
    pool = [r for r in records if kind is None or r.get("kind") == kind]
    if not pool:
        return SentinelReport("skipped", 0, reason="empty ledger")
    candidate = pool[-1]
    history = comparable_history(candidate, pool[:-1])
    return check_record(candidate, history, min_history=min_history,
                        wall_tol=wall_tol, wall_floor_s=wall_floor_s,
                        ratio_tol=ratio_tol)


def check_all_pools(records: Sequence[dict], *,
                    min_history: int = MIN_HISTORY,
                    wall_tol: float = WALL_REL_TOL,
                    wall_floor_s: float = WALL_ABS_FLOOR_S,
                    ratio_tol: float = RATIO_ABS_TOL
                    ) -> dict[str, SentinelReport]:
    """Judge the newest record of *every* comparability pool against that
    pool's history — what ``rcstat --check-all`` runs after a CI job that
    appended several differently-configured passes.  Keys are the pools'
    human-oriented JSON keys."""
    pools: dict[str, list[dict]] = {}
    for rec in records:
        pools.setdefault(pool_key(rec), []).append(rec)
    return {
        key: check_record(group[-1], group[:-1], min_history=min_history,
                          wall_tol=wall_tol, wall_floor_s=wall_floor_s,
                          ratio_tol=ratio_tol)
        for key, group in sorted(pools.items())
    }
