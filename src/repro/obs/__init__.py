"""The verification observatory (README "Observability").

Three layers over the existing trace/metrics machinery:

* :mod:`.ledger` — the persistent run ledger: one schema-versioned JSONL
  record per verify/bench/fuzz run, appended atomically when
  ``RC_LEDGER`` is set, read tolerantly (torn lines and alien schema
  versions are counted and skipped, never raised);
* :mod:`.aggregate` — per-rule / per-tactic cost accounting streamed off
  the trace event stream, merged deterministically like the fuzz
  coverage map;
* :mod:`.regress` — the noise-aware regression sentinel: candidate vs
  median-of-history with per-metric threshold bands, driven by
  ``scripts/rcstat.py`` and the CI perf-sentinel job.
"""

from .aggregate import (AGGREGATE_SCHEMA_VERSION, SOLVER_PREFIX, CostEntry,
                        RuleCostMap, costs_of_outcomes, render_top_rules)
from .ledger import (DEFAULT_LEDGER_PATH, KNOWN_KINDS,
                     LEDGER_SCHEMA_VERSION, LedgerView, append_record,
                     build_record, git_sha, ledger_env_path, read_ledger,
                     record_run)
from .regress import (MIN_HISTORY, RATIO_ABS_TOL, WALL_ABS_FLOOR_S,
                      WALL_REL_TOL, Regression, SentinelReport,
                      check_all_pools, check_latest, check_record,
                      comparable_history, pool_key)

__all__ = [
    "AGGREGATE_SCHEMA_VERSION", "SOLVER_PREFIX", "CostEntry", "RuleCostMap",
    "costs_of_outcomes", "render_top_rules",
    "DEFAULT_LEDGER_PATH", "KNOWN_KINDS", "LEDGER_SCHEMA_VERSION",
    "LedgerView", "append_record", "build_record", "git_sha",
    "ledger_env_path", "read_ledger", "record_run",
    "MIN_HISTORY", "RATIO_ABS_TOL", "WALL_ABS_FLOOR_S", "WALL_REL_TOL",
    "Regression", "SentinelReport", "check_all_pools", "check_latest",
    "check_record", "comparable_history", "pool_key",
]
