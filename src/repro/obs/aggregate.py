"""Per-rule cost accounting over the proof-search event stream.

:class:`RuleCostMap` is the observability sibling of the fuzz farm's
``CoverageMap``: where coverage records *which* behaviours a check
exercised, the cost map records *what each one cost*.  It streams over a
:class:`~repro.trace.tracer.UnitTrace` (no Chrome export, no retained
event list) and maintains, per key,

* ``count`` — how many spans hit the key,
* ``total_s`` — summed wall time of those spans,
* ``self_s`` — total minus directly nested child spans (a rule's own
  cost separated from the solver calls it triggers),
* ``max_s`` — the single slowest span,

for two key families sharing the fuzz signature vocabulary
(:mod:`repro.trace.signature`):

* ``rule:<dispatch-key>:<rule-name>`` — one entry per applied typing
  rule at its dispatch key;
* ``solver:<outcome>[:<tactic>]`` — pure-solver ``prove`` spans, split
  by outcome and the named ``rc::tactics`` solver that discharged them.

Maps **merge deterministically**: counts are schedule-independent (the
trace determinism contract), and the merge of the wall fields is
associative/commutative (sum/sum/sum/max), so folding per-unit maps in
any grouping yields the same totals.  ``to_dict``/``from_dict``
round-trip through JSON with a schema-version check, like the coverage
map, so persisted blocks from a different vocabulary fail loudly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..trace.signature import RULE_PREFIX
from ..trace.tracer import TraceEvent, UnitTrace

#: bump when the key vocabulary or the per-key fields change incompatibly
AGGREGATE_SCHEMA_VERSION = 1

#: key-prefix for the solver-tactic dimension
SOLVER_PREFIX = "solver:"


@dataclass
class CostEntry:
    """The aggregate cost of one key."""

    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    max_s: float = 0.0

    def add_span(self, dur_s: float, self_s: float) -> None:
        self.count += 1
        self.total_s += dur_s
        self.self_s += self_s
        if dur_s > self.max_s:
            self.max_s = dur_s

    def merge(self, other: "CostEntry") -> None:
        self.count += other.count
        self.total_s += other.total_s
        self.self_s += other.self_s
        self.max_s = max(self.max_s, other.max_s)

    def to_dict(self) -> dict:
        return {"count": self.count,
                "total_s": round(self.total_s, 6),
                "self_s": round(self.self_s, 6),
                "max_s": round(self.max_s, 6)}


def _span_key(ev: TraceEvent) -> Optional[str]:
    """The cost-map key of one span event, or ``None`` for spans outside
    the two accounted families.  Mirrors ``signature._event_keys`` so the
    fuzz dashboards and ``rcstat`` tables name behaviours identically."""
    if ev.cat == "rule":
        dispatch = ev.args.get("key") or ev.args.get("goal", "")
        return f"{RULE_PREFIX}{dispatch}:{ev.name}"
    if ev.cat == "solver" and ev.name == "prove":
        outcome = ev.args.get("outcome")
        if outcome is None:
            return None
        tactic = ev.args.get("solver", "")
        return (f"{SOLVER_PREFIX}{outcome}:{tactic}" if tactic
                else f"{SOLVER_PREFIX}{outcome}")
    return None


class RuleCostMap:
    """Streaming count/total/self/max accounting per rule dispatch key
    and per solver tactic."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: dict[str, CostEntry] = {}

    # -- accumulation -------------------------------------------------
    def add_unit_trace(self, trace: Optional[UnitTrace]) -> None:
        """Fold one unit's trace in.  Uses the same stack replay as
        ``trace.profile.build_profile`` (pre-ordered span stream; an
        event at depth *d* closes every open span at depth >= *d*), but
        only materialises the two accounted key families."""
        if trace is None:
            return
        for buf in trace.buffers:
            # [event, direct-child duration]
            stack: list[list] = []

            def pop() -> None:
                ev, child_dur = stack.pop()
                dur = ev.dur or 0.0
                if stack:
                    stack[-1][1] += dur
                key = _span_key(ev)
                if key is not None:
                    entry = self.entries.setdefault(key, CostEntry())
                    entry.add_span(dur, max(0.0, dur - child_dur))

            for ev in buf.events:
                if ev.ph != TraceEvent.SPAN:
                    continue
                while stack and stack[-1][0].depth >= ev.depth:
                    pop()
                stack.append([ev, 0.0])
            while stack:
                pop()

    def add_counts(self, keys) -> None:
        """Fold in count-only coverage keys (no wall columns) — the fuzz
        campaign path, which retains coverage signatures but not traces.
        Accepts an iterable of keys (each counted once) or a key→count
        mapping; only keys in the accounted vocabulary are kept."""
        items = keys.items() if hasattr(keys, "items") \
            else ((k, 1) for k in keys)
        for key, n in items:
            if key.startswith(RULE_PREFIX) or key.startswith(SOLVER_PREFIX):
                self.entries.setdefault(key, CostEntry()).count += int(n)

    def merge(self, other: "RuleCostMap") -> None:
        for key, entry in other.entries.items():
            self.entries.setdefault(key, CostEntry()).merge(entry)

    # -- queries ------------------------------------------------------
    def rules(self) -> dict[str, CostEntry]:
        return {k: v for k, v in self.entries.items()
                if k.startswith(RULE_PREFIX)}

    def tactics(self) -> dict[str, CostEntry]:
        return {k: v for k, v in self.entries.items()
                if k.startswith(SOLVER_PREFIX)}

    def top(self, n: int = 10, *, prefix: str = RULE_PREFIX,
            by: str = "total_s") -> list[tuple[str, CostEntry]]:
        """The ``n`` most expensive keys under ``prefix``, ordered by the
        ``by`` field (falling back to ``count`` for count-only maps),
        ties broken by key so the order is deterministic."""
        items = [(k, v) for k, v in self.entries.items()
                 if k.startswith(prefix)]
        if all(v.total_s == 0.0 for _, v in items):
            by = "count"
        items.sort(key=lambda kv: (-getattr(kv[1], by), kv[0]))
        return items[:n]

    # -- persistence --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema_version": AGGREGATE_SCHEMA_VERSION,
            "entries": {k: self.entries[k].to_dict()
                        for k in sorted(self.entries)},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RuleCostMap":
        version = data.get("schema_version")
        if version != AGGREGATE_SCHEMA_VERSION:
            raise ValueError(
                f"rule-cost schema mismatch: map has {version!r}, "
                f"this build speaks {AGGREGATE_SCHEMA_VERSION}")
        out = cls()
        for key, raw in data.get("entries", {}).items():
            out.entries[str(key)] = CostEntry(
                count=int(raw.get("count", 0)),
                total_s=float(raw.get("total_s", 0.0)),
                self_s=float(raw.get("self_s", 0.0)),
                max_s=float(raw.get("max_s", 0.0)))
        return out


def costs_of_outcomes(outcomes: Iterable) -> RuleCostMap:
    """Fold the traces of several ``VerificationOutcome``-likes (anything
    with a ``trace`` attribute) into one map — the shape the ledger
    writers use after a ``verify_files`` run."""
    costs = RuleCostMap()
    for out in outcomes:
        costs.add_unit_trace(getattr(out, "trace", None))
    return costs


def render_top_rules(costs: RuleCostMap, n: int = 10,
                     prefix: str = RULE_PREFIX) -> str:
    """The terminal/job-summary table shared by ``rcstat --top-rules``
    and the fuzz-nightly summary.  Count-only maps (no wall columns)
    render counts and dashes."""
    rows = costs.top(n, prefix=prefix)
    if not rows:
        return "(no entries)"
    timed = any(e.total_s > 0.0 for _, e in rows)
    lines = [f"{'key':<52} {'count':>7} {'total':>9} {'self':>9} "
             f"{'max':>9}"]
    for key, e in rows:
        if timed:
            lines.append(f"{key:<52} {e.count:>7} "
                         f"{e.total_s * 1e3:>7.2f}ms "
                         f"{e.self_s * 1e3:>7.2f}ms "
                         f"{e.max_s * 1e3:>7.2f}ms")
        else:
            lines.append(f"{key:<52} {e.count:>7} {'-':>9} {'-':>9} "
                         f"{'-':>9}")
    return "\n".join(lines)
