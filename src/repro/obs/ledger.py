"""The run ledger: one JSONL record per verification/bench/fuzz run.

The ledger is the persistent memory of the observatory: every entry
point that opts in (``RC_LEDGER=1`` or ``RC_LEDGER=<path>``) appends one
schema-versioned JSON line describing what ran, under which
configuration, and what it cost —

* identity: record kind (``verify``/``bench``/``fuzz``/``serve``),
  wall-clock timestamp, git sha (best effort), platform triple;
* configuration: the ``RC_*`` environment flags, the resolved
  *in-process* switch states (compile / pure memo — an env flag can be
  overridden programmatically mid-process), job count, and the unit
  suite, so the regression sentinel never compares apples to oranges;
* cost: total wall seconds, per-function wall times keyed
  ``<unit>:<function>``, the schema-v6 cache-effectiveness block, and
  optionally the :class:`~.aggregate.RuleCostMap` of the run.

Append durability matters more than read speed: a record is serialized
to **one line** and written with a **single** ``write(2)`` on an
``O_APPEND`` descriptor, so concurrent appenders (pool workers, parallel
CI shards) interleave at line granularity, never mid-record.  Reads are
correspondingly paranoid: a torn or truncated line, non-JSON garbage, or
a record from an alien schema version is *counted and skipped*, never an
error — a half-written last line must not take down ``rcstat``.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

#: bump when the record layout changes incompatibly; readers skip (and
#: count) records stamped with any other version
LEDGER_SCHEMA_VERSION = 1

DEFAULT_LEDGER_PATH = Path(".rc-ledger.jsonl")

#: the record kinds the toolchain itself appends; ``kind`` is free-form
#: for third parties, but rcstat's ``--kind`` filter offers these.
#: ``serve`` records come from the verification daemon — one per request,
#: with queue-wait and warm-pool telemetry under ``extra``.
KNOWN_KINDS = ("verify", "bench", "fuzz", "serve")

#: the environment flags that change proof-search performance; recorded
#: per run and required to match for two records to be comparable
TRACKED_ENV_FLAGS = ("RC_TRACE", "RC_COMPILE", "RC_PURE_CACHE")

_OFF_VALUES = ("", "0", "false", "off", "no")


def ledger_env_path() -> Optional[Path]:
    """Where ``RC_LEDGER`` says to append, or ``None`` for "ledger off".
    ``1``/``true``/``on``/``yes`` select the default path; anything else
    truthy is itself the path."""
    raw = os.environ.get("RC_LEDGER", "").strip()
    if raw.lower() in _OFF_VALUES:
        return None
    if raw.lower() in ("1", "true", "on", "yes"):
        return DEFAULT_LEDGER_PATH
    return Path(raw)


def git_sha(repo: Optional[Path] = None) -> str:
    """The current commit sha, or ``""`` when git is unavailable, the
    directory is not a repository, or the call fails for any reason —
    the ledger must work in export tarballs too."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo) if repo is not None else None,
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def _platform_block() -> dict:
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "system": platform.system(),
    }


def _config_block() -> dict:
    """The resolved in-process switch states.  These can diverge from the
    environment flags (``set_compile_enabled`` and friends flip them
    programmatically — the benches do exactly that), and the sentinel
    must not compare a compiled pass against an interpreted one just
    because the env looked identical."""
    from ..pure.compiled import COMPILE
    from ..pure.memo import MEMO
    return {"compile": bool(COMPILE.enabled),
            "pure_cache": bool(MEMO.enabled)}


def build_record(kind: str, *,
                 wall_s: float = 0.0,
                 jobs: int = 1,
                 metrics: Optional[Sequence] = None,
                 costs=None,
                 suite: Optional[Sequence[str]] = None,
                 extra: Optional[dict] = None,
                 config_extra: Optional[dict] = None,
                 now: Optional[float] = None) -> dict:
    """Assemble one ledger record.

    ``metrics`` is a list of per-unit ``DriverMetrics`` (kept per-unit so
    the ``functions`` map preserves the unit association); ``costs`` an
    optional :class:`~.aggregate.RuleCostMap`.  ``extra`` lands verbatim
    under the ``extra`` key — bench/fuzz scripts stash their
    script-specific payloads there.  ``config_extra`` merges into the
    ``config`` block and therefore into the sentinel's comparability
    pool — callers use it for run shapes the global switches cannot see
    (result cache on/off, incremental mode)."""
    from ..driver.metrics import (METRICS_SCHEMA_VERSION, DriverMetrics,
                                  merge_metrics)
    config = _config_block()
    if config_extra:
        config.update(config_extra)
    record = {
        "ledger_version": LEDGER_SCHEMA_VERSION,
        "kind": str(kind),
        "ts": float(now if now is not None else time.time()),
        "git_sha": git_sha(),
        "platform": _platform_block(),
        "env": {flag: os.environ.get(flag, "")
                for flag in TRACKED_ENV_FLAGS},
        "config": config,
        "jobs": int(jobs),
        "wall_s": round(float(wall_s), 6),
        "suite": sorted(str(s) for s in (suite or ())),
    }
    if metrics:
        per_unit = list(metrics)
        merged = per_unit[0] if len(per_unit) == 1 \
            else merge_metrics(per_unit)
        assert isinstance(merged, DriverMetrics)
        record["metrics_version"] = METRICS_SCHEMA_VERSION
        record["cache_effectiveness"] = merged.cache_effectiveness()
        record["functions"] = {
            f"{m.study}:{f.name}": round(f.wall_s, 6)
            for m in per_unit for f in m.functions}
        if not record["suite"]:
            record["suite"] = sorted(m.study for m in per_unit)
        if not record["wall_s"]:
            record["wall_s"] = round(sum(m.wall_s for m in per_unit), 6)
    if costs is not None and costs.entries:
        record["rules"] = costs.to_dict()
    if extra:
        record["extra"] = dict(extra)
    return record


def append_record(path: Path | str, record: dict) -> bool:
    """Append one record as a single line.  One ``os.write`` on an
    ``O_APPEND`` descriptor keeps concurrent appenders line-atomic;
    failures (read-only FS, full disk) are reported as ``False``, never
    raised — the ledger is telemetry, not a store of record."""
    path = Path(path)
    line = json.dumps(record, sort_keys=True,
                      separators=(",", ":")) + "\n"
    try:
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        return True
    except OSError:
        return False


@dataclass
class LedgerView:
    """A tolerant read of a ledger file: the loadable records plus counts
    of what was skipped (and why)."""

    records: list[dict] = field(default_factory=list)
    corrupt_lines: int = 0
    alien_versions: int = 0

    def of_kind(self, kind: str) -> list[dict]:
        return [r for r in self.records if r.get("kind") == kind]


def read_ledger(path: Path | str) -> LedgerView:
    """Read every loadable record, in file (= append) order.  A missing
    file is an empty ledger; a torn last line, binary garbage, or a
    record from another schema version is counted and skipped."""
    view = LedgerView()
    try:
        text = Path(path).read_text(encoding="utf-8", errors="replace")
    except OSError:
        return view
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            view.corrupt_lines += 1
            continue
        if not isinstance(rec, dict):
            view.corrupt_lines += 1
            continue
        if rec.get("ledger_version") != LEDGER_SCHEMA_VERSION:
            view.alien_versions += 1
            continue
        view.records.append(rec)
    return view


def record_run(kind: str, *,
               wall_s: float = 0.0,
               jobs: int = 1,
               metrics: Optional[Sequence] = None,
               costs=None,
               suite: Optional[Sequence[str]] = None,
               extra: Optional[dict] = None,
               config_extra: Optional[dict] = None,
               path: Optional[Path | str] = None) -> Optional[dict]:
    """The one-call entry point the toolchain and scripts use: build a
    record and append it to the ``RC_LEDGER`` target (or ``path``, when
    given explicitly).  Returns the record, or ``None`` when the ledger
    is off — the no-op path costs one ``os.environ`` lookup."""
    target = Path(path) if path is not None else ledger_env_path()
    if target is None:
        return None
    record = build_record(kind, wall_s=wall_s, jobs=jobs, metrics=metrics,
                          costs=costs, suite=suite, extra=extra,
                          config_extra=config_extra)
    append_record(target, record)
    return record
