"""Stuck-goal diagnostics: the symbolic state at a verification failure.

§2.1 of the paper stresses *actionable* error reporting: not just "the
proof failed" but the stuck goal, the failing side condition and the
context at the failure point.  VeriFast's symbolic debugger demonstrates
that this view is what makes an SL verifier usable.  When tracing is
enabled, every :class:`~repro.lithium.search.VerificationError` carries a
:class:`StuckGoalReport` built at the failure site:

* the failing goal / reason and the location trail,
* the pure side condition (when the failure is an unprovable ⌜φ⌝),
* a snapshot of Γ (pure facts) and Δ (owned resources), fully resolved
  against the evar substitution,
* the last K trace events leading up to the failure — the "how did we
  get here" tail.

Everything is captured as plain strings so the report pickles across the
driver's process pool and renders identically regardless of schedule
(event lines never include timestamps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .tracer import TraceEvent, Tracer

#: How many trailing events the report keeps.
DEFAULT_TAIL = 12
#: How many goal-stack frames the report keeps (Lithium rule spans nest
#: along the whole proof spine, so the raw stack can be hundreds deep).
DEFAULT_STACK = 16
#: Indentation cap for tail event lines (same reason).
_MAX_INDENT = 12


def _fmt_args(args: dict) -> str:
    if not args:
        return ""
    inner = ", ".join(f"{k}={v!r}" for k, v in sorted(args.items()))
    return f" ({inner})"


def format_event_line(ev: TraceEvent, base_depth: int = 0) -> str:
    """One deterministic line per event: sequence id, nesting, category,
    name and args — never timestamps (the tail must be byte-identical
    between serial and parallel runs).  Indentation is relative to
    ``base_depth`` and capped, since rule spans nest along the whole
    proof spine."""
    indent = ". " * min(max(ev.depth - base_depth, 0), _MAX_INDENT)
    mark = "+" if ev.ph == TraceEvent.SPAN else "-"
    return f"#{ev.seq:<5} {mark} {indent}{ev.cat}.{ev.name}{_fmt_args(ev.args)}"


@dataclass
class StuckGoalReport:
    """The failure-point snapshot attached to a ``VerificationError``."""

    function: str = ""
    reason: str = ""
    location: list[str] = field(default_factory=list)
    side_condition: Optional[str] = None
    gamma: list[str] = field(default_factory=list)      # pure facts
    delta: list[str] = field(default_factory=list)      # owned atoms
    tail: list[str] = field(default_factory=list)       # rendered events
    open_spans: list[str] = field(default_factory=list)  # goal stack

    def render(self) -> str:
        lines = ["--- stuck goal " + "-" * 45]
        if self.function:
            lines.append(f"function: {self.function}")
        if self.location:
            lines.append(f"at: {self.location[-1]}")
            for loc in reversed(self.location[:-1]):
                lines.append(f"    from: {loc}")
        if self.side_condition is not None:
            lines.append(f"stuck side condition: {self.side_condition}")
        if self.reason:
            lines.append(f"reason: {self.reason}")
        if self.open_spans:
            lines.append("goal stack (innermost last):")
            for s in self.open_spans:
                lines.append(f"  {s}")
        lines.append(f"context Γ ({len(self.gamma)} fact(s)):")
        for f in self.gamma:
            lines.append(f"  {f}")
        lines.append(f"context Δ ({len(self.delta)} resource(s)):")
        for a in self.delta:
            lines.append(f"  {a}")
        if self.tail:
            lines.append(f"last {len(self.tail)} trace event(s):")
            lines.extend(f"  {line}" for line in self.tail)
        lines.append("-" * 60)
        return "\n".join(lines)


def build_stuck_report(tracer: Optional[Tracer], *, function: str,
                       reason: str, location: Sequence[str],
                       side_condition: Optional[str],
                       gamma: Sequence[str], delta: Sequence[str],
                       tail: int = DEFAULT_TAIL,
                       stack: int = DEFAULT_STACK) -> StuckGoalReport:
    """Assemble the report at the failure site.  ``tracer`` may be ``None``
    (no event tail is included then); everything else comes from the
    search state, already rendered to strings by the caller."""
    events: list[str] = []
    spans: list[str] = []
    if tracer is not None:
        last = tracer.tail(tail)
        base = min((ev.depth for ev in last), default=0)
        events = [format_event_line(ev, base) for ev in last]
        spans = [f"{ev.cat}.{ev.name}{_fmt_args(ev.args)}"
                 for ev in tracer._stack if ev is not None]
        if len(spans) > stack:
            omitted = len(spans) - stack
            # Keep the outermost frame (the function check) plus the
            # innermost frames — the middle of the spine is noise here.
            spans = (spans[:1]
                     + [f"... ({omitted} outer frame(s) omitted)"]
                     + spans[-(stack - 1):])
    return StuckGoalReport(
        function=function,
        reason=reason,
        location=list(location),
        side_condition=side_condition,
        gamma=list(gamma),
        delta=list(delta),
        tail=events,
        open_spans=spans,
    )
