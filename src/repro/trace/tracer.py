"""The core tracing engine: typed events, spans, deterministic merging.

Design constraints (see DESIGN.md "Proof-search tracing"):

* **Low overhead when off.**  Every instrumentation site reads the module
  global :data:`CURRENT` and compares against ``None`` — one dict lookup
  and one pointer compare.  No event objects, no string formatting, no
  timestamps are produced on the off path.
* **Determinism.**  Every event carries a per-tracer *sequence id* drawn
  from a plain counter that starts at 0, plus the span nesting depth and
  structured ``args`` built only from deterministic inputs (term reprs,
  rule names, outcomes).  Wall-clock data lives exclusively in the ``ts``
  and ``dur`` fields.  Stripping those two fields must make the parallel
  (process-pool) event stream byte-identical to the serial one — the
  driver merges per-worker buffers by unit, then function (spec order),
  then sequence id, and the trace tests assert the identity.
* **Bounded memory.**  A tracer stops recording past ``limit`` events and
  counts the drops instead; spans still balance (ends of recorded spans
  are always applied), so exports never contain dangling spans.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

#: Fields whose values are wall-clock measurements.  Everything else in an
#: event must be deterministic; :meth:`TraceEvent.key` strips exactly these.
TIMESTAMP_FIELDS = ("ts", "dur")

#: Default per-tracer event cap (one tracer covers one function check).
DEFAULT_EVENT_LIMIT = 1_000_000


def trace_env_enabled() -> bool:
    """``RC_TRACE`` turns tracing on for every entry point that is not
    explicitly passed ``trace=``; ``0``/``false``/``off``/``no``/unset
    leave it off."""
    raw = os.environ.get("RC_TRACE", "0").strip().lower()
    return raw not in ("", "0", "false", "off", "no")


class TraceEvent:
    """One trace event.

    ``ph`` follows the Chrome trace-event phase vocabulary: ``"X"`` is a
    complete span (has ``dur``), ``"i"`` an instant.  ``seq`` is the
    deterministic per-tracer sequence id (spans are numbered at *open*
    time, so the stream is in pre-order); ``depth`` is the span nesting
    depth at emission.
    """

    __slots__ = ("seq", "ph", "cat", "name", "depth", "ts", "dur", "args")

    SPAN = "X"
    INSTANT = "i"

    def __init__(self, seq: int, ph: str, cat: str, name: str, depth: int,
                 ts: float, dur: Optional[float] = None,
                 args: Optional[dict] = None) -> None:
        self.seq = seq
        self.ph = ph
        self.cat = cat
        self.name = name
        self.depth = depth
        self.ts = ts
        self.dur = dur
        self.args = args if args is not None else {}

    # -- determinism -------------------------------------------------
    def key(self) -> tuple:
        """The deterministic portion of the event: everything except the
        wall-clock fields (:data:`TIMESTAMP_FIELDS`)."""
        return (self.seq, self.ph, self.cat, self.name, self.depth,
                tuple(sorted(self.args.items())))

    # -- serialization (worker -> parent over the process pool) ------
    def __getstate__(self) -> tuple:
        return (self.seq, self.ph, self.cat, self.name, self.depth,
                self.ts, self.dur, self.args)

    def __setstate__(self, state: tuple) -> None:
        (self.seq, self.ph, self.cat, self.name, self.depth,
         self.ts, self.dur, self.args) = state

    def to_dict(self) -> dict:
        d = {"seq": self.seq, "ph": self.ph, "cat": self.cat,
             "name": self.name, "depth": self.depth,
             "ts": self.ts, "args": self.args}
        if self.ph == self.SPAN:
            d["dur"] = self.dur if self.dur is not None else 0.0
        return d

    def __repr__(self) -> str:  # debugging aid only
        return (f"TraceEvent(#{self.seq} {self.ph} {self.cat}.{self.name} "
                f"depth={self.depth} args={self.args})")


class Tracer:
    """Collects the events of one traced scope (one function check, or one
    unit's front end).  Not thread-safe — a tracer belongs to exactly one
    proof search, mirroring how ``Stats`` works."""

    __slots__ = ("scope", "events", "dropped", "limit", "_seq", "_stack",
                 "_t0")

    def __init__(self, scope: str = "",
                 limit: int = DEFAULT_EVENT_LIMIT,
                 start_seq: int = 0) -> None:
        """``start_seq`` lets a caller append events to an existing
        buffer (e.g. the incremental planner annotating a unit's
        front-end trace) while keeping seq ids strictly increasing."""
        self.scope = scope
        self.events: list[TraceEvent] = []
        self.dropped = 0
        self.limit = limit
        self._seq = start_seq
        self._stack: list[Optional[TraceEvent]] = []
        self._t0 = time.perf_counter()

    # ------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._stack)

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    # ------------------------------------------------------------
    def instant(self, cat: str, name: str, **args: Any) -> None:
        """Emit an instant event."""
        if len(self.events) >= self.limit:
            self.dropped += 1
            self._next_seq()  # keep seq ids aligned with the untruncated run
            return
        self.events.append(TraceEvent(
            self._next_seq(), TraceEvent.INSTANT, cat, name,
            len(self._stack), time.perf_counter() - self._t0, None,
            args or {}))

    def begin(self, cat: str, name: str, **args: Any) -> None:
        """Open a span; must be balanced by :meth:`end`."""
        if len(self.events) >= self.limit:
            self.dropped += 1
            self._next_seq()
            self._stack.append(None)   # balance the matching end()
            return
        ev = TraceEvent(
            self._next_seq(), TraceEvent.SPAN, cat, name,
            len(self._stack), time.perf_counter() - self._t0, None,
            args or {})
        self.events.append(ev)
        self._stack.append(ev)

    def end(self, **args: Any) -> None:
        """Close the innermost open span, filling its duration (and merging
        any late ``args``, e.g. an outcome known only at completion)."""
        ev = self._stack.pop()
        if ev is None:
            return             # the matching begin() was dropped
        ev.dur = (time.perf_counter() - self._t0) - ev.ts
        if args:
            ev.args.update(args)

    @contextmanager
    def span(self, cat: str, name: str, **args: Any) -> Iterator[None]:
        self.begin(cat, name, **args)
        try:
            yield
        finally:
            self.end()

    # ------------------------------------------------------------
    def tail(self, k: int) -> list[TraceEvent]:
        """The last ``k`` recorded events — the material for the
        stuck-goal report."""
        return self.events[-k:] if k > 0 else []

    def close(self) -> None:
        """Close any spans left open (e.g. when a ``VerificationError``
        unwinds through them) so exports are well-formed."""
        while self._stack:
            self.end(unwound=True)


# ---------------------------------------------------------------------
# The current tracer.  Instrumentation sites read the module attribute
# directly (``_trace.CURRENT``) so later rebinding is observed; the
# helpers below are the stable public API for everything else.
# ---------------------------------------------------------------------

CURRENT: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    return CURRENT


def set_current(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as the current tracer; returns the previous one."""
    global CURRENT
    previous = CURRENT
    CURRENT = tracer
    return previous


@contextmanager
def using(tracer: Tracer) -> Iterator[Tracer]:
    """Run a block with ``tracer`` installed, closing it on exit."""
    previous = set_current(tracer)
    try:
        yield tracer
    finally:
        tracer.close()
        set_current(previous)


# ---------------------------------------------------------------------
# Merged traces: per-function buffers -> unit trace.
# ---------------------------------------------------------------------

@dataclass
class FunctionTrace:
    """One tracer's harvest: the events of one scope.  ``function`` is
    empty for a unit's front-end (parse/elaborate) buffer."""

    unit: str
    function: str
    events: list[TraceEvent] = field(default_factory=list)
    dropped: int = 0

    @property
    def scope(self) -> str:
        return f"{self.unit}:{self.function}" if self.function else self.unit

    def keys(self) -> list[tuple]:
        return [ev.key() for ev in self.events]


@dataclass
class UnitTrace:
    """The merged trace of one translation unit: the front-end buffer
    first, then one buffer per live-checked function in *spec order* —
    regardless of the schedule that produced them.  Within a buffer events
    are in sequence-id order.  This makes the parallel stream equal to the
    serial one modulo the timestamp fields (``TraceEvent.key``)."""

    unit: str
    buffers: list[FunctionTrace] = field(default_factory=list)

    def all_events(self) -> Iterator[tuple[FunctionTrace, TraceEvent]]:
        for buf in self.buffers:
            for ev in buf.events:
                yield buf, ev

    def event_count(self) -> int:
        return sum(len(b.events) for b in self.buffers)

    def dropped_count(self) -> int:
        return sum(b.dropped for b in self.buffers)

    def deterministic_keys(self) -> list[tuple]:
        """The timestamp-free view of the whole unit trace, suitable for
        byte-level comparison across schedules (serial vs ``jobs>1``)."""
        return [(buf.unit, buf.function) + ev.key()
                for buf, ev in self.all_events()]

    # Exporters live in repro.trace.chrome; these are convenience hooks.
    def to_chrome(self) -> dict:
        from .chrome import chrome_trace
        return chrome_trace(self)

    def to_jsonl(self) -> str:
        from .chrome import to_jsonl
        return to_jsonl(self)

    def profile(self):
        from .profile import build_profile
        return build_profile(self)


def merge_function_traces(unit: str, front: Optional[FunctionTrace],
                          by_function: dict[str, FunctionTrace],
                          spec_order: Iterator[str]) -> UnitTrace:
    """Assemble a :class:`UnitTrace` deterministically: front end first,
    then the function buffers in ``spec_order`` (functions with no buffer
    — cache hits, missing bodies — are skipped)."""
    buffers: list[FunctionTrace] = []
    if front is not None:
        buffers.append(front)
    for name in spec_order:
        buf = by_function.get(name)
        if buf is not None:
            buffers.append(buf)
    return UnitTrace(unit, buffers)
