"""Trace exporters: Chrome trace-event JSON and a JSONL stream.

The Chrome format (the "Trace Event Format" consumed by Perfetto and
``chrome://tracing``) renders each buffer of a :class:`~.tracer.UnitTrace`
as its own thread row: the front end on ``tid`` 1, then one ``tid`` per
verified function.  Span nesting inside a row reproduces the proof-search
structure — rule applications containing solver calls containing memo
events.

Timestamps are normalised *per buffer* (each buffer starts at 0 µs):
buffers may come from different worker processes whose clocks are not
comparable, and the per-function view is what the Figure-7 breakdown
needs.  ``validate_chrome_trace`` is the schema check used by the tests
and the CI trace-smoke step.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .tracer import TraceEvent, UnitTrace

#: The event schema enforced by :func:`validate_chrome_trace`: required
#: keys and their types per phase.  ``M`` is thread metadata.
CHROME_PHASES = ("X", "i", "M")
_REQUIRED = {"name": str, "cat": str, "ph": str, "pid": int, "tid": int,
             "ts": (int, float)}


def chrome_trace(trace: UnitTrace) -> dict:
    """Export a unit trace as a Chrome trace-event JSON object."""
    events: list[dict] = []
    for tid, buf in enumerate(trace.buffers, start=1):
        label = buf.function or f"{buf.unit} (front end)"
        events.append({
            "name": "thread_name", "ph": "M", "cat": "__metadata",
            "pid": 1, "tid": tid, "ts": 0,
            "args": {"name": label},
        })
        for ev in buf.events:
            entry = {
                "name": ev.name,
                "cat": ev.cat,
                "ph": ev.ph,
                "pid": 1,
                "tid": tid,
                "ts": round(ev.ts * 1e6, 3),
                "args": dict(ev.args, seq=ev.seq),
            }
            if ev.ph == TraceEvent.SPAN:
                entry["dur"] = round((ev.dur or 0.0) * 1e6, 3)
            else:
                entry["s"] = "t"   # instant scope: thread
            events.append(entry)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "unit": trace.unit,
            "tool": "repro.trace",
            "dropped_events": trace.dropped_count(),
        },
    }


def write_chrome_trace(trace: UnitTrace, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(trace), indent=1,
                               sort_keys=True))
    return path


def to_jsonl(trace: UnitTrace) -> str:
    """The raw event stream, one JSON object per line (for ``jq``-style
    downstream processing).  Unlike the Chrome export this keeps the
    native field names including ``seq`` and ``depth``."""
    lines = []
    for buf, ev in trace.all_events():
        d = ev.to_dict()
        d["unit"] = buf.unit
        d["function"] = buf.function
        lines.append(json.dumps(d, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(trace: UnitTrace, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(to_jsonl(trace))
    return path


# ---------------------------------------------------------------------
# Schema validation (used by the tests and the CI trace-smoke step).
# ---------------------------------------------------------------------

def validate_chrome_trace(data: dict) -> list[str]:
    """Validate an exported Chrome trace against the event schema.

    Returns a list of human-readable problems (empty when valid):
    structural requirements of the Trace Event Format plus our own
    invariants — spans have non-negative durations, and within each thread
    spans are properly nested (an event at depth *d* only ever follows an
    open chain of *d* spans)."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["top level is not a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    per_tid_stack: dict[int, list[tuple[float, float]]] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for key, typ in _REQUIRED.items():
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
            elif not isinstance(ev[key], typ) or isinstance(ev[key], bool):
                problems.append(f"{where}: {key!r} has type "
                                f"{type(ev[key]).__name__}")
        ph = ev.get("ph")
        if ph not in CHROME_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if "args" in ev and not isinstance(ev["args"], dict):
            problems.append(f"{where}: args is not an object")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if isinstance(ts, (int, float)) and ts < 0:
            problems.append(f"{where}: negative ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)):
                problems.append(f"{where}: span missing numeric 'dur'")
            elif dur < 0:
                problems.append(f"{where}: negative dur")
            # Nesting: pop finished spans, then require containment in
            # the enclosing span (small float tolerance for rounding).
            if isinstance(ts, (int, float)) and isinstance(dur,
                                                           (int, float)):
                stack = per_tid_stack.setdefault(ev.get("tid", 0), [])
                while stack and ts >= stack[-1][1] - 1e-6:
                    stack.pop()
                if stack and ts + dur > stack[-1][1] + 1e-3:
                    problems.append(
                        f"{where}: span [{ts}, {ts + dur}] escapes its "
                        f"enclosing span ending at {stack[-1][1]}")
                stack.append((ts, ts + dur))
    return problems
