"""End-to-end proof-search tracing (observability layer).

RefinedC's practicality rests on seeing *where* the automation spends its
time (the per-example breakdown behind Figure 7) and *why* a proof gets
stuck (§2.1's actionable error reporting).  This package provides both:

* :mod:`.tracer` — the core :class:`Tracer` emitting typed span/instant
  events (parse, elaborate, per-function check, per-``SearchState`` step,
  rule application, ``PureSolver.prove`` call, evar seal/instantiate,
  context atom add/consume, memo hit/miss) with monotonic timestamps,
  nesting depth and deterministic sequence ids.  The off path is a single
  ``CURRENT is None`` check at every site, so tracing costs <2% when
  disabled (asserted by ``scripts/bench_solver.py`` against the checked-in
  baseline).
* :mod:`.chrome` — Chrome trace-event JSON export (loadable in Perfetto /
  ``chrome://tracing``), a JSONL stream, and an event-schema validator.
* :mod:`.profile` — the self-profile tree: time per rule, per solver
  tactic, top-N slowest solver goals.
* :mod:`.stuck` — the stuck-goal report rendered on
  :class:`~repro.lithium.search.VerificationError`: the failing goal, the
  pure side condition, the Γ/Δ context snapshot and the last K trace
  events leading to the failure.

Tracing is enabled by the ``RC_TRACE`` environment variable or the
``trace=`` keyword of ``verify_source``/``verify_file``/``verify_files``;
the merged per-function buffers are exposed as
``VerificationOutcome.trace`` (see :class:`UnitTrace`).
"""

from .chrome import (chrome_trace, to_jsonl, validate_chrome_trace,
                     write_chrome_trace, write_jsonl)
from .profile import SelfProfile, build_profile, render_profile, trace_summary
from .signature import (RULE_PREFIX, SIGNATURE_SCHEMA_VERSION, rule_keys,
                        signature_of)
from .stuck import StuckGoalReport, build_stuck_report
from .tracer import (FunctionTrace, TraceEvent, Tracer, UnitTrace,
                     current_tracer, merge_function_traces, set_current,
                     trace_env_enabled, using)

__all__ = [
    "FunctionTrace",
    "RULE_PREFIX",
    "SIGNATURE_SCHEMA_VERSION",
    "SelfProfile",
    "StuckGoalReport",
    "TraceEvent",
    "Tracer",
    "UnitTrace",
    "build_profile",
    "build_stuck_report",
    "chrome_trace",
    "current_tracer",
    "merge_function_traces",
    "render_profile",
    "rule_keys",
    "set_current",
    "signature_of",
    "to_jsonl",
    "trace_env_enabled",
    "trace_summary",
    "using",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
