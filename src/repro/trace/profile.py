"""Self-profile over a trace: where the proof search spends its time.

Aggregates the spans of a :class:`~.tracer.UnitTrace` into

* per-``(cat, name)`` span statistics — count, total wall, *self* wall
  (total minus the directly nested spans), so e.g. a typing rule's own
  cost is separated from the solver calls it triggers;
* instant counts (memo hits/misses, evar events, context churn);
* the top-N slowest ``solver.prove`` calls, with their goal and outcome —
  the first place to look when a verification is slow.

``trace_summary`` distills the same data into the JSON-able ``trace``
block of the schema-v3 driver metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tracer import TraceEvent, UnitTrace


@dataclass
class SpanAgg:
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0


@dataclass
class SlowCall:
    dur_s: float
    function: str
    goal: str
    outcome: str
    solver: str


@dataclass
class SelfProfile:
    spans: dict[tuple[str, str], SpanAgg] = field(default_factory=dict)
    instants: dict[tuple[str, str], int] = field(default_factory=dict)
    slowest_prove: list[SlowCall] = field(default_factory=list)
    events: int = 0
    dropped: int = 0

    def rules(self) -> dict[str, SpanAgg]:
        """Per-typing-rule aggregate (spans in the ``rule`` category are
        named after the rule that was applied)."""
        return {name: agg for (cat, name), agg in self.spans.items()
                if cat == "rule"}


def build_profile(trace: UnitTrace, top_n: int = 10) -> SelfProfile:
    prof = SelfProfile(events=trace.event_count(),
                       dropped=trace.dropped_count())
    slow: list[SlowCall] = []
    for buf in trace.buffers:
        # Stack replay over the pre-ordered span stream: an event at depth
        # d is a direct child of the last open span at depth < d.
        stack: list[list] = []   # [event, direct_child_dur]

        def pop() -> None:
            ev, child_dur = stack.pop()
            dur = ev.dur or 0.0
            agg = prof.spans.setdefault((ev.cat, ev.name), SpanAgg())
            agg.count += 1
            agg.total_s += dur
            agg.self_s += max(0.0, dur - child_dur)
            if stack:
                stack[-1][1] += dur
            if ev.cat == "solver" and ev.name == "prove":
                slow.append(SlowCall(dur, buf.function,
                                     str(ev.args.get("goal", "")),
                                     str(ev.args.get("outcome", "")),
                                     str(ev.args.get("solver", ""))))

        for ev in buf.events:
            if ev.ph == TraceEvent.INSTANT:
                key = (ev.cat, ev.name)
                prof.instants[key] = prof.instants.get(key, 0) + 1
                continue
            while stack and stack[-1][0].depth >= ev.depth:
                pop()
            stack.append([ev, 0.0])
        while stack:
            pop()
    slow.sort(key=lambda c: -c.dur_s)
    prof.slowest_prove = slow[:top_n]
    return prof


def render_profile(prof: SelfProfile, top_n: int = 10) -> str:
    """The human-readable self-profile printed by ``scripts/trace.py``."""
    lines = [f"trace profile: {prof.events} event(s)"
             + (f", {prof.dropped} dropped" if prof.dropped else "")]

    rules = sorted(prof.rules().items(), key=lambda kv: -kv[1].total_s)
    if rules:
        lines.append("")
        lines.append(f"{'rule':<24} {'count':>6} {'total':>9} {'self':>9}")
        for name, agg in rules[:top_n]:
            lines.append(f"{name:<24} {agg.count:>6} "
                         f"{agg.total_s * 1e3:>7.2f}ms "
                         f"{agg.self_s * 1e3:>7.2f}ms")

    other = sorted(((k, v) for k, v in prof.spans.items() if k[0] != "rule"),
                   key=lambda kv: -kv[1].total_s)
    if other:
        lines.append("")
        lines.append(f"{'span':<24} {'count':>6} {'total':>9} {'self':>9}")
        for (cat, name), agg in other[:top_n]:
            label = f"{cat}.{name}"
            lines.append(f"{label:<24} {agg.count:>6} "
                         f"{agg.total_s * 1e3:>7.2f}ms "
                         f"{agg.self_s * 1e3:>7.2f}ms")

    if prof.instants:
        lines.append("")
        lines.append(f"{'instant':<24} {'count':>6}")
        for (cat, name), count in sorted(prof.instants.items(),
                                         key=lambda kv: -kv[1])[:top_n]:
            lines.append(f"{cat + '.' + name:<24} {count:>6}")

    if prof.slowest_prove:
        lines.append("")
        lines.append(f"top {len(prof.slowest_prove)} slowest solver goals:")
        for c in prof.slowest_prove:
            where = f" [{c.function}]" if c.function else ""
            lines.append(f"  {c.dur_s * 1e3:7.2f}ms  {c.outcome:<8} "
                         f"{c.goal}{where}")
    return "\n".join(lines)


def trace_summary(trace: UnitTrace, top_n: int = 5) -> dict:
    """The ``trace`` block of the schema-v3 driver metrics: per-rule
    counts/time plus solver/memo roll-ups.  Counts are deterministic;
    the ``*_s`` fields are wall-clock."""
    prof = build_profile(trace, top_n=top_n)
    rules = {name: {"count": agg.count,
                    "total_s": round(agg.total_s, 6),
                    "self_s": round(agg.self_s, 6)}
             for name, agg in sorted(prof.rules().items())}
    prove = prof.spans.get(("solver", "prove"), SpanAgg())
    return {
        "events": prof.events,
        "dropped": prof.dropped,
        "rules": rules,
        "solver": {
            "prove_calls": prove.count,
            "prove_total_s": round(prove.total_s, 6),
            "memo_hits": prof.instants.get(("memo", "hit"), 0),
            "memo_misses": prof.instants.get(("memo", "miss"), 0),
        },
        "slowest_prove": [
            {"dur_s": round(c.dur_s, 6), "function": c.function,
             "goal": c.goal, "outcome": c.outcome}
            for c in prof.slowest_prove
        ],
    }
