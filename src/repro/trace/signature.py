"""Coverage signatures: distill a trace into the set of behaviours it hit.

The fuzz farm steers generation with an execution-coverage signal (the
AFL/libFuzzer idea transplanted to proof search): every checked program
is run under tracing and its :class:`~.tracer.UnitTrace` is distilled
into a **coverage signature** — a set of short deterministic strings
naming the proof-search behaviours the check exercised:

* ``rule:<dispatch-key>:<rule-name>`` — one key per applied typing rule
  *at its dispatch key*, i.e. per (Lithium judgment, type-constructor)
  pair plus the rule chosen for it (``rule:binop:+:int:int:T-BINOP``);
* ``step:<goal-kind>`` — the interpreter cases of §5 taken (``GConj``,
  ``GForall``, ``GSep``, …) — the search-branch shapes;
* ``branch:<label>`` — conjunction branch labels (function entry vs
  loop-invariant blocks, optional case splits);
* ``solver:<outcome>[:<tactic>]`` — pure-solver outcomes, split by the
  named tactic that discharged the goal;
* ``evar:<via>`` — how existentials got instantiated (unification,
  linear solving, simplification rules);
* ``search:deferred`` / ``search:fail`` — deferred side conditions and
  proof failures.

Signatures contain *no* timestamps, term instances or counters, only
behaviour names, so they are byte-identical between serial and parallel
schedules (the trace determinism contract) and cheap to merge across
campaign shards.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .tracer import TraceEvent, UnitTrace

#: bump when the key vocabulary changes incompatibly — persisted coverage
#: maps carry it so stale baselines fail loudly instead of diffing weirdly
SIGNATURE_SCHEMA_VERSION = 1

#: key-prefix for the (judgment, type-constructor) rule dimension;
#: dashboards and the coverage floor filter on it
RULE_PREFIX = "rule:"


def _event_keys(ev: TraceEvent) -> Iterable[str]:
    if ev.cat == "rule":
        # args["key"] is the goal's full dispatch key (judgment head +
        # type-constructor heads); older traces without it fall back to
        # the judgment class name.
        dispatch = ev.args.get("key") or ev.args.get("goal", "")
        yield f"{RULE_PREFIX}{dispatch}:{ev.name}"
    elif ev.cat == "search":
        if ev.name == "step":
            yield f"step:{ev.args.get('goal', '')}"
        elif ev.name == "conj_branch":
            yield f"branch:{ev.args.get('label', '')}"
        elif ev.name == "side_condition_deferred":
            yield "search:deferred"
        elif ev.name == "fail":
            yield "search:fail"
    elif ev.cat == "solver" and ev.name == "prove":
        outcome = ev.args.get("outcome")
        if outcome is not None:
            tactic = ev.args.get("solver", "")
            yield (f"solver:{outcome}:{tactic}" if tactic
                   else f"solver:{outcome}")
    elif ev.cat == "evar" and ev.name == "instantiate":
        yield f"evar:{ev.args.get('via', '')}"
    # memo hits/misses, context churn and frontend phases are performance
    # telemetry, not rule coverage — deliberately excluded.


def signature_of(trace: Optional[UnitTrace]) -> frozenset[str]:
    """Distill a unit trace into its coverage signature (empty for a
    missing trace — checks run without tracing have no coverage)."""
    keys: set[str] = set()
    if trace is None:
        return frozenset()
    for _buf, ev in trace.all_events():
        keys.update(_event_keys(ev))
    return frozenset(keys)


def rule_keys(signature: Iterable[str]) -> frozenset[str]:
    """The (judgment, type-constructor) rule subset of a signature — the
    dimension the coverage floor and the per-rule dashboard are pinned
    on."""
    return frozenset(k for k in signature if k.startswith(RULE_PREFIX))
