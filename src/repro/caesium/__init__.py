"""Caesium: the CFG-based core language RefinedC verifies (paper §3).

An executable deep embedding: C-like layouts, a CompCert-style byte-level
memory model with poison semantics and pointer provenance, an interpreter
with undefined-behaviour checking, and a randomised thread scheduler with
dynamic data-race detection.
"""

from .eval import EvalError, FuelExhausted, Machine
from .layout import (INT_TYPES_BY_NAME, ArrayLayout, IntLayout, IntType,
                     Layout, LayoutError, PtrLayout, StructLayout)
from .memory import AllocKind, Memory, RaceDetector
from .values import (NULL, POISON, MByte, Pointer, UBClass, UndefinedBehavior,
                     Value, VFn, VInt, VPtr)

__all__ = [
    "AllocKind", "ArrayLayout", "EvalError", "FuelExhausted",
    "INT_TYPES_BY_NAME", "IntLayout", "IntType", "Layout", "LayoutError",
    "MByte", "Machine", "Memory", "NULL", "POISON", "Pointer", "PtrLayout",
    "RaceDetector", "StructLayout", "UBClass", "UndefinedBehavior", "VFn",
    "VInt", "VPtr", "Value",
]
