"""The Caesium memory model (§3).

A CompCert-style memory: a finite map from allocation ids to blocks of
representation bytes.  Supported operations check bounds, liveness, and
alignment; violations are undefined behaviour.

Caesium "provides both sequentially consistent and non-atomic memory
accesses, and assigns undefined behavior to data races following the
semantics of RustBelt".  We implement that with a FastTrack-style dynamic
race detector over vector clocks: sequentially consistent atomics act as
synchronisation points (join with a per-location clock), and two unordered
non-atomic accesses to the same byte, at least one of which is a write, are
a data race (= UB).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from .values import POISON, MByte, Pointer, UBClass, UndefinedBehavior


class AllocKind(enum.Enum):
    HEAP = "heap"
    LOCAL = "local"     # function-scoped variable slot
    GLOBAL = "global"


@dataclass
class Allocation:
    data: list[MByte]
    kind: AllocKind
    live: bool = True

    @property
    def size(self) -> int:
        return len(self.data)


class VectorClock:
    """A mutable vector clock over thread ids."""

    __slots__ = ("_c",)

    def __init__(self, init: Optional[dict[int, int]] = None) -> None:
        self._c: dict[int, int] = dict(init or {})

    def get(self, tid: int) -> int:
        return self._c.get(tid, 0)

    def tick(self, tid: int) -> None:
        self._c[tid] = self.get(tid) + 1

    def join(self, other: "VectorClock") -> None:
        for t, c in other._c.items():
            if c > self.get(t):
                self._c[t] = c

    def copy(self) -> "VectorClock":
        return VectorClock(self._c)

    def dominates_epoch(self, tid: int, clock: int) -> bool:
        return self.get(tid) >= clock


@dataclass
class _ByteState:
    """Per-byte access history for race detection (FastTrack-lite)."""

    write: Optional[tuple[int, int]] = None        # (tid, clock)
    reads: dict[int, int] = field(default_factory=dict)  # tid -> clock


class RaceDetector:
    """Detects data races between non-atomic accesses; SC atomics
    synchronise through per-location clocks."""

    def __init__(self) -> None:
        self.thread_clocks: dict[int, VectorClock] = {0: VectorClock({0: 1})}
        self.location_clocks: dict[tuple[int, int], VectorClock] = {}
        self.bytes: dict[tuple[int, int], _ByteState] = {}

    def _clock(self, tid: int) -> VectorClock:
        if tid not in self.thread_clocks:
            self.thread_clocks[tid] = VectorClock({tid: 1})
        return self.thread_clocks[tid]

    def spawn(self, parent: int, child: int) -> None:
        """Child inherits the parent's knowledge (fork happens-before)."""
        pc = self._clock(parent)
        pc.tick(parent)
        child_clock = pc.copy()
        child_clock.tick(child)
        self.thread_clocks[child] = child_clock

    def join_thread(self, parent: int, child: int) -> None:
        """Join: parent learns everything the child did."""
        self._clock(parent).join(self._clock(child))
        self._clock(parent).tick(parent)

    def non_atomic_read(self, tid: int, locs: Iterable[tuple[int, int]]) -> None:
        vc = self._clock(tid)
        for key in locs:
            st = self.bytes.setdefault(key, _ByteState())
            if st.write is not None and not vc.dominates_epoch(*st.write):
                raise UndefinedBehavior(
                    f"data race: non-atomic read of {key} races with write "
                    f"by thread {st.write[0]}", UBClass.DATA_RACE)
            st.reads[tid] = vc.get(tid)

    def non_atomic_write(self, tid: int, locs: Iterable[tuple[int, int]]) -> None:
        vc = self._clock(tid)
        for key in locs:
            st = self.bytes.setdefault(key, _ByteState())
            if st.write is not None and not vc.dominates_epoch(*st.write):
                raise UndefinedBehavior(
                    f"data race: write of {key} races with write by thread "
                    f"{st.write[0]}", UBClass.DATA_RACE)
            for rtid, rclock in st.reads.items():
                if not vc.dominates_epoch(rtid, rclock):
                    raise UndefinedBehavior(
                        f"data race: write of {key} races with read by "
                        f"thread {rtid}", UBClass.DATA_RACE)
            st.write = (tid, vc.get(tid))
            st.reads = {}

    def atomic_access(self, tid: int, locs: Sequence[tuple[int, int]]) -> None:
        """A sequentially consistent access: synchronise with the location
        clock (SC is at least as strong as acq/rel on the same location)."""
        vc = self._clock(tid)
        for key in locs:
            lc = self.location_clocks.setdefault(key, VectorClock())
            lc.join(vc)
            vc.join(lc)
            # An atomic access still conflicts with *unsynchronised*
            # non-atomic accesses (mixed-atomicity race).
            st = self.bytes.setdefault(key, _ByteState())
            if st.write is not None and not vc.dominates_epoch(*st.write):
                raise UndefinedBehavior(
                    f"data race: atomic access of {key} races with "
                    f"non-atomic write by thread {st.write[0]}",
                    UBClass.DATA_RACE)
            st.write = (tid, vc.get(tid))
            st.reads = {}
        vc.tick(tid)


class Memory:
    """The Caesium memory: allocations, loads/stores, and atomics."""

    def __init__(self, detect_races: bool = False) -> None:
        self._allocations: dict[int, Allocation] = {}
        self._next_id = 1
        self.races: Optional[RaceDetector] = RaceDetector() if detect_races else None

    # ------------------------------------------------------------
    def allocate(self, size: int, kind: AllocKind = AllocKind.HEAP,
                 init: Optional[Sequence[MByte]] = None) -> Pointer:
        if size < 0:
            raise UndefinedBehavior("negative allocation size",
                                    UBClass.OTHER)
        data: list[MByte] = list(init) if init is not None else [POISON] * size
        if len(data) != size:
            raise ValueError("init data has wrong length")
        aid = self._next_id
        self._next_id += 1
        self._allocations[aid] = Allocation(data, kind)
        return Pointer(aid, 0)

    def deallocate(self, ptr: Pointer) -> None:
        alloc = self._allocation(ptr)
        if ptr.offset != 0:
            raise UndefinedBehavior(
                "free of non-start-of-allocation pointer", UBClass.PTR_ARITH)
        alloc.live = False

    def allocation_size(self, ptr: Pointer) -> int:
        return self._allocation(ptr).size

    def is_live(self, ptr: Pointer) -> bool:
        alloc = self._allocations.get(ptr.alloc_id)
        return alloc is not None and alloc.live

    def _allocation(self, ptr: Pointer) -> Allocation:
        if ptr.is_null:
            raise UndefinedBehavior("access through NULL pointer",
                                    UBClass.NULL_DEREF)
        alloc = self._allocations.get(ptr.alloc_id)
        if alloc is None:
            raise UndefinedBehavior(f"access to unknown allocation {ptr!r}",
                                    UBClass.USE_AFTER_FREE)
        if not alloc.live:
            raise UndefinedBehavior(f"use after free: {ptr!r}",
                                    UBClass.USE_AFTER_FREE)
        return alloc

    def _check_range(self, ptr: Pointer, size: int) -> Allocation:
        alloc = self._allocation(ptr)
        if ptr.offset < 0 or ptr.offset + size > alloc.size:
            raise UndefinedBehavior(
                f"out-of-bounds access at {ptr!r} (+{size}, "
                f"allocation size {alloc.size})", UBClass.OUT_OF_BOUNDS)
        return alloc

    @staticmethod
    def _check_align(ptr: Pointer, align: int) -> None:
        if align > 1 and ptr.offset % align != 0:
            raise UndefinedBehavior(
                f"misaligned access at {ptr!r} (requires {align})",
                UBClass.MISALIGNED)

    # ------------------------------------------------------------
    def load(self, ptr: Pointer, size: int, align: int = 1,
             tid: int = 0, atomic: bool = False) -> list[MByte]:
        alloc = self._check_range(ptr, size)
        self._check_align(ptr, align)
        if self.races is not None:
            keys = [(ptr.alloc_id, ptr.offset + i) for i in range(size)]
            if atomic:
                self.races.atomic_access(tid, keys)
            else:
                self.races.non_atomic_read(tid, keys)
        return list(alloc.data[ptr.offset:ptr.offset + size])

    def store(self, ptr: Pointer, data: Sequence[MByte], align: int = 1,
              tid: int = 0, atomic: bool = False) -> None:
        alloc = self._check_range(ptr, len(data))
        self._check_align(ptr, align)
        if self.races is not None:
            keys = [(ptr.alloc_id, ptr.offset + i) for i in range(len(data))]
            if atomic:
                self.races.atomic_access(tid, keys)
            else:
                self.races.non_atomic_write(tid, keys)
        alloc.data[ptr.offset:ptr.offset + len(data)] = list(data)

    def compare_exchange(self, ptr: Pointer, expected: Sequence[MByte],
                         desired: Sequence[MByte], align: int = 1,
                         tid: int = 0) -> tuple[bool, list[MByte]]:
        """Sequentially consistent compare-and-swap over representation
        bytes.  Returns (success, old bytes)."""
        size = len(expected)
        if len(desired) != size:
            raise ValueError("CAS operand size mismatch")
        alloc = self._check_range(ptr, size)
        self._check_align(ptr, align)
        if self.races is not None:
            keys = [(ptr.alloc_id, ptr.offset + i) for i in range(size)]
            self.races.atomic_access(tid, keys)
        old = list(alloc.data[ptr.offset:ptr.offset + size])
        if any(not isinstance(b, int) for b in old):
            raise UndefinedBehavior("CAS on poison or pointer bytes",
                                    UBClass.POISON)
        success = old == list(expected)
        if success:
            alloc.data[ptr.offset:ptr.offset + size] = list(desired)
        return success, old
