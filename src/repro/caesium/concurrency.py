"""Thread interleaving for Caesium.

Caesium gives semantics to concurrent programs by interleaving threads at
the granularity of individual memory accesses (the interpreter yields at
every access).  The :class:`Scheduler` here explores random interleavings
under a seeded RNG — the executable analogue of Caesium's non-deterministic
small-step semantics — and surfaces any undefined behaviour (including data
races, detected by the vector-clock detector in the memory model).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Generator, Optional, Sequence

from .eval import Machine
from .memory import Memory
from .syntax import Program
from .values import UndefinedBehavior, Value


@dataclass
class ThreadResult:
    tid: int
    value: Optional[Value] = None
    finished: bool = False


class Scheduler:
    """Run several Caesium threads with randomised interleaving."""

    def __init__(self, program: Program, seed: int = 0,
                 fuel: int = 1_000_000) -> None:
        self.machine = Machine(program, Memory(detect_races=True), fuel=fuel)
        self.rng = random.Random(seed)
        self._threads: list[tuple[int, Generator[None, None, Optional[Value]]]] = []
        self._results: dict[int, ThreadResult] = {}
        self._next_tid = 1

    @property
    def memory(self) -> Memory:
        return self.machine.memory

    def spawn(self, fname: str, args: Sequence[Value]) -> int:
        """Spawn a thread running ``fname(args)``; returns its thread id."""
        tid = self._next_tid
        self._next_tid += 1
        assert self.memory.races is not None
        self.memory.races.spawn(0, tid)
        gen = self.machine.call_gen(fname, list(args), tid)
        self._threads.append((tid, gen))
        self._results[tid] = ThreadResult(tid)
        return tid

    def run(self, max_steps: int = 1_000_000) -> dict[int, ThreadResult]:
        """Interleave all spawned threads to completion.

        Raises :class:`UndefinedBehavior` if any interleaved execution step
        exhibits UB (e.g. a data race).
        """
        live = list(self._threads)
        steps = 0
        while live:
            steps += 1
            if steps > max_steps:
                raise RuntimeError("scheduler: step budget exhausted")
            idx = self.rng.randrange(len(live))
            tid, gen = live[idx]
            try:
                next(gen)
            except StopIteration as stop:
                self._results[tid] = ThreadResult(tid, stop.value, True)
                assert self.memory.races is not None
                self.memory.races.join_thread(0, tid)
                live.pop(idx)
        self._threads.clear()
        return dict(self._results)


def run_concurrently(program: Program,
                     entries: Sequence[tuple[str, Sequence[Value]]],
                     seeds: Sequence[int] = range(10),
                     setup: Optional[Callable[[Scheduler], None]] = None,
                     ) -> list[dict[int, ThreadResult]]:
    """Run the given thread entry points under several seeds.

    Each seed is a fresh machine/memory.  Returns the per-seed results;
    raises on UB in any interleaving explored.
    """
    out = []
    for seed in seeds:
        sched = Scheduler(program, seed=seed)
        if setup is not None:
            setup(sched)
        for fname, args in entries:
            sched.spawn(fname, args)
        out.append(sched.run())
    return out
