"""Abstract syntax of Caesium, the CFG-based core language (§3).

The RefinedC front end elaborates annotated C into this language.  Programs
are sets of functions; a function body is a control-flow graph of *blocks*,
each a list of statements ended by a terminator (``goto``/conditional
goto/``switch``/``return``).  All local variables are function-scoped memory
slots (their address can be taken), and expression evaluation order is fixed
left-to-right — both as documented for Caesium in the paper.

Loop invariants (``rc::inv_vars``/``rc::exists``/``rc::constraints``) attach
to the CFG block that is the loop head; the checker consumes them, the
interpreter ignores them (RefinedC specs "do not influence the program's
compilation or its runtime behavior", §2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .layout import IntType, Layout, StructLayout
from .values import Value


# ---------------------------------------------------------------------
# Expressions.
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class ValE(Expr):
    """A literal value."""

    value: Value


@dataclass(frozen=True)
class IntConst(Expr):
    n: int
    int_type: IntType


@dataclass(frozen=True)
class NullE(Expr):
    pass


@dataclass(frozen=True)
class SizeOfE(Expr):
    layout: Layout
    int_type: IntType


@dataclass(frozen=True)
class VarAddr(Expr):
    """The address of a local variable / parameter slot."""

    name: str


@dataclass(frozen=True)
class GlobalAddr(Expr):
    name: str


@dataclass(frozen=True)
class FnPtrE(Expr):
    """A first-class function pointer."""

    name: str


@dataclass(frozen=True)
class Use(Expr):
    """Load a value of the given layout from the location ``e``."""

    e: Expr
    layout: Layout
    atomic: bool = False


@dataclass(frozen=True)
class FieldOffset(Expr):
    """``&(e->field)``: offset a struct pointer to one of its fields."""

    e: Expr
    struct: StructLayout
    fld: str


@dataclass(frozen=True)
class BinOpE(Expr):
    """A binary operation.

    ``op`` is one of ``+ - * / % == != < <= > >=`` on integers of equal
    type (the front end inserts promotions), ``ptr_offset`` (pointer + byte
    offset; the front end scales indices by ``sizeof``), or pointer
    comparisons ``== != < <=``.
    """

    op: str
    e1: Expr
    e2: Expr


@dataclass(frozen=True)
class UnOpE(Expr):
    """``-``, ``!`` or ``~``."""

    op: str
    e: Expr


@dataclass(frozen=True)
class CastE(Expr):
    """Integer conversion (pointer-to-pointer casts are dropped by the
    front end; integer-pointer casts are unsupported, as in Caesium)."""

    e: Expr
    to: IntType


@dataclass(frozen=True)
class CallE(Expr):
    """A function call; ``fn`` may be any expression of function-pointer
    type (function pointers are first class)."""

    fn: Expr
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class CASE(Expr):
    """``atomic_compare_exchange_strong``: CAS(l_atom, l_exp, v_des) (§6).

    ``atom`` and ``expected`` evaluate to locations; ``desired`` to a value.
    On failure the value read is stored to ``expected``.  Returns a boolean
    (``int``) value.  Sequentially consistent.
    """

    atom: Expr
    expected: Expr
    desired: Expr
    layout: Layout


# ---------------------------------------------------------------------
# Statements and terminators.
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class Stmt:
    pass


@dataclass(frozen=True)
class Assign(Stmt):
    """Store the value of ``rhs`` (of layout ``layout``) to location ``lhs``."""

    lhs: Expr
    rhs: Expr
    layout: Layout
    atomic: bool = False
    line: int = 0


@dataclass(frozen=True)
class ExprS(Stmt):
    """Evaluate an expression for its side effects (e.g. a call)."""

    e: Expr
    line: int = 0


@dataclass(frozen=True)
class Terminator:
    pass


@dataclass(frozen=True)
class Goto(Terminator):
    target: str


@dataclass(frozen=True)
class CondGoto(Terminator):
    cond: Expr
    then_target: str
    else_target: str
    line: int = 0


@dataclass(frozen=True)
class Switch(Terminator):
    """Unstructured switch (supports Duff's-device-style code)."""

    scrutinee: Expr
    cases: tuple[tuple[int, str], ...]
    default: str


@dataclass(frozen=True)
class Ret(Terminator):
    value: Optional[Expr]  # None for void returns
    line: int = 0


@dataclass
class LoopAnnotation:
    """Loop-invariant annotations parsed from ``rc::exists``,
    ``rc::inv_vars``, and ``rc::constraints`` (§2.2)."""

    exists: list[tuple[str, str]] = field(default_factory=list)       # (name, sort text)
    inv_vars: list[tuple[str, str]] = field(default_factory=list)     # (var, type text)
    constraints: list[str] = field(default_factory=list)


@dataclass
class Block:
    stmts: list[Stmt]
    term: Terminator
    annot: Optional[LoopAnnotation] = None


@dataclass
class Function:
    name: str
    params: list[tuple[str, Layout]]
    ret_layout: Optional[Layout]           # None = void
    locals: list[tuple[str, Layout]]
    blocks: dict[str, Block]
    entry: str

    def block(self, label: str) -> Block:
        if label not in self.blocks:
            raise KeyError(f"function {self.name} has no block {label!r}")
        return self.blocks[label]


@dataclass
class Program:
    structs: dict[str, StructLayout] = field(default_factory=dict)
    functions: dict[str, Function] = field(default_factory=dict)
    globals: dict[str, Layout] = field(default_factory=dict)
