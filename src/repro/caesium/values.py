"""Runtime values and representation bytes for Caesium.

Caesium uses a low-level, byte-based memory model with *poison* semantics for
uninitialised data (§3, citing the LLVM poison work [59]): every byte in
memory is either

* a concrete byte ``0..255``,
* a *pointer fragment* (byte ``i`` of a pointer value — pointers carry
  provenance, so their bytes are not plain integers), or
* **poison** (uninitialised).

Reading poison at an integer/pointer type and then *using* the value is
undefined behaviour; Caesium supports "access to representation bytes"
(copying poison around as ``unsigned char`` is fine — using it in arithmetic
is not).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from .layout import PTR_SIZE, IntType


class UBClass(enum.Enum):
    """The classes of undefined behaviour Caesium distinguishes (§3).

    Every :class:`UndefinedBehavior` carries one of these, so tests and the
    soundness fuzzer can assert *which* UB a program exhibits rather than
    matching on message text."""

    OUT_OF_BOUNDS = "out-of-bounds"
    MISALIGNED = "misaligned"
    POISON = "poison"                  # use of an uninitialised value
    SIGNED_OVERFLOW = "signed-overflow"
    DIV_BY_ZERO = "div-by-zero"
    NULL_DEREF = "null-deref"
    DATA_RACE = "data-race"
    USE_AFTER_FREE = "use-after-free"
    PTR_ARITH = "ptr-arith"            # invalid pointer arithmetic/compare
    TYPE_CONFUSION = "type-confusion"  # value used at the wrong kind
    SHIFT_RANGE = "shift-range"
    OTHER = "other"


class UndefinedBehavior(Exception):
    """Raised by the Caesium interpreter on any source of UB."""

    def __init__(self, msg: str,
                 category: UBClass = UBClass.OTHER) -> None:
        super().__init__(msg)
        self.category = category


@dataclass(frozen=True)
class Pointer:
    """A pointer value: allocation id + byte offset (CompCert-style).

    ``alloc_id`` is the provenance; out-of-bounds access and access to dead
    allocations are UB.  The null pointer is ``Pointer(0, 0)``.
    """

    alloc_id: int
    offset: int

    @property
    def is_null(self) -> bool:
        return self.alloc_id == 0 and self.offset == 0

    def __add__(self, n: int) -> "Pointer":
        return Pointer(self.alloc_id, self.offset + n)

    def __repr__(self) -> str:
        if self.is_null:
            return "NULL"
        return f"&a{self.alloc_id}+{self.offset}"


NULL = Pointer(0, 0)


@dataclass(frozen=True)
class VInt:
    """An integer value with its C type."""

    value: int
    int_type: IntType

    def __post_init__(self) -> None:
        if not self.int_type.in_range(self.value):
            raise UndefinedBehavior(
                f"integer {self.value} out of range for {self.int_type.name}")

    def __repr__(self) -> str:
        return f"{self.value}:{self.int_type.name}"


@dataclass(frozen=True)
class VPtr:
    """A pointer value (optionally with the pointee layout as metadata)."""

    ptr: Pointer

    def __repr__(self) -> str:
        return repr(self.ptr)


@dataclass(frozen=True)
class VFn:
    """A first-class function pointer (function designator by name)."""

    name: str

    def __repr__(self) -> str:
        return f"&fn:{self.name}"


Value = Union[VInt, VPtr, VFn]


# ---------------------------------------------------------------------
# Representation bytes.
# ---------------------------------------------------------------------

class _PoisonType:
    """Singleton class for the poison byte."""

    _instance: Optional["_PoisonType"] = None

    def __new__(cls) -> "_PoisonType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "poison"


POISON = _PoisonType()


@dataclass(frozen=True)
class PtrFrag:
    """Byte ``index`` of the representation of pointer ``ptr``."""

    ptr: Pointer
    index: int

    def __repr__(self) -> str:
        return f"ptrfrag({self.ptr!r},{self.index})"


@dataclass(frozen=True)
class FnFrag:
    """Byte ``index`` of the representation of function pointer ``name``."""

    name: str
    index: int


MByte = Union[int, _PoisonType, PtrFrag, FnFrag]


def encode_int(value: int, int_type: IntType) -> list[MByte]:
    """Little-endian two's-complement encoding."""
    if not int_type.in_range(value):
        raise UndefinedBehavior(
            f"cannot encode {value} at type {int_type.name}")
    raw = value & ((1 << int_type.bits) - 1)
    return [(raw >> (8 * i)) & 0xFF for i in range(int_type.size)]


def decode_int(data: Sequence[MByte], int_type: IntType) -> Optional[VInt]:
    """Decode bytes at an integer type; ``None`` means the result is poison
    (uninitialised or pointer bytes — Caesium has no integer-pointer casts)."""
    if len(data) != int_type.size:
        raise ValueError("decode_int: wrong number of bytes")
    if any(not isinstance(b, int) for b in data):
        return None
    raw = 0
    for i, b in enumerate(data):
        raw |= b << (8 * i)
    return VInt(int_type.wrap(raw), int_type)


def encode_ptr(ptr: Pointer) -> list[MByte]:
    if ptr.is_null:
        return [0] * PTR_SIZE
    return [PtrFrag(ptr, i) for i in range(PTR_SIZE)]


def decode_ptr(data: Sequence[MByte]) -> Optional[Union[VPtr, VFn]]:
    """Decode bytes at pointer type; ``None`` = poison result."""
    if len(data) != PTR_SIZE:
        raise ValueError("decode_ptr: wrong number of bytes")
    if all(isinstance(b, int) and b == 0 for b in data):
        return VPtr(NULL)
    first = data[0]
    if isinstance(first, PtrFrag):
        ok = all(isinstance(b, PtrFrag) and b.ptr == first.ptr and b.index == i
                 for i, b in enumerate(data))
        return VPtr(first.ptr) if ok else None
    if isinstance(first, FnFrag):
        ok = all(isinstance(b, FnFrag) and b.name == first.name and b.index == i
                 for i, b in enumerate(data))
        return VFn(first.name) if ok else None
    return None


def encode_value(v: Value, int_type_hint: Optional[IntType] = None) -> list[MByte]:
    if isinstance(v, VInt):
        return encode_int(v.value, v.int_type)
    if isinstance(v, VPtr):
        return encode_ptr(v.ptr)
    if isinstance(v, VFn):
        return [FnFrag(v.name, i) for i in range(PTR_SIZE)]
    raise TypeError(f"not a value: {v!r}")


def value_truthy(v: Value) -> bool:
    """C truthiness of a value (if conditions, ``!``, ``&&``)."""
    if isinstance(v, VInt):
        return v.value != 0
    if isinstance(v, VPtr):
        return not v.ptr.is_null
    if isinstance(v, VFn):
        return True
    raise TypeError(f"not a value: {v!r}")
