"""Memory layouts for Caesium (§3 of the paper).

Caesium's memory model is "roughly based on that of CompCert": typed data is
stored as sequences of bytes, and C types determine *layouts* — size and
alignment information plus field offsets for structs.  The C type only
specifies the physical layout (§2.1); all correctness invariants live in the
RefinedC types.

We model the common LP64 data model (the one used by the paper's case
studies): 8-byte pointers and ``size_t``, natural alignment for integers,
struct fields aligned to their natural alignment with tail padding to the
struct's alignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

PTR_SIZE = 8
PTR_ALIGN = 8


class LayoutError(Exception):
    """Raised for malformed layouts (e.g. unknown field names)."""


@dataclass(frozen=True)
class IntType:
    """A fixed-size C integer type."""

    name: str
    size: int         # in bytes
    signed: bool

    @property
    def bits(self) -> int:
        return self.size * 8

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1

    def in_range(self, n: int) -> bool:
        return self.min_value <= n <= self.max_value

    def wrap(self, n: int) -> int:
        """Wrap ``n`` into this type's range (defined for unsigned types;
        signed wrap-around is UB and handled by the interpreter)."""
        n &= (1 << self.bits) - 1
        if self.signed and n > self.max_value:
            n -= 1 << self.bits
        return n

    def __repr__(self) -> str:
        return self.name


I8 = IntType("int8_t", 1, True)
U8 = IntType("uint8_t", 1, False)
I16 = IntType("int16_t", 2, True)
U16 = IntType("uint16_t", 2, False)
I32 = IntType("int32_t", 4, True)
U32 = IntType("uint32_t", 4, False)
I64 = IntType("int64_t", 8, True)
U64 = IntType("uint64_t", 8, False)

SIZE_T = IntType("size_t", 8, False)
UINTPTR_T = IntType("uintptr_t", 8, False)
INT = IntType("int", 4, True)
UINT = IntType("unsigned int", 4, False)
LONG = IntType("long", 8, True)
ULONG = IntType("unsigned long", 8, False)
CHAR = IntType("char", 1, True)
UCHAR = IntType("unsigned char", 1, False)
SCHAR = IntType("signed char", 1, True)
BOOL_T = IntType("_Bool", 1, False)
SHORT = IntType("short", 2, True)
USHORT = IntType("unsigned short", 2, False)

INT_TYPES_BY_NAME: dict[str, IntType] = {
    t.name: t
    for t in (I8, U8, I16, U16, I32, U32, I64, U64, SIZE_T, UINTPTR_T, INT,
              UINT, LONG, ULONG, CHAR, UCHAR, SCHAR, BOOL_T, SHORT, USHORT)
}


@dataclass(frozen=True)
class Layout:
    """Base class of layouts."""

    @property
    def size(self) -> int:
        raise NotImplementedError

    @property
    def align(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class IntLayout(Layout):
    int_type: IntType

    @property
    def size(self) -> int:
        return self.int_type.size

    @property
    def align(self) -> int:
        return self.int_type.size

    def __repr__(self) -> str:
        return f"IntLayout({self.int_type.name})"


@dataclass(frozen=True)
class PtrLayout(Layout):
    """A pointer layout.  The pointee layout is metadata used by the front
    end for arithmetic scaling; it does not affect size/alignment."""

    pointee_name: str = "void"

    @property
    def size(self) -> int:
        return PTR_SIZE

    @property
    def align(self) -> int:
        return PTR_ALIGN

    def __repr__(self) -> str:
        return f"PtrLayout({self.pointee_name})"


def _align_up(n: int, align: int) -> int:
    return (n + align - 1) // align * align


@dataclass(frozen=True)
class StructLayout(Layout):
    """A struct layout with naturally aligned fields and tail padding."""

    name: str
    fields: tuple[tuple[str, Layout], ...]
    is_union: bool = False

    @cached_property
    def offsets(self) -> dict[str, int]:
        out: dict[str, int] = {}
        off = 0
        for fname, flayout in self.fields:
            if self.is_union:
                out[fname] = 0
            else:
                off = _align_up(off, flayout.align)
                out[fname] = off
                off += flayout.size
        return out

    @property
    def align(self) -> int:
        if not self.fields:
            return 1
        return max(f.align for _, f in self.fields)

    @property
    def size(self) -> int:
        if not self.fields:
            return 0
        if self.is_union:
            raw = max(f.size for _, f in self.fields)
        else:
            last_name, last_layout = self.fields[-1]
            raw = self.offsets[last_name] + last_layout.size
        return _align_up(raw, self.align)

    def field_layout(self, fname: str) -> Layout:
        for name, layout in self.fields:
            if name == fname:
                return layout
        raise LayoutError(f"struct {self.name} has no field {fname!r}")

    def offset_of(self, fname: str) -> int:
        if fname not in self.offsets:
            raise LayoutError(f"struct {self.name} has no field {fname!r}")
        return self.offsets[fname]

    def __repr__(self) -> str:
        kind = "union" if self.is_union else "struct"
        return f"{kind} {self.name}"


@dataclass(frozen=True)
class ArrayLayout(Layout):
    elem: Layout
    count: int

    @property
    def size(self) -> int:
        return self.elem.size * self.count

    @property
    def align(self) -> int:
        return self.elem.align

    def __repr__(self) -> str:
        return f"ArrayLayout({self.elem!r}, {self.count})"
