"""Executable operational semantics for Caesium.

The interpreter is written in a *coroutine* style: every memory access first
``yield``\\ s a scheduling point, so that the concurrency layer
(:mod:`repro.caesium.concurrency`) can interleave threads at the granularity
of individual accesses.  The single-threaded entry point :meth:`Machine.call`
just drains the generator.

Undefined behaviour — out-of-bounds or misaligned accesses, use of poison,
signed overflow, division by zero, data races, NULL dereference — raises
:class:`~repro.caesium.values.UndefinedBehavior`.  A verified RefinedC
program must never trigger it; the adequacy harness checks exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Sequence

from .layout import BOOL_T, INT, IntLayout, IntType, Layout, PtrLayout
from .memory import AllocKind, Memory
from .syntax import (CASE, Assign, BinOpE, CallE, CastE, CondGoto, Expr, ExprS,
                     FieldOffset, FnPtrE, Function, GlobalAddr, Goto, IntConst,
                     NullE, Program, Ret, SizeOfE, Stmt, Switch, UnOpE, Use,
                     ValE, VarAddr)
from .values import (NULL, Pointer, UBClass, UndefinedBehavior, Value, VFn,
                     VInt, VPtr, decode_int, decode_ptr, encode_value,
                     value_truthy)

_DEFAULT_FUEL = 1_000_000


class EvalError(Exception):
    """An internal interpreter error (ill-formed program, not UB)."""


class FuelExhausted(EvalError):
    """The machine ran out of fuel: the program *may* diverge.

    This is neither undefined behaviour nor a successful run — clients such
    as the soundness fuzzer must treat it as *inconclusive*.  It subclasses
    :class:`EvalError` for backwards compatibility."""


@dataclass
class _Frame:
    func: Function
    slots: dict[str, Pointer]


class Machine:
    """An executable Caesium machine for one program."""

    def __init__(self, program: Program, memory: Optional[Memory] = None,
                 fuel: int = _DEFAULT_FUEL) -> None:
        self.program = program
        self.memory = memory if memory is not None else Memory()
        self.fuel = fuel
        self.globals: dict[str, Pointer] = {}
        for name, layout in program.globals.items():
            self.globals[name] = self.memory.allocate(
                layout.size, AllocKind.GLOBAL)

    # ------------------------------------------------------------
    def call(self, fname: str, args: Sequence[Value], tid: int = 0) -> Optional[Value]:
        """Run a function to completion (single-threaded driver)."""
        gen = self.call_gen(fname, args, tid)
        try:
            while True:
                next(gen)
        except StopIteration as stop:
            return stop.value

    def call_gen(self, fname: str, args: Sequence[Value], tid: int = 0,
                 ) -> Generator[None, None, Optional[Value]]:
        """Run a function as a coroutine, yielding at each memory access."""
        func = self.program.functions.get(fname)
        if func is None:
            raise EvalError(f"unknown function {fname!r}")
        if len(args) != len(func.params):
            raise EvalError(f"{fname}: expected {len(func.params)} args")
        frame = _Frame(func, {})
        # Locals are function-scoped allocations (addresses can be taken).
        for (pname, layout), arg in zip(func.params, args):
            slot = self.memory.allocate(layout.size, AllocKind.LOCAL)
            self.memory.store(slot, encode_value(arg), layout.align, tid)
            frame.slots[pname] = slot
        for lname, layout in func.locals:
            frame.slots[lname] = self.memory.allocate(
                layout.size, AllocKind.LOCAL)
        try:
            result = yield from self._run_blocks(frame, tid)
        finally:
            for slot in frame.slots.values():
                if self.memory.is_live(slot):
                    self.memory.deallocate(slot)
        return result

    # ------------------------------------------------------------
    def _run_blocks(self, frame: _Frame, tid: int,
                    ) -> Generator[None, None, Optional[Value]]:
        label = frame.func.entry
        while True:
            block = frame.func.block(label)
            for stmt in block.stmts:
                yield from self._exec_stmt(frame, stmt, tid)
            term = block.term
            self.fuel -= 1
            if self.fuel <= 0:
                raise FuelExhausted(
                    "out of fuel (possible non-termination)")
            if isinstance(term, Goto):
                label = term.target
            elif isinstance(term, CondGoto):
                v = yield from self._eval(frame, term.cond, tid)
                label = term.then_target if value_truthy(v) else term.else_target
            elif isinstance(term, Switch):
                v = yield from self._eval(frame, term.scrutinee, tid)
                if not isinstance(v, VInt):
                    raise UndefinedBehavior("switch on non-integer",
                                            UBClass.TYPE_CONFUSION)
                label = term.default
                for case_val, case_label in term.cases:
                    if case_val == v.value:
                        label = case_label
                        break
            elif isinstance(term, Ret):
                if term.value is None:
                    return None
                return (yield from self._eval(frame, term.value, tid))
            else:
                raise EvalError(f"unknown terminator {term!r}")

    def _exec_stmt(self, frame: _Frame, stmt: Stmt, tid: int,
                   ) -> Generator[None, None, None]:
        if isinstance(stmt, Assign):
            loc = yield from self._eval_loc(frame, stmt.lhs, tid)
            val = yield from self._eval(frame, stmt.rhs, tid)
            yield
            self.memory.store(loc, encode_value(val), stmt.layout.align, tid,
                              atomic=stmt.atomic)
            return
        if isinstance(stmt, ExprS):
            yield from self._eval(frame, stmt.e, tid)
            return
        raise EvalError(f"unknown statement {stmt!r}")

    # ------------------------------------------------------------
    def _eval_loc(self, frame: _Frame, e: Expr, tid: int,
                  ) -> Generator[None, None, Pointer]:
        v = yield from self._eval(frame, e, tid)
        if not isinstance(v, VPtr):
            raise UndefinedBehavior(f"expected a location, got {v!r}",
                                    UBClass.TYPE_CONFUSION)
        return v.ptr

    def _eval(self, frame: _Frame, e: Expr, tid: int,
              ) -> Generator[None, None, Value]:
        if isinstance(e, ValE):
            return e.value
        if isinstance(e, IntConst):
            if not e.int_type.in_range(e.n):
                raise UndefinedBehavior(
                    f"constant {e.n} out of range for {e.int_type.name}",
                    UBClass.SIGNED_OVERFLOW)
            return VInt(e.n, e.int_type)
        if isinstance(e, NullE):
            return VPtr(NULL)
        if isinstance(e, SizeOfE):
            return VInt(e.layout.size, e.int_type)
        if isinstance(e, VarAddr):
            slot = frame.slots.get(e.name)
            if slot is None:
                raise EvalError(f"unknown variable {e.name!r}")
            return VPtr(slot)
        if isinstance(e, GlobalAddr):
            g = self.globals.get(e.name)
            if g is None:
                raise EvalError(f"unknown global {e.name!r}")
            return VPtr(g)
        if isinstance(e, FnPtrE):
            if e.name not in self.program.functions:
                raise EvalError(f"unknown function {e.name!r}")
            return VFn(e.name)
        if isinstance(e, Use):
            loc = yield from self._eval_loc(frame, e.e, tid)
            yield
            return self._load_typed(loc, e.layout, tid, e.atomic)
        if isinstance(e, FieldOffset):
            loc = yield from self._eval_loc(frame, e.e, tid)
            if loc.is_null:
                raise UndefinedBehavior("field access through NULL",
                                        UBClass.NULL_DEREF)
            return VPtr(loc + e.struct.offset_of(e.fld))
        if isinstance(e, CastE):
            v = yield from self._eval(frame, e.e, tid)
            if not isinstance(v, VInt):
                raise UndefinedBehavior(f"integer cast of non-integer {v!r}",
                                        UBClass.TYPE_CONFUSION)
            return VInt(e.to.wrap(v.value), e.to)
        if isinstance(e, UnOpE):
            v = yield from self._eval(frame, e.e, tid)
            return self._unop(e.op, v)
        if isinstance(e, BinOpE):
            v1 = yield from self._eval(frame, e.e1, tid)
            v2 = yield from self._eval(frame, e.e2, tid)
            return self._binop(e.op, v1, v2)
        if isinstance(e, CallE):
            fv = yield from self._eval(frame, e.fn, tid)
            argv = []
            for a in e.args:
                argv.append((yield from self._eval(frame, a, tid)))
            if not isinstance(fv, VFn):
                raise UndefinedBehavior(f"call of non-function {fv!r}",
                                        UBClass.TYPE_CONFUSION)
            result = yield from self.call_gen(fv.name, argv, tid)
            if result is None:
                # void call in expression position: produce a dummy value;
                # the front end only allows this under ExprS.
                return VInt(0, INT)
            return result
        if isinstance(e, CASE):
            atom = yield from self._eval_loc(frame, e.atom, tid)
            expected = yield from self._eval_loc(frame, e.expected, tid)
            desired = yield from self._eval(frame, e.desired, tid)
            yield
            exp_bytes = self.memory.load(expected, e.layout.size,
                                         e.layout.align, tid)
            if any(not isinstance(b, int) for b in exp_bytes):
                raise UndefinedBehavior("CAS expected operand is poison",
                                        UBClass.POISON)
            success, old = self.memory.compare_exchange(
                atom, exp_bytes, encode_value(desired), e.layout.align, tid)
            if not success:
                self.memory.store(expected, old, e.layout.align, tid)
            return VInt(1 if success else 0, BOOL_T)
        raise EvalError(f"unknown expression {e!r}")

    # ------------------------------------------------------------
    def _load_typed(self, loc: Pointer, layout: Layout, tid: int,
                    atomic: bool) -> Value:
        data = self.memory.load(loc, layout.size, layout.align, tid,
                                atomic=atomic)
        if isinstance(layout, IntLayout):
            v = decode_int(data, layout.int_type)
            if v is None:
                raise UndefinedBehavior(
                    f"load of poison at {loc!r} (type {layout.int_type.name})",
                    UBClass.POISON)
            return v
        if isinstance(layout, PtrLayout):
            v = decode_ptr(data)
            if v is None:
                raise UndefinedBehavior(f"load of poison pointer at {loc!r}",
                                        UBClass.POISON)
            return v
        raise EvalError(f"cannot load composite layout {layout!r}")

    @staticmethod
    def _unop(op: str, v: Value) -> Value:
        if op == "!":
            return VInt(0 if value_truthy(v) else 1, INT)
        if not isinstance(v, VInt):
            raise UndefinedBehavior(f"unary {op} on non-integer {v!r}",
                                    UBClass.TYPE_CONFUSION)
        if op == "-":
            return _arith_result(-v.value, v.int_type)
        if op == "~":
            return _arith_result(~v.value, v.int_type)
        raise EvalError(f"unknown unary op {op!r}")

    @staticmethod
    def _binop(op: str, v1: Value, v2: Value) -> Value:
        if op == "ptr_offset":
            if not isinstance(v1, VPtr) or not isinstance(v2, VInt):
                raise UndefinedBehavior(
                    f"bad pointer arithmetic {v1!r} {op} {v2!r}",
                    UBClass.PTR_ARITH)
            if v1.ptr.is_null and v2.value != 0:
                raise UndefinedBehavior("arithmetic on NULL pointer",
                                        UBClass.PTR_ARITH)
            return VPtr(v1.ptr + v2.value)
        if isinstance(v1, (VPtr, VFn)) or isinstance(v2, (VPtr, VFn)):
            return _ptr_compare(op, v1, v2)
        assert isinstance(v1, VInt) and isinstance(v2, VInt)
        if v1.int_type != v2.int_type:
            raise EvalError(
                f"operand type mismatch {v1.int_type} vs {v2.int_type} "
                "(front end must insert promotions)")
        a, b, ty = v1.value, v2.value, v1.int_type
        if op == "+":
            return _arith_result(a + b, ty)
        if op == "-":
            return _arith_result(a - b, ty)
        if op == "*":
            return _arith_result(a * b, ty)
        if op in ("/", "%"):
            if b == 0:
                raise UndefinedBehavior("division by zero",
                                        UBClass.DIV_BY_ZERO)
            q = abs(a) // abs(b)
            if (a >= 0) != (b > 0):
                q = -q
            if ty.signed and not ty.in_range(q):
                raise UndefinedBehavior("signed division overflow",
                                        UBClass.SIGNED_OVERFLOW)
            r = a - b * q
            return VInt(q if op == "/" else r, ty)
        if op in ("&", "|", "^", "<<", ">>"):
            return _bitwise(op, a, b, ty)
        cmp = {"==": a == b, "!=": a != b, "<": a < b,
               "<=": a <= b, ">": a > b, ">=": a >= b}.get(op)
        if cmp is None:
            raise EvalError(f"unknown binary op {op!r}")
        return VInt(1 if cmp else 0, INT)


def _arith_result(n: int, ty: IntType) -> VInt:
    if ty.signed:
        if not ty.in_range(n):
            raise UndefinedBehavior(f"signed overflow: {n} at {ty.name}",
                                    UBClass.SIGNED_OVERFLOW)
        return VInt(n, ty)
    return VInt(ty.wrap(n), ty)


def _bitwise(op: str, a: int, b: int, ty: IntType) -> VInt:
    if op in ("<<", ">>") and not (0 <= b < ty.bits):
        raise UndefinedBehavior(f"shift amount {b} out of range",
                                UBClass.SHIFT_RANGE)
    mask = (1 << ty.bits) - 1
    au = a & mask
    bu = b & mask
    if op == "&":
        r = au & bu
    elif op == "|":
        r = au | bu
    elif op == "^":
        r = au ^ bu
    elif op == "<<":
        r = (au << b) & mask
    else:
        r = au >> b  # logical shift on the masked representation
    return VInt(ty.wrap(r), ty)


def _ptr_compare(op: str, v1: Value, v2: Value) -> VInt:
    def key(v: Value):
        if isinstance(v, VPtr):
            return ("p", v.ptr.alloc_id, v.ptr.offset)
        if isinstance(v, VFn):
            return ("f", v.name, 0)
        if isinstance(v, VInt) and v.value == 0:
            return ("p", 0, 0)  # integer constant 0 compares as NULL
        raise UndefinedBehavior(f"pointer comparison with {v!r}",
                                    UBClass.PTR_ARITH)

    k1, k2 = key(v1), key(v2)
    if op == "==":
        return VInt(1 if k1 == k2 else 0, INT)
    if op == "!=":
        return VInt(1 if k1 != k2 else 0, INT)
    if op in ("<", "<=", ">", ">="):
        # Relational comparison is only defined within one allocation.
        if k1[0] != "p" or k2[0] != "p" or k1[1] != k2[1]:
            raise UndefinedBehavior(
                "relational comparison of unrelated pointers",
                UBClass.PTR_ARITH)
        a, b = k1[2], k2[2]
        res = {"<": a < b, "<=": a <= b, ">": a > b, ">=": a >= b}[op]
        return VInt(1 if res else 0, INT)
    raise EvalError(f"unknown pointer op {op!r}")
