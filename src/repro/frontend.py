"""The RefinedC toolchain entry point (Figure 2).

``verify_source``/``verify_file`` run the whole pipeline: (A) the front end
parses the annotated C and elaborates it to Caesium + specifications, (B)
Lithium executes the typing rules, (C) pure side conditions are discharged
by the default solver, the ``rc::tactics`` solvers, and the ``rc::lemmas``
manual facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from .lang.elaborate import elaborate_source
from .proofs.manual import LEMMAS_BY_STUDY
from .pure.solver import Lemma
from .refinedc.checker import ProgramResult, TypedProgram, check_program


@dataclass
class VerificationOutcome:
    """Everything the toolchain produces for one translation unit."""

    typed_program: TypedProgram
    result: ProgramResult
    study: str = ""

    @property
    def ok(self) -> bool:
        return self.result.ok

    def report(self) -> str:
        lines = []
        for name, fr in self.result.functions.items():
            status = "verified" if fr.ok else "FAILED"
            lines.append(f"{name}: {status} "
                         f"({fr.stats.rule_applications} rule applications, "
                         f"{fr.stats.side_conditions_auto} side conditions "
                         f"auto, {fr.stats.side_conditions_manual} manual)")
            if not fr.ok:
                lines.append(fr.format_error())
        return "\n".join(lines)


def verify_source(source: str,
                  lemmas: Optional[dict[str, Lemma]] = None,
                  study: str = "") -> VerificationOutcome:
    """Verify annotated C source text."""
    tp = elaborate_source(source, lemmas)
    result = check_program(tp)
    return VerificationOutcome(tp, result, study)


def verify_file(path: Union[str, Path],
                lemmas: Optional[dict[str, Lemma]] = None
                ) -> VerificationOutcome:
    """Verify an annotated C file.  Manual lemma tables registered for the
    file's stem (see :mod:`repro.proofs.manual`) are picked up
    automatically — the analogue of the companion Coq proof files."""
    path = Path(path)
    study = path.stem
    if lemmas is None:
        lemmas = LEMMAS_BY_STUDY.get(study)
    return verify_source(path.read_text(), lemmas, study)
