"""The RefinedC toolchain entry point (Figure 2).

``verify_source``/``verify_file`` run the whole pipeline: (A) the front end
parses the annotated C and elaborates it to Caesium + specifications, (B)
Lithium executes the typing rules, (C) pure side conditions are discharged
by the default solver, the ``rc::tactics`` solvers, and the ``rc::lemmas``
manual facts.

Stage (B)+(C) is scheduled by the verification driver
(:mod:`repro.driver`): ``jobs=N`` verifies independent functions on a
process pool, ``cache=True`` consults the content-addressed result cache
under ``.rc-cache/``, and every run records per-phase metrics
(``VerificationOutcome.metrics``).  The defaults (``jobs=1``, cache off)
keep the classic serial behaviour.

``verify_files`` verifies several translation units under one shared
scheduler — the way the Figure 7 evaluation runs — so pool startup is paid
once and the units' functions load-balance together.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from .driver import DriverConfig, DriverMetrics, PhaseTimings, Unit, \
    run_units
from .lang.elaborate import elaborate_unit
from .lang.parser import parse
from .proofs.manual import LEMMAS_BY_STUDY
from .pure.solver import Lemma
from .refinedc.checker import ProgramResult, TypedProgram


@dataclass
class VerificationOutcome:
    """Everything the toolchain produces for one translation unit."""

    typed_program: TypedProgram
    result: ProgramResult
    study: str = ""
    metrics: Optional[DriverMetrics] = None

    @property
    def ok(self) -> bool:
        return self.result.ok

    def report(self) -> str:
        lines = []
        for name, fr in self.result.functions.items():
            status = "verified" if fr.ok else "FAILED"
            lines.append(f"{name}: {status} "
                         f"({fr.stats.rule_applications} rule applications, "
                         f"{fr.stats.side_conditions_auto} side conditions "
                         f"auto, {fr.stats.side_conditions_manual} manual)")
            if not fr.ok:
                lines.append(fr.format_error())
        if self.metrics is not None:
            lines.append(self.metrics.summary())
        return "\n".join(lines)


def _front_end(source: str, lemmas: Optional[dict[str, Lemma]]
               ) -> tuple[TypedProgram, PhaseTimings]:
    """Run stage (A), timing parse and elaborate separately."""
    timings = PhaseTimings()
    t0 = time.perf_counter()
    unit = parse(source)
    t1 = time.perf_counter()
    tp = elaborate_unit(unit, source, lemmas)
    t2 = time.perf_counter()
    timings.parse_s = t1 - t0
    timings.elaborate_s = t2 - t1
    return tp, timings


def verify_source(source: str,
                  lemmas: Optional[dict[str, Lemma]] = None,
                  study: str = "", *,
                  jobs: int = 1,
                  cache: bool = False,
                  cache_dir: Optional[Union[str, Path]] = None
                  ) -> VerificationOutcome:
    """Verify annotated C source text."""
    tp, timings = _front_end(source, lemmas)
    config = DriverConfig(jobs=jobs, cache=cache, cache_dir=cache_dir)
    unit = Unit(key=study or "<unit>", source=source, tp=tp, lemmas=lemmas,
                timings=timings)
    result, metrics = run_units([unit], config)[unit.key]
    return VerificationOutcome(tp, result, study, metrics)


def verify_file(path: Union[str, Path],
                lemmas: Optional[dict[str, Lemma]] = None, *,
                jobs: int = 1,
                cache: bool = False,
                cache_dir: Optional[Union[str, Path]] = None
                ) -> VerificationOutcome:
    """Verify an annotated C file.  Manual lemma tables registered for the
    file's stem (see :mod:`repro.proofs.manual`) are picked up
    automatically — the analogue of the companion Coq proof files."""
    path = Path(path)
    study = path.stem
    if lemmas is None:
        lemmas = LEMMAS_BY_STUDY.get(study)
    return verify_source(path.read_text(), lemmas, study, jobs=jobs,
                         cache=cache, cache_dir=cache_dir)


def verify_files(paths: Sequence[Union[str, Path]], *,
                 jobs: int = 1,
                 cache: bool = False,
                 cache_dir: Optional[Union[str, Path]] = None
                 ) -> dict[str, VerificationOutcome]:
    """Verify several annotated C files under one shared scheduler.

    Returns outcomes keyed by file stem, in input order.  With ``jobs>1``
    every (file, function) pair is one task on a single process pool."""
    units = []
    tps: dict[str, TypedProgram] = {}
    for p in paths:
        p = Path(p)
        study = p.stem
        lemmas = LEMMAS_BY_STUDY.get(study)
        source = p.read_text()
        tp, timings = _front_end(source, lemmas)
        tps[study] = tp
        units.append(Unit(key=study, source=source, tp=tp, lemmas=lemmas,
                          timings=timings))
    config = DriverConfig(jobs=jobs, cache=cache, cache_dir=cache_dir)
    results = run_units(units, config)
    return {study: VerificationOutcome(tps[study], result, study, metrics)
            for study, (result, metrics) in results.items()}
