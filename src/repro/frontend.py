"""The RefinedC toolchain entry point (Figure 2).

``verify_source``/``verify_file`` run the whole pipeline: (A) the front end
parses the annotated C and elaborates it to Caesium + specifications, (B)
Lithium executes the typing rules, (C) pure side conditions are discharged
by the default solver, the ``rc::tactics`` solvers, and the ``rc::lemmas``
manual facts.

Stage (B)+(C) is scheduled by the verification driver
(:mod:`repro.driver`): ``jobs=N`` verifies independent functions on a
process pool, ``cache=True`` consults the content-addressed result cache
under ``.rc-cache/``, and every run records per-phase metrics
(``VerificationOutcome.metrics``).  The defaults (``jobs=1``, cache off)
keep the classic serial behaviour.

``trace=True`` (or ``RC_TRACE=1``) additionally records a structured
proof-search trace — front-end spans, per-function rule/solver/evar/
context events — exposed as ``VerificationOutcome.trace`` (a
:class:`repro.trace.tracer.UnitTrace`) and summarised in the metrics'
``trace`` block.  Failing functions then carry a stuck-goal report
(``VerificationError.stuck``) rendered by ``report()``.

``verify_files`` verifies several translation units under one shared
scheduler — the way the Figure 7 evaluation runs — so pool startup is paid
once and the units' functions load-balance together.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from .driver import (DriverConfig, DriverMetrics, PhaseTimings, Unit,
                     run_units, run_units_incremental)
from .lang.elaborate import elaborate_unit
from .lang.parser import parse
from .proofs.manual import LEMMAS_BY_STUDY
from .pure.solver import Lemma
from .refinedc.checker import ProgramResult, TypedProgram
from .trace.tracer import (FunctionTrace, Tracer, UnitTrace, set_current,
                           trace_env_enabled)


@dataclass
class VerificationOutcome:
    """Everything the toolchain produces for one translation unit."""

    typed_program: TypedProgram
    result: ProgramResult
    study: str = ""
    metrics: Optional[DriverMetrics] = None

    @property
    def ok(self) -> bool:
        return self.result.ok

    @property
    def trace(self) -> Optional[UnitTrace]:
        """The merged proof-search trace, when the run was traced."""
        tr = self.result.trace
        return tr if isinstance(tr, UnitTrace) else None

    def report(self) -> str:
        lines = []
        for name, fr in self.result.functions.items():
            status = "verified" if fr.ok else "FAILED"
            lines.append(f"{name}: {status} "
                         f"({fr.stats.rule_applications} rule applications, "
                         f"{fr.stats.side_conditions_auto} side conditions "
                         f"auto, {fr.stats.side_conditions_manual} manual)")
            if not fr.ok:
                lines.append(fr.format_error())
                stuck = getattr(fr.error, "stuck", None)
                if stuck is not None:
                    lines.append(stuck.render())
        if self.metrics is not None:
            lines.append(self.metrics.summary())
        return "\n".join(lines)


def _front_end(source: str, lemmas: Optional[dict[str, Lemma]],
               tracing: bool = False, unit_key: str = "<unit>"
               ) -> tuple[TypedProgram, PhaseTimings,
                          Optional[FunctionTrace]]:
    """Run stage (A), timing parse and elaborate separately.  When tracing,
    the parse/elaborate spans land in a front-end buffer (the ``""``
    function slot of the merged :class:`UnitTrace`)."""
    timings = PhaseTimings()
    tracer = previous = None
    if tracing:
        tracer = Tracer(scope=unit_key)
        previous = set_current(tracer)
    try:
        t0 = time.perf_counter()
        if tracer is not None:
            tracer.begin("frontend", "parse")
        try:
            unit = parse(source)
        finally:
            if tracer is not None:
                tracer.end()
        t1 = time.perf_counter()
        if tracer is not None:
            tracer.begin("frontend", "elaborate")
        try:
            tp = elaborate_unit(unit, source, lemmas)
        finally:
            if tracer is not None:
                tracer.end()
        t2 = time.perf_counter()
    finally:
        if tracer is not None:
            tracer.close()
            set_current(previous)
    timings.parse_s = t1 - t0
    timings.elaborate_s = t2 - t1
    front = None
    if tracer is not None:
        front = FunctionTrace(unit=unit_key, function="",
                              events=tracer.events, dropped=tracer.dropped)
    return tp, timings, front


def verify_source(source: str,
                  lemmas: Optional[dict[str, Lemma]] = None,
                  study: str = "", *,
                  jobs: int = 1,
                  cache: bool = False,
                  cache_dir: Optional[Union[str, Path]] = None,
                  trace: Optional[bool] = None,
                  incremental: bool = False
                  ) -> VerificationOutcome:
    """Verify annotated C source text.

    ``incremental=True`` plans the run through the dependency-aware
    re-verification engine (:mod:`repro.driver.incremental`): only
    functions whose fingerprinted inputs changed since the state stored
    under the cache directory are re-checked; the persistent cache is
    implied."""
    key = study or "<unit>"
    tracing = trace_env_enabled() if trace is None else bool(trace)
    tp, timings, front = _front_end(source, lemmas, tracing, key)
    config = DriverConfig(jobs=jobs, cache=cache, cache_dir=cache_dir,
                          trace=tracing)
    unit = Unit(key=key, source=source, tp=tp, lemmas=lemmas,
                timings=timings, front_trace=front)
    runner = run_units_incremental if incremental else run_units
    result, metrics = runner([unit], config)[unit.key]
    return VerificationOutcome(tp, result, study, metrics)


def verify_file(path: Union[str, Path],
                lemmas: Optional[dict[str, Lemma]] = None, *,
                jobs: int = 1,
                cache: bool = False,
                cache_dir: Optional[Union[str, Path]] = None,
                trace: Optional[bool] = None,
                incremental: bool = False
                ) -> VerificationOutcome:
    """Verify an annotated C file.  Manual lemma tables registered for the
    file's stem (see :mod:`repro.proofs.manual`) are picked up
    automatically — the analogue of the companion Coq proof files."""
    path = Path(path)
    study = path.stem
    if lemmas is None:
        lemmas = LEMMAS_BY_STUDY.get(study)
    return verify_source(path.read_text(), lemmas, study, jobs=jobs,
                         cache=cache, cache_dir=cache_dir, trace=trace,
                         incremental=incremental)


def verify_files(paths: Sequence[Union[str, Path]], *,
                 jobs: int = 1,
                 cache: bool = False,
                 cache_dir: Optional[Union[str, Path]] = None,
                 trace: Optional[bool] = None,
                 incremental: bool = False,
                 session=None,
                 state_cache: Optional[dict] = None,
                 ledger: bool = True
                 ) -> dict[str, VerificationOutcome]:
    """Verify several annotated C files under one shared scheduler.

    Returns outcomes keyed by file stem, in input order.  With ``jobs>1``
    every (file, function) pair is one task on a single process pool.
    ``incremental=True`` re-checks only the functions whose fingerprinted
    inputs changed since the last run against this cache directory.

    A long-lived caller (the serve daemon) passes ``session`` (a warm
    :class:`repro.driver.PoolSession`) to reuse one worker pool across
    calls and ``state_cache`` to skip re-parsing unchanged incremental
    planner state; ``ledger=False`` suppresses the per-call ``verify``
    ledger record for callers that append their own richer one."""
    tracing = trace_env_enabled() if trace is None else bool(trace)
    units = []
    tps: dict[str, TypedProgram] = {}
    for p in paths:
        p = Path(p)
        study = p.stem
        lemmas = LEMMAS_BY_STUDY.get(study)
        source = p.read_text()
        tp, timings, front = _front_end(source, lemmas, tracing, study)
        tps[study] = tp
        units.append(Unit(key=study, source=source, tp=tp, lemmas=lemmas,
                          timings=timings, front_trace=front))
    config = DriverConfig(jobs=jobs, cache=cache, cache_dir=cache_dir,
                          trace=tracing)
    t0 = time.perf_counter()
    if incremental:
        results = run_units_incremental(units, config, session=session,
                                        state_cache=state_cache)
    else:
        results = run_units(units, config, session=session)
    wall = time.perf_counter() - t0
    outcomes = {study: VerificationOutcome(tps[study], result, study,
                                           metrics)
                for study, (result, metrics) in results.items()}
    if ledger:
        _ledger_record(outcomes, jobs=config.resolved_jobs(), wall_s=wall,
                       cache=bool(cache or cache_dir or incremental),
                       incremental=incremental)
    return outcomes


def _ledger_record(outcomes: dict, *, jobs: int, wall_s: float,
                   cache: bool, incremental: bool) -> None:
    """Append one run-ledger record when ``RC_LEDGER`` opts in (see
    :mod:`repro.obs.ledger`).  The off path is one environ lookup; the
    imports stay lazy so untelemetered runs never load the observatory.
    The driver-level run shape (result cache, incremental planning) goes
    into the record's config block: it changes the wall time as much as
    any global switch, so it must split the sentinel's comparability
    pools."""
    from .obs.ledger import ledger_env_path, record_run
    if ledger_env_path() is None:
        return
    from .obs.aggregate import costs_of_outcomes
    record_run("verify", wall_s=wall_s, jobs=jobs,
               metrics=[o.metrics for o in outcomes.values()
                        if o.metrics is not None],
               costs=costs_of_outcomes(outcomes.values()),
               config_extra={"result_cache": cache,
                             "incremental": incremental})
