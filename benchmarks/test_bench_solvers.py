"""Ablation — the pure solver layer (step (C) of Figure 2): cost of the
default solver vs the named solvers on representative side conditions, and
of the Fourier–Motzkin integer cuts."""

import pytest

from repro.pure import PureSolver, Sort
from repro.pure import terms as T
from repro.pure.linarith import implies_linear
from repro.pure.sets import multiset_solver

a, b, n = T.var("a"), T.var("b"), T.var("n")
s, tail = T.var("s", Sort.MSET), T.var("tail", Sort.MSET)


def test_linarith_chain(benchmark):
    vs = [T.var(f"x{i}") for i in range(12)]
    hyps = [T.le(vs[i], vs[i + 1]) for i in range(11)]
    goal = T.le(vs[0], vs[11])
    assert benchmark(lambda: implies_linear(hyps, goal))


def test_linarith_integer_cut(benchmark):
    """The binary-search obligation needing the gcd/floor tightening."""
    l, h = T.var("l"), T.var("h")
    d = T.app("div", T.sub(h, l), T.intlit(2))
    hyps = [T.le(T.intlit(0), l), T.lt(l, h), T.le(h, n),
            T.le(n, T.intlit(65536))]
    goal = T.le(T.add(l, d, T.intlit(1)), n)
    assert benchmark(lambda: implies_linear(hyps, goal))


def test_multiset_freelist_condition(benchmark):
    """The Figure 3 invariant-style condition through multiset_solver."""
    k = T.var("k")
    hyps = [T.eq(s, T.munion(T.msingle(k), tail)), T.mall_ge(tail, k),
            T.le(n, k)]
    goal = T.mall_ge(T.munion(T.msingle(k), tail), n)
    assert benchmark(lambda: multiset_solver(hyps, goal))


def test_member_case_split(benchmark):
    """The BST membership obligations (the heavy set_solver pattern)."""
    k, kr = T.var("k"), T.var("kr")
    l, r = T.var("l", Sort.MSET), T.var("r", Sort.MSET)
    hyps = [T.eq(s, T.munion(T.msingle(kr), l, r)),
            T.mall_le(l, kr), T.mall_ge(r, kr), T.lt(k, kr)]
    goal = T.eq(T.mmember(k, l), T.mmember(k, s))
    solver = PureSolver(tactics=["multiset_solver"])
    result = benchmark(lambda: solver.prove(hyps, goal))
    from repro.pure.solver import Outcome
    assert result.outcome is not Outcome.FAILED


def test_default_vs_named_accounting(benchmark):
    """The §7 accounting: the default solver is tried first; a condition
    needing the multiset theory is counted as manual."""
    benchmark.pedantic(lambda: None, rounds=1)

    from repro.pure.solver import Outcome
    solver = PureSolver(tactics=["multiset_solver"])
    default_condition = T.le(T.sub(a, n), a)
    # Bound weakening over an opaque multiset needs the mall_ge theory.
    named_condition = T.mall_ge(T.munion(T.msingle(n), tail), a)
    r1 = solver.prove([T.le(T.intlit(0), n), T.le(n, a)], default_condition)
    r2 = solver.prove([T.mall_ge(tail, n), T.le(a, n)], named_condition)
    assert r1.outcome is Outcome.DEFAULT
    assert r2.outcome is Outcome.NAMED
