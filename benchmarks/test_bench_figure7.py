"""E5 — Figure 7: the paper's evaluation table.

Benchmarks verification of every case study and regenerates all columns of
Figure 7 (Rules, ∃, ⌜φ⌝, Impl, Spec, Annot, Pure, Ovh).  Absolute numbers
differ from the paper (Python solvers vs Coq), but the asserted *shape*
matches: everything verifies, automation dominates, only the lemma-backed
studies carry pure-reasoning overhead, and the annotation overhead stays
moderate for the simple examples.

Run:  pytest benchmarks/test_bench_figure7.py --benchmark-only -s
"""

import pytest

from repro.frontend import verify_file
from repro.report import (FIGURE7_STUDIES, EXTRA_STUDIES, casestudies_dir,
                          figure7_table, format_table, study_report)

ALL = [s for s, _ in FIGURE7_STUDIES + EXTRA_STUDIES]


@pytest.mark.parametrize("study", ALL)
def test_verify_case_study(benchmark, study):
    path = casestudies_dir() / f"{study}.c"
    outcome = benchmark(lambda: verify_file(path))
    assert outcome.ok, outcome.report()


def test_print_figure7_table(benchmark, capsys):
    rows = benchmark(figure7_table)
    assert all(r.verified for r in rows)
    by_name = {r.study: r for r in rows}

    # --- the qualitative shape asserted against the paper -----------
    # (i) Rule applications dominate distinct rules everywhere.
    for r in rows:
        assert r.rule_applications >= r.rules_distinct

    # (ii) Only the lemma-backed studies carry Pure overhead; the paper's
    # heavy rows (hashmap #4, layered BST and binary search) are ours too.
    assert by_name["hashmap"].pure_lines > 0
    assert by_name["binary_search"].pure_lines > 0
    assert by_name["bst_layered"].pure_lines > 0
    assert by_name["alloc"].pure_lines == 0
    assert by_name["spinlock"].pure_lines == 0

    # (iii) The hashmap is the most overhead-heavy study (paper: 2.7).
    assert by_name["hashmap"].overhead == max(r.overhead for r in rows)

    # (iv) The layered BST carries more manual machinery than the direct
    # one (paper §7 #3), with comparable annotations.
    assert by_name["bst_layered"].pure_lines > by_name["bst_direct"].pure_lines
    assert by_name["bst_layered"].overhead > by_name["bst_direct"].overhead

    # (v) Simple examples stay well under the paper's 0.7 overhead bound.
    for study in ("alloc", "queue", "linked_list", "spinlock", "barrier",
                  "page_alloc", "threadsafe_alloc", "mpool"):
        assert by_name[study].overhead < 0.7, study

    # (vi) The paper's wand studies use the wand machinery; the
    # concurrency studies use the atomic boolean.
    assert "wand" in by_name["linked_list"].types_used
    assert "wand" in by_name["free_list"].types_used
    assert "atomic bool" in by_name["spinlock"].types_used
    assert "padded" in by_name["page_alloc"].types_used
    assert "arrays" in by_name["binary_search"].types_used
    assert "func. ptr." in by_name["binary_search"].types_used

    with capsys.disabled():
        print()
        print("Figure 7 (regenerated):")
        print(format_table(rows))
