"""E10 — adequacy: benchmarked randomised semantic testing of the
verified programs (the executable substitute for Coq soundness; see
DESIGN.md).  Also exercises the concurrency scheduler with the race
detector armed."""

import pytest

from repro.proofs import adequacy


@pytest.mark.parametrize("scenario", ["alloc", "free_list", "binary_search",
                                      "bst_direct", "hashmap"])
def test_adequacy_scenario(benchmark, scenario):
    fn = adequacy.ALL_SCENARIOS[scenario]
    checks = benchmark(fn)
    assert checks > 0


def test_concurrent_adequacy(benchmark):
    checks = benchmark(lambda: adequacy.check_spinlock_concurrent(
        threads=2, rounds=3, seeds=range(3)))
    assert checks == 3


def test_print_adequacy_summary(benchmark, capsys):
    def run_all():
        return {name: fn() for name, fn in adequacy.ALL_SCENARIOS.items()}
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Adequacy summary (checks executed, all passing):")
        for name, checks in results.items():
            print(f"  {name:<26} {checks:>5} checks")
    assert all(v > 0 for v in results.values())
