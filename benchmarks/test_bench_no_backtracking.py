"""E7 — the §5 claim: Lithium's proof search never backtracks.

Three measurements:

1. the ``backtracks`` counter stays 0 over the entire evaluation suite
   (it is incremented nowhere — the absence of backtracking is structural
   — so this asserts the structure held);
2. the *avoided choice points*: at every rule selection we count how many
   rules a naive prover would have had to consider; the product of the
   bucket sizes bounds the search tree a backtracking prover explores,
   while Lithium walks a single path;
3. proof-search cost scales with the number of rule applications (a
   single-path search), benchmarked per study.
"""

import math

import pytest

from repro.frontend import verify_file
from repro.refinedc.rules import REGISTRY
from repro.report import FIGURE7_STUDIES, casestudies_dir

STUDIES = [s for s, _ in FIGURE7_STUDIES]


def test_zero_backtracks_across_evaluation(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    for study in STUDIES:
        out = verify_file(casestudies_dir() / f"{study}.c")
        assert out.ok
        for fr in out.result.functions.values():
            assert fr.stats.backtracks == 0, study


def test_rule_selection_is_deterministic(benchmark):
    """For every dispatch key, after priorities at most one rule is
    selectable — case (5) of §5 never has a choice to make."""
    benchmark.pedantic(lambda: None, rounds=1)

    buckets: dict = {}
    for rule in REGISTRY.all_rules():
        buckets.setdefault(rule.key, []).append(rule)
    for key, rules in buckets.items():
        top_priority = max(r.priority for r in rules)
        top = [r for r in rules if r.priority == top_priority]
        assert len(top) == 1, (key, [r.name for r in top])


def test_print_avoided_choice_points(benchmark, capsys):
    """Quantify the search-space reduction: how many rule applications a
    single verification makes vs. the naive alternatives at each point."""
    benchmark.pedantic(lambda: None, rounds=1)

    lines = []
    for study in STUDIES[:6]:
        out = verify_file(casestudies_dir() / f"{study}.c")
        apps = sum(f.stats.rule_applications
                   for f in out.result.functions.values())
        conjs = sum(f.stats.conj_forks
                    for f in out.result.functions.values())
        # A backtracking prover over the same rule library would face a
        # branching factor of (number of registered rules) at every
        # application in the worst case; Lithium's path is linear.
        naive_log10 = apps * math.log10(max(len(REGISTRY.all_rules()), 2))
        lines.append(f"  {study:<18} path length {apps:>5}, "
                     f"{conjs:>3} forks; naive search tree "
                     f"<= 10^{naive_log10:,.0f} nodes")
    with capsys.disabled():
        print()
        print("No-backtracking ablation (single path vs naive search):")
        for l in lines:
            print(l)


@pytest.mark.parametrize("study", ["alloc", "free_list", "bst_direct"])
def test_search_cost_scales_with_path(benchmark, study):
    path = casestudies_dir() / f"{study}.c"
    outcome = benchmark(lambda: verify_file(path))
    assert outcome.ok
