"""E9 — Figure 2: the RefinedC toolchain pipeline.

Benchmarks each stage separately over a representative case study:
  (A) front end   — lexing/parsing + elaboration to Caesium,
  (B) Lithium     — the typing-rule proof search,
  (C) pure solver — side-condition solving (measured through a replay of
                    the recorded conditions),
plus the certificate re-check of the produced derivation.
"""

import pytest

from repro.frontend import verify_file
from repro.lang.elaborate import elaborate_source
from repro.lang.parser import parse
from repro.proofs.certcheck import check_derivation
from repro.proofs.manual import LEMMAS_BY_STUDY
from repro.pure.solver import PureSolver
from repro.refinedc.checker import check_program
from repro.refinedc.rules import REGISTRY
from repro.report import casestudies_dir

STUDY = "free_list"
SOURCE = (casestudies_dir() / f"{STUDY}.c").read_text()


def test_stage_a_parse(benchmark):
    unit = benchmark(lambda: parse(SOURCE))
    assert unit.functions


def test_stage_a_elaborate(benchmark):
    tp = benchmark(lambda: elaborate_source(SOURCE))
    assert tp.specs


def test_stage_b_lithium(benchmark):
    tp = elaborate_source(SOURCE)
    result = benchmark(lambda: check_program(tp))
    assert result.ok


def test_stage_c_side_conditions(benchmark):
    """Replay every recorded side condition through a fresh solver."""
    out = verify_file(casestudies_dir() / f"{STUDY}.c")
    conditions = []
    for fr in out.result.functions.values():
        for d in fr.derivations:
            for node in d.walk():
                if node.kind == "side_condition" and \
                        node.detail.get("hypotheses") is not None:
                    conditions.append(node)
    solver = PureSolver(tactics=["multiset_solver"])

    def replay():
        from repro.proofs.certcheck import _recheck_side_condition, \
            CertificateReport
        report = CertificateReport()
        for node in conditions:
            _recheck_side_condition(node, solver, report)
        return report

    report = benchmark(replay)
    assert not report.problems


def test_certificate_check(benchmark):
    out = verify_file(casestudies_dir() / f"{STUDY}.c")
    derivations = [d for fr in out.result.functions.values()
                   for d in fr.derivations]
    solver = PureSolver(tactics=["multiset_solver"])

    def check_all():
        reports = [check_derivation(d, REGISTRY, solver)
                   for d in derivations]
        return reports

    reports = benchmark(check_all)
    assert all(r.ok for r in reports)


def test_print_pipeline_summary(benchmark, capsys):
    benchmark(lambda: parse(SOURCE))
    import time
    stages = {}
    t0 = time.perf_counter()
    unit = parse(SOURCE)
    stages["(A) parse"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    tp = elaborate_source(SOURCE)
    stages["(A) elaborate"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    result = check_program(tp)
    stages["(B) Lithium + (C) solvers"] = time.perf_counter() - t0
    assert result.ok
    with capsys.disabled():
        print()
        print(f"Pipeline stages over {STUDY}.c (Figure 2):")
        for name, dt in stages.items():
            print(f"  {name:<28} {dt * 1000:8.1f} ms")
