"""E8 — the §3 trusted-computing-base accounting.

The paper: "The TCB of RefinedC includes the implementation of the front
end (~6000 lines of OCaml), the definition of the Caesium semantics
(~1500 lines of Coq), and Coq.  The Iris logic ... and the Lithium
interpreter need not be trusted."

Our analogous decomposition: the TCB is the front end + the Caesium
semantics + the certificate checker and semantic model; the Lithium engine
and the RefinedC rules are *outside* it (the derivation checker and the
adequacy harness validate their output).  This benchmark regenerates the
accounting table and asserts the shape: the TCB is a minority of the code,
and the untrusted rule/search machinery is the larger part.
"""

from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

COMPONENTS = {
    # (trusted?, description)
    "lang": (True, "front end: C parsing + elaboration (§3: ~6000 LoC "
                   "OCaml in the paper)"),
    "caesium": (True, "Caesium semantics: memory model + interpreter "
                      "(§3: ~1500 LoC Coq)"),
    "proofs": (True, "semantic model + certificate checker + adequacy "
                     "(the Coq-kernel substitute)"),
    "lithium": (False, "Lithium engine — generates checked derivations, "
                       "untrusted (§3)"),
    "refinedc": (False, "type system + typing rules — validated "
                        "semantically, untrusted"),
    "pure": (False, "pure solvers — re-run by the certificate checker"),
}


def loc_of(package: str) -> int:
    total = 0
    root = SRC / package
    for path in root.rglob("*.py"):
        for line in path.read_text().splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                total += 1
    return total


def test_print_tcb_table(benchmark, capsys):
    benchmark(lambda: [loc_of(p) for p in COMPONENTS])
    rows = []
    trusted_total = untrusted_total = 0
    for package, (trusted, desc) in COMPONENTS.items():
        loc = loc_of(package)
        rows.append((package, trusted, loc, desc))
        if trusted:
            trusted_total += loc
        else:
            untrusted_total += loc
    with capsys.disabled():
        print()
        print("TCB accounting (§3 analogue):")
        for package, trusted, loc, desc in rows:
            tag = "TRUSTED  " if trusted else "untrusted"
            print(f"  {tag} {package:<10} {loc:>6} LoC  — {desc}")
        print(f"  total trusted {trusted_total}, untrusted "
              f"{untrusted_total}")
    # The same shape as the paper: the proof-search machinery (which does
    # the hard work) is outside the TCB.
    assert untrusted_total > trusted_total * 0.8
    assert loc_of("lithium") > 0 and loc_of("refinedc") > 0


def test_trusted_components_have_no_rule_imports(benchmark):
    """The TCB must not depend on the untrusted rule library: a Caesium
    bug cannot be masked by a typing rule."""
    benchmark(lambda: None)

    for package, (trusted, _desc) in COMPONENTS.items():
        if not trusted or package == "proofs":
            # proofs legitimately *reads* rule metadata to check it.
            continue
        for path in (SRC / package).rglob("*.py"):
            text = path.read_text()
            assert "refinedc.rules" not in text, \
                f"{path} imports the untrusted rule library"
