"""E2 — the §2.1 error-message experiment, as a benchmark: failing
verifications diagnose quickly and precisely (syntax-directed search means
a failure pinpoints its location instead of exhausting a search space)."""

import pytest

from repro.frontend import verify_source
from repro.report import casestudies_dir

ALLOC = (casestudies_dir() / "alloc.c").read_text()

MUTANTS = {
    "spec_off_by_one": ("{n <= a} @ optional", "{n < a} @ optional"),
    "missing_guard": ("if (sz > d->len) return NULL;", ""),
    "forgot_update": ("d->len -= sz;", ""),
}


@pytest.mark.parametrize("name", list(MUTANTS))
def test_failing_verification_is_fast(benchmark, name):
    old, new = MUTANTS[name]
    src = ALLOC.replace(old, new)
    outcome = benchmark(lambda: verify_source(src))
    assert not outcome.ok


def test_print_error_message(benchmark, capsys):
    old, new = MUTANTS["spec_off_by_one"]
    benchmark.pedantic(lambda: None, rounds=1)
    outcome = verify_source(ALLOC.replace(old, new))
    msg = outcome.report()
    assert "Cannot prove side condition" in msg
    assert "return statement" in msg
    assert "if branch: else" in msg
    with capsys.disabled():
        print()
        print("The §2.1 experiment (spec says n < a instead of n ≤ a):")
        for line in msg.splitlines():
            print("  " + line)


def test_failure_not_slower_than_success(benchmark):
    """A failing run costs about the same as a successful one — there is
    no search-space blowup on failure (no backtracking)."""
    benchmark.pedantic(lambda: None, rounds=1)
    import time
    t0 = time.perf_counter()
    ok_out = verify_source(ALLOC)
    ok_time = time.perf_counter() - t0
    assert ok_out.ok
    old, new = MUTANTS["spec_off_by_one"]
    src = ALLOC.replace(old, new)
    t0 = time.perf_counter()
    verify_source(src)
    fail_time = time.perf_counter() - t0
    # Within an order of magnitude — catching pathological blowups.
    assert fail_time < ok_time * 10 + 0.5
