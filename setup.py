"""Shim for environments without the ``wheel`` package (legacy editable
installs).  All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
