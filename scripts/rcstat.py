#!/usr/bin/env python3
"""Query the run ledger: dashboard, rule tables, diffs, and the sentinel.

The ledger (``.rc-ledger.jsonl``, or wherever ``RC_LEDGER`` points) holds
one record per verify/bench/fuzz run — see README "Observability" for the
record schema.  ``rcstat`` is its query tool:

* *(no flags)* — the terminal dashboard: the most recent records with
  wall time, configuration, and cache-effectiveness ratios;
* ``--top-rules [N]`` — the N most expensive rule dispatch keys of the
  newest record carrying a rules block (count-only blocks, e.g. from
  fuzz campaigns, order by count);
* ``--tactics`` — the same table over the solver-tactic dimension;
* ``--cache-report`` — per-layer cache-effectiveness history, newest
  last, so drift is visible at a glance;
* ``--diff A B`` — compare two records (by index, newest = -1, or by a
  git sha prefix): wall, cache ratios, and per-rule cost deltas;
* ``--check`` / ``--check-all`` — the noise-aware regression sentinel:
  the newest record (resp. the newest of every comparability pool) vs
  the median of its comparable history; exits 3 on a regression, so CI
  can gate on it.

Run:  PYTHONPATH=src python scripts/rcstat.py --ledger .rc-ledger.jsonl
      PYTHONPATH=src python scripts/rcstat.py --top-rules 15
      PYTHONPATH=src python scripts/rcstat.py --check --min-history 3
"""

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import (MIN_HISTORY, RATIO_ABS_TOL,     # noqa: E402
                       WALL_ABS_FLOOR_S, WALL_REL_TOL, RuleCostMap,
                       check_all_pools, check_latest, read_ledger,
                       render_top_rules)
from repro.obs.aggregate import SOLVER_PREFIX          # noqa: E402
from repro.obs.ledger import (DEFAULT_LEDGER_PATH,     # noqa: E402
                              KNOWN_KINDS, ledger_env_path)
from repro.trace.signature import RULE_PREFIX          # noqa: E402

EXIT_REGRESSION = 3


def fmt_ratio(value) -> str:
    return "   -" if value is None else f"{value:.2f}"


def fmt_ts(ts: float) -> str:
    return time.strftime("%m-%d %H:%M", time.localtime(ts))


def effectiveness_cells(record: dict) -> str:
    eff = record.get("cache_effectiveness", {})
    return " ".join(
        fmt_ratio((eff.get(layer) or {}).get(field))
        for layer, field in (("result_cache", "ratio"),
                             ("solver_memo", "ratio"),
                             ("dispatch_table", "per_application"),
                             ("elaboration_memo", "ratio"),
                             ("depgraph", "ratio")))


def dashboard(records, limit: int) -> str:
    lines = [f"{'when':<12} {'kind':<7} {'sha':<8} {'jobs':>4} "
             f"{'wall':>9}  {'rcache memo  disp  elab   dep':<30} suite"]
    for r in records[-limit:]:
        sha = (r.get("git_sha") or "")[:8] or "-"
        suite = ",".join(r.get("suite", [])) or "-"
        if len(suite) > 28:
            suite = suite[:25] + "..."
        lines.append(
            f"{fmt_ts(r.get('ts', 0)):<12} {r.get('kind', '?'):<7} "
            f"{sha:<8} {r.get('jobs', 1):>4} "
            f"{r.get('wall_s', 0.0) * 1e3:>7.1f}ms  "
            f"{effectiveness_cells(r):<30} {suite}")
    return "\n".join(lines)


def cache_report(records, limit: int) -> str:
    lines = ["per-layer cache effectiveness (newest last; '-' = layer "
             "never ran)",
             f"{'when':<12} {'kind':<7} {'result':>7} {'memo':>6} "
             f"{'disp':>6} {'elab':>6} {'dep':>6}"]
    for r in records[-limit:]:
        if "cache_effectiveness" not in r:
            continue
        eff = r["cache_effectiveness"]

        def cell(layer, field="ratio"):
            return fmt_ratio((eff.get(layer) or {}).get(field))

        lines.append(f"{fmt_ts(r.get('ts', 0)):<12} "
                     f"{r.get('kind', '?'):<7} "
                     f"{cell('result_cache'):>7} {cell('solver_memo'):>6} "
                     f"{cell('dispatch_table', 'per_application'):>6} "
                     f"{cell('elaboration_memo'):>6} "
                     f"{cell('depgraph'):>6}")
    return "\n".join(lines)


def latest_costs(records) -> RuleCostMap:
    """The rules block of the newest record that carries one."""
    for r in reversed(records):
        if "rules" in r:
            return RuleCostMap.from_dict(r["rules"])
    raise SystemExit("rcstat: no record carries a rules block "
                     "(run with RC_TRACE=1 RC_LEDGER=1)")


def pick_record(records, spec: str):
    """A record by integer index (newest = -1) or git-sha prefix."""
    try:
        return records[int(spec)]
    except (ValueError, IndexError):
        pass
    matches = [r for r in records
               if r.get("git_sha", "").startswith(spec)]
    if not matches:
        raise SystemExit(f"rcstat: no record matches {spec!r}")
    return matches[-1]


def diff_records(a: dict, b: dict, top: int) -> str:
    def describe(r):
        return (f"{fmt_ts(r.get('ts', 0))} {r.get('kind', '?')} "
                f"{(r.get('git_sha') or '')[:8] or '-'}")

    wall_a, wall_b = a.get("wall_s", 0.0), b.get("wall_s", 0.0)
    delta = wall_b - wall_a
    rel = f" ({delta / wall_a:+.1%})" if wall_a else ""
    lines = [f"A: {describe(a)}", f"B: {describe(b)}",
             f"wall: {wall_a * 1e3:.1f}ms -> {wall_b * 1e3:.1f}ms "
             f"[{delta * 1e3:+.1f}ms{rel}]"]

    eff_a = a.get("cache_effectiveness", {})
    eff_b = b.get("cache_effectiveness", {})
    for layer in sorted(set(eff_a) | set(eff_b)):
        field = ("per_application" if layer == "dispatch_table"
                 else "ratio")
        ra = (eff_a.get(layer) or {}).get(field)
        rb = (eff_b.get(layer) or {}).get(field)
        if ra != rb:
            lines.append(f"{layer}: {fmt_ratio(ra)} -> {fmt_ratio(rb)}")

    if "rules" in a and "rules" in b:
        ca = RuleCostMap.from_dict(a["rules"]).entries
        cb = RuleCostMap.from_dict(b["rules"]).entries
        deltas = []
        for key in set(ca) | set(cb):
            ta = ca[key].total_s if key in ca else 0.0
            tb = cb[key].total_s if key in cb else 0.0
            if ta != tb:
                deltas.append((abs(tb - ta), key, ta, tb))
        deltas.sort(key=lambda d: (-d[0], d[1]))
        if deltas:
            lines.append("")
            lines.append(f"{'rule/tactic':<52} {'A':>9} {'B':>9} "
                         f"{'delta':>9}")
            for _mag, key, ta, tb in deltas[:top]:
                lines.append(f"{key:<52} {ta * 1e3:>7.2f}ms "
                             f"{tb * 1e3:>7.2f}ms "
                             f"{(tb - ta) * 1e3:>+7.2f}ms")
    return "\n".join(lines)


def main() -> int:
    ap = argparse.ArgumentParser(
        description="Query the verification run ledger.")
    ap.add_argument("--ledger", metavar="PATH",
                    help="ledger file (default: $RC_LEDGER or "
                         f"{DEFAULT_LEDGER_PATH})")
    ap.add_argument("--kind", choices=list(KNOWN_KINDS),
                    help="restrict to records of one kind")
    ap.add_argument("--limit", type=int, default=15, metavar="N",
                    help="rows in the dashboard/cache report (default 15)")
    ap.add_argument("--top-rules", type=int, nargs="?", const=10,
                    metavar="N", help="top-N rule dispatch keys of the "
                    "newest record with a rules block")
    ap.add_argument("--tactics", action="store_true",
                    help="top solver tactics instead of rules")
    ap.add_argument("--cache-report", action="store_true",
                    help="cache-effectiveness history")
    ap.add_argument("--diff", nargs=2, metavar=("A", "B"),
                    help="compare two records (index or git-sha prefix)")
    ap.add_argument("--check", action="store_true",
                    help="sentinel: newest record vs comparable history")
    ap.add_argument("--check-all", action="store_true",
                    help="sentinel over every comparability pool")
    ap.add_argument("--min-history", type=int, default=MIN_HISTORY,
                    help=f"history records required (default "
                         f"{MIN_HISTORY})")
    ap.add_argument("--wall-tol", type=float, default=WALL_REL_TOL,
                    help="relative wall-time band (default "
                         f"{WALL_REL_TOL})")
    ap.add_argument("--wall-floor", type=float, default=WALL_ABS_FLOOR_S,
                    metavar="S", help="absolute wall-time floor in "
                    f"seconds (default {WALL_ABS_FLOOR_S})")
    ap.add_argument("--ratio-tol", type=float, default=RATIO_ABS_TOL,
                    help="absolute cache-ratio band (default "
                         f"{RATIO_ABS_TOL})")
    args = ap.parse_args()

    ledger = args.ledger or ledger_env_path() or DEFAULT_LEDGER_PATH
    view = read_ledger(ledger)
    if view.corrupt_lines or view.alien_versions:
        print(f"rcstat: skipped {view.corrupt_lines} corrupt line(s), "
              f"{view.alien_versions} alien-version record(s)",
              file=sys.stderr)
    records = view.of_kind(args.kind) if args.kind else view.records
    if not records:
        print(f"rcstat: no records in {ledger}")
        return 0

    if args.check or args.check_all:
        bands = dict(min_history=args.min_history, wall_tol=args.wall_tol,
                     wall_floor_s=args.wall_floor,
                     ratio_tol=args.ratio_tol)
        if args.check_all:
            reports = check_all_pools(records, **bands)
            bad = False
            for key, report in reports.items():
                print(f"pool {key}")
                print(f"  {report.describe()}")
                bad = bad or not report.ok
            return EXIT_REGRESSION if bad else 0
        report = check_latest(records, kind=args.kind, **bands)
        print(report.describe())
        return 0 if report.ok else EXIT_REGRESSION

    if args.diff:
        a = pick_record(records, args.diff[0])
        b = pick_record(records, args.diff[1])
        print(diff_records(a, b, top=args.limit))
        return 0

    if args.top_rules is not None or args.tactics:
        costs = latest_costs(records)
        prefix = SOLVER_PREFIX if args.tactics else RULE_PREFIX
        print(render_top_rules(costs, args.top_rules or 10,
                               prefix=prefix))
        return 0

    if args.cache_report:
        print(cache_report(records, args.limit))
        return 0

    print(dashboard(records, args.limit))
    return 0


if __name__ == "__main__":
    sys.exit(main())
