#!/usr/bin/env python3
"""Trace a verification run and inspect where the proof search goes.

Verifies one or more annotated C files with tracing enabled and renders
the results:

* ``--profile`` (default) — the self-profile tree: time per typing rule
  (total and self), per-span statistics, instant counts and the top-N
  slowest pure-solver goals;
* ``--chrome PATH`` — a Chrome trace-event JSON file, loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``;
* ``--jsonl PATH`` — the raw event stream, one JSON object per line;
* ``--report`` — the ``VerificationOutcome.report()`` text, including
  the stuck-goal diagnostics of any failing function.

Files can be given as paths or as case-study stems (resolved against
``examples/casestudies/``).  With several files the export paths get the
study stem suffixed before the extension.

Run:  PYTHONPATH=src python scripts/trace.py mpool [--jobs N]
      PYTHONPATH=src python scripts/trace.py examples/casestudies/mpool.c \\
          --chrome mpool.trace.json --profile
"""

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.frontend import verify_file                         # noqa: E402
from repro.report import casestudies_dir                       # noqa: E402
from repro.trace.chrome import (chrome_trace,                  # noqa: E402
                                validate_chrome_trace, write_jsonl)
from repro.trace.profile import build_profile, render_profile  # noqa: E402


def resolve_path(spec: str) -> Path:
    """A file path, or a case-study stem resolved in the examples dir."""
    p = Path(spec)
    if p.exists():
        return p
    candidate = casestudies_dir() / f"{spec}.c"
    if candidate.exists():
        return candidate
    raise SystemExit(f"trace.py: no such file or case study: {spec!r}")


def suffixed(path: str, stem: str, many: bool) -> Path:
    """``out.json`` -> ``out.mpool.json`` when tracing several files."""
    p = Path(path)
    return p.with_suffix(f".{stem}{p.suffix}") if many else p


def main() -> int:
    ap = argparse.ArgumentParser(
        description="Verify with tracing and render profile / exports.")
    ap.add_argument("files", nargs="+",
                    help="annotated C files or case-study stems")
    ap.add_argument("--jobs", type=int, default=1,
                    help="driver job count (default 1)")
    ap.add_argument("--profile", action="store_true",
                    help="print the self-profile (default when no other "
                         "output is selected)")
    ap.add_argument("--top", type=int, default=10, metavar="N",
                    help="rows per profile table (default 10)")
    ap.add_argument("--chrome", metavar="PATH",
                    help="write Chrome trace-event JSON (Perfetto)")
    ap.add_argument("--jsonl", metavar="PATH",
                    help="write the raw event stream as JSON lines")
    ap.add_argument("--report", action="store_true",
                    help="print the verification report (includes "
                         "stuck-goal diagnostics on failure)")
    args = ap.parse_args()

    want_profile = args.profile or not (args.chrome or args.jsonl
                                        or args.report)
    paths = [resolve_path(f) for f in args.files]
    many = len(paths) > 1
    failed = False

    for path in paths:
        outcome = verify_file(path, jobs=args.jobs, trace=True)
        failed = failed or not outcome.ok
        trace = outcome.trace
        if trace is None:
            raise SystemExit(f"trace.py: no trace recorded for {path}")
        if many:
            print(f"== {path.stem} "
                  + ("(verified)" if outcome.ok else "(FAILED)"))
        if args.report:
            print(outcome.report())
        if want_profile:
            print(render_profile(build_profile(trace, top_n=args.top),
                                 top_n=args.top))
        if args.chrome:
            out = suffixed(args.chrome, path.stem, many)
            data = chrome_trace(trace)
            problems = validate_chrome_trace(data)
            if problems:
                for p in problems:
                    print(f"trace.py: invalid chrome trace: {p}",
                          file=sys.stderr)
                return 2
            out.write_text(json.dumps(data, indent=1, sort_keys=True))
            print(f"wrote {out} ({len(data['traceEvents'])} events)")
        if args.jsonl:
            out = suffixed(args.jsonl, path.stem, many)
            write_jsonl(trace, out)
            print(f"wrote {out} ({trace.event_count()} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
