#!/usr/bin/env python3
"""Checked-in CI assertions — what used to live in workflow heredocs.

Run:  PYTHONPATH=src python scripts/ci_checks.py SUBCOMMAND ...

Inline ``python - <<'PY'`` blocks in workflow YAML are invisible to the
linter, unreachable from a test, and silently drift from the code they
assert about.  Each block is a subcommand here instead — ruff-linted,
unit-tested (``tests/scripts/test_ci_checks.py``) and runnable locally
to reproduce exactly what CI enforces:

* ``bench-artifact BENCH.json`` — the bench-smoke gate: correctness
  fingerprint recorded identical, all functions verified, and the
  compiled path at least not pathologically slower.
* ``traced-verify [--stem STEM]`` — the trace-smoke gate: with
  ``RC_TRACE=1`` in the environment a verification must thread a
  non-empty trace through result *and* metrics without any kwargs.
* ``coverage-diff STATS BASELINE`` — the nightly fuzz summary: campaign
  coverage keys against the pinned baseline, rendered as markdown.
* ``batch-reference --json OUT [STEMS...]`` — write a batch (daemon-
  free, cache-free) run's per-function outcome map in the same
  canonical shape ``rcd verify --json`` emits.
* ``serve-compare BATCH COLD WARM`` — the serve-smoke gate: the
  daemon's cold outcomes byte-identical to the batch reference, and
  the warm request re-checked zero functions.

Exit code 0 when the assertion holds, 1 when it fails.
"""

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


def _load(path):
    return json.loads(Path(path).read_text())


# ---------------------------------------------------------------------
# bench-smoke
# ---------------------------------------------------------------------

def check_bench_artifact(args) -> int:
    data = _load(args.artifact)
    checks = data["checks"]
    if checks["fingerprint_identical"] is not True:
        print("bench-artifact: correctness fingerprint differs across "
              "solver configurations", file=sys.stderr)
        return 1
    if checks["all_verified"] is not True:
        print("bench-artifact: not every function verified",
              file=sys.stderr)
        return 1
    ratio = data["speedup"]["compiled_check_wall"]
    if not ratio > args.min_speedup:
        print(f"bench-artifact: compiled path regressed: {ratio}x "
              f"(floor {args.min_speedup}x)", file=sys.stderr)
        return 1
    print(f"fingerprint ok; compiled speedup {ratio}x (quick)")
    return 0


# ---------------------------------------------------------------------
# trace-smoke
# ---------------------------------------------------------------------

def check_traced_verify(args) -> int:
    from repro.frontend import verify_file
    from repro.report import casestudies_dir

    out = verify_file(casestudies_dir() / f"{args.stem}.c")
    if not out.ok:
        print(out.report(), file=sys.stderr)
        return 1
    if out.trace is None or out.trace.event_count() == 0:
        print("traced-verify: RC_TRACE=1 produced no trace on the "
              "result", file=sys.stderr)
        return 1
    if out.metrics.trace is None:
        print("traced-verify: trace missing from the metrics block",
              file=sys.stderr)
        return 1
    print(out.metrics.summary())
    return 0


# ---------------------------------------------------------------------
# nightly fuzz coverage diff
# ---------------------------------------------------------------------

def coverage_diff(args) -> int:
    got = set(_load(args.stats)["coverage"]["keys"])
    pinned = set(_load(args.baseline)["keys"])
    print(f"- campaign keys: {len(got)} (baseline pins {len(pinned)})")
    for k in sorted(pinned - got):
        print(f"- **missing**: `{k}`")
    for k in sorted(got - pinned):
        print(f"- new (unpinned): `{k}`")
    if args.strict and pinned - got:
        return 1
    return 0


# ---------------------------------------------------------------------
# serve-smoke
# ---------------------------------------------------------------------

def batch_reference(args) -> int:
    """One cache-free batch run, written in the canonical per-function
    outcome shape (``{stem: {fn: {ok, error, counters}}}``) that
    ``rcd verify --json`` emits — the reference serve-compare diffs
    the daemon against."""
    from repro.frontend import verify_files
    from repro.report import casestudies_dir

    base = casestudies_dir()
    paths = ([base / f"{s}.c" for s in args.stems] if args.stems
             else sorted(base.glob("*.c")))
    outcomes = verify_files(paths, jobs=args.jobs, cache_dir=None,
                            incremental=False, ledger=False)
    files = {
        stem: {
            name: {"ok": fr.ok, "error": fr.format_error(),
                   "counters": fr.stats.counters()}
            for name, fr in out.result.functions.items()
        }
        for stem, out in outcomes.items()
    }
    ok = all(out.ok for out in outcomes.values())
    payload = {"files": files, "ok": ok}
    Path(args.json_path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.json_path} ({len(files)} unit(s), "
          f"{sum(len(v) for v in files.values())} function(s))")
    return 0 if ok else 1


def serve_compare(args) -> int:
    batch = _load(args.batch)
    cold = _load(args.cold)
    warm = _load(args.warm)

    failures = []
    if cold["files"] != batch["files"]:
        failures.append("cold daemon outcomes differ from the batch "
                        "reference")
        _diff_files(batch["files"], cold["files"], "batch", "cold")
    if not cold["summary"].get("ok"):
        failures.append("cold daemon run reported failures")
    if warm["files"] != cold["files"]:
        failures.append("warm daemon outcomes differ from cold")
        _diff_files(cold["files"], warm["files"], "cold", "warm")
    if warm["summary"].get("warm") is not True:
        failures.append("second request was not served warm")
    if warm["summary"].get("rechecked") != 0:
        failures.append(f"warm request re-checked "
                        f"{warm['summary'].get('rechecked')} "
                        "function(s); expected 0")
    if failures:
        for f in failures:
            print(f"serve-compare: {f}", file=sys.stderr)
        return 1
    n_fns = sum(len(v) for v in cold["files"].values())
    print(f"serve-compare ok: {len(cold['files'])} unit(s), {n_fns} "
          f"function(s) identical to batch; warm request re-checked 0 "
          f"(queue wait {warm['summary'].get('queue_wait_s', 0):.3f}s)")
    return 0


def _diff_files(a: dict, b: dict, la: str, lb: str) -> None:
    for stem in sorted(set(a) | set(b)):
        if stem not in a or stem not in b:
            where = la if stem in a else lb
            print(f"  unit {stem}: only in {where}", file=sys.stderr)
            continue
        for fn in sorted(set(a[stem]) | set(b[stem])):
            if a[stem].get(fn) != b[stem].get(fn):
                print(f"  {stem}:{fn}: {la}={a[stem].get(fn)!r} "
                      f"{lb}={b[stem].get(fn)!r}", file=sys.stderr)


# ---------------------------------------------------------------------

def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("bench-artifact",
                       help="bench-smoke fingerprint + sanity floor")
    p.add_argument("artifact", help="BENCH_solver.json path")
    p.add_argument("--min-speedup", type=float, default=0.8,
                   help="loose floor for shared runners (default 0.8)")
    p.set_defaults(func=check_bench_artifact)

    p = sub.add_parser("traced-verify",
                       help="assert RC_TRACE=1 threads a trace through")
    p.add_argument("--stem", default="mpool")
    p.set_defaults(func=check_traced_verify)

    p = sub.add_parser("coverage-diff",
                       help="markdown diff of campaign coverage vs the "
                            "pinned baseline")
    p.add_argument("stats", help="campaign stats JSON")
    p.add_argument("baseline", help="pinned baseline JSON")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 when any pinned key is missing")
    p.set_defaults(func=coverage_diff)

    p = sub.add_parser("batch-reference",
                       help="write a batch run's canonical outcome map")
    p.add_argument("stems", nargs="*",
                   help="case-study stems (default: all)")
    p.add_argument("--json", dest="json_path", required=True)
    p.add_argument("--jobs", type=int, default=1)
    p.set_defaults(func=batch_reference)

    p = sub.add_parser("serve-compare",
                       help="daemon cold/warm runs vs the batch "
                            "reference")
    p.add_argument("batch", help="batch-reference JSON")
    p.add_argument("cold", help="rcd verify --json of the cold request")
    p.add_argument("warm", help="rcd verify --json of the warm request")
    p.set_defaults(func=serve_compare)

    args = ap.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
