#!/usr/bin/env python3
"""Benchmark the pure-solver pipeline: caches off / caches on / compiled.

Verifies the Figure-7 case-study suite in three configurations —
``cache_off`` (every pure-stack cache *and* the ``RC_COMPILE`` fast
paths disabled: the reference semantics), ``cache_on`` (hash-consed
terms feeding the simplify / linarith / lists / sets / prove memo
tables, compiler still off: the previous baseline) and ``compiled``
(caches plus the compiled hot paths: flat rule dispatch, node-stamped
closures, integer-matrix Fourier–Motzkin) — and

  1. asserts all three modes are *observationally identical*:
     per-function outcome, ``Stats.counters()`` and exact error text
     match byte for byte (caches and compiler may only change speed,
     never results);
  2. reports the wall-clock speedups and asserts they meet the
     thresholds (``--threshold`` for cache_on vs cache_off,
     ``--compile-threshold`` for compiled vs cache_on; both skipped
     under ``--quick``);
  3. writes a ``BENCH_solver.json`` artifact (schema shared with
     ``bench_driver.py`` — see ``repro.driver.benchio``);
  4. guards the no-op fast path of ``repro.trace``: with tracing *off*
     (the default) the checking wall must not regress more than
     ``--max-trace-overhead`` (2%) against the previously recorded
     ``BENCH_solver.json`` — asserted only when that baseline was
     recorded on the same platform, so CI runners skip it — and a
     tracing-*on* pass is timed for information.  The guard covers both
     the interpreted (``cache_off``) and the ``RC_COMPILE`` (``compiled``)
     configuration: the compiled hot path moved the baseline, so its
     instrumentation sites need their own watchdog;
  5. guards the observability layer the same way: per traced pass the
     run-ledger record is built (rule-cost aggregation included,
     ``repro.obs``) against a scratch ledger and its cost is asserted to
     stay under ``--max-trace-overhead`` of the checking wall.

The asserted ratios are measured on the *checking-phase* wall
(``search_s + solver_s``) — the phase the caches and the compiler
operate in; parsing and elaboration are identical work in all modes.
The total process wall is reported alongside.  Every repetition starts
cold (``clear_pure_caches()``, which also drops the node-stamped
compiled forms via the intern tables), so the ratios reflect
within-suite redundancy only, not warm re-runs.

Run:  PYTHONPATH=src python scripts/bench_solver.py [--quick] [--json PATH]
"""

import argparse
import json
import os
import platform
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.driver.benchio import (bench_envelope, sample_stats,  # noqa: E402
                                  write_bench_json)
from repro.frontend import verify_file                         # noqa: E402
from repro.obs import costs_of_outcomes, record_run            # noqa: E402
from repro.pure.compiled import (compile_enabled,              # noqa: E402
                                 set_compile_enabled)
from repro.pure.memo import (cache_enabled, clear_pure_caches,  # noqa: E402
                             set_cache_enabled)
from repro.report import (EXTRA_STUDIES, FIGURE7_STUDIES,      # noqa: E402
                          casestudies_dir)


def fingerprint(outcomes):
    """The deterministic contents of every ProgramResult: function order,
    outcome, Stats counters and exact error text."""
    fp = {}
    for study, out in outcomes.items():
        fp[study] = [(name, fr.ok, fr.stats.counters(), fr.format_error())
                     for name, fr in out.result.functions.items()]
    return fp


def run_suite(paths, cached, traced=False, compiled=False):
    """One cold pass over the suite; returns (total_wall, check_wall,
    outcomes)."""
    set_cache_enabled(cached)
    set_compile_enabled(compiled)
    if cached or compiled:
        clear_pure_caches()
    t0 = time.perf_counter()
    check = 0.0
    outcomes = {}
    for p in paths:
        out = verify_file(p, trace=traced)
        check += out.metrics.phases.search_s + out.metrics.phases.solver_s
        outcomes[p.stem] = out
    return time.perf_counter() - t0, check, outcomes


def load_baseline(path):
    """The previously recorded artifact at ``path``, or None."""
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="2 repetitions, correctness assertions only "
                         "(no speedup threshold) — the CI smoke mode")
    ap.add_argument("--repeat", type=int, default=None,
                    help="repetitions per mode (default 5; 2 with --quick)")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="minimum required checking-phase speedup, "
                         "cache_on vs cache_off")
    ap.add_argument("--compile-threshold", type=float, default=1.3,
                    help="minimum required checking-phase speedup, "
                         "compiled vs cache_on (measured ~1.6x on the "
                         "reference machine; the floor absorbs noise)")
    ap.add_argument("--extras", action="store_true",
                    help="also measure the non-Figure-7 extra studies")
    ap.add_argument("--json", dest="json_path", default="BENCH_solver.json",
                    help="where to write the benchmark artifact "
                         "('' disables)")
    ap.add_argument("--max-trace-overhead", type=float, default=2.0,
                    metavar="PCT",
                    help="max tracing-off checking-wall regression vs the "
                         "existing artifact, in percent (same-platform "
                         "baselines only; default 2.0)")
    args = ap.parse_args(argv)
    repeat = args.repeat or (2 if args.quick else 5)

    studies = [stem for stem, _cls in FIGURE7_STUDIES]
    if args.extras:
        studies += [stem for stem, _cls in EXTRA_STUDIES]
    base = casestudies_dir()
    paths = [base / f"{stem}.c" for stem in studies]
    print(f"bench_solver: {len(paths)} case studies, "
          f"{repeat} repetition(s) per mode"
          f"{' (quick)' if args.quick else ''}")

    previous = cache_enabled()
    previous_compiled = compile_enabled()
    try:
        # Warmup pass per mode (interpreter/import effects), capturing the
        # fingerprints and the per-mode telemetry outside the timing.
        _, _, out_off = run_suite(paths, cached=False)
        _, _, out_on = run_suite(paths, cached=True)
        _, _, out_jit = run_suite(paths, cached=True, compiled=True)
        fp_off, fp_on = fingerprint(out_off), fingerprint(out_on)
        fp_jit = fingerprint(out_jit)
        identical = fp_off == fp_on == fp_jit
        hits = sum(f.solver_cache_hits
                   for o in out_on.values() for f in o.metrics.functions)
        interned = sum(f.terms_interned
                       for o in out_on.values() for f in o.metrics.functions)
        dispatch_hits = sum(f.dispatch_table_hits
                            for o in out_jit.values()
                            for f in o.metrics.functions)
        compiled_terms = sum(f.terms_compiled
                             for o in out_jit.values()
                             for f in o.metrics.functions)
        nfunctions = sum(len(o.result.functions) for o in out_off.values())

        off_total, off_check, on_total, on_check = [], [], [], []
        jit_total, jit_check = [], []
        for _ in range(repeat):
            t, c, _ = run_suite(paths, cached=False)
            off_total.append(t)
            off_check.append(c)
            t, c, _ = run_suite(paths, cached=True)
            on_total.append(t)
            on_check.append(c)
            t, c, _ = run_suite(paths, cached=True, compiled=True)
            jit_total.append(t)
            jit_check.append(c)
        # Tracing-on cost, for information (same cache-free work, plus
        # the event stream); the *off* path is what the baseline guards.
        # Each traced pass also builds the full observability record —
        # rule-cost aggregation plus a ledger append to a scratch file —
        # and times that separately: the ledger must stay inside the
        # trace budget too.
        run_suite(paths, cached=False, traced=True)     # warmup
        traced_check, ledger_extra = [], []
        fd, scratch_ledger = tempfile.mkstemp(suffix=".rc-ledger.jsonl")
        os.close(fd)

        def traced_pass():
            _, c, outs = run_suite(paths, cached=False, traced=True)
            traced_check.append(c)
            t_obs = time.perf_counter()
            record_run("bench", wall_s=c,
                       metrics=[o.metrics for o in outs.values()],
                       costs=costs_of_outcomes(outs.values()),
                       path=scratch_ledger)
            ledger_extra.append(time.perf_counter() - t_obs)

        try:
            for _ in range(repeat):
                traced_pass()

            def ledger_overhead():
                return min(ledger_extra) / min(traced_check) * 100.0

            # Same retry discipline as the baseline guards: a load spike
            # during one pass is likelier than a real aggregation
            # slowdown.
            retries = 0
            while ledger_overhead() > args.max_trace_overhead \
                    and retries < 3:
                traced_pass()
                retries += 1
            ledger_cost = ledger_overhead()
        finally:
            try:
                os.unlink(scratch_ledger)
            except OSError:
                pass

        baseline = load_baseline(args.json_path) if args.json_path else None
        trace_regress = compiled_regress = None
        same_platform = (baseline is not None
                         and baseline.get("platform") == platform.platform())

        def guarded_regress(samples, base_stats, rerun):
            """Best-of-now vs *median*-of-baseline: robust to the
            baseline having caught one lucky sample, still trips on a
            real slowdown of the instrumented-but-off fast path.  A
            pending failure gets extra cold passes first — on shared
            hardware a single load spike is far more likely than a
            genuine regression of a few `is None` checks."""
            base_check = base_stats.get("median", base_stats["min"])

            def regress():
                return (min(samples) / base_check - 1.0) * 100.0

            retries = 0
            while regress() > args.max_trace_overhead and retries < 3:
                _, c, _ = rerun()
                samples.append(c)
                retries += 1
            return regress()

        if same_platform and "cache_off" in baseline.get("configs", {}):
            trace_regress = guarded_regress(
                off_check, baseline["configs"]["cache_off"]["check_wall_s"],
                lambda: run_suite(paths, cached=False))
        if same_platform and "check_wall_s" in baseline.get(
                "configs", {}).get("compiled", {}):
            # The RC_COMPILE path has its own instrumentation sites (the
            # flat dispatch table bypasses some, hits others), so it gets
            # its own trace-off watchdog against its own baseline.
            compiled_regress = guarded_regress(
                jit_check, baseline["configs"]["compiled"]["check_wall_s"],
                lambda: run_suite(paths, cached=True, compiled=True))
    finally:
        set_cache_enabled(previous)
        set_compile_enabled(previous_compiled)

    speedup_check = min(off_check) / min(on_check)
    speedup_total = min(off_total) / min(on_total)
    speedup_compile = min(on_check) / min(jit_check)
    speedup_compile_total = min(on_total) / min(jit_total)

    print(f"  cache off: check {min(off_check) * 1e3:8.1f}ms   "
          f"total {min(off_total) * 1e3:8.1f}ms   (best of {repeat})")
    print(f"  cache on:  check {min(on_check) * 1e3:8.1f}ms   "
          f"total {min(on_total) * 1e3:8.1f}ms")
    print(f"  compiled:  check {min(jit_check) * 1e3:8.1f}ms   "
          f"total {min(jit_total) * 1e3:8.1f}ms")
    print(f"  speedup:   check {speedup_check:5.2f}x   "
          f"total {speedup_total:5.2f}x   (cache on vs off)")
    print(f"             check {speedup_compile:5.2f}x   "
          f"total {speedup_compile_total:5.2f}x   (compiled vs cache on)")
    print(f"  telemetry: {hits} solver-cache hits, "
          f"{interned} terms interned, {nfunctions} functions")
    print(f"             {dispatch_hits} dispatch-table hits, "
          f"{compiled_terms} terms compiled")
    trace_cost = (min(traced_check) / min(off_check) - 1.0) * 100.0
    print(f"  tracing:   on {min(traced_check) * 1e3:8.1f}ms   "
          f"({trace_cost:+.1f}% vs off)")
    print(f"  ledger:    +{min(ledger_extra) * 1e3:.2f}ms per pass   "
          f"({ledger_cost:+.2f}% of checking wall, "
          f"limit +{args.max_trace_overhead:.1f}%)")
    for label, value in (("trace-off overhead vs baseline", trace_regress),
                         ("compiled trace-off overhead vs baseline",
                          compiled_regress)):
        if value is not None:
            print(f"  {label}: {value:+.1f}% "
                  f"(limit +{args.max_trace_overhead:.1f}%)")
        else:
            print(f"  {label}: skipped "
                  "(no same-platform baseline artifact)")

    failures = []
    if not identical:
        diffs = [s for s in fp_off
                 if fp_off[s] != fp_on.get(s) or fp_off[s] != fp_jit.get(s)]
        failures.append("cached/compiled results differ from the reference "
                        f"in: {', '.join(diffs)}")
    if not all(o.ok for o in out_off.values()):
        failures.append("reference run has verification failures")
    if not args.quick and speedup_check < args.threshold:
        failures.append(f"checking-phase speedup {speedup_check:.2f}x "
                        f"< {args.threshold:.1f}x")
    if not args.quick and speedup_compile < args.compile_threshold:
        failures.append(f"compiled-vs-cached speedup {speedup_compile:.2f}x "
                        f"< {args.compile_threshold:.1f}x")
    if trace_regress is not None and trace_regress > args.max_trace_overhead:
        failures.append(
            f"tracing-off checking wall regressed {trace_regress:+.1f}% "
            f"vs baseline (> +{args.max_trace_overhead:.1f}%): the no-op "
            "fast path of repro.trace must stay free")
    if compiled_regress is not None \
            and compiled_regress > args.max_trace_overhead:
        failures.append(
            f"RC_COMPILE tracing-off checking wall regressed "
            f"{compiled_regress:+.1f}% vs baseline "
            f"(> +{args.max_trace_overhead:.1f}%): the compiled hot path "
            "must stay free of instrumentation cost too")
    if ledger_cost > args.max_trace_overhead:
        failures.append(
            f"ledger+aggregation overhead {ledger_cost:+.2f}% of the "
            f"checking wall (> +{args.max_trace_overhead:.1f}%): the "
            "observability layer must stay inside the trace budget")

    if args.json_path:
        payload = bench_envelope("solver", studies, repeat)
        payload["configs"] = {
            "cache_off": {
                "total_wall_s": sample_stats(off_total),
                "check_wall_s": sample_stats(off_check),
            },
            "cache_on": {
                "total_wall_s": sample_stats(on_total),
                "check_wall_s": sample_stats(on_check),
                "solver_cache_hits": hits,
                "terms_interned": interned,
            },
            "compiled": {
                "total_wall_s": sample_stats(jit_total),
                "check_wall_s": sample_stats(jit_check),
                "dispatch_table_hits": dispatch_hits,
                "terms_compiled": compiled_terms,
            },
            "trace_on": {
                "check_wall_s": sample_stats(traced_check),
            },
        }
        payload["trace_overhead"] = {
            "on_vs_off_pct": round(trace_cost, 2),
            "off_vs_baseline_pct": (round(trace_regress, 2)
                                    if trace_regress is not None else None),
            "compiled_off_vs_baseline_pct": (
                round(compiled_regress, 2)
                if compiled_regress is not None else None),
            "limit_pct": args.max_trace_overhead,
            "asserted": trace_regress is not None,
            "compiled_asserted": compiled_regress is not None,
        }
        payload["ledger_overhead"] = {
            "extra_ms_per_pass": round(min(ledger_extra) * 1e3, 3),
            "pct_of_check_wall": round(ledger_cost, 3),
            "limit_pct": args.max_trace_overhead,
            "asserted": True,
        }
        payload["speedup"] = {
            "basis": "min-of-repetitions",
            "primary": "check_wall",
            "check_wall": round(speedup_check, 3),
            "total_wall": round(speedup_total, 3),
            "threshold": args.threshold if not args.quick else None,
            "compiled_check_wall": round(speedup_compile, 3),
            "compiled_total_wall": round(speedup_compile_total, 3),
            "compiled_threshold": (args.compile_threshold
                                   if not args.quick else None),
        }
        payload["checks"] = {
            "fingerprint_identical": identical,
            "all_verified": all(o.ok for o in out_off.values()),
            "functions": nfunctions,
            "speedup_asserted": not args.quick,
        }
        path = write_bench_json(args.json_path, payload)
        print(f"  wrote {path}")

    # One run-ledger record (no-op unless RC_LEDGER is set).  The
    # recorded wall is the checking wall of the configuration the
    # environment selects — RC_COMPILE runs land in their own
    # comparability pool, so the sentinel tracks each mode separately.
    compiled_env = os.environ.get("RC_COMPILE", "").strip().lower() \
        not in ("", "0", "false", "off", "no")
    record_run("bench",
               wall_s=min(jit_check if compiled_env else on_check),
               jobs=1, suite=studies,
               extra={"script": "bench_solver", "quick": args.quick,
                      "check_wall_s": {
                          "cache_off": round(min(off_check), 6),
                          "cache_on": round(min(on_check), 6),
                          "compiled": round(min(jit_check), 6)},
                      "speedup_check": round(speedup_check, 3),
                      "speedup_compiled": round(speedup_compile, 3),
                      "ledger_overhead_pct": round(ledger_cost, 3)})

    if failures:
        print("\nFAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nOK: cache-free, cached and compiled runs are observationally "
          "identical"
          + ("." if args.quick
             else f"; speedups {speedup_check:.2f}x >= "
                  f"{args.threshold:.1f}x (cached), "
                  f"{speedup_compile:.2f}x >= "
                  f"{args.compile_threshold:.1f}x (compiled)."))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
