#!/usr/bin/env python3
"""Incremental verification CLI — the engine a CI job calls on a PR.

Verifies annotated C files through the dependency-aware incremental
driver (:mod:`repro.driver.incremental`): only functions whose
fingerprinted inputs changed since the state stored under the cache
directory are re-checked.

Run:  PYTHONPATH=src python scripts/verify.py [paths-or-stems ...]
          [--jobs N] [--cache-dir DIR] [--full]
          [--changed-since REV] [--json PATH]

With no paths, every case study under ``examples/casestudies/`` is
verified.  ``--changed-since REV`` asks git which of the requested files
changed relative to ``REV`` (three-dot diff, i.e. since the merge base —
what a PR touches): files git reports unchanged *and* whose stored
source hash still matches are skipped outright, reported from the
persisted per-function outcomes; changed or unknown files run through
the incremental engine, which re-checks only the dirty functions inside
them.  If git fails, every file is conservatively treated as changed.

``--json`` writes the hit/dirty telemetry (per file: clean / dirty /
reused / re-checked functions) — the artifact the CI job uploads.
Exit code 0 iff every function of every requested file verifies
(including the stored outcomes of skipped files).
"""

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.driver import DEFAULT_CACHE_DIR, engine_fingerprint  # noqa: E402
from repro.driver.incremental import (IncrementalState,         # noqa: E402
                                      source_sha)
from repro.frontend import verify_files                         # noqa: E402
from repro.report import casestudies_dir                        # noqa: E402


def resolve_paths(args_paths) -> list[Path]:
    """Accept case-study stems ("mpool") or file paths; default to every
    case study."""
    base = casestudies_dir()
    if not args_paths:
        return sorted(base.glob("*.c"))
    out = []
    for a in args_paths:
        p = Path(a)
        if p.suffix == ".c" and p.exists():
            out.append(p)
        else:
            out.append(base / f"{p.stem or a}.c")
    return out


def changed_files(paths: list[Path], rev: str) -> set[Path]:
    """The subset of ``paths`` git reports as changed relative to
    ``rev`` (three-dot: since the merge base).  Any git failure returns
    *all* paths — degrading to a full incremental run, never to a skip
    of something that did change."""
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", f"{rev}...HEAD", "--"],
            capture_output=True, text=True, timeout=60, check=True)
        dirty_untracked = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=60, check=True)
    except (OSError, subprocess.SubprocessError):
        return set(paths)
    names = set(proc.stdout.split())
    for line in dirty_untracked.stdout.splitlines():
        if len(line) > 3:
            names.add(line[3:].strip())
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, timeout=60,
            check=True).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return set(paths)
    changed = set()
    for p in paths:
        try:
            rel = str(p.resolve().relative_to(top))
        except ValueError:
            changed.add(p)       # outside the repo: can't tell, run it
            continue
        if rel in names:
            changed.add(p)
    return changed


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("paths", nargs="*",
                    help="case-study stems or .c paths (default: all)")
    ap.add_argument("--jobs", type=int, default=1)
    ap.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR))
    ap.add_argument("--full", action="store_true",
                    help="bypass incremental planning: cache-free full "
                         "re-verification of every requested file")
    ap.add_argument("--changed-since", metavar="REV", default="",
                    help="skip files unchanged since REV whose stored "
                         "state is still valid")
    ap.add_argument("--json", dest="json_path", default="",
                    help="write hit/dirty telemetry JSON to PATH")
    args = ap.parse_args(argv)

    paths = resolve_paths(args.paths)
    cache_dir = Path(args.cache_dir)
    telemetry = {"cache_dir": str(cache_dir), "jobs": args.jobs,
                 "mode": "full" if args.full else "incremental",
                 "files": {}, "totals": {"functions": 0, "clean": 0,
                                         "dirty": 0, "reused": 0,
                                         "rechecked": 0, "skipped_files": 0,
                                         "failed": 0}}
    tot = telemetry["totals"]
    all_ok = True

    # A requested file may not exist on disk — most commonly a .c file
    # deleted on the PR branch while a CI matrix still names it (the
    # dirty set came from `git diff`, which lists deletions too).
    # Under --changed-since that is routine: there is nothing left to
    # verify, so report the file as skipped-deleted and move on.
    # Explicitly naming a missing file *without* --changed-since is a
    # caller mistake and fails cleanly instead of crashing mid-run.
    missing = [p for p in paths if not p.is_file()]
    if missing and not args.changed_since:
        for p in missing:
            print(f"verify: no such file: {p}", file=sys.stderr)
        return 2
    for p in missing:
        telemetry["files"][p.stem] = {
            "status": "skipped-deleted", "ok": True, "functions": 0,
            "clean": 0, "dirty": 0, "reused": 0, "rechecked": 0}
        tot["skipped_files"] += 1
        print(f"{p.stem}: deleted, nothing to verify (skipped)")
    paths = [p for p in paths if p not in missing]

    to_run = list(paths)
    if args.changed_since and not args.full:
        changed = changed_files(paths, args.changed_since)
        state = IncrementalState.load(cache_dir, engine_fingerprint())
        to_run = []
        for p in paths:
            unit = state.units.get(p.stem)
            if (p not in changed and unit is not None
                    and unit.source_sha == source_sha(p.read_text())
                    and unit.functions):
                # Unchanged since REV and the stored state still matches
                # the file on disk: report the persisted outcomes.
                oks = {fn: rec["ok"] for fn, rec in unit.functions.items()}
                file_ok = all(oks.values())
                all_ok = all_ok and file_ok
                telemetry["files"][p.stem] = {
                    "status": "skipped-unchanged", "ok": file_ok,
                    "functions": len(oks), "clean": len(oks), "dirty": 0,
                    "reused": 0, "rechecked": 0}
                tot["functions"] += len(oks)
                tot["clean"] += len(oks)
                tot["skipped_files"] += 1
                tot["failed"] += sum(1 for ok in oks.values() if not ok)
                print(f"{p.stem}: unchanged since {args.changed_since}, "
                      f"{len(oks)} function(s) "
                      f"{'ok' if file_ok else 'FAILED'} (skipped)")
            else:
                to_run.append(p)

    if to_run:
        outcomes = verify_files(
            to_run, jobs=args.jobs,
            cache_dir=None if args.full else cache_dir,
            incremental=not args.full)
        for stem, out in outcomes.items():
            m = out.metrics
            rechecked = sum(1 for f in m.functions
                            if f.cache in ("dirty", "miss", "off"))
            all_ok = all_ok and out.ok
            telemetry["files"][stem] = {
                "status": "verified", "ok": out.ok,
                "functions": len(m.functions),
                "clean": m.functions_clean, "dirty": m.functions_dirty,
                "reused": m.results_reused, "rechecked": rechecked}
            tot["functions"] += len(m.functions)
            tot["clean"] += m.functions_clean
            tot["dirty"] += m.functions_dirty
            tot["reused"] += m.results_reused
            tot["rechecked"] += rechecked
            tot["failed"] += sum(1 for f in m.functions if not f.ok)
            print(f"{stem}: {len(m.functions)} function(s), "
                  f"{m.functions_clean} clean / {m.functions_dirty} dirty, "
                  f"{rechecked} re-checked "
                  f"{'ok' if out.ok else 'FAILED'}")
            for f in m.functions:
                if not f.ok:
                    print(f"  FAILED {f.name}")

    telemetry["ok"] = all_ok
    print(f"total: {tot['functions']} function(s), {tot['clean']} clean, "
          f"{tot['rechecked']} re-checked, {tot['skipped_files']} file(s) "
          f"skipped, {tot['failed']} failure(s)")

    if args.json_path:
        Path(args.json_path).write_text(json.dumps(telemetry, indent=2,
                                                   sort_keys=True) + "\n")
        print(f"wrote {args.json_path}")
    return 0 if all_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
